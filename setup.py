"""Packaging metadata for the DATE 2022 raw-filtering reproduction."""

import os
import re

from setuptools import find_packages, setup

HERE = os.path.dirname(__file__)


def _long_description():
    path = os.path.join(HERE, "README.md")
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    return ""


def _version():
    """Single source of truth: repro.__version__."""
    path = os.path.join(HERE, "src", "repro", "__init__.py")
    with open(path, encoding="utf-8") as handle:
        match = re.search(
            r'^__version__ = "([^"]+)"', handle.read(), re.MULTILINE
        )
    return match.group(1)


setup(
    name="repro-rawfilter",
    version=_version(),
    description=(
        "Reproduction of 'Raw Filtering of JSON Data on FPGAs' "
        "(DATE 2022): raw-filter primitives, design-space exploration, "
        "hardware cost models, SoC simulation and a streaming software "
        "filter engine"
    ),
    long_description=_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.9",
    install_requires=["numpy"],
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Hardware",
    ],
)
