#!/usr/bin/env python
"""Date/timestamp raw filtering (paper §III-B's closing remark).

"The shown method is not only valid for numerical filters, but can also
be used for date formats or any other filter which can be represented
using regular expressions."

This example filters the taxi stream for trips picked up during the
evening rush (18:00-18:59) on January 7, combining

* a RegexPredicate for the datetime format (compiled to a DFA and
  synthesisable exactly like a number filter), and
* a number-range filter on the epoch-style trip time,

then validates against the parsed oracle.
"""

from repro import core
from repro.data import load_dataset
from repro.eval import DatasetView, FilterMetrics, evaluate_expression
from repro.hw.circuits import build_raw_filter_circuit


def main():
    dataset = load_dataset("taxi", 3000)

    # a date-format raw filter: any record containing a pickup timestamp
    # on Jan 7 between 18:00 and 18:59
    date_filter = core.RegexPredicate(
        r"2013-01-07 18:[0-5][0-9]:[0-5][0-9]"
    )
    raw_filter = core.And([
        date_filter,
        core.v_int(140, 3155),  # plausible trip durations
    ])
    print("raw filter:", raw_filter.notation())

    # oracle: parse and check the fields
    def oracle(parsed):
        pickup = parsed.get("pickup_datetime", "")
        in_window = pickup.startswith("2013-01-07 18:")
        return in_window and 140 <= parsed.get("trip_time_in_secs", -1) <= 3155

    truth = [oracle(record) for record in dataset.parsed]
    accepted = evaluate_expression(DatasetView(dataset), raw_filter)
    metrics = FilterMetrics(accepted, truth)

    print(f"records:           {len(dataset)}")
    print(f"oracle matches:    {sum(truth)}")
    print(f"raw filter passes: {int(accepted.sum())}")
    print(f"FPR:               {metrics.fpr:.4f}")
    print(f"false negatives:   {metrics.fn}  (always 0)")
    assert metrics.fn == 0

    circuit = build_raw_filter_circuit(raw_filter)
    stats = circuit.stats()
    print(
        f"\nsynthesised date filter: {stats['luts']} LUTs, "
        f"{stats['ffs']} FFs (the date DFA has "
        f"{date_filter.dfa.num_states} states)"
    )


if __name__ == "__main__":
    main()
