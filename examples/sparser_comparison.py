#!/usr/bin/env python
"""Head-to-head against Sparser-style CPU raw filtering (Palkar et al.).

Sparser can only probe for raw substrings, so on IoT workloads — where
the selectivity lives in number ranges — its false-positive rate is
bounded by string statistics alone.  The paper's FPGA primitives filter
numbers and exploit structure, reaching near-zero FPR on the same
queries.  This example quantifies the gap on all three RiotBench queries
and shows the resulting end-to-end parser workloads.
"""

from repro.baselines import optimize_cascade
from repro.core.design_space import DesignSpace
from repro.data import ALL_QUERIES, load_dataset
from repro.eval import FilterMetrics
from repro.eval.report import render_table


def main():
    rows = []
    for name, query in ALL_QUERIES.items():
        dataset = load_dataset(query.dataset_name, 3000)
        truth = query.truth_array(dataset)

        # Sparser: calibrate a probe cascade on a 10% sample
        calibration = dataset.subset(range(0, len(dataset), 10))
        terms = [c.attribute for c in query.conditions]
        cascade = optimize_cascade(terms, calibration, max_probes=2)
        sparser = FilterMetrics(cascade.match_array(dataset), truth)

        # FPGA raw filters: best configuration from the design space
        space = DesignSpace(query, dataset)
        points = space.explore()
        best = min(points, key=lambda p: (p.fpr, p.luts))
        expr = space.choice_expression(best.choice)

        parse_before = len(dataset)
        parse_sparser = sparser.tp + sparser.fp
        accepted = truth.sum() + best.fpr * (~truth).sum()
        rows.append([
            name,
            " & ".join(p.needle.decode() for p in cascade.probes),
            f"{sparser.fpr:.3f}",
            f"{parse_sparser}/{parse_before}",
            f"{best.fpr:.3f}",
            f"{int(accepted)}/{parse_before}",
        ])
        print(f"{name}: best FPGA filter = {expr.notation()}")

    print()
    print(render_table(
        [
            "Query",
            "Sparser cascade",
            "Sparser FPR",
            "Sparser parse load",
            "FPGA RF FPR",
            "FPGA parse load",
        ],
        rows,
        title="Sparser (string-only, CPU) vs this work (FPGA primitives)",
    ))


if __name__ == "__main__":
    main()
