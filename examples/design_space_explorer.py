#!/usr/bin/env python
"""Design-space exploration for a query (the paper's §III-D flow).

Runs the full brute-force exploration for a RiotBench query (default:
QS1), prints the Pareto front in the paper's Table V-VII format plus an
ASCII rendition of the Fig. 3 scatter, and compares the evolutionary
explorer (§V future work) against brute force.

Usage:
    python examples/design_space_explorer.py [QS0|QS1|QT]
"""

import sys
import time

from repro.core.design_space import DesignSpace
from repro.core.evolutionary import evolve
from repro.data import ALL_QUERIES, load_dataset
from repro.eval.report import render_scatter, render_table


def main(query_name="QS1"):
    query = ALL_QUERIES[query_name]
    dataset = load_dataset(query.dataset_name, 3000)
    print(f"query {query.name}: {query.expression_text()}")
    print(f"dataset: {dataset}")
    print(f"measured selectivity: {query.truth_array(dataset).mean():.3f} "
          f"(paper: {query.paper_selectivity})")

    space = DesignSpace(query, dataset)
    print(f"\ndesign space: {space.num_configurations()} configurations")

    started = time.perf_counter()
    points = space.explore()
    elapsed = time.perf_counter() - started
    rate = len(points) / elapsed
    print(f"explored in {elapsed:.1f} s ({rate:,.0f} configurations/s)")

    front = space.pareto(points, epsilon=0.004)
    rows = [
        [p.expr.notation(), f"{p.fpr:.3f}", p.luts]
        for p in front
    ]
    print()
    print(render_table(
        ["Raw-filter configuration", "FPR", "LUTs"], rows,
        title=f"Pareto front for {query.name} "
              "(cf. paper Tables V-VII)",
    ))

    print()
    print(render_scatter(
        [
            (p.fpr, p.luts, str(p.num_attributes))
            for p in points[:: max(1, len(points) // 1000)]
        ],
        title=f"Fig. 3 style scatter for {query.name} "
              "(glyph = #attributes)",
    ))

    # -- evolutionary search (future-work §V) -----------------------------
    result = evolve(space, population_size=32, generations=20, seed=1)
    print(
        f"\nevolutionary explorer: {result.evaluations} evaluations "
        f"({result.evaluations / space.num_configurations():.2%} of brute "
        f"force), best FPR {min(p.fpr for p in result.front):.3f}"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "QS1")
