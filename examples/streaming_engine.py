"""Streaming a larger-than-chunk corpus through the FilterEngine.

Demonstrates the unified execution layer:

* one engine, pluggable backends (``vectorized`` vs the ``scalar``
  reference oracle);
* chunked streaming in bounded memory — the corpus is consumed as
  64 KiB chunks, records are reframed across chunk seams;
* the same engine evaluating a Sparser-style baseline cascade, so the
  accuracy comparison runs through one audited code path.

Run with::

    PYTHONPATH=src python examples/streaming_engine.py
"""

import io

import repro.core.composition as comp
from repro.baselines import optimize_cascade
from repro.data import inflate, load_dataset
from repro.engine import FilterEngine

CHUNK_BYTES = 64 * 1024


def main():
    expr = comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))
    base = load_dataset("smartcity", 500, seed=42)
    corpus = inflate(base, 4 * CHUNK_BYTES)  # larger than one chunk
    payload = b"".join(record + b"\n" for record in corpus.records)
    print(f"corpus: {len(corpus)} records, {len(payload)} bytes "
          f"(chunk size {CHUNK_BYTES})")

    engine = FilterEngine(chunk_bytes=CHUNK_BYTES)

    batches = 0
    accepted = total = 0
    for batch in engine.stream_file(expr, io.BytesIO(payload)):
        batches += 1
        accepted = batch.accepted_seen
        total = batch.records_seen
    print(f"vectorized streaming: {accepted}/{total} accepted "
          f"across {batches} batches")

    scalar_bits = engine.match_bits(expr, corpus, backend="scalar")
    print(f"scalar oracle agrees: "
          f"{accepted == int(scalar_bits.sum())}")

    cascade = optimize_cascade(["temperature"], base, max_probes=2)
    sparser_accepted = engine.count_accepted(cascade, corpus)
    print(f"sparser cascade {cascade!r}: "
          f"{sparser_accepted}/{total} accepted via the same engine")


if __name__ == "__main__":
    main()
