"""Streaming a larger-than-chunk corpus through the FilterEngine.

Demonstrates the unified execution layer:

* one engine, pluggable backends (``vectorized`` vs the ``scalar``
  reference oracle);
* chunked streaming in bounded memory — the corpus is consumed as
  64 KiB chunks, records are reframed across chunk seams;
* pluggable ingest: the same stream arriving over a local socket
  through a ``SocketSource`` (with per-source byte accounting);
* parallel streaming through the shared-memory worker transport, with
  workers started from a warm AtomCache snapshot and per-worker
  counters in ``engine.stats()``;
* the same engine evaluating a Sparser-style baseline cascade, so the
  accuracy comparison runs through one audited code path.

Run with::

    PYTHONPATH=src python examples/streaming_engine.py
"""

import io
import socket
import threading

import repro.core.composition as comp
from repro.baselines import optimize_cascade
from repro.data import inflate, load_dataset
from repro.engine import FilterEngine, SocketSource

CHUNK_BYTES = 64 * 1024


def main():
    expr = comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))
    base = load_dataset("smartcity", 500, seed=42)
    corpus = inflate(base, 4 * CHUNK_BYTES)  # larger than one chunk
    payload = b"".join(record + b"\n" for record in corpus.records)
    print(f"corpus: {len(corpus)} records, {len(payload)} bytes "
          f"(chunk size {CHUNK_BYTES})")

    engine = FilterEngine(chunk_bytes=CHUNK_BYTES)

    batches = 0
    accepted = total = 0
    for batch in engine.stream_file(expr, io.BytesIO(payload)):
        batches += 1
        accepted = batch.accepted_seen
        total = batch.records_seen
    print(f"vectorized streaming: {accepted}/{total} accepted "
          f"across {batches} batches")

    scalar_bits = engine.match_bits(expr, corpus, backend="scalar")
    print(f"scalar oracle agrees: "
          f"{accepted == int(scalar_bits.sum())}")

    # the same stream arriving over a socket, filtered identically
    feeder, receiver = socket.socketpair()

    def feed():
        feeder.sendall(payload)
        feeder.close()

    thread = threading.Thread(target=feed)
    thread.start()
    source = SocketSource(receiver, chunk_bytes=CHUNK_BYTES)
    socket_accepted = 0
    for batch in engine.stream(expr, source):
        socket_accepted = batch.accepted_seen
    thread.join()
    receiver.close()
    print(f"socket ingest: {socket_accepted}/{total} accepted, "
          f"source saw {source.stats()['bytes_read']} bytes "
          f"in {source.stats()['chunks_read']} chunks")

    # parallel streaming: shared-memory transport, warm-cache workers
    warm = FilterEngine(chunk_bytes=CHUNK_BYTES, cache=True)
    for batch in warm.stream_file(expr, io.BytesIO(payload)):
        pass  # serial warm pass fills the AtomCache
    parallel = FilterEngine(
        chunk_bytes=CHUNK_BYTES, num_workers=2,
        transport="shared-memory", cache=warm.atom_cache,
    )
    parallel_accepted = 0
    for batch in parallel.stream_file(expr, io.BytesIO(payload)):
        parallel_accepted = batch.accepted_seen
    workers = parallel.stats()["workers"]
    print(f"parallel ({workers['transport']}, warm workers): "
          f"{parallel_accepted}/{total} accepted, "
          f"{workers['cache_hits']} worker cache hits / "
          f"{workers['cache_misses']} misses")

    cascade = optimize_cascade(["temperature"], base, max_probes=2)
    sparser_accepted = engine.count_accepted(cascade, corpus)
    print(f"sparser cascade {cascade!r}: "
          f"{sparser_accepted}/{total} accepted via the same engine")


if __name__ == "__main__":
    main()
