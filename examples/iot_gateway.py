#!/usr/bin/env python
"""IoT gateway scenario: raw filtering between the NIC and the CPU.

The paper's §IV-B suggests using the architecture as an IoT gateway:
the programmable logic filters the ingress stream at line rate and only
the surviving records are parsed on the ARM cores.  Since PR 5 the repo
has a real service for that role — ``repro.serve`` — so this example
runs the whole pipeline against an **in-process filter gateway**
instead of a hand-rolled loop:

1. compile the QS0 query into a Pareto-chosen raw filter,
2. start a :class:`~repro.serve.server.FilterGateway` (engine pool +
   shared AtomCache) and stream an inflated SmartCity corpus through
   it as tenant ``edge-0``,
3. stream the same corpus again as tenant ``edge-1`` — served warm
   from the masks tenant ``edge-0``'s session computed,
4. parse only the accepted records with the exact CPU filter and
   report throughput, parser offload, and result correctness.
"""

import time

from repro.baselines import ExactFilter, filtered_pipeline_stats
from repro.cli import parse_filter_expression
from repro.core.compiler import paper_pareto_expression
from repro.core.cost import exact_luts
from repro.data import QS0, inflate, load_dataset
from repro.eval import FilterMetrics
from repro.serve import GatewayClient, GatewayThread

#: the Pareto-chosen QS0 raw filter in the gateway's wire syntax
FILTER_TEXT = (
    "and("
    "group(s:1:temperature,v:float:0.7:35.1),"
    "group(s:1:humidity,v:float:20.3:69.1),"
    "group(s:1:dust,v:float:83.36:3322.67),"
    "group(s:1:airquality_raw,v:int:12:49))"
)


def stream_through_gateway(port, tenant, payload):
    """One tenant's full pass; returns (matches, accepted, seconds)."""
    matches, accepted = [], []
    with GatewayClient(
        "127.0.0.1", port, tenant=tenant, chunk_bytes=64 * 1024
    ) as client:
        start = time.perf_counter()
        for batch in client.submit(FILTER_TEXT, payload):
            matches.extend(batch.matches.tolist())
            accepted.extend(batch.accepted)
        elapsed = time.perf_counter() - start
    return matches, accepted, elapsed


def main():
    base = load_dataset("smartcity", 2000)
    corpus = inflate(base, 4 * 1024 * 1024)
    payload = corpus.stream.tobytes()
    print(f"ingress corpus: {corpus.total_bytes / 1e6:.1f} MB, "
          f"{len(corpus)} records")

    raw_filter = paper_pareto_expression(
        QS0,
        [
            ("group", "temperature", 1),
            ("group", "humidity", 1),
            ("group", "dust", 1),
            ("group", "airquality_raw", 1),
        ],
    )
    # the wire expression compiles to exactly the Pareto choice
    assert parse_filter_expression(FILTER_TEXT) == raw_filter
    print(f"\nraw filter: {raw_filter.notation()}")
    print(f"synthesised cost: {exact_luts(raw_filter)} LUTs per lane")

    # -- gateway side: a real resident filter service ----------------------
    with GatewayThread(engines=2) as gateway:
        print(f"\nfilter gateway up on 127.0.0.1:{gateway.port} "
              f"(2 engines, shared AtomCache)")
        matches, accepted, cold_s = stream_through_gateway(
            gateway.port, "edge-0", payload
        )
        print(f"tenant edge-0 (cold): {len(matches)} records in "
              f"{cold_s:.2f} s "
              f"({corpus.total_bytes / cold_s / 1e6:.1f} MB/s)")

        warm_matches, _, warm_s = stream_through_gateway(
            gateway.port, "edge-1", payload
        )
        snapshot = gateway.snapshot()
        cold_t = snapshot["tenants"]["edge-0"]
        warm_t = snapshot["tenants"]["edge-1"]
        print(f"tenant edge-1 (warm): same corpus in {warm_s:.2f} s "
              f"({corpus.total_bytes / warm_s / 1e6:.1f} MB/s) — "
              f"cache hit rate {warm_t['cache_hit_rate']:.0%} "
              f"vs {cold_t['cache_hit_rate']:.0%} cold")
        assert warm_matches == matches
        assert warm_t["cache_hit_rate"] > cold_t["cache_hit_rate"]

    # -- CPU side: parse only what survived --------------------------------
    oracle = ExactFilter(QS0)
    found = sum(1 for record in accepted if oracle.matches(record))

    stats = filtered_pipeline_stats(matches, corpus, QS0)
    truth = QS0.truth_array(corpus)
    metrics = FilterMetrics(matches, truth)
    print(f"\nrecords ingress:        {stats['records_total']}")
    print(f"records parsed on CPU:  {stats['records_parsed_filtered']} "
          f"(was {stats['records_parsed_unfiltered']})")
    print(f"bytes parsed on CPU:    "
          f"{stats['bytes_parsed_filtered'] / 1e6:.1f} MB "
          f"(was {stats['bytes_parsed_unfiltered'] / 1e6:.1f} MB)")
    print(f"query matches found:    {found}")
    print(f"missing matches:        {stats['missing_matches']} "
          "(must be 0: raw filters never lose records)")
    print(f"filter FPR:             {metrics.fpr:.3f}")
    print(f"stream filtered out:    {metrics.filtered_fraction:.1%}")
    assert stats["missing_matches"] == 0


if __name__ == "__main__":
    main()
