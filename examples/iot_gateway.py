#!/usr/bin/env python
"""IoT gateway scenario: raw filtering between the NIC and the CPU.

The paper's §IV-B suggests using the architecture as an IoT gateway: the
programmable logic filters the ingress stream at line rate and only the
surviving records are parsed on the ARM cores.  This example runs the
whole pipeline on a synthetic SmartCity stream:

1. compile the QS0 query into a Pareto-chosen raw filter,
2. stream an inflated corpus through the 7-lane SoC model,
3. parse only the accepted records with the exact CPU filter,
4. report throughput, parser offload, and result correctness.
"""

import time

from repro.baselines import ExactFilter, filtered_pipeline_stats
from repro.core.compiler import paper_pareto_expression
from repro.core.cost import exact_luts
from repro.data import QS0, inflate, load_dataset
from repro.eval import FilterMetrics
from repro.system import RawFilterSoC


def main():
    base = load_dataset("smartcity", 2000)
    corpus = inflate(base, 8 * 1024 * 1024)
    print(f"ingress corpus: {corpus.total_bytes / 1e6:.1f} MB, "
          f"{len(corpus)} records")

    raw_filter = paper_pareto_expression(
        QS0,
        [
            ("group", "temperature", 1),
            ("group", "humidity", 1),
            ("group", "dust", 1),
            ("group", "airquality_raw", 1),
        ],
    )
    print(f"\nraw filter: {raw_filter.notation()}")
    print(f"synthesised cost: {exact_luts(raw_filter)} LUTs per lane")

    # -- FPGA side ---------------------------------------------------------
    soc = RawFilterSoC(raw_filter)
    started = time.perf_counter()
    report = soc.run(corpus)
    elapsed = time.perf_counter() - started
    print(
        f"\nSoC simulation: {report.achieved_gbps:.2f} GB/s achieved "
        f"({report.utilization:.0%} of theoretical), "
        f"10 GBit/s line rate: {report.sustains_line_rate(10.0)}"
    )
    print(f"(simulated in {elapsed:.2f} s wall clock)")

    # -- CPU side: parse only what survived --------------------------------
    oracle = ExactFilter(QS0)
    survivors = [
        record
        for record, accepted in zip(corpus, report.matches)
        if accepted
    ]
    matches = sum(1 for record in survivors if oracle.matches(record))

    stats = filtered_pipeline_stats(report.matches, corpus, QS0)
    truth = QS0.truth_array(corpus)
    metrics = FilterMetrics(report.matches, truth)
    print(f"\nrecords ingress:        {stats['records_total']}")
    print(f"records parsed on CPU:  {stats['records_parsed_filtered']} "
          f"(was {stats['records_parsed_unfiltered']})")
    print(f"bytes parsed on CPU:    {stats['bytes_parsed_filtered'] / 1e6:.1f} MB "
          f"(was {stats['bytes_parsed_unfiltered'] / 1e6:.1f} MB)")
    print(f"query matches found:    {matches}")
    print(f"missing matches:        {stats['missing_matches']} "
          "(must be 0: raw filters never lose records)")
    print(f"filter FPR:             {metrics.fpr:.3f}")
    print(f"stream filtered out:    {metrics.filtered_fraction:.1%}")
    assert stats["missing_matches"] == 0


if __name__ == "__main__":
    main()
