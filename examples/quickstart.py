#!/usr/bin/env python
"""Quickstart: build a raw filter, run it on records, count LUTs.

This walks the paper's running example (Listing 1 + Listing 2): a SenML
record stream and the query

    Q0 := $.e[?(@.n=="temperature" & @.v >= 0.7 & @.v <= 35.1)]

It shows the three levels the library offers for the same filter:
behavioural evaluation, vectorised dataset evaluation, and gate-level
synthesis/simulation.
"""

from repro import core
from repro.data import Dataset
from repro.eval import DatasetView, FilterMetrics, evaluate_expression
from repro.hw import CycleSimulator
from repro.hw.circuits import build_raw_filter_circuit
from repro.jsonpath import compile_path, loads

# the paper's Listing 1 (abbreviated)
RECORDS = [
    b'{"e":[{"v":"35.2","u":"far","n":"temperature"},'
    b'{"v":"12","u":"per","n":"humidity"},'
    b'{"v":"713","u":"per","n":"light"}],"bt":1422748800000}',
    b'{"e":[{"v":"21.4","u":"far","n":"temperature"},'
    b'{"v":"55","u":"per","n":"humidity"}],"bt":1422748800300}',
    b'{"e":[{"v":"-3.0","u":"far","n":"temperature"}],"bt":1422748800600}',
]


def main():
    # -- 1. the query (Listing 2), evaluated exactly via JSONPath --------
    query = compile_path(
        '$.e[?(@.n=="temperature" & @.v >= 0.7 & @.v <= 35.1)]'
    )
    truth = [query.matches(loads(record)) for record in RECORDS]
    print("oracle (exact parse + JSONPath):", truth)

    # -- 2. raw filters in the paper's notation ---------------------------
    naive = core.And([core.s("temperature", 1), core.v("0.7", "35.1")])
    structural = core.group(
        core.s("temperature", 1), core.v("0.7", "35.1")
    )
    print("\nnaive  RF:", naive.notation())
    print("struct RF:", structural.notation())

    for name, raw_filter in (("naive", naive), ("struct", structural)):
        accepted = [
            core.evaluate_record(raw_filter, record) for record in RECORDS
        ]
        print(f"{name} accepts: {accepted}")
    # record 0 is the paper's false-positive example: "temperature"
    # appears and "12" lies in [0.7, 35.1], but the temperature itself
    # is 35.2 — only the structural filter drops it.

    # -- 3. vectorised evaluation + metrics ------------------------------
    dataset = Dataset("listing1", RECORDS)
    view = DatasetView(dataset)
    accepted = evaluate_expression(view, structural)
    metrics = FilterMetrics(accepted, truth)
    print("\nstructural filter metrics:", metrics)
    assert not metrics.has_false_negatives

    # -- 4. hardware: synthesise and simulate the same filter -------------
    circuit = build_raw_filter_circuit(structural)
    stats = circuit.stats()
    print(
        f"\nsynthesised: {stats['luts']} LUTs, {stats['ffs']} FFs, "
        f"depth {stats['depth']}"
    )
    simulator = CycleSimulator(circuit)
    for record, expected in zip(RECORDS, accepted):
        simulator.reset()
        trace = simulator.run_stream(
            record + b"\n", extra_inputs={"record_reset": 0}
        )
        assert trace["accept"][-1] == expected
    print("gate-level simulation agrees with the behavioural model.")


if __name__ == "__main__":
    main()
