"""Table III: string-matching techniques on the (diverse) Twitter dataset.

Paper shape: short needles are badly approximated by B=1 on natural text
(``user`` → 1.000, ``lang`` → 0.181, ``location`` → 0.049) while long
snake_case needles stay near 0 even at B=1; B=2 repairs everything.
"""

from repro.data import TABLE3_STRINGS

from common import (
    dataset_view,
    string_matcher_fpr,
    string_table,
    write_result,
)


def test_table3_reproduction(benchmark):
    view = dataset_view("twitter")

    fpr_user_b1 = benchmark(lambda: string_matcher_fpr(view, "user", 1))

    table = string_table(view, TABLE3_STRINGS)
    write_result("table3_twitter_strings", table)

    fpr_lang = string_matcher_fpr(view, "lang", 1)
    fpr_location = string_matcher_fpr(view, "location", 1)
    fpr_created = string_matcher_fpr(view, "created_at", 1)
    fpr_favourites = string_matcher_fpr(view, "favourites_count", 1)

    # ordering of B=1 FPRs follows the paper: user >> lang > location >>
    # created_at ~ favourites_count ~ 0
    assert fpr_user_b1 > 0.8
    assert 0.02 < fpr_lang < 0.5
    assert 0.005 < fpr_location < fpr_lang
    assert fpr_created < 0.02
    assert fpr_favourites < 0.02
    # B=2 repairs every needle
    for needle in TABLE3_STRINGS:
        assert string_matcher_fpr(view, needle, 2) == 0.0
