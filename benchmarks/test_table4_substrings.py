"""Table IV: B-gram decomposition of the "temperature" search string."""

from repro.core.string_match import substrings, unique_substrings
from repro.eval.report import render_table

from common import write_result


def test_table4_reproduction(benchmark):
    grams = benchmark(lambda: substrings("temperature", 2))

    rows = []
    for block in (1, 2, 3, len("temperature")):
        label = str(block) if block < 11 else "n"
        all_grams = substrings("temperature", block)
        distinct = unique_substrings("temperature", block)
        rows.append(
            [
                label,
                ", ".join(g.decode() for g in distinct),
                len(all_grams),
                len(distinct),
            ]
        )
    table = render_table(
        ["B", "sub-strings (distinct)", "total", "distinct"],
        rows,
        title="Table IV: substrings of 'temperature' per block length",
    )
    write_result("table4_substrings", table)

    # paper row B=2: te em mp pe er ra at tu ur re (10 grams, no dups)
    assert grams == [
        b"te", b"em", b"mp", b"pe", b"er", b"ra", b"at", b"tu", b"ur",
        b"re",
    ]
    # paper row B=1: duplicates (e, t, r, e) collapse from 11 to 7
    assert len(substrings("temperature", 1)) == 11
    assert len(unique_substrings("temperature", 1)) == 7
    # B=n: the needle itself
    assert substrings("temperature", 11) == [b"temperature"]
