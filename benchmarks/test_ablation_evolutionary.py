"""Ablation (paper §V future work): evolutionary DSE vs brute force.

"Since this [brute force] is too time-consuming for an automatic
generation of RFs, meta heuristics such as evolutionary algorithms can
be used in the future."

We run the NSGA-II-style explorer on QS1 and compare its front against
the exhaustive one: evaluations used, and how close the GA front's
hypervolume comes to the brute-force front.
"""

from repro.core.design_space import DesignSpace
from repro.core.evolutionary import evolve
from repro.data import QS1
from repro.eval.pareto import DesignPoint, pareto_front
from repro.eval.report import render_table

from common import dataset, write_result


def hypervolume(points, ref_fpr=1.0, ref_luts=500):
    """2-D hypervolume against a fixed reference (bigger = better)."""
    front = pareto_front(
        [DesignPoint(None, p.fpr, p.luts) for p in points]
    )
    total = 0.0
    previous_fpr = ref_fpr
    for point in sorted(front, key=lambda p: p.luts):
        if point.luts >= ref_luts or point.fpr >= previous_fpr:
            continue
        total += (previous_fpr - point.fpr) * (ref_luts - point.luts)
        previous_fpr = point.fpr
    return total


def test_ablation_evolutionary(benchmark):
    space = DesignSpace(QS1, dataset("smartcity"))
    space._prepare()

    brute = space.explore()
    brute_hv = hypervolume(brute)

    result = benchmark.pedantic(
        lambda: evolve(space, population_size=32, generations=25, seed=11),
        rounds=1,
        iterations=1,
    )
    ga_hv = hypervolume(result.front)

    rows = [
        ["brute-force evaluations", space.num_configurations()],
        ["GA evaluations", result.evaluations],
        ["evaluation ratio",
         f"{result.evaluations / space.num_configurations():.3%}"],
        ["brute-force hypervolume", f"{brute_hv:.1f}"],
        ["GA hypervolume", f"{ga_hv:.1f}"],
        ["hypervolume ratio", f"{ga_hv / brute_hv:.3f}"],
        ["GA best FPR", f"{min(p.fpr for p in result.front):.3f}"],
    ]
    table = render_table(
        ["metric", "value"], rows,
        title="Ablation: evolutionary DSE vs brute force (QS1)",
    )
    write_result("ablation_evolutionary", table)

    assert result.evaluations < space.num_configurations() / 10
    assert ga_hv > 0.85 * brute_hv
