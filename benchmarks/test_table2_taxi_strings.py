"""Table II: string-matching techniques on the Taxi dataset.

Paper's headline anomaly: ``s1("tolls_amount")`` has FPR 1.000 because
``total_amount`` — present in every record — is spelled from a subset of
the same letters; B = 2 repairs it completely.
"""

from repro.data import TABLE2_STRINGS

from common import (
    dataset_view,
    string_matcher_fpr,
    string_table,
    write_result,
)


def test_table2_reproduction(benchmark):
    view = dataset_view("taxi")

    fpr_tolls_b1 = benchmark(
        lambda: string_matcher_fpr(view, "tolls_amount", 1)
    )

    table = string_table(view, TABLE2_STRINGS)
    write_result("table2_taxi_strings", table)

    # the tolls/total collision: FPR ~1.0 at B=1, repaired at B=2
    assert fpr_tolls_b1 > 0.95
    assert string_matcher_fpr(view, "tolls_amount", 2) == 0.0
    # every other needle is clean even at B=1 (they key on distinct runs)
    for needle in ("trip_distance", "fare_amount", "trip_time_in_secs"):
        assert string_matcher_fpr(view, needle, 2) == 0.0
    # exact techniques never false-positive
    for needle in TABLE2_STRINGS:
        assert string_matcher_fpr(view, needle, "N") == 0.0
        assert string_matcher_fpr(view, needle, "dfa") == 0.0
