"""Table VII: Pareto-optimal raw-filter configurations for QT (Taxi).

Paper shape (5 rows): bare value filters are useless here (FPR 1.000 and
0.998 — monetary floats and durations are everywhere), the structural
tolls group at B=1 is crippled by the total_amount collision (0.722), and
B=2 repairs it (0.021); adding the tip group reaches 0.000 at 159 LUTs.
"""

from repro.core.design_space import DesignSpace
from repro.data import QT

from common import dataset, pareto_table, write_result


def test_table7_reproduction(benchmark):
    space = DesignSpace(QT, dataset("taxi"))
    space._prepare()

    choice = next(iter(space.iter_choices()))
    benchmark(lambda: space.evaluate_choice(choice))

    table, front = pareto_table(space, epsilon=0.004)
    write_result("table7_pareto_qt", table)

    # bare value filters filter (almost) nothing on the taxi data
    cheap = front[0]
    assert cheap.fpr > 0.9

    # the B=1 -> B=2 repair of the tolls group (0.722 -> 0.021 in the
    # paper): evaluate both configurations directly
    from repro.core.compiler import paper_pareto_expression
    from repro.eval.harness import evaluate_expression
    from repro.eval.metrics import FilterMetrics

    truth = space.truth
    b1 = FilterMetrics(
        evaluate_expression(
            space.view, paper_pareto_expression(
                QT, [("group", "tolls_amount", 1)]
            )
        ),
        truth,
    ).fpr
    b2 = FilterMetrics(
        evaluate_expression(
            space.view, paper_pareto_expression(
                QT, [("group", "tolls_amount", 2)]
            )
        ),
        truth,
    ).fpr
    assert b1 > 0.5
    assert b2 < 0.15
    assert b2 < b1 / 4
    # near-zero FPR is reachable under ~400 LUTs
    best = min(front, key=lambda p: (p.fpr, p.luts))
    assert best.fpr < 0.02
    assert best.luts < 450
