"""Engine streaming throughput: chunked execution vs whole-corpus.

The unified FilterEngine must not give back the harness's vectorised
throughput when a corpus arrives as byte chunks: framing + per-chunk
evaluation should stay within a small factor of the one-shot dataset
path, and far above the scalar reference loop.
"""

import io

import repro.core.composition as comp
from common import dataset, write_result
from repro.data import inflate
from repro.engine import FilterEngine
from repro.eval.report import render_table

CHUNK_BYTES = 256 * 1024
TARGET_BYTES = 2 * 1024 * 1024


def _expr():
    return comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))


def _corpus():
    return inflate(dataset("smartcity", 2000), TARGET_BYTES)


def _stream_once(engine, expr, payload, backend=None):
    last = None
    for last in engine.stream_file(
        expr, io.BytesIO(payload), backend=backend
    ):
        pass
    return last


def test_engine_streaming_report():
    corpus = _corpus()
    payload = corpus.stream.tobytes()
    expr = _expr()
    engine = FilterEngine(chunk_bytes=CHUNK_BYTES)

    import time

    rows = []
    one_shot = engine.match_bits(expr, corpus)
    for label, backend in (("vectorized", "vectorized"),
                           ("scalar", "scalar")):
        start = time.perf_counter()
        last = _stream_once(engine, expr, payload, backend)
        elapsed = time.perf_counter() - start
        assert last.records_seen == len(corpus)
        assert last.accepted_seen == int(one_shot.sum())
        rows.append([
            label,
            f"{last.records_seen}",
            f"{elapsed:.3f}",
            f"{len(payload) / elapsed / 1e6:.1f}",
        ])
    text = render_table(
        ["Backend", "Records", "Seconds", "MB/s"],
        rows,
        title=(
            f"Chunked streaming over {len(payload)} bytes "
            f"(chunk={CHUNK_BYTES})"
        ),
    )
    write_result("perf_engine_streaming", text)


def test_streaming_overhead_bounded(benchmark):
    """Chunked vectorised streaming, benchmarked."""
    corpus = _corpus()
    payload = corpus.stream.tobytes()
    expr = _expr()
    engine = FilterEngine(chunk_bytes=CHUNK_BYTES)
    last = benchmark(lambda: _stream_once(engine, expr, payload))
    assert last.records_seen == len(corpus)
