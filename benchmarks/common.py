"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark module regenerates one table or figure from the paper,
prints it in the paper's layout, and writes it to ``results/<name>.txt``
so EXPERIMENTS.md can reference the measured numbers.  Dataset instances
are cached per session (generation + oracle evaluation dominate setup).
"""

from __future__ import annotations

import functools
import os

import numpy as np

import repro.core.composition as comp
from repro.core.string_match import DFA_TECHNIQUE, FULL
from repro.data import load_dataset
from repro.eval.harness import DatasetView, evaluate_atom
from repro.eval.metrics import FilterMetrics
from repro.eval.report import render_table
from repro.hw.circuits import (
    dfa_string_matcher_circuit,
    full_matcher_circuit,
    substring_matcher_circuit,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: default dataset size for accuracy benchmarks — large enough for stable
#: FPRs, small enough to keep the full run in CI budgets
NUM_RECORDS = 3000


@functools.lru_cache(maxsize=None)
def dataset(name, num_records=NUM_RECORDS):
    return load_dataset(name, num_records)


@functools.lru_cache(maxsize=None)
def dataset_view(name, num_records=NUM_RECORDS):
    return DatasetView(dataset(name, num_records))


def write_result(name, text):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return path


def write_json_result(name, payload):
    """Write ``results/BENCH_<name>.json`` — the machine-readable
    counterpart of :func:`write_result`, so the perf trajectory across
    PRs can be diffed by tooling instead of read off tables."""
    import json

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")
    return path


# -- string-matcher tables (Tables I-III) -----------------------------------

def exact_presence_truth(view, needle):
    """Ground truth for the string tables: exact substring containment."""
    return np.fromiter(
        (needle.encode() in record for record in view.dataset),
        dtype=bool,
        count=view.num_records,
    )


def string_matcher_fpr(view, needle, block):
    predicate = comp.StringPredicate(needle, block)
    accepted = evaluate_atom(view, predicate, {})
    truth = exact_presence_truth(view, needle)
    return FilterMetrics(accepted, truth).fpr


@functools.lru_cache(maxsize=None)
def string_matcher_luts(needle, block):
    if block == DFA_TECHNIQUE:
        return dfa_string_matcher_circuit(needle).lut_count()
    if block == FULL:
        return full_matcher_circuit(needle).lut_count()
    return substring_matcher_circuit(needle, block).lut_count()


def string_table(view, needles, blocks=(1, 2, 3, 4)):
    """Rows of a Table I/II/III-style comparison."""
    headers = ["search string", "DFA FPR", "DFA LUTs",
               "full FPR", "full LUTs"]
    for block in blocks:
        headers += [f"B={block} FPR", f"B={block} LUTs"]
    rows = []
    for needle in needles:
        row = [needle]
        for technique in (DFA_TECHNIQUE, FULL):
            fpr = string_matcher_fpr(view, needle, technique)
            row += [f"{fpr:.3f}", string_matcher_luts(needle, technique)]
        for block in blocks:
            usable = block <= len(needle)
            if usable:
                fpr = string_matcher_fpr(view, needle, block)
                row += [f"{fpr:.3f}", string_matcher_luts(needle, block)]
            else:
                row += ["-", "-"]
        rows.append(row)
    return render_table(headers, rows)


# -- Pareto tables (Tables V-VII) --------------------------------------------

def pareto_table(space, epsilon=0.004, exact_luts=True, max_rows=None):
    points = space.explore()
    front = space.pareto(points, epsilon=epsilon, exact_luts=exact_luts)
    if max_rows is not None:
        front = front[:max_rows]
    rows = [
        [point.expr.notation(), f"{point.fpr:.3f}", point.luts]
        for point in front
    ]
    table = render_table(
        ["Raw-filter configuration", "FPR", "LUTs"], rows
    )
    return table, front
