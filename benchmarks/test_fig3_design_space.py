"""Fig. 3: design-space scatter (FPR vs total LUTs) for QS0, QS1, QT.

The paper plots every evaluated configuration, coloured by the number of
filtered attributes.  We regenerate the full spaces (8^5 - 1 = 32,767
configurations per query), render ASCII scatters with digit glyphs for
the attribute count, and benchmark the phase-2 evaluation rate that makes
brute force feasible.
"""

import pytest

from repro.core.design_space import DesignSpace
from repro.data import ALL_QUERIES
from repro.eval.report import render_scatter

from common import dataset, write_result


@pytest.fixture(scope="module")
def spaces():
    built = {}
    for name, query in ALL_QUERIES.items():
        space = DesignSpace(query, dataset(query.dataset_name))
        space._prepare()
        built[name] = space
    return built


@pytest.mark.parametrize("query_name", ["QS0", "QS1", "QT"])
def test_fig3_scatter(query_name, spaces, benchmark):
    space = spaces[query_name]

    choices = list(space.iter_choices())
    sample = choices[:: max(1, len(choices) // 500)]

    def evaluate_sample():
        return [space.evaluate_choice(choice) for choice in sample]

    evaluated = benchmark(evaluate_sample)

    points = space.explore()
    scatter = render_scatter(
        [
            (point.fpr, point.luts, str(point.num_attributes))
            for point in points[:: max(1, len(points) // 1200)]
        ],
        title=(
            f"Fig. 3 ({query_name}): FPR vs total LUTs, glyph = "
            "number of filtered attributes"
        ),
    )
    write_result(f"fig3_scatter_{query_name.lower()}", scatter)

    fprs = [p.fpr for p in points]
    luts = [p.luts for p in points]
    # the paper's qualitative features of each panel:
    assert len(points) == 8**5 - 1
    assert min(fprs) < 0.05            # some configuration is near-exact
    assert max(fprs) > 0.9             # and some filters nothing
    assert max(luts) > 5 * min(
        l for l, f in zip(luts, fprs) if f < 1.0
    )
    # more attributes never hurt FPR on conjunctive queries: best FPR per
    # attribute count is monotone non-increasing
    best_by_count = {}
    for point in points:
        best = best_by_count.get(point.num_attributes, 1.0)
        best_by_count[point.num_attributes] = min(best, point.fpr)
    counts = sorted(best_by_count)
    for earlier, later in zip(counts, counts[1:]):
        assert best_by_count[later] <= best_by_count[earlier] + 1e-9
