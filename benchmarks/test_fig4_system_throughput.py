"""Fig. 4 / §IV-B: the SoC architecture and throughput experiment.

Paper: 7 parallel byte-per-cycle raw-filter lanes at 200 MHz give a
theoretical 1.4 GB/s; streaming 44 MB of inflated RiotBench JSON through
the DMA achieves 1.33 GB/s — enough to sustain a 10 GBit/s NIC at line
rate.  We run the same experiment on the discrete-event SoC model and
additionally verify the lanes' match bits against the oracle (no record
that satisfies the query is ever dropped).
"""

from repro.core.compiler import paper_pareto_expression
from repro.data import QS0, inflate
from repro.eval.metrics import FilterMetrics
from repro.eval.report import render_table
from repro.system import RawFilterSoC

from common import dataset, write_result

CORPUS_BYTES = 44 * 1024 * 1024


def test_fig4_reproduction(benchmark):
    base = dataset("smartcity", 1000)
    corpus = inflate(base, CORPUS_BYTES)
    expr = paper_pareto_expression(
        QS0,
        [("group", "humidity", 1), ("group", "airquality_raw", 1)],
    )
    soc = RawFilterSoC(expr)

    report = benchmark.pedantic(
        lambda: soc.run(corpus, functional=False), rounds=3, iterations=1
    )

    functional = RawFilterSoC(expr).run(base)
    truth = QS0.truth_array(base)
    metrics = FilterMetrics(functional.matches, truth)

    rows = [
        ["lanes x clock", "7 x 200 MHz"],
        ["theoretical bandwidth",
         f"{report.theoretical_bandwidth / 1e9:.2f} GB/s"],
        ["corpus", f"{corpus.total_bytes / 1e6:.1f} MB "
                   f"({len(corpus)} records)"],
        ["achieved bandwidth (paper: 1.33 GB/s)",
         f"{report.achieved_gbps:.2f} GB/s"],
        ["utilization", f"{report.utilization:.1%}"],
        ["sustains 10 GBit/s line rate",
         str(report.sustains_line_rate(10.0))],
        ["false negatives (functional check)", metrics.fn],
        ["records filtered before the CPU",
         f"{metrics.filtered_fraction:.1%}"],
    ]
    table = render_table(["metric", "value"], rows,
                         title="Fig. 4 system experiment")
    write_result("fig4_system_throughput", table)

    assert report.theoretical_bandwidth == 1.4e9
    assert 1.25e9 < report.achieved_bandwidth < 1.4e9
    assert report.sustains_line_rate(10.0)
    assert metrics.fn == 0
