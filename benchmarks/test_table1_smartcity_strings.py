"""Table I: string-matching techniques on the SmartCity dataset.

Paper: all techniques reach FPR 0.000 on the SmartCity needles (B=1
suffices for these long, distinctive keys — `dust` shows a trace 0.006);
the substring matcher needs the fewest LUTs at B=1 and its cost grows
slowly with B, while DFA/full costs grow with needle length.
"""

from repro.data import TABLE1_STRINGS

from common import (
    dataset_view,
    string_matcher_fpr,
    string_matcher_luts,
    string_table,
    write_result,
)


def test_table1_reproduction(benchmark):
    view = dataset_view("smartcity")

    def evaluate_one_column():
        return [
            string_matcher_fpr(view, needle, 1)
            for needle in TABLE1_STRINGS
        ]

    fprs = benchmark(evaluate_one_column)

    table = string_table(view, TABLE1_STRINGS)
    write_result("table1_smartcity_strings", table)

    # paper shape: B>=2 is exact on every SmartCity needle
    for needle in TABLE1_STRINGS:
        assert string_matcher_fpr(view, needle, 2) == 0.0
        assert string_matcher_fpr(view, needle, "N") == 0.0
        assert string_matcher_fpr(view, needle, "dfa") == 0.0
    # B=1 nearly exact on these long needles
    assert max(fprs) < 0.05
    # B=1 is the cheapest implementation for the long needles
    for needle in ("temperature", "airquality_raw", "humidity"):
        b1 = string_matcher_luts(needle, 1)
        assert b1 <= string_matcher_luts(needle, 2)
        assert b1 <= string_matcher_luts(needle, "N")
        assert b1 <= string_matcher_luts(needle, "dfa")
