"""Larger-than-memory streaming: flat RSS over a capped, tiered cache.

The tentpole claim of the mmap + readahead + disk-tier stack, measured
end to end:

* a corpus **many times larger than the AtomCache byte cap** streams
  through mmap windows with the LRU demoting cold masks to the
  :class:`~repro.engine.cache_store.CacheStore` — peak resident memory
  stays flat (within 15%) relative to a small-corpus run, while the
  second pass is served from **promoted** disk entries instead of
  re-evaluating;
* :class:`~repro.engine.sources.ReadaheadSource` overlaps ingest with
  evaluation: over a latency-bound source (the realistic shape for a
  corpus that does not fit in the page cache — NFS, spinning disk,
  object storage), prefetch hides the per-chunk ingest latency behind
  filter evaluation, beating the plain serial-ingest pass.

Machine-readable results land in ``results/BENCH_tiered.json``.
"""

import os
import resource
import sys
import time

import repro.core.composition as comp
from common import write_json_result, write_result
from repro.data import write_ndjson_corpus
from repro.engine import (
    AtomCache,
    CacheStore,
    FileSource,
    FilterEngine,
    IterableSource,
    MmapSource,
    ReadaheadSource,
)
from repro.eval.report import render_table

CHUNK_BYTES = 1 << 20
SMALL_CORPUS_BYTES = 4 << 20
LARGE_CORPUS_BYTES = 16 << 20
#: far below the large corpus's mask volume (masks ~= bytes/200), so
#: the LRU must churn through the disk tier; the corpus is ~1000x the
#: cap, comfortably past the >= 4x acceptance floor
CACHE_CAP_BYTES = 16 * 1024
#: simulated per-chunk ingest latency for the overlap benchmark
INGEST_LATENCY_SECONDS = 0.02


def _effective_cores():
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


EFFECTIVE_CORES = _effective_cores()


def _peak_rss_bytes():
    """Process high-water resident set (ru_maxrss is KB on Linux,
    bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return peak


def _expr():
    return comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))


def _stream_pass(engine, source):
    start = time.perf_counter()
    records = 0
    nbytes = 0
    for batch in engine.stream(_expr(), source):
        records += len(batch.records)
        nbytes = batch.bytes_seen
    return {
        "seconds": time.perf_counter() - start,
        "records": records,
        "bytes": nbytes,
        "bytes_per_second": nbytes / (time.perf_counter() - start),
    }


def test_flat_rss_over_tiered_cache(tmp_path):
    results = {"effective_cores": EFFECTIVE_CORES,
               "cache_cap_bytes": CACHE_CAP_BYTES}

    # -- baseline: the same total bytes as the large run, but split
    # into independent small corpora streamed one after another, same
    # capped+tiered configuration.  This equalises the *work* (cold
    # chunk evaluations, allocator high-water ratchet) between the two
    # runs, so the only variable left is what this test is about: the
    # size of a single contiguous corpus.
    small_engine = FilterEngine(
        chunk_bytes=CHUNK_BYTES,
        cache=AtomCache(max_bytes=CACHE_CAP_BYTES),
        cache_store=str(tmp_path / "small-store"),
    )
    small_rounds = LARGE_CORPUS_BYTES // SMALL_CORPUS_BYTES
    small_info = small_pass = None
    for round_index in range(small_rounds):
        small_path = tmp_path / f"small-{round_index}.ndjson"
        small_info = write_ndjson_corpus(
            small_path, target_bytes=SMALL_CORPUS_BYTES,
            seed=11 + round_index,
        )
        # cold + warm, mirroring the large run's two passes
        _stream_pass(
            small_engine, MmapSource(small_path, CHUNK_BYTES)
        )
        small_pass = _stream_pass(
            small_engine, MmapSource(small_path, CHUNK_BYTES)
        )
    small_peak = _peak_rss_bytes()
    results["small"] = {**small_info, **small_pass,
                        "peak_rss_bytes": small_peak}

    # -- the large corpus: ~1000x the cache cap, two passes
    large_path = tmp_path / "large.ndjson"
    large_info = write_ndjson_corpus(
        large_path, target_bytes=LARGE_CORPUS_BYTES, seed=23
    )
    engine = FilterEngine(
        chunk_bytes=CHUNK_BYTES,
        cache=AtomCache(max_bytes=CACHE_CAP_BYTES),
        cache_store=str(tmp_path / "large-store"),
    )
    cold = _stream_pass(engine, MmapSource(large_path, CHUNK_BYTES))
    warm = _stream_pass(engine, MmapSource(large_path, CHUNK_BYTES))
    large_peak = _peak_rss_bytes()
    cache = engine.atom_cache
    cache_stats = cache.stats()
    results["large"] = {
        **large_info,
        "cold": cold,
        "warm": warm,
        "peak_rss_bytes": large_peak,
        "cache": cache_stats,
    }

    write_result(
        "perf_tiered_ingest",
        render_table(
            ["Corpus", "Bytes", "MB/s", "Peak RSS (MB)"],
            [
                ["small (baseline)", str(small_info["bytes"]),
                 f"{small_pass['bytes_per_second'] / 1e6:.1f}",
                 f"{small_peak / 1e6:.1f}"],
                [f"large cold ({large_info['bytes'] // CACHE_CAP_BYTES}"
                 "x cache cap)",
                 str(large_info["bytes"]),
                 f"{cold['bytes_per_second'] / 1e6:.1f}",
                 f"{large_peak / 1e6:.1f}"],
                ["large warm (promoted from disk)",
                 str(large_info["bytes"]),
                 f"{warm['bytes_per_second'] / 1e6:.1f}",
                 f"{large_peak / 1e6:.1f}"],
            ],
            title=(
                f"Tiered ingest, cache capped at {CACHE_CAP_BYTES} "
                f"bytes ({EFFECTIVE_CORES} effective cores)"
            ),
        ),
    )
    write_json_result("tiered", results)

    # record-count sanity: every generated record was framed
    assert cold["records"] == large_info["records"]
    assert warm["records"] == large_info["records"]

    # the tier actually cycled: evictions demoted, the warm pass was
    # served by batched promotion from disk
    assert cache_stats["demoted"] > 0, "LRU never demoted to disk"
    assert cache_stats["promoted"] > 0, "no entries promoted back"
    assert cache_stats["tier_hits"] > 0, "warm pass never hit the tier"
    assert cache_stats["store"]["entries"] > 0

    # flat RSS: 4x more corpus through the same capped cache must not
    # grow the resident footprint (ru_maxrss is monotonic, so running
    # the small pass first makes this a true upper-bound check)
    assert large_peak <= small_peak * 1.15, (
        f"peak RSS grew with corpus size: {small_peak / 1e6:.1f} MB "
        f"(small) -> {large_peak / 1e6:.1f} MB (large)"
    )

    # a warm pass served from the disk tier beats the cold pass: the
    # promoted masks replace the vectorised sweeps
    assert warm["seconds"] < cold["seconds"], (
        f"warm pass ({warm['seconds']:.3f}s) not faster than cold "
        f"({cold['seconds']:.3f}s)"
    )


class _ThrottledSource(IterableSource):
    """A chunk source with fixed per-chunk latency — the shape of any
    ingest that is not already in the page cache."""

    name = "throttled"

    def __init__(self, pieces, latency):
        super().__init__(pieces)
        self.latency = latency

    def chunks(self):
        for chunk in super().chunks():
            time.sleep(self.latency)
            yield chunk


def test_readahead_overlaps_ingest_with_evaluation(tmp_path):
    """Prefetch hides ingest latency behind evaluation.

    The producer thread sleeps through the per-chunk latency while the
    consumer evaluates the previous chunk (sleeping threads do not
    contend for the GIL), so the win is deterministic: the serial pass
    pays latency + evaluation per chunk, the readahead pass pays
    max(latency, evaluation).
    """
    path = tmp_path / "corpus.ndjson"
    info = write_ndjson_corpus(
        path, target_bytes=SMALL_CORPUS_BYTES, seed=31
    )
    payload = path.read_bytes()
    pieces = [
        payload[offset:offset + CHUNK_BYTES]
        for offset in range(0, len(payload), CHUNK_BYTES)
    ]

    def run(wrap):
        engine = FilterEngine(chunk_bytes=CHUNK_BYTES)
        source = _ThrottledSource(list(pieces), INGEST_LATENCY_SECONDS)
        if wrap:
            source = ReadaheadSource(source, depth=4)
        result = _stream_pass(engine, source)
        return result, source

    serial, _ = run(wrap=False)
    overlapped, readahead = run(wrap=True)
    assert overlapped["records"] == serial["records"] == info["records"]
    assert readahead.stats()["peak_depth"] >= 1

    # the same comparison over the real file (page-cache-fast ingest,
    # so the overlap win shrinks to the noise floor on small hosts —
    # reported always, asserted only as the latency-bound result)
    file_pass = _stream_pass(
        FilterEngine(chunk_bytes=CHUNK_BYTES),
        FileSource(str(path), CHUNK_BYTES),
    )
    file_readahead_pass = _stream_pass(
        FilterEngine(chunk_bytes=CHUNK_BYTES),
        ReadaheadSource(FileSource(str(path), CHUNK_BYTES), depth=4),
    )

    write_result(
        "perf_readahead_overlap",
        render_table(
            ["Ingest", "Seconds", "MB/s"],
            [
                [f"throttled serial ({INGEST_LATENCY_SECONDS * 1e3:.0f}"
                 "ms/chunk)",
                 f"{serial['seconds']:.3f}",
                 f"{serial['bytes_per_second'] / 1e6:.1f}"],
                ["throttled + readahead",
                 f"{overlapped['seconds']:.3f}",
                 f"{overlapped['bytes_per_second'] / 1e6:.1f}"],
                ["file serial", f"{file_pass['seconds']:.3f}",
                 f"{file_pass['bytes_per_second'] / 1e6:.1f}"],
                ["file + readahead",
                 f"{file_readahead_pass['seconds']:.3f}",
                 f"{file_readahead_pass['bytes_per_second'] / 1e6:.1f}"],
            ],
            title=(
                f"Readahead overlap over {info['bytes']} bytes "
                f"({EFFECTIVE_CORES} effective cores)"
            ),
        ),
    )
    write_json_result("readahead_overlap", {
        "effective_cores": EFFECTIVE_CORES,
        "chunk_latency_seconds": INGEST_LATENCY_SECONDS,
        "throttled_serial": serial,
        "throttled_readahead": overlapped,
        "file_serial": file_pass,
        "file_readahead": file_readahead_pass,
    })

    # the headline bar: readahead beats serial ingest when ingest has
    # any real latency to hide
    assert overlapped["seconds"] < serial["seconds"] * 0.97, (
        f"readahead ({overlapped['seconds']:.3f}s) did not beat "
        f"serial ingest ({serial['seconds']:.3f}s)"
    )
    if EFFECTIVE_CORES >= 2:
        # with a core to spare, readahead over a real file must at
        # least not regress ingest throughput
        assert (file_readahead_pass["seconds"]
                <= file_pass["seconds"] * 1.25), (
            f"file readahead ({file_readahead_pass['seconds']:.3f}s) "
            f"regressed over plain file ingest "
            f"({file_pass['seconds']:.3f}s)"
        )
