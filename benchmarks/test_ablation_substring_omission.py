"""Ablation (paper §V future work): omitting substrings from the search.

"This can be done, for example, by omitting substrings in the string
search ... potentially allowing further resource savings without a large
increase in false-positives."

Omitting comparators breaks the consecutive-run counting scheme, so the
sound thinned variant switches to *co-occurrence* semantics: keep every
k-th B-gram and require each kept gram to appear somewhere in the record
(one sticky flag per kept gram, AND at record end).  A true needle
occurrence contains every gram, so no false negative is possible; fewer
comparators cost fewer LUTs at some FPR penalty.
"""

import numpy as np

from repro.core.string_match import substrings
from repro.errors import ReproError
from repro.eval.metrics import FilterMetrics
from repro.eval.report import render_table
from repro.hw.rtl import Circuit

from common import dataset_view, exact_presence_truth, write_result


class ThinnedSubstringMatcher:
    """s_B matcher that keeps every ``stride``-th B-gram and requires all
    kept grams to co-occur in the record (sound by construction)."""

    def __init__(self, needle, block, stride):
        self.needle = needle.encode() if isinstance(needle, str) else needle
        self.block = block
        grams = substrings(self.needle, block)
        self.kept = sorted(set(grams[::stride]))
        if not self.kept:
            raise ReproError("cannot omit every substring")

    def _gram_hits(self, view):
        arr = view.stream
        n = arr.shape[0]
        shifted = [arr]
        for age in range(1, self.block):
            lagged = np.zeros(n, dtype=arr.dtype)
            lagged[age:] = arr[:-age]
            shifted.append(lagged)
        for gram in self.kept:
            gram_hit = np.ones(n, dtype=bool)
            for age, expected in enumerate(reversed(gram)):
                gram_hit &= shifted[age] == expected
            yield gram_hit

    def record_match_array(self, view):
        result = np.ones(view.num_records, dtype=bool)
        for gram_hit in self._gram_hits(view):
            result &= np.logical_or.reduceat(gram_hit, view.starts)
        return result

    def lut_count(self):
        circuit = Circuit("thinned")
        byte = circuit.add_input_vector("byte", 8)
        record_reset = circuit.add_input("record_reset")
        aig = circuit.aig
        window = [byte]
        previous = byte
        for age in range(1, self.block):
            stage = circuit.add_register_vector(f"buf{age}", 8)
            circuit.set_next_vector(stage, previous)
            window.append(stage)
            previous = stage
        flags = []
        for index, gram in enumerate(self.kept):
            terms = [
                window[age].eq_const(expected)
                for age, expected in enumerate(reversed(gram))
            ]
            hit = aig.and_reduce(terms)
            flags.append(circuit.sticky(f"g{index}", hit, record_reset))
        circuit.add_output("match", aig.and_reduce(flags))
        return circuit.lut_count()


def test_ablation_substring_omission(benchmark):
    view = dataset_view("twitter")
    needle = "favourites_count"
    truth = exact_presence_truth(view, needle)

    rows = []
    fprs = []
    for stride in (1, 2, 3, 4):
        matcher = ThinnedSubstringMatcher(needle, 2, stride)
        accepted = matcher.record_match_array(view)
        metrics = FilterMetrics(accepted, truth)
        assert metrics.fn == 0  # soundness preserved by construction
        fprs.append(metrics.fpr)
        rows.append(
            [
                stride,
                len(matcher.kept),
                f"{metrics.fpr:.3f}",
                matcher.lut_count(),
            ]
        )

    matcher = ThinnedSubstringMatcher(needle, 2, 2)
    benchmark(lambda: matcher.record_match_array(view))

    table = render_table(
        ["keep every k-th gram", "comparators", "FPR", "LUTs"],
        rows,
        title=f"Ablation: substring omission for s2({needle!r})",
    )
    write_result("ablation_substring_omission", table)

    full_luts = rows[0][3]
    thinned_luts = rows[-1][3]
    assert thinned_luts < full_luts  # omission saves resources
    # FPR grows monotonically-ish but stays small on this long needle
    assert fprs[-1] <= 0.2
    assert fprs[0] <= fprs[-1] + 1e-9
