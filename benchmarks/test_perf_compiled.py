"""Compiled fused-kernel backend throughput (not a paper experiment).

Drives the real ``repro bench`` CLI (the same ``--json`` plumbing users
get) over the RiotBench QS1-style smartcity filter — five structural
group conjuncts whose record-level number prefilters are highly
selective, the workload the fused kernel is built for — and records the
result as ``results/BENCH_compiled.json``: per-backend records/s and
bytes/s plus the kernel-cache counters.

The acceptance bar asserted here: the compiled backend is at least 3x
the vectorized backend's cold-serial throughput (both passes run with
the AtomCache disabled, so every chunk is evaluated from raw bytes; the
process-wide kernel registry is cleared first so compilation cost is
inside the measurement).
"""

import json
import os

from repro import cli
from repro.engine import clear_kernels

from common import RESULTS_DIR, write_result

# RiotBench QS1 (Table 4): five sensor-range conjuncts over smartcity
QS1_EXPRESSION = (
    "and("
    "group(s:1:temperature,v:float:-12.5:43.1),"
    "group(s:1:humidity,v:float:10.7:95.2),"
    "group(s:1:light,v:float:1345:26282),"
    "group(s:1:dust,v:float:186.61:5188.21),"
    "group(s:1:airquality_raw,v:int:17:363)"
    ")"
)

NUM_RECORDS = 8000


def best_pass(document, backend):
    """Highest-throughput pass of one backend (filters CI scheduler
    noise; every pass here is equally AtomCache-cold)."""
    passes = [
        entry for entry in document["passes"]
        if entry["backend"] == backend
    ]
    assert passes, f"no bench passes for backend {backend!r}"
    return max(passes, key=lambda entry: entry["bytes_per_second"])


def test_compiled_backend_speedup_over_vectorized():
    clear_kernels()
    json_path = os.path.join(RESULTS_DIR, "BENCH_compiled.json")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    status = cli.main([
        "bench", QS1_EXPRESSION,
        "--dataset", "smartcity",
        "--records", str(NUM_RECORDS),
        "--seed", "7",
        "--backends", "compiled,vectorized",
        "--no-cache",
        # one framed chunk per pass: per-chunk dispatch overhead would
        # otherwise blur the backend comparison on small corpora
        "--chunk-bytes", str(4 << 20),
        "--repeat", "3",
        "--json", json_path,
    ])
    assert status == 0

    with open(json_path) as handle:
        document = json.load(handle)

    compiled = best_pass(document, "compiled")
    vectorized = best_pass(document, "vectorized")
    assert compiled["accepted"] == vectorized["accepted"]

    speedup = (
        compiled["bytes_per_second"] / vectorized["bytes_per_second"]
    )
    kernel_stats = document["compiled"]
    assert kernel_stats is not None
    # one kernel, compiled once, reused on the remaining chunk batches
    assert kernel_stats["kernels_compiled"] == 1
    assert kernel_stats["kernels_reused"] >= 1
    assert kernel_stats["atoms_short_circuited"] > 0
    assert document["selectivity"], "observed selectivity missing"

    # stamp the derived comparison into the document the CI uploads
    document["speedup_compiled_vs_vectorized"] = speedup
    with open(json_path, "w") as handle:
        json.dump(document, handle, indent=2, default=str)
        handle.write("\n")

    mb = document["payload_bytes"] / 1e6
    lines = [
        "Compiled fused-kernel backend vs vectorized (cold serial, "
        f"{mb:.1f} MB smartcity, QS1-style filter)",
        f"compiled:   {compiled['bytes_per_second'] / 1e6:6.1f} MB/s "
        f"({compiled['records_per_second']:.0f} records/s)",
        f"vectorized: {vectorized['bytes_per_second'] / 1e6:6.1f} MB/s "
        f"({vectorized['records_per_second']:.0f} records/s)",
        f"speedup:    {speedup:.2f}x",
        "kernels: "
        f"{kernel_stats['kernels_compiled']} compiled / "
        f"{kernel_stats['kernels_reused']} reused; "
        f"{kernel_stats['atoms_short_circuited']} record-scans "
        "short-circuited",
    ]
    write_result("perf_compiled", "\n".join(lines))

    assert speedup >= 3.0, (
        f"compiled backend must be >=3x vectorized cold serial, "
        f"measured {speedup:.2f}x"
    )
