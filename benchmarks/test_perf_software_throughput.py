"""Software-throughput microbenchmarks (not a paper experiment).

These quantify what makes the reproduction usable: the vectorised
behavioural filters' throughput in MB/s over raw record streams, and the
phase-1 cost of building a dataset view.  They also put the paper's
motivation in perspective — even the vectorised Python filter is far
from the FPGA's line rate, while the exact parser is slower still.
"""

import time

import repro.core.composition as comp
from repro.baselines import ExactFilter
from repro.data import QS0
from repro.engine import FilterEngine, clear_kernels
from repro.eval.harness import DatasetView, evaluate_expression
from repro.eval.report import render_table

from common import dataset, write_result


def test_software_throughput(benchmark):
    data = dataset("smartcity")
    total_mb = data.total_bytes / 1e6
    expr = comp.And(
        [
            comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1")),
            comp.v_int(12, 49),
        ]
    )

    def filter_pass():
        view = DatasetView(data)  # includes phase-1 token/mask builds
        return evaluate_expression(view, expr)

    benchmark(filter_pass)

    # one-off measurements for the report table
    started = time.perf_counter()
    view = DatasetView(data)
    accepted = evaluate_expression(view, expr)
    vectorised_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm = evaluate_expression(view, expr, cache={})
    warm_seconds = time.perf_counter() - started

    clear_kernels()
    compiled_engine = FilterEngine(backend="compiled")
    started = time.perf_counter()
    fused = compiled_engine.match_bits(expr, data)
    compiled_seconds = time.perf_counter() - started

    started = time.perf_counter()
    ExactFilter(QS0).match_array(data)
    # truth_array is cached on the dataset; force a real parse pass
    from repro.jsonpath import loads

    for record in data.records[:500]:
        loads(record)
    parse_seconds = (time.perf_counter() - started) * (
        len(data) / 500
    )

    rows = [
        ["corpus", f"{total_mb:.1f} MB, {len(data)} records"],
        ["vectorised filter (cold view)",
         f"{total_mb / vectorised_seconds:.0f} MB/s"],
        ["vectorised filter (warm view)",
         f"{total_mb / warm_seconds:.0f} MB/s"],
        ["compiled fused kernel (cold)",
         f"{total_mb / compiled_seconds:.0f} MB/s"],
        ["exact JSON parse (pure Python)",
         f"{total_mb / parse_seconds:.1f} MB/s"],
        ["FPGA lane model (for scale)", "1340 MB/s"],
    ]
    table = render_table(
        ["path", "throughput"], rows,
        title="Software vs hardware filtering throughput",
    )
    write_result("perf_software_throughput", table)

    assert accepted.shape[0] == len(data)
    assert warm.tolist() == accepted.tolist()
    assert fused.tolist() == accepted.tolist()
