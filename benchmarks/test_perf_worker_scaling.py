"""Worker-count scaling curve for both worker transports.

The parallel streaming path ships framed chunks to worker processes
through a pluggable :class:`~repro.engine.transport.WorkerTransport`.
This benchmark establishes the scaling curve over worker counts for
both transports (pickled record lists vs shared-memory slot rings) and
for cold- vs warm-cache workers, over the streaming corpus.

Acceptance bars:

* every configuration is record- and accept-identical to the serial
  path (the differential suite in ``tests/test_transport.py`` locks
  bit-identity; this benchmark re-checks the cumulative counters);
* **warm-cache workers beat cold-cache workers** at the same worker
  count — the AtomCache snapshot shipped at pool start replaces the
  per-chunk vectorised sweeps with fingerprint lookups, an algorithmic
  win that holds regardless of core count;
* 4 warm workers deliver >= 1.5x the throughput of 1 cold worker;
* a second stream over the same resident pool beats the first — warm
  reuse is algorithmic (resident caches + no respawn), so it is
  asserted regardless of core count;
* on machines with >= 4 *effective* cores, 4 cold workers deliver
  >= 1.5x the throughput of 1 cold worker and a cold 4-worker resident
  pool beats the serial pass (hardware scaling; on smaller hosts the
  curves are still measured and reported, but CPU-bound processes
  cannot scale past the cores the scheduler actually grants, so those
  bars are not asserted).
"""

import io
import os
import time

import repro.core.composition as comp
from common import dataset, write_result
from repro.data import inflate
from repro.engine import AtomCache, FilterEngine
from repro.eval.report import render_table

CHUNK_BYTES = 128 * 1024
TARGET_BYTES = 2 * 1024 * 1024
WORKER_COUNTS = (1, 2, 4)
TRANSPORTS = ("fork-pickle", "shared-memory")
TIMING_ROUNDS = 2


def _effective_cores():
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the host's cores even when a cgroup or
    affinity mask grants far fewer (the usual CI shape), which both
    mislabelled the results header and gated the hardware-scaling
    assertions on cores that were never available.  The scheduler
    affinity mask is the truth where the platform exposes it.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


#: detected once; every header and every gate below uses this
EFFECTIVE_CORES = _effective_cores()


def _expr():
    return comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))


def _corpus_payload():
    corpus = inflate(dataset("smartcity", 2000), TARGET_BYTES)
    return corpus.stream.tobytes()


def _stream_seconds(engine, expr, payload):
    best = float("inf")
    last = None
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        for last in engine.stream_file(expr, io.BytesIO(payload)):
            pass
        best = min(best, time.perf_counter() - start)
    return best, last


def test_worker_scaling_curve():
    payload = _corpus_payload()
    expr = _expr()

    serial = FilterEngine(chunk_bytes=CHUNK_BYTES)
    serial_seconds, serial_last = _stream_seconds(
        serial, expr, payload
    )

    def throughput(seconds):
        return len(payload) / seconds / 1e6

    rows = [[
        "serial", "-", "-", f"{serial_seconds:.3f}",
        f"{throughput(serial_seconds):.1f}", "1.00x",
    ]]
    measured = {}

    # cold workers: every chunk is evaluated in the worker
    for transport in TRANSPORTS:
        for workers in WORKER_COUNTS:
            engine = FilterEngine(
                chunk_bytes=CHUNK_BYTES, num_workers=workers,
                transport=transport,
            )
            seconds, last = _stream_seconds(engine, expr, payload)
            assert last.records_seen == serial_last.records_seen
            assert last.accepted_seen == serial_last.accepted_seen
            measured[(transport, workers, "cold")] = seconds
            rows.append([
                transport, str(workers), "cold", f"{seconds:.3f}",
                f"{throughput(seconds):.1f}",
                f"{serial_seconds / seconds:.2f}x",
            ])

    # warm workers: the engine's AtomCache is warmed by one serial
    # pass, then shipped to the workers as a start-up snapshot — the
    # cache-to-workers path the serial-only cache could never serve
    cache = AtomCache()
    warm_serial = FilterEngine(chunk_bytes=CHUNK_BYTES, cache=cache)
    for _ in warm_serial.stream_file(expr, io.BytesIO(payload)):
        pass
    for transport in TRANSPORTS:
        engine = FilterEngine(
            chunk_bytes=CHUNK_BYTES, num_workers=4,
            transport=transport, cache=cache,
        )
        seconds, last = _stream_seconds(engine, expr, payload)
        assert last.records_seen == serial_last.records_seen
        assert last.accepted_seen == serial_last.accepted_seen
        worker_stats = engine.stats()["workers"]
        assert worker_stats["cache_hits"] > 0
        assert worker_stats["cache_misses"] == 0
        measured[(transport, 4, "warm")] = seconds
        rows.append([
            transport, "4", "warm", f"{seconds:.3f}",
            f"{throughput(seconds):.1f}",
            f"{serial_seconds / seconds:.2f}x",
        ])

    table = render_table(
        ["Transport", "Workers", "Cache", "Seconds", "MB/s",
         "vs serial"],
        rows,
        title=(
            f"Worker scaling over {len(payload)} bytes "
            f"(chunk={CHUNK_BYTES}, "
            f"{EFFECTIVE_CORES} effective cores)"
        ),
    )
    write_result("perf_worker_scaling", table)

    # warm-cache workers beat cold-cache workers (same worker count,
    # same transport): an algorithmic bar, independent of cores
    for transport in TRANSPORTS:
        warm = measured[(transport, 4, "warm")]
        cold = measured[(transport, 4, "cold")]
        assert warm < cold, (
            f"warm workers ({warm:.3f}s) not faster than cold "
            f"({cold:.3f}s) at 4 workers over {transport}"
        )

    # 4 warm workers vs 1 cold worker: the cache-to-workers payoff
    ratio = (
        measured[("shared-memory", 1, "cold")]
        / measured[("shared-memory", 4, "warm")]
    )
    assert ratio >= 1.5, (
        f"4 warm workers only {ratio:.2f}x over 1 cold worker"
    )

    # hardware scaling is only assertable when the cores exist —
    # gated on the *effective* core count, not the host's
    if EFFECTIVE_CORES >= 4:
        best_cold_scaling = max(
            measured[(transport, 1, "cold")]
            / measured[(transport, 4, "cold")]
            for transport in TRANSPORTS
        )
        assert best_cold_scaling >= 1.5, (
            f"4 cold workers only {best_cold_scaling:.2f}x over 1 "
            f"on a {EFFECTIVE_CORES}-effective-core host"
        )


def test_resident_pool_cold_and_warm_reuse():
    """The resident pool's two bars, measured on one engine:

    * **warm reuse (asserted everywhere)** — the second stream over
      the *same* pool rides warm worker caches, an already-configured
      filter and zero respawned processes, so it beats the first
      stream regardless of core count;
    * **cold vs serial (asserted on >= 4 effective cores)** — four
      resident workers' first stream, spawn cost included, beats the
      serial cold pass when the hardware can actually run them.
    """
    payload = _corpus_payload()
    expr = _expr()

    serial = FilterEngine(chunk_bytes=CHUNK_BYTES)
    serial_seconds, serial_last = _stream_seconds(
        serial, expr, payload
    )

    def one_pass(engine):
        start = time.perf_counter()
        last = None
        for last in engine.stream_file(expr, io.BytesIO(payload)):
            pass
        return time.perf_counter() - start, last

    engine = FilterEngine(
        chunk_bytes=CHUNK_BYTES, num_workers=4, cache=True
    )
    try:
        cold_seconds, cold_last = one_pass(engine)
        warm_seconds, warm_last = one_pass(engine)
        stats = engine.stats()["workers"]
    finally:
        engine.close()

    for last in (cold_last, warm_last):
        assert last.records_seen == serial_last.records_seen
        assert last.accepted_seen == serial_last.accepted_seen
    assert stats["resident"] is True
    assert stats["sessions"] == 2
    assert stats["respawns"] == 0
    assert stats["cache_hits"] > 0, (
        "second stream not served from resident worker caches"
    )

    def throughput(seconds):
        return len(payload) / seconds / 1e6

    write_result(
        "perf_resident_pool",
        render_table(
            ["Pass", "Seconds", "MB/s", "vs serial"],
            [
                ["serial cold", f"{serial_seconds:.3f}",
                 f"{throughput(serial_seconds):.1f}", "1.00x"],
                ["resident 4w cold (spawn included)",
                 f"{cold_seconds:.3f}",
                 f"{throughput(cold_seconds):.1f}",
                 f"{serial_seconds / cold_seconds:.2f}x"],
                ["resident 4w warm reuse", f"{warm_seconds:.3f}",
                 f"{throughput(warm_seconds):.1f}",
                 f"{serial_seconds / warm_seconds:.2f}x"],
            ],
            title=(
                f"Resident pool over {len(payload)} bytes "
                f"(chunk={CHUNK_BYTES}, "
                f"{EFFECTIVE_CORES} effective cores)"
            ),
        ),
    )

    assert warm_seconds < cold_seconds, (
        f"warm reuse ({warm_seconds:.3f}s) not faster than the cold "
        f"first stream ({cold_seconds:.3f}s) on the same pool"
    )
    if EFFECTIVE_CORES >= 4:
        assert cold_seconds < serial_seconds, (
            f"4 resident workers ({cold_seconds:.3f}s) did not beat "
            f"the serial cold pass ({serial_seconds:.3f}s) on a "
            f"{EFFECTIVE_CORES}-effective-core host"
        )


def test_result_ring_vs_pickled_return():
    """The pickle-free return leg: every fitting batch's result comes
    back mapped from the shared result ring (zero pickled returns),
    with the pickled-return transport measured alongside as the
    baseline curve."""
    payload = _corpus_payload()
    expr = _expr()
    rows = []
    for transport in TRANSPORTS:
        for workers in (2, 4):
            engine = FilterEngine(
                chunk_bytes=CHUNK_BYTES, num_workers=workers,
                transport=transport,
            )
            seconds, last = _stream_seconds(engine, expr, payload)
            stats = engine.stats()["workers"]
            ring = stats.get("ring_results", 0)
            rows.append([
                transport, str(workers), f"{seconds:.3f}",
                f"{len(payload) / seconds / 1e6:.1f}",
                str(ring), str(stats["pickled_results"]),
            ])
            if transport == "shared-memory":
                assert ring == stats["chunks"], (
                    "ring did not carry every fitting result"
                )
                assert stats["pickled_results"] == 0
                assert stats["fallback_batches"] == 0
            else:
                assert stats["pickled_results"] == stats["chunks"]
    write_result(
        "perf_result_ring",
        render_table(
            ["Transport", "Workers", "Seconds", "MB/s",
             "Ring results", "Pickled results"],
            rows,
            title=(
                f"Result return path over {len(payload)} bytes "
                f"(chunk={CHUNK_BYTES})"
            ),
        ),
    )


def test_parallel_pass_warms_serial_reread():
    """Merge-back payoff: a *cold parallel* first pass leaves the
    parent AtomCache warm, so re-reading the corpus serially is served
    from merged worker entries — the warm-pass behaviour that used to
    require a serial first pass."""
    payload = _corpus_payload()
    expr = _expr()

    cold_serial = FilterEngine(chunk_bytes=CHUNK_BYTES)
    cold_seconds, cold_last = _stream_seconds(
        cold_serial, expr, payload
    )

    cache = AtomCache()
    parallel = FilterEngine(
        chunk_bytes=CHUNK_BYTES, num_workers=2,
        transport="shared-memory", cache=cache,
    )
    for _ in parallel.stream_file(expr, io.BytesIO(payload)):
        pass
    worker_stats = parallel.stats()["workers"]
    assert worker_stats["merged_entries"] > 0

    warm_serial = FilterEngine(chunk_bytes=CHUNK_BYTES, cache=cache)
    hits_before, misses_before = cache.hits, cache.misses
    warm_seconds, warm_last = _stream_seconds(
        warm_serial, expr, payload
    )
    assert warm_last.records_seen == cold_last.records_seen
    assert warm_last.accepted_seen == cold_last.accepted_seen
    assert cache.hits > hits_before, (
        "serial re-read not served from merged worker entries"
    )
    assert cache.misses == misses_before

    write_result(
        "perf_merge_back_warm_pass",
        render_table(
            ["Pass", "Seconds", "MB/s"],
            [
                ["cold serial", f"{cold_seconds:.3f}",
                 f"{len(payload) / cold_seconds / 1e6:.1f}"],
                ["serial after parallel merge-back",
                 f"{warm_seconds:.3f}",
                 f"{len(payload) / warm_seconds / 1e6:.1f}"],
            ],
            title=(
                f"Merge-back warm pass over {len(payload)} bytes "
                f"({worker_stats['merged_entries']} entries merged)"
            ),
        ),
    )
    assert warm_seconds < cold_seconds, (
        f"warm re-read ({warm_seconds:.3f}s) not faster than the "
        f"cold serial pass ({cold_seconds:.3f}s)"
    )
