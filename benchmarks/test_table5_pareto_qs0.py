"""Table V: Pareto-optimal raw-filter configurations for QS0.

Paper shape (12 rows): from a bare ``v(12 <= i <= 49)`` at FPR 0.853 / 18
LUTs down to the five-group configuration at FPR 0.000 / 307 LUTs;
structural ``{ s1(attr) & v(range) }`` groups dominate the front, and the
cheapest zero-FPR configuration needs (almost) all five attributes.
"""

from repro.core.design_space import DesignSpace
from repro.data import QS0

from common import dataset, pareto_table, write_result

PAPER_FRONT = [
    ("v(12 <= i <= 49)", 0.853, 18),
    ('{ s1("airquality_raw") & v(12 <= i <= 49) }', 0.770, 47),
    ('{ s1("humidity") & v(20.3 <= f <= 69.1) }', 0.562, 95),
    ("two groups", 0.349, 123),
    ("five groups", 0.000, 307),
]


def test_table5_reproduction(benchmark):
    space = DesignSpace(QS0, dataset("smartcity"))
    space._prepare()

    choice = next(iter(space.iter_choices()))
    benchmark(lambda: space.evaluate_choice(choice))

    table, front = pareto_table(space, epsilon=0.004)
    write_result("table5_pareto_qs0", table)

    fprs = [point.fpr for point in front]
    luts = [point.luts for point in front]
    # monotone trade-off curve spanning the paper's range
    assert fprs[0] > 0.7                      # cheap end: high FPR
    assert min(fprs) < 0.02                   # expensive end: ~exact
    assert luts[0] < 100
    assert max(luts) > 250
    # the front's members use structural groups (paper's rows all do)
    notations = [point.expr.notation() for point in front]
    assert any("{" in text for text in notations)
    # value-only configurations appear at the cheap end, as in the paper
    assert notations[0].startswith("v(")
    # the near-zero-FPR configuration involves >= 4 attributes
    best = min(front, key=lambda p: (p.fpr, p.luts))
    assert best.meta["num_attributes"] >= 4
