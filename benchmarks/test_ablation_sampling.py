"""Ablation (paper §V future work): sampled FPR estimation.

"Instead of evaluating each design point for the complete dataset, we
want to explore sampling methods that can potentially speed up the
process without a large increase in the FPR."

We estimate FPRs from stratified record subsamples of decreasing size
and report the estimation error against the full-dataset values.
"""

from repro.core.sampling import sampling_error_study
from repro.data import QS0
from repro.eval.report import render_table

from common import dataset, write_result


def test_ablation_sampling(benchmark):
    data = dataset("smartcity")

    rows_raw = benchmark.pedantic(
        lambda: sampling_error_study(
            QS0, data, fractions=(0.5, 0.25, 0.1, 0.05), seed=3
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            f"{row['fraction']:.0%}",
            row["records"],
            f"{row['mean_abs_error']:.4f}",
            f"{row['max_abs_error']:.4f}",
        ]
        for row in rows_raw
    ]
    table = render_table(
        ["sample", "records", "mean |FPR error|", "max |FPR error|"],
        rows,
        title="Ablation: sampled FPR estimation (QS0)",
    )
    write_result("ablation_sampling", table)

    # even a 10% sample estimates FPR to a few percent on average
    ten_percent = next(r for r in rows_raw if r["fraction"] == 0.1)
    assert ten_percent["mean_abs_error"] < 0.08
    # error grows as samples shrink (allowing noise)
    assert (
        rows_raw[0]["mean_abs_error"]
        <= rows_raw[-1]["mean_abs_error"] + 0.02
    )
