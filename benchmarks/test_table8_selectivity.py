"""Table VIII: the RiotBench queries and their selectivities.

Paper: QS0 63.9 %, QS1 5.4 %, QT 5.7 %.  Our synthetic datasets are
calibrated to land close to these (the whole evaluation depends on them:
FPR numbers are conditioned on the negative class these define).
"""

from repro.baselines import ExactFilter
from repro.data import ALL_QUERIES
from repro.eval.report import render_table

from common import dataset, write_result

PAPER_SELECTIVITY = {"QS0": 0.639, "QS1": 0.054, "QT": 0.057}


def test_table8_reproduction(benchmark):
    qs0 = ALL_QUERIES["QS0"]
    ds = dataset(qs0.dataset_name)

    truth = benchmark(lambda: ExactFilter(qs0).match_array(ds))

    rows = []
    measured = {}
    for name, query in ALL_QUERIES.items():
        data = dataset(query.dataset_name)
        selectivity = float(query.truth_array(data).mean())
        measured[name] = selectivity
        rows.append(
            [
                name,
                query.expression_text(),
                f"{100 * selectivity:.1f}",
                f"{100 * PAPER_SELECTIVITY[name]:.1f}",
            ]
        )
    table = render_table(
        ["Query", "Filter expression", "measured sel. (%)",
         "paper sel. (%)"],
        rows,
        title="Table VIII: RiotBench queries",
    )
    write_result("table8_selectivity", table)

    assert truth.mean() == measured["QS0"]
    assert abs(measured["QS0"] - 0.639) < 0.08
    assert abs(measured["QS1"] - 0.054) < 0.04
    assert abs(measured["QT"] - 0.057) < 0.04
    # each query has exactly five range conditions, all conjunctive
    for query in ALL_QUERIES.values():
        assert len(query.conditions) == 5
