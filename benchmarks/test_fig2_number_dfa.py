"""Fig. 2: the number-filter build process for i >= 35.

Step 1 derives the regular expression (the paper shows
``3[5-9] | [4-9][0-9] | [1-9][0-9][0-9]+`` built digit by digit); step 2
converts it into a minimised DFA with 4 live non-accepting states plus an
accepting state.  This benchmark regenerates both steps and times the
full derivation pipeline.
"""

from repro.eval.report import render_table
from repro.regex.dfa import DFA
from repro.regex.range_regex import integer_range_regex

from common import write_result


def build():
    regex = integer_range_regex(35, None)
    dfa = DFA.from_regex(regex)
    return regex, dfa


def test_fig2_reproduction(benchmark):
    regex, dfa = benchmark(build)

    live = dfa.num_states - len(dfa.dead_states())
    rows = [
        ["value comparison", "i >= 35"],
        ["step 1: derived regex", regex.to_pattern()],
        ["step 2: DFA states (incl. sink)", dfa.num_states],
        ["live states (paper Fig. 2: 5)", live],
        ["accepting states", int(dfa.accepting.sum())],
    ]
    table = render_table(["stage", "result"], rows,
                         title="Fig. 2: number filter build for i >= 35")
    write_result("fig2_number_dfa", table)

    # language check against the figure's intent
    for value in (0, 3, 34, 35, 36, 99, 100, 350, 99999):
        assert dfa.accepts(str(value)) == (value >= 35)
    # the paper's Fig. 2 DFA: s0..s3 + accepting state
    assert live == 5
    # the derived regex has the same three-branch structure
    assert regex.to_pattern().count("|") == 2
