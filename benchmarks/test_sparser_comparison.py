"""Comparison against Sparser (Palkar et al. [10]), the paper's foil.

The paper's core argument versus CPU raw filtering: Sparser's primitives
are string-only, so on IoT workloads — whose selectivity lives in number
ranges — its achievable FPR is poor, while the FPGA primitives reach
near-zero FPR.  This benchmark quantifies that gap on all three queries.
"""

from repro.baselines import optimize_cascade
from repro.core.design_space import DesignSpace
from repro.data import ALL_QUERIES
from repro.eval.metrics import FilterMetrics
from repro.eval.report import render_table

from common import dataset, write_result


def best_raw_filter_fpr(query):
    space = DesignSpace(query, dataset(query.dataset_name))
    points = space.explore()
    return min(point.fpr for point in points)


def test_sparser_comparison(benchmark):
    rows = []
    measured = {}
    for name, query in ALL_QUERIES.items():
        data = dataset(query.dataset_name)
        truth = query.truth_array(data)
        calibration = data.subset(range(0, len(data), 10))
        terms = [c.attribute for c in query.conditions]
        cascade = optimize_cascade(terms, calibration, max_probes=2)
        accepted = cascade.match_array(data)
        sparser = FilterMetrics(accepted, truth)
        ours = best_raw_filter_fpr(query)
        measured[name] = (sparser.fpr, ours)
        rows.append(
            [
                name,
                " & ".join(p.needle.decode() for p in cascade.probes),
                f"{sparser.fpr:.3f}",
                f"{ours:.3f}",
                sparser.fn,
            ]
        )

    query = ALL_QUERIES["QT"]
    data = dataset(query.dataset_name)
    terms = [c.attribute for c in query.conditions]
    cascade = optimize_cascade(terms, data.subset(range(200)),
                               max_probes=2)
    benchmark(lambda: cascade.match_array(data))

    table = render_table(
        ["Query", "Sparser cascade", "Sparser FPR", "best FPGA RF FPR",
         "Sparser FNs"],
        rows,
        title="Sparser (string-only) vs FPGA raw filters",
    )
    write_result("sparser_comparison", table)

    # Sparser never loses a record (soundness), but on the SmartCity
    # queries its string probes cannot discriminate at all
    for name, (sparser_fpr, ours_fpr) in measured.items():
        assert ours_fpr < sparser_fpr + 1e-9, name
    assert measured["QS0"][0] > 0.5
    assert measured["QS1"][0] > 0.5
    assert measured["QS0"][1] < 0.05
    assert measured["QS1"][1] < 0.05
    # on Taxi the sparse tolls_amount key gives Sparser some traction,
    # but the FPGA filters still win
    assert measured["QT"][1] <= measured["QT"][0]
