"""Table VI: Pareto-optimal raw-filter configurations for QS1.

Paper shape (5 rows): the light-range filter ``v(1345 <= i <= 26282)``
alone already reaches a low FPR (0.130 at 38 LUTs in the paper) because
light values separate cleanly from all other attributes; a small FPR
(0.008) is available at less than half the cost of exact-zero (103 vs
223 LUTs) — the paper's "allow a low FPR to save resources" argument.
"""

from repro.core.design_space import DesignSpace
from repro.data import QS1

from common import dataset, pareto_table, write_result


def test_table6_reproduction(benchmark):
    space = DesignSpace(QS1, dataset("smartcity"))
    space._prepare()

    choice = next(iter(space.iter_choices()))
    benchmark(lambda: space.evaluate_choice(choice))

    table, front = pareto_table(space, epsilon=0.004)
    write_result("table6_pareto_qs1", table)

    notations = [point.expr.notation() for point in front]
    # the bare light value filter is on the front (paper row 2)
    knee = [
        point for point in front
        if point.expr.notation() == "v(1345 <= i <= 26282)"
    ]
    assert knee, notations
    assert knee[0].fpr < 0.25
    # the paper's knee economics: a low-FPR point at under half the LUTs
    # of the most selective configuration
    zero = min(front, key=lambda p: p.fpr)
    low = min((p for p in front if p.fpr <= 0.1), key=lambda p: p.luts)
    assert low.luts < 0.5 * zero.luts
    assert zero.fpr < 0.01
