"""Fig. 1: the RTL architecture of the B=2 substring matcher.

The figure shows: a byte-wide shift register, one comparator per distinct
2-gram ('te', 'em', ..., 're'), an OR-reduction feeding a run counter
with reset, and a >= len comparison producing the match signal.  This
benchmark reconstructs that exact circuit, reports its structure and
LUT/FF cost, and measures gate-level simulation speed.
"""

from repro.core.string_match import unique_substrings
from repro.eval.report import render_table
from repro.hw.gatesim import CycleSimulator
from repro.hw.timing import estimate_fmax
from repro.hw.circuits import substring_matcher_circuit

from common import write_result


def test_fig1_reproduction(benchmark):
    needle = "temperature"
    circuit = substring_matcher_circuit(needle, 2)
    stats = circuit.stats()
    grams = unique_substrings(needle, 2)

    sim = CycleSimulator(circuit)
    stream = b'{"v":"35.2","u":"far","n":"temperature"}'

    def simulate():
        sim.reset()
        return sim.run_stream(stream, extra_inputs={"record_reset": 0})

    trace = benchmark(simulate)

    rows = [
        ["search string", needle],
        ["block length B", 2],
        ["window registers (bytes)", 1],
        ["distinct 2-gram comparators", len(grams)],
        ["comparators", ", ".join(g.decode() for g in grams)],
        ["run-counter threshold (N-B+1)", len(needle) - 2 + 1],
        ["LUTs (mapped, K=6)", stats["luts"]],
        ["flip-flops", stats["ffs"]],
        ["logic depth (LUT levels)", stats["depth"]],
        ["AIG AND nodes", stats["aig_ands"]],
        ["estimated Fmax (paper runs at 200 MHz)",
         f"{estimate_fmax(circuit) / 1e6:.0f} MHz"],
    ]
    table = render_table(
        ["property", "value"], rows,
        title="Fig. 1: s2(\"temperature\") RTL architecture",
    )
    write_result("fig1_rtl_architecture", table)

    assert trace["match"][-1]
    assert len(grams) == 10
    assert stats["ffs"] >= 8 + 4  # window byte + run counter + sticky
    assert stats["luts"] < 60
    assert estimate_fmax(circuit) >= 200e6
