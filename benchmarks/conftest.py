"""Benchmark-suite fixtures."""

import os

import pytest

from common import RESULTS_DIR


@pytest.fixture(scope="session", autouse=True)
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
