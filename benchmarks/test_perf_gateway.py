"""Concurrent-clients throughput curve for the filter gateway.

The serve layer's acceptance bars (ISSUE 5):

* the gateway serves **>= 4 concurrent clients** streaming distinct
  corpora with results bit-identical to offline
  ``FilterEngine.stream`` runs;
* a second tenant streaming the *same* corpus is served warm from the
  shared AtomCache — its per-tenant hit rate is **strictly higher**
  than the first tenant's, and the shared cache absorbs the repeat
  evaluation.

The curve itself (aggregate MB/s over 1/2/4 concurrent clients) is
reported, written to ``results/perf_gateway.txt`` and — as the
machine-readable perf trajectory — ``results/BENCH_gateway.json``.
Client threads and the asyncio gateway share one Python process, so
the curve measures service overhead (framing, protocol, queues), not
multi-core scaling; on hosts with >= 4 *effective* cores a
no-collapse plateau bar is asserted (4 concurrent clients keep at
least half of the single-client aggregate throughput); on smaller
hosts the curve is reported only.
"""

import os
import threading
import time

from common import write_json_result, write_result
from repro.data import load_dataset
from repro.engine import FilterEngine
from repro.eval.report import render_table
from repro.serve import GatewayClient, GatewayThread

EXPR = "group(s:1:temperature,v:float:0.7:35.1)"
NUM_RECORDS = 1500
CLIENT_COUNTS = (1, 2, 4)
CHUNK_BYTES = 16 * 1024


def _effective_cores():
    """CPUs this process may actually run on (the affinity mask, not
    the host's core count — the usual CI cgroup shape grants fewer)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


EFFECTIVE_CORES = _effective_cores()


def _corpora(count):
    return {
        f"tenant-{seed}": load_dataset(
            "smartcity", NUM_RECORDS, seed=seed
        ).stream.tobytes()
        for seed in range(count)
    }


def _offline_bits(payload):
    from repro.cli import parse_filter_expression

    engine = FilterEngine()
    bits = []
    for batch in engine.stream(
        parse_filter_expression(EXPR), payload
    ):
        bits.extend(batch.matches.tolist())
    return bits


def _stream_tenant(port, tenant, payload, results, errors):
    try:
        with GatewayClient(
            "127.0.0.1", port, tenant=tenant,
            chunk_bytes=CHUNK_BYTES,
        ) as client:
            bits = []
            for batch in client.submit(EXPR, payload):
                bits.extend(batch.matches.tolist())
            results[tenant] = bits
    except Exception as err:  # pragma: no cover - diagnostics
        errors.append((tenant, err))


def test_gateway_concurrency_curve_and_warm_tenant():
    corpora = _corpora(max(CLIENT_COUNTS))
    expected = {
        name: _offline_bits(payload)
        for name, payload in corpora.items()
    }
    rows = []
    curve = []

    with GatewayThread(engines=2) as gw:
        for clients in CLIENT_COUNTS:
            active = dict(list(corpora.items())[:clients])
            total_bytes = sum(len(p) for p in active.values())
            results, errors = {}, []
            threads = [
                threading.Thread(
                    target=_stream_tenant,
                    args=(gw.port, name, payload, results, errors),
                )
                for name, payload in active.items()
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            elapsed = time.perf_counter() - start
            assert not errors, errors

            # acceptance: every concurrent client is bit-identical
            # to the offline engine run over its corpus
            for name in active:
                assert results[name] == expected[name], name

            rate = total_bytes / elapsed / 1e6
            rows.append([
                f"{clients}", f"{total_bytes}", f"{elapsed:.3f}",
                f"{rate:.1f}",
            ])
            curve.append({
                "clients": clients,
                "bytes": total_bytes,
                "seconds": elapsed,
                "bytes_per_second": total_bytes / elapsed,
            })

        # warm tenant: re-stream tenant-0's corpus under a new name —
        # every batch fingerprint is already cached, so this tenant
        # must show a strictly higher hit rate than the cold tenant
        results, errors = {}, []
        start = time.perf_counter()
        _stream_tenant(
            gw.port, "warm-rerun", corpora["tenant-0"],
            results, errors,
        )
        warm_seconds = time.perf_counter() - start
        assert not errors, errors
        assert results["warm-rerun"] == expected["tenant-0"]

        snapshot = gw.snapshot()

    cold = snapshot["tenants"]["tenant-0"]
    warm = snapshot["tenants"]["warm-rerun"]
    assert warm["cache_hit_rate"] > cold["cache_hit_rate"], (
        f"second tenant not served warm: {warm['cache_hit_rate']:.1%} "
        f"vs {cold['cache_hit_rate']:.1%}"
    )
    assert warm["cache_hit_rate"] > 0.9
    cache = snapshot["engine"]["cache"]
    assert cache["hits"] > 0

    table = render_table(
        ["Clients", "Bytes", "Seconds", "Aggregate MB/s"],
        rows,
        title=(
            f"Gateway throughput, concurrent clients over distinct "
            f"{NUM_RECORDS}-record corpora (chunk={CHUNK_BYTES}, "
            f"2 engines, shared AtomCache, {EFFECTIVE_CORES} "
            f"effective cores; warm re-run {warm_seconds:.3f}s at "
            f"hit rate {warm['cache_hit_rate']:.0%})"
        ),
    )
    write_result("perf_gateway", table)
    write_json_result("gateway", {
        "benchmark": "gateway-concurrency",
        "expression": EXPR,
        "records_per_corpus": NUM_RECORDS,
        "chunk_bytes": CHUNK_BYTES,
        "engines": 2,
        "effective_cores": EFFECTIVE_CORES,
        "curve": curve,
        "warm_rerun": {
            "seconds": warm_seconds,
            "cold_hit_rate": cold["cache_hit_rate"],
            "warm_hit_rate": warm["cache_hit_rate"],
        },
        "cache": cache,
    })

    # concurrency plateau: admitting 4 clients must not collapse the
    # aggregate rate — only assertable when the scheduler actually
    # grants the cores to run gateway + clients side by side
    if EFFECTIVE_CORES >= 4:
        single = curve[0]["bytes_per_second"]
        quad = curve[-1]["bytes_per_second"]
        assert quad >= single * 0.5, (
            f"4-client aggregate ({quad / 1e6:.1f} MB/s) collapsed "
            f"below half the single-client rate "
            f"({single / 1e6:.1f} MB/s) on a {EFFECTIVE_CORES}-"
            f"effective-core host"
        )
