"""AtomCache speedup on repeated design-space sweeps.

The acceptance bar for the shared cache: exploring a query that shares
at least half of its atoms with a previously explored query must run at
least 2x faster through a cached engine than through a cache-free one —
with bit-identical results (the differential suite in
``tests/test_atom_cache.py`` locks the identity; this benchmark locks
the speedup).

Protocol fairness: the process-wide LUT-cost memo (``repro.core.cost``)
is warmed for *both* scenarios before any timing, so the comparison
isolates phase-1 atom evaluation — the work the AtomCache actually
amortises — from one-time circuit synthesis.
"""

import time

from common import write_result
from repro.core.design_space import DesignSpace
from repro.data import load_dataset
from repro.data.riotbench import Query, RangeCondition
from repro.engine import FilterEngine
from repro.eval.report import render_table

NUM_RECORDS = 3000
TIMING_ROUNDS = 3

_CONDITIONS = {
    "temperature": RangeCondition("temperature", "0.7", "35.1"),
    "humidity": RangeCondition("humidity", "20.3", "69.1"),
    "light": RangeCondition("light", 0, 5153),
    "dust": RangeCondition("dust", "83.36", "3322.67"),
}

#: first sweep: temperature + humidity + light
QUERY_A = Query(
    "perfA", "smartcity", "senml",
    [_CONDITIONS["temperature"], _CONDITIONS["humidity"],
     _CONDITIONS["light"]],
    0.5,
)
#: follow-up sweep sharing 2 of 3 conditions (>= 50% of atoms)
QUERY_B = Query(
    "perfB", "smartcity", "senml",
    [_CONDITIONS["humidity"], _CONDITIONS["light"],
     _CONDITIONS["dust"]],
    0.5,
)


def _timed_explore(dataset, engine):
    space = DesignSpace(QUERY_B, dataset, engine=engine)
    start = time.perf_counter()
    points = space.explore()
    return time.perf_counter() - start, points


def test_cached_repeat_sweep_at_least_2x_faster():
    dataset = load_dataset("smartcity", NUM_RECORDS)

    # warm process-wide state (LUT-cost memo, gram sets, parsed oracle)
    # for both queries so neither scenario pays one-time synthesis
    DesignSpace(QUERY_A, dataset, engine=FilterEngine()).explore()
    DesignSpace(QUERY_B, dataset, engine=FilterEngine()).explore()

    cold_seconds = min(
        _timed_explore(dataset, FilterEngine())[0]
        for _ in range(TIMING_ROUNDS)
    )
    cold_points = _timed_explore(dataset, FilterEngine())[1]

    warm_seconds = float("inf")
    warm_points = None
    warm_stats = None
    for _ in range(TIMING_ROUNDS):
        engine = FilterEngine(cache=True)
        DesignSpace(QUERY_A, dataset, engine=engine).explore()
        elapsed, warm_points = _timed_explore(dataset, engine)
        warm_seconds = min(warm_seconds, elapsed)
        warm_stats = engine.stats()["cache"]

    speedup = cold_seconds / warm_seconds
    table = render_table(
        ["Scenario", "Explore seconds", "Speedup"],
        [
            ["cache-free", f"{cold_seconds:.3f}", "1.0x"],
            ["AtomCache, warmed by sibling query",
             f"{warm_seconds:.3f}", f"{speedup:.1f}x"],
        ],
        title=(
            f"Design-space re-sweep over {NUM_RECORDS} records "
            f"({QUERY_B.name} shares 2/3 conditions with "
            f"{QUERY_A.name}; cache hit rate "
            f"{warm_stats['hit_rate']:.0%})"
        ),
    )
    write_result("perf_atom_cache", table)

    # identical results, then the acceptance bar
    assert [
        (p.choice, p.fpr, p.luts, p.num_attributes) for p in warm_points
    ] == [
        (p.choice, p.fpr, p.luts, p.num_attributes) for p in cold_points
    ]
    assert warm_stats["hits"] > 0
    assert speedup >= 2.0, (
        f"cached re-sweep only {speedup:.2f}x faster "
        f"({warm_seconds:.3f}s vs {cold_seconds:.3f}s)"
    )
