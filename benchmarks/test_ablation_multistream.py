"""Ablation (§IV-B, last ¶): multiple streams and reconfiguration.

The paper notes the RFs are small enough that "even more RFs can be used
to process multiple data streams in parallel" and that the PL "can be
reconfigured, allowing the RFs to be replaced when a new query is to be
executed."  This benchmark quantifies both: device throughput when the 7
lanes are split between a SmartCity and a Taxi stream, and the
amortised cost of swapping queries via partial reconfiguration.
"""

from repro.core.compiler import paper_pareto_expression
from repro.data import QS0, QT, inflate
from repro.eval.report import render_table
from repro.system.multi import (
    MultiStreamSoC,
    ReconfigurableSoC,
    StreamAssignment,
)

from common import dataset, write_result


def test_ablation_multistream(benchmark):
    city_filter = paper_pareto_expression(
        QS0, [("group", "humidity", 1), ("value", "airquality_raw")]
    )
    taxi_filter = paper_pareto_expression(
        QT, [("group", "tolls_amount", 2)]
    )
    city_corpus = inflate(dataset("smartcity", 500), 4 * 1024 * 1024)
    taxi_corpus = inflate(dataset("taxi", 500), 4 * 1024 * 1024)

    soc = MultiStreamSoC(
        [
            StreamAssignment("smartcity", city_filter, lanes=4),
            StreamAssignment("taxi", taxi_filter, lanes=3),
        ]
    )
    datasets = {"smartcity": city_corpus, "taxi": taxi_corpus}

    reports = benchmark.pedantic(
        lambda: soc.run(datasets, functional=False), rounds=2,
        iterations=1,
    )

    reconfig = ReconfigurableSoC(city_filter)
    downtime = reconfig.reconfigure(taxi_filter)

    rows = [
        ["smartcity share", "4 lanes, "
         f"{reports['smartcity'].achieved_gbps:.2f} GB/s"],
        ["taxi share", "3 lanes, "
         f"{reports['taxi'].achieved_gbps:.2f} GB/s"],
        ["device aggregate",
         f"{soc.aggregate_bandwidth(reports) / 1e9:.2f} GB/s"],
        ["query-swap downtime (partial reconfiguration)",
         f"{downtime * 1e6:.0f} us"],
        ["swap overhead on a 1 s stream window",
         f"{downtime / (downtime + 1.0):.4%}"],
    ]
    table = render_table(
        ["metric", "value"], rows,
        title="Ablation: multi-stream operation + reconfiguration",
    )
    write_result("ablation_multistream", table)

    # both streams together stay close to the single-stream device rate
    assert soc.aggregate_bandwidth(reports) > 1.2e9
    # swapping queries costs well under a millisecond
    assert downtime < 1e-3
