"""Cross-validation of the strict JSON parser against the stdlib.

The stdlib ``json`` module is used ONLY as a test oracle here — the
library itself never imports it.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import load_dataset
from repro.jsonpath import loads

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(
        allow_nan=False, allow_infinity=False, min_value=-1e9,
        max_value=1e9,
    ),
    st.text(max_size=12),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


@settings(max_examples=150, deadline=None)
@given(value=json_values)
def test_parser_agrees_with_stdlib(value):
    text = json.dumps(value)
    assert loads(text) == json.loads(text)


@settings(max_examples=80, deadline=None)
@given(value=json_values)
def test_parser_agrees_on_compact_encoding(value):
    text = json.dumps(value, separators=(",", ":"))
    assert loads(text) == json.loads(text)


@pytest.mark.parametrize("name", ["smartcity", "taxi", "twitter"])
def test_datasets_agree_with_stdlib(name):
    dataset = load_dataset(name, 150)
    for record in dataset:
        assert loads(record) == json.loads(record.decode("utf-8"))


@pytest.mark.parametrize(
    "text",
    [
        '{"a": 1e3}',
        '{"a": -0.5E-2}',
        '[true, false, null]',
        '{"nested": {"deep": [[[1]]]}}',
        '"\\u00e9\\u4e2d"',
    ],
)
def test_tricky_documents(text):
    assert loads(text) == json.loads(text)
