"""The vectorised evaluation harness vs the scalar reference path.

These are the tests that justify phase-1/phase-2 evaluation: for every
kind of atom, the batched result over a dataset must equal per-record
scalar evaluation.
"""

import numpy as np
import pytest

import repro.core.composition as comp
from repro.eval.harness import (
    DatasetView,
    evaluate_atom,
    evaluate_atoms,
    evaluate_expression,
)


def scalar_eval(expr, dataset):
    return np.fromiter(
        (comp.evaluate_record(expr, record) for record in dataset),
        dtype=bool,
        count=len(dataset),
    )


ATOMS = [
    comp.s("temperature", 1),
    comp.s("temperature", 2),
    comp.full("temperature"),
    comp.dfa("dust"),
    comp.s("light", 1),
    comp.v_int(12, 49),
    comp.v("0.7", "35.1"),
    comp.v("20.3", "69.1"),
    comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1")),
    comp.group(comp.s("humidity", 1), comp.v("20.3", "69.1")),
    comp.group(comp.s("light", 2), comp.v_int(0, 5153)),
    comp.Group(
        [comp.s("humidity", 1), comp.v("20.3", "69.1")], comma_scoped=True
    ),
]


class TestAtomEquivalence:
    @pytest.mark.parametrize("atom", ATOMS, ids=lambda a: a.notation())
    def test_vectorised_equals_scalar_smartcity(self, atom,
                                                smartcity_small):
        view = DatasetView(smartcity_small)
        got = evaluate_atom(view, atom, {})
        want = scalar_eval(atom, smartcity_small)
        assert got.tolist() == want.tolist()

    @pytest.mark.parametrize(
        "atom",
        [
            comp.s("tolls_amount", 1),
            comp.s("tolls_amount", 2),
            comp.v("2.5", "18.0"),
            comp.group(comp.s("tolls_amount", 2), comp.v("2.5", "18.0")),
            comp.v_int(140, 3155),
        ],
        ids=lambda a: a.notation(),
    )
    def test_vectorised_equals_scalar_taxi(self, atom, taxi_small):
        view = DatasetView(taxi_small)
        got = evaluate_atom(view, atom, {})
        want = scalar_eval(atom, taxi_small)
        assert got.tolist() == want.tolist()

    def test_combinators(self, smartcity_small):
        expr = comp.And(
            [
                comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1")),
                comp.Or([comp.v_int(12, 49), comp.s("dust", 2)]),
            ]
        )
        view = DatasetView(smartcity_small)
        got = evaluate_expression(view, expr)
        want = scalar_eval(expr, smartcity_small)
        assert got.tolist() == want.tolist()

    def test_regex_atom(self, smartcity_small):
        expr = comp.RegexPredicate(r'"bt":[0-9]+')
        view = DatasetView(smartcity_small)
        got = evaluate_atom(view, expr, {})
        assert got.all()


class TestCaching:
    def test_shared_cache_reuses_results(self, smartcity_small):
        view = DatasetView(smartcity_small)
        cache = {}
        first = evaluate_atom(view, comp.v_int(12, 49), cache)
        second = evaluate_atom(view, comp.v_int(12, 49), cache)
        assert first is second

    def test_group_children_share_primitive_caches(self, smartcity_small):
        view = DatasetView(smartcity_small)
        cache = {}
        evaluate_atoms(
            view,
            [
                comp.group(comp.s("dust", 1), comp.v("83.36", "3322.67")),
                comp.s("dust", 1),
            ],
        )
        # no assertion failure = both paths coexist; verify token matrix
        # was built once
        assert view.tokens is view.tokens

    def test_token_matrix_shape(self, smartcity_small):
        view = DatasetView(smartcity_small)
        matrix, lengths, record_index, ends = view.tokens
        assert matrix.shape[0] == lengths.shape[0]
        assert record_index.shape == lengths.shape
        assert (lengths >= 1).all()
        assert (record_index >= 0).all()
        assert (record_index < len(smartcity_small)).all()


class TestGroupBoundaries:
    def test_group_never_leaks_across_records(self):
        """A string fire in record i and value in i+1 must not combine."""
        from repro.data import Dataset

        records = [
            b'{"n":"temperature"}',   # string fires, no number
            b'{"v":"30.0"}',          # number fires, no string
        ]
        dataset = Dataset("t", records)
        atom = comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))
        view = DatasetView(dataset)
        got = evaluate_atom(view, atom, {})
        assert got.tolist() == [False, False]

    def test_group_matches_inside_one_record(self):
        from repro.data import Dataset

        records = [b'{"n":"temperature","v":"30.0"}']
        dataset = Dataset("t", records)
        atom = comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))
        view = DatasetView(dataset)
        assert evaluate_atom(view, atom, {}).tolist() == [True]
