"""Tests for multi-stream operation and reconfiguration (§IV-B)."""

import pytest

import repro.core.composition as comp
from repro.data import load_dataset
from repro.errors import ReproError
from repro.system.multi import (
    MultiStreamSoC,
    ReconfigurableSoC,
    StreamAssignment,
    reconfiguration_seconds,
)


def city_filter():
    return comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))


def taxi_filter():
    return comp.group(comp.s("tolls_amount", 2), comp.v("2.5", "18.0"))


class TestMultiStream:
    def test_two_streams_run_concurrently(self):
        soc = MultiStreamSoC(
            [
                StreamAssignment("city", city_filter(), lanes=4),
                StreamAssignment("taxi", taxi_filter(), lanes=3),
            ]
        )
        datasets = {
            "city": load_dataset("smartcity", 300),
            "taxi": load_dataset("taxi", 300),
        }
        reports = soc.run(datasets)
        assert set(reports) == {"city", "taxi"}
        # per-stream theoretical bandwidth scales with the lane share
        assert reports["city"].theoretical_bandwidth == 4 * 200e6
        assert reports["taxi"].theoretical_bandwidth == 3 * 200e6

    def test_aggregate_bandwidth(self):
        soc = MultiStreamSoC(
            [
                StreamAssignment("a", city_filter(), lanes=4),
                StreamAssignment("b", city_filter(), lanes=3),
            ]
        )
        data = load_dataset("smartcity", 400)
        reports = soc.run({"a": data, "b": data}, functional=False)
        total = soc.aggregate_bandwidth(reports)
        assert total > 1.1e9  # both shares together near device rate
        assert soc.device_seconds(reports) == max(
            r.seconds for r in reports.values()
        )

    def test_functional_results_per_stream(self):
        soc = MultiStreamSoC(
            [StreamAssignment("city", city_filter(), lanes=7)]
        )
        data = load_dataset("smartcity", 200)
        reports = soc.run({"city": data})
        from repro.data import QS0

        truth = QS0.truth_array(data)
        assert not (truth & ~reports["city"].matches).any()

    def test_missing_dataset_rejected(self):
        soc = MultiStreamSoC(
            [StreamAssignment("city", city_filter(), lanes=2)]
        )
        with pytest.raises(ReproError):
            soc.run({})

    def test_zero_lane_stream_rejected(self):
        with pytest.raises(ReproError):
            StreamAssignment("x", city_filter(), lanes=0)

    def test_empty_assignment_rejected(self):
        with pytest.raises(ReproError):
            MultiStreamSoC([])


class TestHostCoprocessing:
    def test_functional_runs_report_host_timing(self):
        soc = MultiStreamSoC(
            [
                StreamAssignment("city", city_filter(), lanes=4),
                StreamAssignment("taxi", taxi_filter(), lanes=3),
            ]
        )
        datasets = {
            "city": load_dataset("smartcity", 300),
            "taxi": load_dataset("taxi", 300),
        }
        reports = soc.run(datasets)
        for report in reports.values():
            assert report.host_seconds is not None
            assert report.host_seconds > 0
            assert report.host_bandwidth > 0
        summary = soc.host_coprocessing(reports)
        assert summary["host_seconds"] == pytest.approx(
            sum(r.host_seconds for r in reports.values())
        )
        assert summary["device_seconds"] == soc.device_seconds(reports)
        assert summary["device_speedup"] > 0
        # the default engine carries an AtomCache, surfaced in stats
        assert summary["engine"]["cache"] is not None

    def test_non_functional_runs_skip_host_timing(self):
        soc = MultiStreamSoC(
            [StreamAssignment("city", city_filter(), lanes=7)]
        )
        reports = soc.run(
            {"city": load_dataset("smartcity", 200)}, functional=False
        )
        report = reports["city"]
        assert report.host_seconds is None
        assert report.host_bandwidth is None
        assert report.coprocessing_speedup is None
        assert soc.host_seconds(reports) == 0.0

    def test_repeated_run_hits_shared_cache(self):
        """Re-running the same streams reuses the engine's atom masks."""
        soc = MultiStreamSoC(
            [StreamAssignment("city", city_filter(), lanes=7)]
        )
        datasets = {"city": load_dataset("smartcity", 250)}
        soc.run(datasets)
        cache = soc.engine.atom_cache
        misses_cold = cache.misses
        second = soc.run(datasets)
        assert cache.misses == misses_cold
        assert cache.hits > 0
        assert second["city"].coprocessing_speedup is not None


class TestReconfiguration:
    def test_latency_scales_with_filter_size(self):
        small = reconfiguration_seconds(comp.s("dust", 1))
        large = reconfiguration_seconds(
            comp.And([city_filter(), taxi_filter()])
        )
        assert 0 < small < large
        # sub-millisecond for these tiny regions, as PR on 7-series is
        assert large < 0.01

    def test_reconfigure_swaps_filter(self):
        soc = ReconfigurableSoC(city_filter())
        data = load_dataset("taxi", 200)
        downtime = soc.reconfigure(taxi_filter())
        assert downtime > 0
        assert soc.reconfigurations == 1
        report = soc.run(data)
        from repro.data import QT

        truth = QT.truth_array(data)
        assert not (truth & ~report.matches).any()

    def test_amortized_bandwidth_below_raw(self):
        soc = ReconfigurableSoC(city_filter())
        data = load_dataset("smartcity", 300)
        report = soc.run(data, functional=False)
        raw = report.achieved_bandwidth
        soc.reconfigure(city_filter())
        amortized = soc.amortized_bandwidth(report)
        assert amortized < raw
        assert amortized > 0


class TestMultiStreamIngest:
    def test_streams_accept_chunk_sources(self):
        from repro.engine import IterableSource

        datasets = {
            "a": load_dataset("smartcity", 40),
            "b": load_dataset("taxi", 40),
        }
        soc = MultiStreamSoC([
            StreamAssignment("a", comp.s("temperature", 1), 3),
            StreamAssignment("b", comp.s("taxi", 2), 4),
        ])
        direct = soc.run(datasets)
        as_sources = soc.run({
            "a": IterableSource([datasets["a"].stream.tobytes()]),
            "b": datasets["b"].stream.tobytes(),
        })
        for name in ("a", "b"):
            assert (
                as_sources[name].matches.tolist()
                == direct[name].matches.tolist()
            )
