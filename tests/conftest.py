"""Shared fixtures: small datasets and common raw-filter expressions."""

from __future__ import annotations

import pytest

from repro.data import load_dataset


@pytest.fixture(scope="session")
def smartcity_small():
    return load_dataset("smartcity", 400)


@pytest.fixture(scope="session")
def taxi_small():
    return load_dataset("taxi", 400)


@pytest.fixture(scope="session")
def twitter_small():
    return load_dataset("twitter", 400)


@pytest.fixture(scope="session")
def sample_records(smartcity_small):
    return smartcity_small.records[:32]
