"""Resident worker pool: spawn once, stay warm, prove it.

The acceptance bar for the persistent
:class:`~repro.engine.transport.ResidentWorkerPool` (the default
transport for ``num_workers > 1``):

* **differential** — resident parallel streaming is bit-identical to
  the serial path across every backend, seam-fuzzed chunk sizes, fork
  and spawn start methods, and repeated streams over the same pool;
* **residency** — a second stream reuses the same worker processes,
  their warm AtomCaches serve hits, filter swaps reconfigure without
  respawning, and cache sync ships incremental deltas (not full
  re-snapshots);
* **fault injection** — a SIGKILLed worker is respawned with its lost
  batches replayed (still bit-identical), an exhausted respawn budget
  raises a typed :class:`~repro.errors.WorkerCrashError` after the
  already-drained prefix, and teardown leaks neither child processes
  nor shared-memory slots;
* **worker loop** — the worker-side command loop runs in-process
  (visible to coverage) against plain queues and a real slot.
"""

import contextlib
import io
import multiprocessing
import os
import pickle
import queue
import random
import signal
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

import repro.core.composition as comp
from repro.data import load_dataset
from repro.engine import (
    DEFAULT_TRANSPORT,
    AtomCache,
    EngineConfig,
    FilterEngine,
    ResidentWorkerPool,
    resolve_transport,
)
from repro.engine.transport import (
    _read_result,
    _resident_worker_main,
    _write_batch,
    batch_slot_bytes,
)
from repro.errors import ReproError, WorkerCrashError

BACKENDS = ["compiled", "vectorized", "scalar"]


def simple_filter():
    return comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))


def humidity_filter():
    return comp.group(comp.s("humidity", 1), comp.v("20.3", "69.1"))


@pytest.fixture(scope="module")
def corpus():
    return load_dataset("smartcity", 200, seed=29)


@pytest.fixture(scope="module")
def payload(corpus):
    return corpus.stream.tobytes()


def stream_bits(engine, expr, payload, backend=None):
    matches = []
    for batch in engine.stream_file(
        expr, io.BytesIO(payload), backend=backend
    ):
        matches.extend(batch.matches.tolist())
    return matches


def serial_bits(expr, payload, backend="vectorized"):
    engine = FilterEngine(backend=backend, cache=True)
    return stream_bits(engine, expr, payload)


def resident_stragglers(timeout=5.0):
    """Resident child processes still alive after ``timeout``."""
    deadline = time.monotonic() + timeout
    while True:
        stragglers = [
            child for child in multiprocessing.active_children()
            if child.name.startswith("repro-resident")
        ]
        if not stragglers or time.monotonic() > deadline:
            return stragglers
        time.sleep(0.05)


# ---------------------------------------------------------------------------
# resolution + defaults
# ---------------------------------------------------------------------------

class TestResolutionAndDefaults:
    def test_resident_is_the_parallel_default(self):
        assert DEFAULT_TRANSPORT == "resident"
        assert resolve_transport("resident") is ResidentWorkerPool
        assert (
            resolve_transport(ResidentWorkerPool) is ResidentWorkerPool
        )
        assert EngineConfig().transport_name() == "resident"
        assert FilterEngine().config.transport_name() == "resident"

    def test_pool_rejects_nonpositive_workers(self):
        with pytest.raises(ReproError):
            ResidentWorkerPool(0)


# ---------------------------------------------------------------------------
# differential: resident parallel vs serial, bit for bit
# ---------------------------------------------------------------------------

class TestDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_identical_and_warm_across_streams(
        self, backend, payload
    ):
        want = serial_bits(simple_filter(), payload, backend)
        engine = FilterEngine(
            backend=backend, cache=True, num_workers=2,
            chunk_bytes=2048,
        )
        try:
            first = stream_bits(engine, simple_filter(), payload)
            second = stream_bits(engine, simple_filter(), payload)
            stats = engine.stats()["workers"]
        finally:
            engine.close()
        assert first == want
        assert second == want
        assert stats["resident"] is True
        assert stats["sessions"] == 2
        assert stats["respawns"] == 0

    def test_seam_fuzzed_chunk_sizes(self, payload):
        """Random chunk sizes move the record seams around; the
        resident path must stay bit-identical through every framing."""
        want = serial_bits(simple_filter(), payload)
        rng = random.Random(0xB07)
        sizes = [rng.randrange(64, 4096) for _ in range(4)] + [1 << 16]
        for chunk_bytes in sizes:
            engine = FilterEngine(
                cache=True, num_workers=2, chunk_bytes=chunk_bytes
            )
            try:
                got = stream_bits(engine, simple_filter(), payload)
            finally:
                engine.close()
            assert got == want, f"diverged at chunk_bytes={chunk_bytes}"

    def test_spawn_context_differential(self, payload):
        want = serial_bits(simple_filter(), payload)
        engine = FilterEngine(
            cache=True, num_workers=2, chunk_bytes=2048,
            mp_context="spawn",
        )
        try:
            got = stream_bits(engine, simple_filter(), payload)
            stats = engine.stats()["workers"]
        finally:
            engine.close()
        assert got == want
        assert stats["mp_context"] == "spawn"
        assert stats["sessions"] == 1

    def test_filter_swap_reconfigures_without_respawn(self, payload):
        """SWAP semantics: new filter, same warm processes."""
        engine = FilterEngine(
            backend="compiled", cache=True, num_workers=2,
            chunk_bytes=2048,
        )
        first, second = simple_filter(), humidity_filter()
        try:
            assert stream_bits(engine, first, payload) == serial_bits(
                first, payload, "compiled"
            )
            pids = sorted(engine._resident_pool.worker_pids())
            assert stream_bits(engine, second, payload) == serial_bits(
                second, payload, "compiled"
            )
            assert stream_bits(engine, first, payload) == serial_bits(
                first, payload, "compiled"
            )
            stats = engine.stats()["workers"]
            assert sorted(engine._resident_pool.worker_pids()) == pids
        finally:
            engine.close()
        # one configure per distinct (filter, backend) transition —
        # never one per chunk, never a respawn
        assert stats["configures"] == 3
        assert stats["respawns"] == 0
        assert stats["sessions"] == 3

    def test_warm_reuse_serves_cache_hits_and_ships_deltas_once(
        self, payload
    ):
        """Stream 2 re-reads the same bytes: the workers' resident
        caches serve hits, and the parent ships each merged-back entry
        to the pool exactly once (incremental sync, not re-snapshot)."""
        engine = FilterEngine(
            cache=True, num_workers=2, chunk_bytes=2048
        )
        try:
            stream_bits(engine, simple_filter(), payload)
            after_first = engine.stats()["workers"]
            stream_bits(engine, simple_filter(), payload)
            after_second = engine.stats()["workers"]
            stream_bits(engine, simple_filter(), payload)
            after_third = engine.stats()["workers"]
        finally:
            engine.close()
        # the workers computed entries in stream 1, the parent merged
        # them back, and session 2's sync shipped them pool-wide
        assert after_first["merged_entries"] > 0
        assert after_second["shipped_entries"] > 0
        assert after_second["cache_hits"] > after_first["cache_hits"]
        # stream 3 discovers nothing new: the delta is empty, so the
        # shipped counter stays flat — this is the incremental contract
        assert (
            after_third["shipped_entries"]
            == after_second["shipped_entries"]
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pooled_match_bits_differential(self, backend, corpus):
        want = FilterEngine(backend=backend, cache=True).match_bits(
            simple_filter(), corpus
        )
        engine = FilterEngine(
            backend=backend, cache=True, num_workers=2
        )
        try:
            got = engine.match_bits(simple_filter(), corpus)
            stats = engine.stats()["workers"]
        finally:
            engine.close()
        assert got.tolist() == want.tolist()
        assert stats["resident"] is True
        assert stats["sessions"] >= 1

    def test_match_bits_unpicklable_predicate_falls_back(self, corpus):
        class LocalPredicate:
            """Defined in a function scope: cannot be pickled."""

            def matches(self, record):
                return b"temperature" in record

        engine = FilterEngine(backend="scalar", num_workers=2)
        records = corpus.records[:8]
        try:
            bits = engine.match_bits(LocalPredicate(), records)
        finally:
            engine.close()
        assert bits.tolist() == [
            b"temperature" in record for record in records
        ]

    def test_match_bits_mid_stream_falls_back_serially(
        self, payload, corpus
    ):
        """The pool serves one stream at a time; a concurrent
        match_bits call silently takes the serial path instead."""
        want = FilterEngine(cache=True).match_bits(
            simple_filter(), corpus
        )
        engine = FilterEngine(
            cache=True, num_workers=2, chunk_bytes=2048
        )
        try:
            stream = engine.stream_file(
                simple_filter(), io.BytesIO(payload)
            )
            next(stream)
            assert engine._resident_pool.active
            got = engine.match_bits(simple_filter(), corpus)
            stream.close()
        finally:
            engine.close()
        assert got.tolist() == want.tolist()


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------

class TestLifecycle:
    def test_engine_warm_up_drain_and_context_manager(self, payload):
        want = serial_bits(simple_filter(), payload)
        with FilterEngine(
            cache=True, num_workers=2, chunk_bytes=2048
        ) as engine:
            engine.warm_up()
            pool = engine._resident_pool
            assert pool is not None and not pool.closed
            pids = sorted(pool.worker_pids())
            assert stream_bits(engine, simple_filter(), payload) == want
            assert sorted(pool.worker_pids()) == pids
            engine.drain()
            assert engine.stats()["workers"]["sessions"] == 1
        assert pool.closed
        assert engine._resident_pool is None

    def test_pool_warm_up_ships_the_current_cache(self, corpus):
        cache = AtomCache()
        FilterEngine(backend="vectorized", cache=cache).match_bits(
            simple_filter(), corpus
        )
        entries = len(cache.snapshot())
        assert entries > 0
        with ResidentWorkerPool(1, atom_cache=cache) as pool:
            pool.warm_up()
            assert pool.shipped_entries == entries
            # warm again: nothing new to ship
            pool.warm_up()
            assert pool.shipped_entries == entries
            assert "open" in repr(pool)
        assert pool.closed
        assert "closed" in repr(pool)

    def test_single_active_session_enforced(self, payload):
        engine = FilterEngine(
            cache=True, num_workers=2, chunk_bytes=2048
        )
        try:
            stream = engine.stream_file(
                simple_filter(), io.BytesIO(payload)
            )
            next(stream)
            pool = engine._resident_pool
            with pytest.raises(ReproError, match="already active"):
                pool.session(
                    pickle.dumps(simple_filter()), "vectorized"
                )
            stream.close()
            # the abandoned session released the pool
            assert stream_bits(
                engine, simple_filter(), payload
            ) == serial_bits(simple_filter(), payload)
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# fault injection
# ---------------------------------------------------------------------------

class TestFaultInjection:
    def test_sigkill_mid_stream_respawns_and_stays_bit_identical(
        self, payload
    ):
        want = serial_bits(simple_filter(), payload)
        engine = FilterEngine(
            cache=True, num_workers=2, chunk_bytes=512
        )
        matches, killed = [], False
        try:
            for batch in engine.stream_file(
                simple_filter(), io.BytesIO(payload)
            ):
                matches.extend(batch.matches.tolist())
                if not killed:
                    os.kill(
                        engine._resident_pool.worker_pids()[0],
                        signal.SIGKILL,
                    )
                    killed = True
            stats = engine.stats()["workers"]
            pool = engine._resident_pool
            assert len(pool.worker_pids()) == 2
        finally:
            engine.close()
        assert matches == want
        assert stats["respawns"] >= 1

    def test_respawn_budget_exhausted_raises_typed_error(self, payload):
        want = serial_bits(simple_filter(), payload)
        engine = FilterEngine(
            cache=True, num_workers=2, chunk_bytes=512
        )
        pool = engine._ensure_resident_pool()
        pool.max_respawns = 0
        matches = []
        try:
            with pytest.raises(WorkerCrashError):
                for batch in engine.stream_file(
                    simple_filter(), io.BytesIO(payload)
                ):
                    matches.extend(batch.matches.tolist())
                    pids = pool.worker_pids()
                    if pids:
                        os.kill(pids[0], signal.SIGKILL)
            assert pool.broken is not None
            # strictly in-order drain: everything yielded before the
            # crash is a clean prefix of the serial truth
            assert matches == want[: len(matches)]
            # a broken pool refuses new streams with the same typed
            # error ...
            with pytest.raises(WorkerCrashError):
                stream_bits(engine, simple_filter(), payload)
            # ... but match_bits degrades gracefully to serial
            oracle = FilterEngine(cache=True)
            records = [
                b'{"e":[{"v":"30.0","n":"temperature"}]}',
                b'{"e":[{"v":"99.0","n":"temperature"}]}',
            ]
            assert engine.match_bits(
                simple_filter(), records
            ).tolist() == oracle.match_bits(
                simple_filter(), records
            ).tolist()
        finally:
            engine.close()
        assert resident_stragglers() == []

    def test_abandoned_stream_then_close_leaks_nothing(self, payload):
        want = serial_bits(simple_filter(), payload)
        engine = FilterEngine(
            cache=True, num_workers=2, chunk_bytes=1024
        )
        stream = engine.stream_file(
            simple_filter(), io.BytesIO(payload)
        )
        next(stream)
        stream.close()  # abandon mid-stream
        pool = engine._resident_pool
        assert not pool.active
        # the pool shrugged it off and serves the next stream fully
        assert stream_bits(engine, simple_filter(), payload) == want
        slot_names = pool.slot_names()
        assert slot_names
        engine.close()
        engine.close()  # idempotent
        pool.close()    # idempotent at the pool layer too
        assert pool.closed
        assert pool.stats()["resident"] is True  # stats outlive close
        assert resident_stragglers() == []
        for name in slot_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


# ---------------------------------------------------------------------------
# the worker command loop, in-process (visible to coverage)
# ---------------------------------------------------------------------------

class TestWorkerLoopInProcess:
    def run_worker(self, commands):
        task_queue, result_queue = queue.Queue(), queue.Queue()
        for command in commands:
            task_queue.put(command)
        task_queue.put(("stop",))
        _resident_worker_main(0, task_queue, result_queue)
        replies = []
        while True:
            try:
                replies.append(result_queue.get_nowait())
            except queue.Empty:
                return replies

    def test_configure_batch_and_sync_roundtrip(self, corpus):
        records = corpus.records[:40]
        oracle = FilterEngine(backend="scalar").match_bits(
            simple_filter(), records
        )
        replies = self.run_worker([
            ("configure", pickle.dumps(simple_filter()), "vectorized"),
            ("batch-pickled", 0, records),
            ("sync", 1),
        ])
        worker_id, seq, kind, value = replies[0]
        assert (worker_id, seq, kind) == (0, 0, "pickled")
        packed, count, stats5, delta = value
        assert count == len(records)
        bits = np.unpackbits(packed, count=count).astype(bool)
        assert bits.tolist() == oracle.tolist()
        assert isinstance(delta, list)
        _, sync_seq, sync_kind, sync_value = replies[1]
        assert (sync_seq, sync_kind) == (1, "sync")
        cumulative, _sync_delta = sync_value
        pid, chunks, seen, _hits, _misses = cumulative
        assert pid == os.getpid()
        assert chunks == 1 and seen == len(records)

    def test_delta_preload_serves_hits_without_echo(self, corpus):
        """Entries shipped by the parent serve worker-side hits and are
        *not* echoed back as worker deltas (record_deltas=False)."""
        records = corpus.records[:40]
        cache = AtomCache()
        FilterEngine(backend="vectorized", cache=cache).match_bits(
            simple_filter(), records
        )
        snapshot = cache.snapshot()
        shipped = {(entry[0], entry[1]) for entry in snapshot}
        replies = self.run_worker([
            ("configure", pickle.dumps(simple_filter()), "vectorized"),
            ("delta", snapshot),
            ("batch-pickled", 0, records),
            ("sync", 1),
        ])
        _, _, kind, value = replies[0]
        assert kind == "pickled"
        _packed, _count, stats5, batch_delta = value
        _pid, _chunks, _seen, hits, _misses = stats5
        assert hits > 0
        _, _, _, (cumulative, sync_delta) = replies[1]
        echoed = [
            (entry[0], entry[1])
            for entry in list(batch_delta) + list(sync_delta)
        ]
        assert all(key not in shipped for key in echoed)

    def test_evaluation_error_is_reported_not_fatal(self, corpus):
        """A failing batch answers an ``error`` result; the worker
        survives and serves the next command."""
        records = corpus.records[:4]
        replies = self.run_worker([
            ("batch-pickled", 0, records),  # no backend configured yet
            ("configure", pickle.dumps(simple_filter()), "vectorized"),
            ("batch-pickled", 1, records),
        ])
        assert replies[0][1:3] == (0, "error")
        assert replies[1][2] == "pickled"

    def test_unknown_command_reports_error(self):
        replies = self.run_worker([("carrier-pigeon", 7)])
        _, seq, kind, message = replies[0]
        assert (seq, kind) == (7, "error")
        assert "unknown resident-pool command" in message

    def test_slot_batch_roundtrip_through_real_shared_memory(
        self, corpus
    ):
        records = corpus.records[:30]
        oracle = FilterEngine(backend="scalar").match_bits(
            simple_filter(), records
        )
        shm = shared_memory.SharedMemory(
            create=True,
            size=batch_slot_bytes(records)
            + ResidentWorkerPool.SLOT_SLACK_BYTES,
        )
        try:
            _write_batch(shm.buf, records)
            replies = self.run_worker([
                (
                    "configure",
                    pickle.dumps(simple_filter()),
                    "vectorized",
                ),
                ("batch", 0, shm.name),
            ])
            assert replies[0][:3] == (0, 0, "ring")
            packed, count, _stats5, _delta = _read_result(shm.buf)
            assert count == len(records)
            bits = np.unpackbits(packed, count=count).astype(bool)
            assert bits.tolist() == oracle.tolist()
        finally:
            shm.close()
            with contextlib.suppress(FileNotFoundError):
                shm.unlink()
