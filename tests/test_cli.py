"""Tests for the command-line interface."""

import pytest

import repro.core.composition as comp
from repro.cli import build_arg_parser, main, parse_filter_expression
from repro.errors import QueryError


class TestExpressionSyntax:
    def test_string_primitive(self):
        expr = parse_filter_expression("s:1:temperature")
        assert expr == comp.s("temperature", 1)

    def test_full_and_dfa_blocks(self):
        assert parse_filter_expression("s:N:user") == comp.full("user")
        assert parse_filter_expression("s:dfa:user") == comp.dfa("user")

    def test_value_primitive_float(self):
        expr = parse_filter_expression("v:float:0.7:35.1")
        assert expr == comp.v("0.7", "35.1")

    def test_value_primitive_int(self):
        expr = parse_filter_expression("v:int:12:49")
        assert expr == comp.v_int(12, 49)

    def test_open_bound(self):
        expr = parse_filter_expression("v:int:35:-")
        assert expr.notation() == "v(35 <= i)"

    def test_regex_primitive(self):
        expr = parse_filter_expression("re:ab+c")
        assert isinstance(expr, comp.RegexPredicate)

    def test_regex_with_colons(self):
        expr = parse_filter_expression("re:[0-2][0-9]:[0-5][0-9]")
        assert expr.pattern == "[0-2][0-9]:[0-5][0-9]"

    def test_and_composition(self):
        expr = parse_filter_expression(
            "and(s:1:temperature,v:float:0.7:35.1)"
        )
        assert isinstance(expr, comp.And)
        assert len(expr.children) == 2

    def test_group_composition(self):
        expr = parse_filter_expression(
            "group(s:1:temperature,v:float:0.7:35.1)"
        )
        assert isinstance(expr, comp.Group)

    def test_kvgroup(self):
        expr = parse_filter_expression("kvgroup(s:1:n,v:int:1:2)")
        assert expr.comma_scoped

    def test_nested_composition(self):
        expr = parse_filter_expression(
            "or(group(s:1:a,v:int:1:2),and(s:2:bc,v:float:0.5:1.5))"
        )
        assert isinstance(expr, comp.Or)
        assert expr.notation().count("{") == 1

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "and()",
            "s:1",
            "v:int:1",
            "x:1:abc",
            "and(s:1:a",
            "s:1:a)",
            "group(and(s:1:a,s:1:b))",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(QueryError):
            parse_filter_expression(text)


class TestCommands:
    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "data.ndjson"
        code = main([
            "generate", "smartcity", "--records", "20",
            "--output", str(out),
        ])
        assert code == 0
        lines = out.read_bytes().strip().split(b"\n")
        assert len(lines) == 20
        from repro.jsonpath import loads

        for line in lines:
            loads(line)

    def test_generate_seed_reproducible(self, tmp_path):
        paths = []
        for name in ("a", "b"):
            out = tmp_path / name
            main(["generate", "taxi", "--records", "10",
                  "--seed", "5", "--output", str(out)])
            paths.append(out.read_bytes())
        assert paths[0] == paths[1]

    def test_synth_command(self, capsys):
        code = main(["synth", "group(s:1:temperature,v:float:0.7:35.1)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LUTs" in out
        assert '{ s1("temperature") & v(0.7 <= f <= 35.1) }' in out

    def test_synth_reports_error(self, capsys):
        code = main(["synth", "bogus:stuff"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_filter_command(self, tmp_path, capsys):
        source = tmp_path / "in.ndjson"
        source.write_bytes(
            b'{"n":"temperature","v":"30.0"}\n'
            b'{"n":"temperature","v":"99.0"}\n'
            b'{"n":"humidity","v":"30.0"}\n'
        )
        code = main([
            "filter",
            "group(s:1:temperature,v:float:0.7:35.1)",
            "--input", str(source),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == '{"n":"temperature","v":"30.0"}'
        assert "accepted 1/3" in captured.err

    def test_explore_fast(self, capsys):
        code = main([
            "explore", "QT", "--records", "300", "--fast",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto front for QT" in out
        assert "FPR" in out

    def test_bench_reports_cache_stats(self, capsys):
        code = main([
            "bench", "s:1:temperature",
            "--records", "60", "--backends", "vectorized",
            "--repeat", "2",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "cache=on" in captured.out
        assert "(pass 1)" in captured.out and "(pass 2)" in captured.out
        assert "atom cache:" in captured.err
        assert "hit rate" in captured.err

    def test_bench_no_cache(self, capsys):
        code = main([
            "bench", "s:1:temperature",
            "--records", "60", "--backends", "vectorized", "--no-cache",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "cache=off" in captured.out
        assert "atom cache:" not in captured.err

    def test_parser_structure(self):
        parser = build_arg_parser()
        args = parser.parse_args(["generate", "twitter"])
        assert args.command == "generate"
        assert args.records == 1000
        bench = parser.parse_args(["bench", "s:1:a"])
        assert bench.cache is True and bench.repeat == 1
