"""Tests for the command-line interface."""

import json

import pytest

import repro.core.composition as comp
from repro.cli import build_arg_parser, main, parse_filter_expression
from repro.errors import QueryError


class TestExpressionSyntax:
    def test_string_primitive(self):
        expr = parse_filter_expression("s:1:temperature")
        assert expr == comp.s("temperature", 1)

    def test_full_and_dfa_blocks(self):
        assert parse_filter_expression("s:N:user") == comp.full("user")
        assert parse_filter_expression("s:dfa:user") == comp.dfa("user")

    def test_value_primitive_float(self):
        expr = parse_filter_expression("v:float:0.7:35.1")
        assert expr == comp.v("0.7", "35.1")

    def test_value_primitive_int(self):
        expr = parse_filter_expression("v:int:12:49")
        assert expr == comp.v_int(12, 49)

    def test_open_bound(self):
        expr = parse_filter_expression("v:int:35:-")
        assert expr.notation() == "v(35 <= i)"

    def test_regex_primitive(self):
        expr = parse_filter_expression("re:ab+c")
        assert isinstance(expr, comp.RegexPredicate)

    def test_regex_with_colons(self):
        expr = parse_filter_expression("re:[0-2][0-9]:[0-5][0-9]")
        assert expr.pattern == "[0-2][0-9]:[0-5][0-9]"

    def test_and_composition(self):
        expr = parse_filter_expression(
            "and(s:1:temperature,v:float:0.7:35.1)"
        )
        assert isinstance(expr, comp.And)
        assert len(expr.children) == 2

    def test_group_composition(self):
        expr = parse_filter_expression(
            "group(s:1:temperature,v:float:0.7:35.1)"
        )
        assert isinstance(expr, comp.Group)

    def test_kvgroup(self):
        expr = parse_filter_expression("kvgroup(s:1:n,v:int:1:2)")
        assert expr.comma_scoped

    def test_nested_composition(self):
        expr = parse_filter_expression(
            "or(group(s:1:a,v:int:1:2),and(s:2:bc,v:float:0.5:1.5))"
        )
        assert isinstance(expr, comp.Or)
        assert expr.notation().count("{") == 1

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "and()",
            "s:1",
            "v:int:1",
            "x:1:abc",
            "and(s:1:a",
            "s:1:a)",
            "group(and(s:1:a,s:1:b))",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(QueryError):
            parse_filter_expression(text)


class TestCommands:
    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "data.ndjson"
        code = main([
            "generate", "smartcity", "--records", "20",
            "--output", str(out),
        ])
        assert code == 0
        lines = out.read_bytes().strip().split(b"\n")
        assert len(lines) == 20
        from repro.jsonpath import loads

        for line in lines:
            loads(line)

    def test_generate_seed_reproducible(self, tmp_path):
        paths = []
        for name in ("a", "b"):
            out = tmp_path / name
            main(["generate", "taxi", "--records", "10",
                  "--seed", "5", "--output", str(out)])
            paths.append(out.read_bytes())
        assert paths[0] == paths[1]

    def test_synth_command(self, capsys):
        code = main(["synth", "group(s:1:temperature,v:float:0.7:35.1)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LUTs" in out
        assert '{ s1("temperature") & v(0.7 <= f <= 35.1) }' in out

    def test_synth_reports_error(self, capsys):
        code = main(["synth", "bogus:stuff"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_filter_command(self, tmp_path, capsys):
        source = tmp_path / "in.ndjson"
        source.write_bytes(
            b'{"n":"temperature","v":"30.0"}\n'
            b'{"n":"temperature","v":"99.0"}\n'
            b'{"n":"humidity","v":"30.0"}\n'
        )
        code = main([
            "filter",
            "group(s:1:temperature,v:float:0.7:35.1)",
            "--input", str(source),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == '{"n":"temperature","v":"30.0"}'
        assert "accepted 1/3" in captured.err

    def test_explore_fast(self, capsys):
        code = main([
            "explore", "QT", "--records", "300", "--fast",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto front for QT" in out
        assert "FPR" in out

    def test_bench_reports_cache_stats(self, capsys):
        code = main([
            "bench", "s:1:temperature",
            "--records", "60", "--backends", "vectorized",
            "--repeat", "2",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "cache=on" in captured.out
        assert "(pass 1)" in captured.out and "(pass 2)" in captured.out
        assert "atom cache:" in captured.err
        assert "hit rate" in captured.err

    def test_bench_no_cache(self, capsys):
        code = main([
            "bench", "s:1:temperature",
            "--records", "60", "--backends", "vectorized", "--no-cache",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "cache=off" in captured.out
        assert "atom cache:" not in captured.err

    def test_parser_structure(self):
        parser = build_arg_parser()
        args = parser.parse_args(["generate", "twitter"])
        assert args.command == "generate"
        assert args.records == 1000
        bench = parser.parse_args(["bench", "s:1:a"])
        assert bench.cache is True and bench.repeat == 1


class TestIngestAndTransportOptions:
    PAYLOAD = (
        b'{"n":"temperature","v":"30.0"}\n'
        b'{"n":"temperature","v":"99.0"}\n'
        b'{"n":"humidity","v":"30.0"}\n'
    )
    EXPRESSION = "group(s:1:temperature,v:float:0.7:35.1)"

    def test_filter_with_workers_and_shared_memory(self, tmp_path,
                                                   capsys):
        source = tmp_path / "in.ndjson"
        source.write_bytes(self.PAYLOAD * 20)
        code = main([
            "filter", self.EXPRESSION,
            "--input", str(source),
            "--workers", "2", "--transport", "shared-memory",
            "--chunk-bytes", "256",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.count(b'"30.0"'.decode()) >= 20
        assert "accepted 20/60" in captured.err
        assert "workers [shared-memory/" in captured.err

    def test_filter_from_socket_source(self, capsys):
        import socket
        import threading

        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]

        def serve():
            conn, _ = server.accept()
            conn.sendall(self.PAYLOAD)
            conn.close()

        thread = threading.Thread(target=serve)
        thread.start()
        code = main([
            "filter", self.EXPRESSION,
            "--source", "socket", "--input", f"127.0.0.1:{port}",
        ])
        thread.join()
        server.close()
        assert code == 0
        captured = capsys.readouterr()
        assert "accepted 1/3" in captured.err

    def test_filter_socket_needs_endpoint(self, capsys):
        code = main([
            "filter", self.EXPRESSION, "--source", "socket",
            "--input", "not-an-endpoint",
        ])
        assert code == 1
        assert "host:port" in capsys.readouterr().err

    def test_bench_with_workers_reports_worker_stats(self, capsys):
        code = main([
            "bench", "s:1:temperature",
            "--records", "120", "--backends", "vectorized",
            "--workers", "2", "--transport", "shared-memory",
            "--chunk-bytes", "2048",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "transport=shared-memory" in captured.out
        assert "workers [shared-memory/" in captured.err

    @pytest.mark.parametrize("source", ["file", "socket"])
    def test_bench_alternative_sources(self, source, capsys):
        code = main([
            "bench", "s:1:temperature",
            "--records", "60", "--backends", "vectorized",
            "--source", source,
        ])
        assert code == 0
        assert f"source={source}" in capsys.readouterr().out

    def test_bench_repeat_reports_merge_back_delta(self, capsys):
        """Parallel cached bench passes report the merge-back effect:
        pass 1 merges worker masks, pass 2 runs on them."""
        code = main([
            "bench", "s:1:temperature",
            "--records", "120", "--backends", "vectorized",
            "--workers", "2", "--transport", "shared-memory",
            "--chunk-bytes", "2048", "--repeat", "2",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "merge-back [vectorized pass 1]" in err
        assert "entries merged from workers" in err
        assert "pts vs previous" in err

    def test_bench_serial_has_no_merge_back_lines(self, capsys):
        code = main([
            "bench", "s:1:temperature",
            "--records", "60", "--backends", "vectorized",
            "--repeat", "2",
        ])
        assert code == 0
        assert "merge-back" not in capsys.readouterr().err

    def test_bench_cache_file_warm_restart(self, tmp_path, capsys):
        spill = tmp_path / "atoms.pkl"
        for _ in range(2):
            code = main([
                "bench", "s:1:temperature",
                "--records", "60", "--backends", "vectorized",
                "--cache-file", str(spill),
            ])
            assert code == 0
        captured = capsys.readouterr()
        assert spill.exists()
        assert "atom cache spilled" in captured.err
        # the second invocation started warm from the spill file
        assert "hit rate 100.0%" in captured.err

    def test_parser_defaults(self):
        parser = build_arg_parser()
        args = parser.parse_args(["filter", "s:1:a"])
        assert args.source == "file"
        assert args.transport == "resident"
        assert args.mp_context is None
        assert args.cache is False and args.cache_file is None
        bench = parser.parse_args(["bench", "s:1:a"])
        assert bench.source == "memory"
        assert bench.transport == "resident"
        assert bench.json is None


class TestBenchJson:
    def test_bench_json_writes_result_document(self, tmp_path,
                                               capsys):
        out = tmp_path / "bench.json"
        code = main([
            "bench", "s:1:temperature",
            "--records", "60", "--backends", "vectorized",
            "--repeat", "2", "--json", str(out),
        ])
        assert code == 0
        assert "bench results written" in capsys.readouterr().err
        document = json.loads(out.read_text())
        assert document["benchmark"] == "repro-bench"
        assert document["dataset"] == "smartcity"
        assert document["payload_bytes"] > 0
        assert document["config"]["cache"] is True
        assert len(document["passes"]) == 2
        for entry in document["passes"]:
            assert entry["records"] == 60
            assert entry["seconds"] > 0
            assert entry["bytes_per_second"] > 0
            assert entry["records_per_second"] > 0
        # the warm pass is served from the AtomCache
        assert document["passes"][0]["cache_delta"]["misses"] > 0
        assert document["passes"][1]["cache_delta"]["hit_rate"] == 1.0
        assert document["cache"]["hits"] > 0

    def test_bench_json_without_cache_has_null_deltas(self, tmp_path):
        out = tmp_path / "bench.json"
        code = main([
            "bench", "s:1:temperature",
            "--records", "60", "--backends", "vectorized",
            "--no-cache", "--json", str(out),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["config"]["cache"] is False
        assert document["passes"][0]["cache_delta"] is None
        assert document["cache"] is None


class TestServeAndSubmit:
    EXPRESSION = "group(s:1:temperature,v:float:0.7:35.1)"
    PAYLOAD = (
        b'{"n":"temperature","v":"30.0"}\n'
        b'{"n":"temperature","v":"99.0"}\n'
        b'{"n":"humidity","v":"30.0"}\n'
    )

    @pytest.fixture()
    def gateway(self):
        from repro.serve import GatewayThread

        with GatewayThread(engines=1) as gw:
            yield gw

    def test_submit_streams_through_a_gateway(self, gateway,
                                              tmp_path, capsys):
        source = tmp_path / "in.ndjson"
        source.write_bytes(self.PAYLOAD * 10)
        code = main([
            "submit", self.EXPRESSION,
            "--input", str(source),
            "--host", "127.0.0.1", "--port", str(gateway.port),
            "--tenant", "cli-test",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.count('"30.0"') == 10
        assert "accepted 10/30" in captured.err
        assert f"via 127.0.0.1:{gateway.port}" in captured.err

    def test_submit_with_stats_reports_tenant_line(self, gateway,
                                                   tmp_path, capsys):
        source = tmp_path / "in.ndjson"
        source.write_bytes(self.PAYLOAD)
        code = main([
            "submit", self.EXPRESSION,
            "--input", str(source),
            "--port", str(gateway.port),
            "--tenant", "statty", "--stats",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "tenant statty:" in err
        assert "accept rate" in err

    def test_submit_bad_expression_fails_before_connecting(self,
                                                           capsys):
        code = main([
            "submit", "bogus(((", "--port", "1",  # nothing listens
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_serve_status_renders_metrics(self, gateway, tmp_path,
                                          capsys):
        source = tmp_path / "in.ndjson"
        source.write_bytes(self.PAYLOAD)
        main([
            "submit", self.EXPRESSION,
            "--input", str(source),
            "--port", str(gateway.port), "--tenant", "seen",
        ])
        code = main([
            "serve", "--status",
            "--host", "127.0.0.1", "--port", str(gateway.port),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gateway:" in out
        assert "seen" in out

    def test_serve_status_json(self, gateway, capsys):
        code = main([
            "serve", "--status", "--json",
            "--port", str(gateway.port),
        ])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert "gateway" in snapshot and "engine" in snapshot

    def test_serve_parser_defaults(self):
        parser = build_arg_parser()
        serve = parser.parse_args(["serve"])
        assert serve.port == 7707
        assert serve.engines == 2
        assert serve.max_sessions == 32
        assert not serve.status
        submit = parser.parse_args(["submit", "s:1:a"])
        assert submit.tenant == "cli"
        assert submit.input == "-"
