"""Unit tests for the and-inverter graph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.hw.aig import AIG, FALSE, TRUE, node_of


class TestSimplification:
    def test_and_with_false(self):
        aig = AIG()
        a = aig.add_input()
        assert aig.land(a, FALSE) == FALSE

    def test_and_with_true(self):
        aig = AIG()
        a = aig.add_input()
        assert aig.land(a, TRUE) == a

    def test_and_idempotent(self):
        aig = AIG()
        a = aig.add_input()
        assert aig.land(a, a) == a

    def test_and_with_own_complement(self):
        aig = AIG()
        a = aig.add_input()
        assert aig.land(a, aig.lnot(a)) == FALSE

    def test_structural_hashing(self):
        aig = AIG()
        a, b = aig.add_input(), aig.add_input()
        first = aig.land(a, b)
        second = aig.land(b, a)  # commuted
        assert first == second
        assert aig.num_ands == 1

    def test_not_is_free(self):
        aig = AIG()
        a = aig.add_input()
        assert aig.lnot(aig.lnot(a)) == a
        assert aig.num_ands == 0


class TestGates:
    def _two_inputs(self):
        aig = AIG()
        return aig, aig.add_input(), aig.add_input()

    @pytest.mark.parametrize("va", [False, True])
    @pytest.mark.parametrize("vb", [False, True])
    def test_or_truth_table(self, va, vb):
        aig, a, b = self._two_inputs()
        out = aig.lor(a, b)
        result = aig.eval_literals(
            [out], {node_of(a): va, node_of(b): vb}
        )[0]
        assert result == (va or vb)

    @pytest.mark.parametrize("va", [False, True])
    @pytest.mark.parametrize("vb", [False, True])
    def test_xor_truth_table(self, va, vb):
        aig, a, b = self._two_inputs()
        out = aig.lxor(a, b)
        result = aig.eval_literals(
            [out], {node_of(a): va, node_of(b): vb}
        )[0]
        assert result == (va != vb)

    def test_mux(self):
        aig = AIG()
        s, t, f = aig.add_input(), aig.add_input(), aig.add_input()
        out = aig.mux(s, t, f)
        for sel in (False, True):
            for tv in (False, True):
                for fv in (False, True):
                    got = aig.eval_literals(
                        [out],
                        {node_of(s): sel, node_of(t): tv, node_of(f): fv},
                    )[0]
                    assert got == (tv if sel else fv)

    def test_and_reduce_empty(self):
        aig = AIG()
        assert aig.and_reduce([]) == TRUE

    def test_or_reduce_empty(self):
        aig = AIG()
        assert aig.or_reduce([]) == FALSE

    def test_reduce_many(self):
        aig = AIG()
        inputs = [aig.add_input() for _ in range(9)]
        out = aig.and_reduce(inputs)
        all_true = {node_of(i): True for i in inputs}
        assert aig.eval_literals([out], all_true)[0]
        one_false = dict(all_true)
        one_false[node_of(inputs[4])] = False
        assert not aig.eval_literals([out], one_false)[0]


class TestSimulation:
    def test_bit_parallel_patterns(self):
        aig = AIG()
        a, b = aig.add_input(), aig.add_input()
        out = aig.land(a, b)
        values = aig.simulate(
            {node_of(a): np.uint64(0b1100), node_of(b): np.uint64(0b1010)}
        )
        assert int(aig.literal_value(values, out)) & 0xF == 0b1000

    def test_complemented_output(self):
        aig = AIG()
        a = aig.add_input()
        values = aig.simulate({node_of(a): np.uint64(1)})
        assert int(aig.literal_value(values, aig.lnot(a))) & 1 == 0


class TestTruthTables:
    def test_and_table(self):
        aig = AIG()
        a, b = aig.add_input(), aig.add_input()
        out = aig.land(a, b)
        table = aig.cut_truth_table(out, [node_of(a), node_of(b)])
        assert table == 0b1000

    def test_xor_table(self):
        aig = AIG()
        a, b = aig.add_input(), aig.add_input()
        out = aig.lxor(a, b)
        table = aig.cut_truth_table(out, [node_of(a), node_of(b)])
        assert table == 0b0110

    def test_wide_function(self):
        aig = AIG()
        inputs = [aig.add_input() for _ in range(7)]
        out = aig.and_reduce(inputs)
        table = aig.cut_truth_table(out, [node_of(i) for i in inputs])
        # only the all-ones row is set
        assert table == 1 << 127

    def test_cone_escape_detected(self):
        aig = AIG()
        a, b = aig.add_input(), aig.add_input()
        out = aig.land(a, b)
        with pytest.raises(SynthesisError):
            aig.cut_truth_table(out, [node_of(a)])  # b missing

    def test_too_wide_rejected(self):
        aig = AIG()
        inputs = [aig.add_input() for _ in range(17)]
        out = aig.and_reduce(inputs)
        with pytest.raises(SynthesisError):
            aig.cut_truth_table(out, [node_of(i) for i in inputs])


class TestAnalysis:
    def test_cone_nodes(self):
        aig = AIG()
        a, b, c = (aig.add_input() for _ in range(3))
        ab = aig.land(a, b)
        abc = aig.land(ab, c)
        unrelated = aig.land(a, c)
        cone = aig.cone_nodes([abc])
        assert node_of(ab) in cone
        assert node_of(abc) in cone
        assert node_of(unrelated) not in cone

    def test_levels(self):
        aig = AIG()
        inputs = [aig.add_input() for _ in range(4)]
        out = aig.and_reduce(inputs)
        levels = aig.levels()
        assert levels[node_of(out)] == 2  # balanced tree of 4


@settings(max_examples=40, deadline=None)
@given(st.lists(st.booleans(), min_size=3, max_size=8))
def test_reduce_matches_python(values):
    aig = AIG()
    inputs = [aig.add_input() for _ in values]
    conj = aig.and_reduce(inputs)
    disj = aig.or_reduce(inputs)
    parity = aig.xor_reduce(inputs)
    assignment = {node_of(lit): val for lit, val in zip(inputs, values)}
    got = aig.eval_literals([conj, disj, parity], assignment)
    assert got[0] == all(values)
    assert got[1] == any(values)
    assert got[2] == (sum(values) % 2 == 1)
