"""Unit tests for raw-filter composition (notation, evaluation, algebra)."""

import numpy as np
import pytest

import repro.core.composition as comp
from repro.errors import QueryError

SENML = (
    b'{"e":[{"v":"35.2","u":"far","n":"temperature"},'
    b'{"v":"12","u":"per","n":"humidity"},'
    b'{"v":"713","u":"per","n":"light"}],"bt":1422748800000}'
)


class TestNotation:
    def test_substring_notation(self):
        assert comp.s("temperature", 1).notation() == 's1("temperature")'

    def test_full_notation(self):
        assert comp.full("user").notation() == 'sN("user")'

    def test_dfa_notation(self):
        assert comp.dfa("user").notation() == 'dfa("user")'

    def test_number_notation_int(self):
        assert comp.v_int(12, 49).notation() == "v(12 <= i <= 49)"

    def test_number_notation_float(self):
        assert comp.v("0.7", "35.1").notation() == "v(0.7 <= f <= 35.1)"

    def test_number_notation_one_sided(self):
        assert comp.v_int(35, None).notation() == "v(35 <= i)"
        assert comp.v_int(None, 35).notation() == "v(i <= 35)"

    def test_group_notation(self):
        expr = comp.group(comp.s("humidity", 1), comp.v("20.3", "69.1"))
        assert expr.notation() == (
            '{ s1("humidity") & v(20.3 <= f <= 69.1) }'
        )

    def test_and_notation(self):
        expr = comp.And([comp.s("a", 1), comp.s("b", 1)])
        assert expr.notation() == 's1("a") & s1("b")'

    def test_nested_combinator_parenthesised(self):
        expr = comp.Or([comp.And([comp.s("a", 1), comp.s("b", 1)]),
                        comp.s("c", 1)])
        assert expr.notation() == '(s1("a") & s1("b")) | s1("c")'


class TestValidation:
    def test_block_out_of_range(self):
        with pytest.raises(QueryError):
            comp.StringPredicate("abc", 4)

    def test_number_needs_bound(self):
        with pytest.raises(QueryError):
            comp.NumberPredicate(None, None)

    def test_number_rejects_bad_kind(self):
        with pytest.raises(QueryError):
            comp.NumberPredicate(1, 2, kind="decimal")

    def test_group_rejects_combinators(self):
        with pytest.raises(QueryError):
            comp.Group([comp.And([comp.s("a", 1)])])

    def test_group_rejects_empty(self):
        with pytest.raises(QueryError):
            comp.Group([])

    def test_and_rejects_empty(self):
        with pytest.raises(QueryError):
            comp.And([])


class TestIdentity:
    def test_cache_key_equality(self):
        assert comp.s("dust", 1) == comp.s("dust", 1)
        assert comp.s("dust", 1) != comp.s("dust", 2)
        assert comp.v(1, 2) == comp.v(1, 2)
        assert comp.v(1, 2) != comp.v_int(1, 2)

    def test_hashable(self):
        exprs = {comp.s("dust", 1), comp.s("dust", 1), comp.s("dust", 2)}
        assert len(exprs) == 2

    def test_group_key_includes_scoping(self):
        a = comp.group(comp.s("a", 1), comp.v(1, 2))
        b = comp.Group([comp.s("a", 1), comp.v(1, 2)], comma_scoped=True)
        assert a != b

    def test_atoms_and_primitives(self):
        expr = comp.And(
            [comp.group(comp.s("a", 1), comp.v(1, 2)), comp.v(3, 4)]
        )
        assert len(list(expr.atoms())) == 2
        assert len(list(expr.primitives())) == 3


class TestEvaluation:
    def test_string_on_senml(self):
        assert comp.evaluate_record(comp.s("temperature", 1), SENML)
        assert not comp.evaluate_record(comp.s("dust", 2), SENML)

    def test_number_on_senml(self):
        # humidity "12" is an int in [12, 49]
        assert comp.evaluate_record(comp.v_int(12, 49), SENML)
        # but temperature 35.2 is not in [0.7, 35.1]
        assert comp.evaluate_record(comp.v("0.7", "35.1"), SENML)  # "12"!

    def test_running_example_false_positive(self):
        """Listing 1/2: conjunction accepts, structure rejects."""
        nonstructural = comp.And(
            [comp.s("temperature", 1), comp.v("0.7", "35.1")]
        )
        structural = comp.group(
            comp.s("temperature", 1), comp.v("0.7", "35.1")
        )
        assert comp.evaluate_record(nonstructural, SENML)
        assert not comp.evaluate_record(structural, SENML)

    def test_group_accepts_correct_context(self):
        record = SENML.replace(b'"35.2"', b'"30.1"')
        structural = comp.group(
            comp.s("temperature", 1), comp.v("0.7", "35.1")
        )
        assert comp.evaluate_record(structural, record)

    def test_and_or_semantics(self):
        yes = comp.s("temperature", 1)
        no = comp.s("dust", 2)
        assert comp.evaluate_record(comp.Or([no, yes]), SENML)
        assert not comp.evaluate_record(comp.And([no, yes]), SENML)

    def test_regex_predicate_stream_mode(self):
        expr = comp.RegexPredicate(r'"bt":[0-9]{13}')
        assert comp.evaluate_record(expr, SENML)
        assert not comp.evaluate_record(
            comp.RegexPredicate(r'"bt":[0-9]{20}'), SENML
        )

    def test_regex_predicate_number_mode(self):
        expr = comp.RegexPredicate("71[0-9]", token_mode="number")
        assert comp.evaluate_record(expr, SENML)  # "713"
        assert not comp.evaluate_record(
            comp.RegexPredicate("99[0-9]", token_mode="number"), SENML
        )

    def test_regex_rejects_bad_mode(self):
        with pytest.raises(QueryError):
            comp.RegexPredicate("a", token_mode="word")


class TestFireArrays:
    def test_number_fire_array_positions(self):
        arr = np.frombuffer(b'{"x":13}\n', dtype=np.uint8)
        fires = comp.v_int(12, 49).fire_array(arr)
        assert np.flatnonzero(fires).tolist() == [7]

    def test_string_fire_array(self):
        arr = np.frombuffer(b"dust\n", dtype=np.uint8)
        fires = comp.s("dust", 2).fire_array(arr)
        assert np.flatnonzero(fires).tolist() == [3]
