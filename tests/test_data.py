"""Unit tests for the synthetic dataset generators and query oracle."""

import numpy as np
import pytest

from repro.data import (
    QS0,
    QS1,
    QT,
    Dataset,
    RangeCondition,
    generate_smartcity,
    generate_taxi,
    generate_twitter,
    inflate,
    load_dataset,
)
from repro.errors import QueryError, ReproError
from repro.jsonpath import loads, sensor_names


class TestDatasetContainer:
    def test_stream_framing(self):
        ds = Dataset("t", [b'{"a":1}', b'{"b":2}'])
        assert bytes(ds.stream) == b'{"a":1}\n{"b":2}\n'
        assert ds.starts.tolist() == [0, 8]

    def test_rejects_newlines_in_records(self):
        with pytest.raises(ReproError):
            Dataset("t", [b"a\nb"])

    def test_parsed_lazy(self):
        ds = Dataset("t", [b'{"a":1}'])
        assert ds.parsed[0] == {"a": 1}

    def test_subset(self):
        ds = Dataset("t", [b"{}", b'{"a":1}', b'{"b":2}'])
        sub = ds.subset([0, 2])
        assert len(sub) == 2
        assert sub.records[1] == b'{"b":2}'

    def test_inflate_reaches_target(self):
        ds = Dataset("t", [b'{"a":1}'])
        big = inflate(ds, 1000)
        assert big.total_bytes >= 1000
        assert all(record == b'{"a":1}' for record in big.records)

    def test_inflate_rejects_empty(self):
        with pytest.raises(ReproError):
            inflate(Dataset("t", []), 100)


class TestGenerators:
    @pytest.mark.parametrize(
        "generate", [generate_smartcity, generate_taxi, generate_twitter]
    )
    def test_deterministic(self, generate):
        assert generate(50, seed=3).records == generate(50, seed=3).records

    @pytest.mark.parametrize(
        "generate", [generate_smartcity, generate_taxi, generate_twitter]
    )
    def test_seed_changes_content(self, generate):
        assert generate(50, seed=3).records != generate(50, seed=4).records

    @pytest.mark.parametrize(
        "generate", [generate_smartcity, generate_taxi, generate_twitter]
    )
    def test_all_records_parse(self, generate):
        for record in generate(100, seed=1):
            loads(record)  # strict parser accepts every record

    def test_load_dataset_names(self):
        assert load_dataset("smartcity", 10).name == "smartcity"
        assert load_dataset("taxi", 10).name == "taxi"
        assert load_dataset("twitter", 10).name == "twitter"
        with pytest.raises(QueryError):
            load_dataset("imaginary")


class TestSmartCity:
    def test_senml_schema(self, smartcity_small):
        record = smartcity_small.parsed[0]
        assert "e" in record and "bt" in record
        entry = record["e"][0]
        assert set(entry) == {"v", "u", "n"}
        assert isinstance(entry["v"], str)  # values are JSON strings

    def test_partial_records_exist(self, smartcity_small):
        counts = {len(sensor_names(r)) for r in smartcity_small.parsed}
        assert 5 in counts
        assert any(count < 5 for count in counts)

    def test_light_mostly_above_1000(self, smartcity_small):
        from repro.jsonpath import measurement_value

        lights = [
            measurement_value(record, "light")
            for record in smartcity_small.parsed
        ]
        lights = [value for value in lights if value is not None]
        above = sum(1 for value in lights if value > 1000)
        assert above / len(lights) > 0.7

    def test_selectivities_near_paper(self):
        ds = load_dataset("smartcity", 4000)
        qs0 = QS0.truth_array(ds).mean()
        qs1 = QS1.truth_array(ds).mean()
        assert abs(qs0 - 0.639) < 0.08
        assert abs(qs1 - 0.054) < 0.04


class TestTaxi:
    def test_sparse_monetary_fields(self, taxi_small):
        with_tolls = sum(
            1 for r in taxi_small.parsed if "tolls_amount" in r
        )
        assert 0 < with_tolls < len(taxi_small)
        assert all("total_amount" in r for r in taxi_small.parsed)

    def test_tolls_total_letter_subset(self):
        # the Table II collision requires this letter-set property
        assert set("total_amount") <= set("tolls_amount")

    def test_correlated_fare_distance(self, taxi_small):
        fares = np.array(
            [r["fare_amount"] for r in taxi_small.parsed]
        )
        distances = np.array(
            [r["trip_distance"] for r in taxi_small.parsed]
        )
        rho = np.corrcoef(fares, distances)[0, 1]
        assert rho > 0.8

    def test_selectivity_near_paper(self):
        ds = load_dataset("taxi", 4000)
        assert abs(QT.truth_array(ds).mean() - 0.057) < 0.04

    def test_hex_ids_can_contain_exponent_patterns(self, taxi_small):
        import re

        blob = b"".join(taxi_small.records)
        assert re.search(rb"[0-9]e[0-9]", blob)


class TestTwitter:
    def test_record_mix(self, twitter_small):
        full = sum(1 for r in twitter_small.parsed if "user" in r)
        deletes = sum(1 for r in twitter_small.parsed if "delete" in r)
        minimal = len(twitter_small) - full - deletes
        assert full > minimal > 0
        assert deletes > 0

    def test_negatives_exist_for_all_needles(self, twitter_small):
        for needle in (b"created_at", b"user", b"location", b"lang",
                       b"favourites_count"):
            without = sum(
                1 for r in twitter_small.records if needle not in r
            )
            assert without > 0, needle

    def test_deletes_fool_s1_user(self, twitter_small):
        """Deletion notices must B=1-match 'user' without containing it."""
        from repro.core.string_match import record_matches

        deletes = [
            raw
            for raw, parsed in zip(
                twitter_small.records, twitter_small.parsed
            )
            if "delete" in parsed
        ]
        assert deletes
        for record in deletes:
            assert b"user" not in record
            assert record_matches(record, "user", 1)


class TestQueryOracle:
    def test_condition_kinds(self):
        assert RangeCondition("light", 0, 5153).kind == "int"
        assert RangeCondition("t", "0.7", "35.1").kind == "float"

    def test_missing_attribute_fails(self):
        record = loads('{"e":[{"v":"1","n":"light"}]}')
        assert not QS0.matches(record)

    def test_flat_accessor(self):
        record = loads(
            '{"trip_time_in_secs":600,"tip_amount":2.0,'
            '"fare_amount":10.0,"tolls_amount":5.0,"trip_distance":3.0}'
        )
        assert QT.matches(record)
        record["tolls_amount"] = 0.0
        assert not QT.matches(record)

    def test_expression_text_matches_table8(self):
        text = QS0.expression_text()
        assert '(0.7 <= "temperature" <= 35.1)' in text
        assert text.count("AND") == 4

    def test_truth_array_shape(self, smartcity_small):
        truth = QS0.truth_array(smartcity_small)
        assert truth.shape == (len(smartcity_small),)
        assert truth.dtype == bool


class TestNdjsonIO:
    def test_round_trip_via_file(self, tmp_path, smartcity_small):
        path = tmp_path / "data.ndjson"
        path.write_bytes(
            b"".join(r + b"\n" for r in smartcity_small.records[:25])
        )
        loaded = Dataset.from_ndjson(path)
        assert loaded.records == smartcity_small.records[:25]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_bytes(b'{"a":1}\n\n  \n{"b":2}\n')
        loaded = Dataset.from_ndjson(path)
        assert len(loaded) == 2

    def test_crlf_endings(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_bytes(b'{"a":1}\r\n{"b":2}\r\n')
        loaded = Dataset.from_ndjson(path)
        assert loaded.records == [b'{"a":1}', b'{"b":2}']

    def test_validation_rejects_malformed(self, tmp_path):
        from repro.errors import JSONParseError

        path = tmp_path / "bad.ndjson"
        path.write_bytes(b'{"a":1}\nnot json\n')
        with pytest.raises(JSONParseError):
            Dataset.from_ndjson(path)

    def test_validation_can_be_skipped(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_bytes(b'garbage bytes\n')
        loaded = Dataset.from_ndjson(path, validate=False)
        assert len(loaded) == 1
