"""Tests for the table/scatter renderers."""

import pytest

import repro.core.composition as comp
from repro.eval.report import (
    format_fpr,
    format_notation,
    render_scatter,
    render_table,
)


class TestRenderTable:
    def test_alignment(self):
        table = render_table(
            ["name", "value"], [["a", 1], ["longer", 22]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_title(self):
        table = render_table(["x"], [["y"]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only one"]])

    def test_values_stringified(self):
        table = render_table(["v"], [[0.125], [None]])
        assert "0.125" in table and "None" in table


class TestRenderScatter:
    def test_empty(self):
        assert render_scatter([]) == "(no points)"

    def test_glyph_placement(self):
        plot = render_scatter(
            [(0.0, 100, "3"), (1.0, 10, "1")], width=20, height=5
        )
        lines = plot.splitlines()
        # the high-LUT point is near the top, low-FPR -> left edge
        assert any(line.startswith("|3") for line in lines)
        # the low-LUT point sits near the bottom right
        assert any(line.rstrip().endswith("1") for line in lines)

    def test_axis_labels(self):
        plot = render_scatter([(0.5, 5, "x")], title="T")
        assert plot.splitlines()[0] == "T"
        assert "LUTs" in plot
        assert "FPR" in plot

    def test_clipping_in_bounds(self):
        plot = render_scatter(
            [(1.0, 1, "a"), (0.0, 999, "b")], width=10, height=4
        )
        for line in plot.splitlines():
            if line.startswith(("|", "+")):
                assert len(line) <= 11


class TestFormatters:
    def test_format_fpr(self):
        assert format_fpr(0.85349) == "0.853"

    def test_format_notation_passthrough(self):
        expr = comp.s("dust", 1)
        assert format_notation(expr) == 's1("dust")'

    def test_format_notation_truncates(self):
        expr = comp.And([comp.s("temperature", 1)] * 6)
        text = format_notation(expr, max_width=30)
        assert len(text) == 30
        assert text.endswith("...")
