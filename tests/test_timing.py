"""Tests for the timing estimator + the paper's 200 MHz feasibility claim."""

import pytest

import repro.core.composition as comp
from repro.core.number_filter import NumberRangeFilter
from repro.hw.timing import TimingModel, estimate_fmax, meets_clock
from repro.hw.circuits import (
    build_raw_filter_circuit,
    dfa_string_matcher_circuit,
    full_matcher_circuit,
    number_filter_circuit,
    substring_matcher_circuit,
)


class TestModel:
    def test_deeper_paths_are_slower(self):
        model = TimingModel()
        assert model.fmax_hz(2) > model.fmax_hz(6)

    def test_critical_path_monotone(self):
        model = TimingModel()
        delays = [model.critical_path_ns(d) for d in range(1, 8)]
        assert delays == sorted(delays)

    def test_custom_parameters(self):
        slow = TimingModel(lut_delay_ns=1.0, net_delay_ns=2.0)
        fast = TimingModel()
        assert slow.fmax_hz(3) < fast.fmax_hz(3)


class TestPaperClockClaim:
    """Every primitive used in the evaluation closes 200 MHz."""

    @pytest.mark.parametrize("block", [1, 2, 4])
    def test_substring_matchers(self, block):
        circuit = substring_matcher_circuit("temperature", block)
        assert meets_clock(circuit)

    def test_full_matcher(self):
        assert meets_clock(full_matcher_circuit("trip_time_in_secs"))

    def test_dfa_matcher(self):
        assert meets_clock(dfa_string_matcher_circuit("favourites_count"))

    @pytest.mark.parametrize(
        "lo,hi,kind",
        [(12, 49, "int"), ("83.36", "3322.67", "float")],
    )
    def test_number_filters(self, lo, hi, kind):
        dfa = NumberRangeFilter(lo, hi, kind=kind).dfa
        assert meets_clock(number_filter_circuit(dfa))

    def test_composed_pareto_filter(self):
        expr = comp.And(
            [
                comp.group(comp.s("temperature", 1),
                           comp.v("0.7", "35.1")),
                comp.group(comp.s("humidity", 1),
                           comp.v("20.3", "69.1")),
                comp.v_int(12, 49),
            ]
        )
        circuit = build_raw_filter_circuit(expr)
        fmax = estimate_fmax(circuit)
        assert fmax >= 200e6
        # and comfortably so — the paper's primitives are shallow
        assert fmax >= 250e6
