"""Tests for the LUT cost model (exact vs additive estimate)."""


import repro.core.composition as comp
from repro.core.cost import (
    atom_luts,
    clear_cost_cache,
    estimate_luts,
    exact_luts,
    tracker_luts,
)


class TestAtomCosts:
    def test_primitive_cost_positive(self):
        assert atom_luts(comp.s("dust", 1)) > 0
        assert atom_luts(comp.v_int(12, 49)) > 0

    def test_cost_cached(self):
        first = atom_luts(comp.s("dust", 2))
        second = atom_luts(comp.s("dust", 2))
        assert first == second

    def test_group_includes_tracker(self):
        group = comp.group(comp.s("dust", 1), comp.v_int(12, 49))
        parts = atom_luts(comp.s("dust", 1)) + atom_luts(
            comp.v_int(12, 49)
        )
        assert atom_luts(group) > parts  # tracker + latches on top

    def test_tracker_cost_small(self):
        assert 5 <= tracker_luts() <= 60

    def test_k_parameter_changes_costs(self):
        k6 = atom_luts(comp.v_int(140, 3155), k=6)
        k4 = atom_luts(comp.v_int(140, 3155), k=4)
        assert k4 >= k6


class TestEstimate:
    def test_single_atom_estimate_is_exact(self):
        atom = comp.v_int(12, 49)
        assert estimate_luts([atom]) == exact_luts(atom)

    def test_multi_group_subtracts_duplicate_trackers(self):
        groups = [
            comp.group(comp.s("dust", 1), comp.v_int(12, 49)),
            comp.group(comp.s("light", 1), comp.v_int(0, 5153)),
        ]
        naive_sum = sum(atom_luts(g) for g in groups)
        estimate = estimate_luts(groups)
        assert estimate == naive_sum - tracker_luts()

    def test_estimate_close_to_exact_for_conjunctions(self):
        atoms = [
            comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1")),
            comp.group(comp.s("humidity", 1), comp.v("20.3", "69.1")),
            comp.v_int(12, 49),
        ]
        expr = comp.And(atoms)
        estimate = estimate_luts(atoms)
        exact = exact_luts(expr)
        # composition shares decode logic: exact <= estimate + AND tree
        assert exact <= estimate + 3
        assert exact >= 0.55 * estimate

    def test_cache_clear(self):
        atom_luts(comp.s("dust", 1))
        clear_cost_cache()
        assert atom_luts(comp.s("dust", 1)) > 0
