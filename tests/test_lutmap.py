"""Unit tests for the cut-based LUT technology mapper."""

import numpy as np
import pytest
from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.hw.aig import AIG, FALSE, TRUE, node_of
from repro.hw.lutmap import lut_count, map_to_luts, verify_mapping


def random_aig(rng, num_inputs=8, num_gates=40):
    """Build a random AIG; returns (aig, output_literals)."""
    aig = AIG()
    literals = [aig.add_input() for _ in range(num_inputs)]
    for _ in range(num_gates):
        a = literals[rng.integers(0, len(literals))]
        b = literals[rng.integers(0, len(literals))]
        if rng.integers(0, 2):
            a ^= 1
        if rng.integers(0, 2):
            b ^= 1
        literals.append(aig.land(a, b))
    outputs = [literals[-1], literals[len(literals) // 2]]
    return aig, outputs


class TestBasicMapping:
    def test_single_and_is_one_lut(self):
        aig = AIG()
        a, b = aig.add_input(), aig.add_input()
        out = aig.land(a, b)
        assert lut_count(aig, [out]) == 1

    def test_six_input_and_is_one_lut(self):
        aig = AIG()
        inputs = [aig.add_input() for _ in range(6)]
        out = aig.and_reduce(inputs)
        assert lut_count(aig, [out], k=6) == 1

    def test_seven_input_and_needs_two_luts(self):
        aig = AIG()
        inputs = [aig.add_input() for _ in range(7)]
        out = aig.and_reduce(inputs)
        assert lut_count(aig, [out], k=6) == 2

    def test_constant_output_is_free(self):
        aig = AIG()
        assert lut_count(aig, [TRUE]) == 0
        assert lut_count(aig, [FALSE]) == 0

    def test_passthrough_input_is_free(self):
        aig = AIG()
        a = aig.add_input()
        assert lut_count(aig, [a]) == 0
        assert lut_count(aig, [aig.lnot(a)]) == 0

    def test_cut_width_respected(self):
        aig = AIG()
        inputs = [aig.add_input() for _ in range(12)]
        out = aig.and_reduce(inputs)
        network = map_to_luts(aig, [out], k=4)
        assert all(len(lut.leaves) <= 4 for lut in network.luts)

    def test_k4_needs_more_luts_than_k6(self):
        aig = AIG()
        inputs = [aig.add_input() for _ in range(16)]
        out = aig.and_reduce(inputs)
        assert lut_count(aig, [out], k=4) >= lut_count(aig, [out], k=6)

    def test_shared_logic_counted_once(self):
        aig = AIG()
        inputs = [aig.add_input() for _ in range(6)]
        shared = aig.and_reduce(inputs)
        a = aig.land(shared, aig.add_input())
        b = aig.land(shared, aig.add_input())
        count = lut_count(aig, [a, b], k=6)
        # shared 6-input AND (1 LUT) + two 2-input combiners
        assert count <= 3

    def test_rejects_tiny_k(self):
        from repro.errors import SynthesisError

        aig = AIG()
        a, b = aig.add_input(), aig.add_input()
        with pytest.raises(SynthesisError):
            map_to_luts(aig, [aig.land(a, b)], k=1)


class TestNetworkEvaluation:
    def test_evaluate_matches_aig(self):
        aig = AIG()
        a, b, c = (aig.add_input() for _ in range(3))
        out = aig.lor(aig.land(a, b), aig.lnot(c))
        network = map_to_luts(aig, [out])
        for va in (False, True):
            for vb in (False, True):
                for vc in (False, True):
                    assignment = {
                        node_of(a): va, node_of(b): vb, node_of(c): vc
                    }
                    assert network.evaluate(assignment) == (
                        aig.eval_literals([out], assignment)
                    )

    def test_complemented_outputs(self):
        aig = AIG()
        a, b = aig.add_input(), aig.add_input()
        out = aig.land(a, b)
        network = map_to_luts(aig, [out, aig.lnot(out)])
        values = network.evaluate({node_of(a): True, node_of(b): True})
        assert values == [True, False]

    def test_depth_positive(self):
        aig = AIG()
        inputs = [aig.add_input() for _ in range(12)]
        out = aig.and_reduce(inputs)
        network = map_to_luts(aig, [out])
        assert network.depth >= 2

    def test_luts_topologically_ordered(self):
        aig, outputs = random_aig(np.random.default_rng(3))
        network = map_to_luts(aig, outputs)
        seen = set()
        for lut in network.luts:
            for leaf in lut.leaves:
                assert aig.is_input(leaf) or leaf in seen or leaf == 0
            seen.add(lut.node)


class TestRandomEquivalence:
    @pytest.mark.parametrize("seed_value", range(8))
    def test_verify_mapping_on_random_aigs(self, seed_value):
        rng = np.random.default_rng(seed_value)
        aig, outputs = random_aig(rng, num_inputs=6 + seed_value % 4,
                                  num_gates=30 + seed_value * 7)
        network = map_to_luts(aig, outputs)
        assert verify_mapping(aig, network, trials=128, seed=seed_value)

    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 8])
    def test_equivalence_across_k(self, k):
        rng = np.random.default_rng(99)
        aig, outputs = random_aig(rng, num_inputs=7, num_gates=50)
        network = map_to_luts(aig, outputs, k=k)
        assert verify_mapping(aig, network, trials=64, seed=k)
        assert all(len(lut.leaves) <= k for lut in network.luts)


@settings(max_examples=20, deadline=None)
@seed(7)
@given(data=st.data())
def test_mapping_equivalence_property(data):
    seed_value = data.draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed_value)
    aig, outputs = random_aig(
        rng,
        num_inputs=data.draw(st.integers(3, 10)),
        num_gates=data.draw(st.integers(5, 80)),
    )
    network = map_to_luts(aig, outputs)
    assert verify_mapping(aig, network, trials=32, seed=seed_value)


class TestDepthMode:
    def test_depth_mode_not_deeper_than_area_mode(self):
        rng = np.random.default_rng(42)
        aig, outputs = random_aig(rng, num_inputs=8, num_gates=120)
        area = map_to_luts(aig, outputs, mode="area")
        depth = map_to_luts(aig, outputs, mode="depth")
        assert depth.depth <= area.depth

    def test_depth_mode_equivalent(self):
        rng = np.random.default_rng(43)
        aig, outputs = random_aig(rng, num_inputs=7, num_gates=80)
        network = map_to_luts(aig, outputs, mode="depth")
        assert verify_mapping(aig, network, trials=64, seed=3)

    def test_unknown_mode_rejected(self):
        from repro.errors import SynthesisError

        aig = AIG()
        a, b = aig.add_input(), aig.add_input()
        with pytest.raises(SynthesisError):
            map_to_luts(aig, [aig.land(a, b)], mode="power")
