"""Smoke tests: the runnable examples execute end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    path = EXAMPLES / name
    assert path.exists(), path
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "gate-level simulation agrees" in out


def test_date_filter_runs(capsys):
    run_example("date_filter.py")
    out = capsys.readouterr().out
    assert "false negatives:   0" in out


@pytest.mark.slow
def test_iot_gateway_runs(capsys):
    run_example("iot_gateway.py")
    out = capsys.readouterr().out
    assert "missing matches:        0" in out


def test_all_examples_exist():
    names = {path.name for path in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "iot_gateway.py",
        "design_space_explorer.py",
        "sparser_comparison.py",
        "date_filter.py",
    } <= names
