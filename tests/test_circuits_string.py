"""Gate-level string matchers vs behavioural models (paper §III-A)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.string_match import (
    reference_fire_trace,
    substrings,
    unique_substrings,
)
from repro.errors import SynthesisError
from repro.hw.gatesim import CycleSimulator
from repro.hw.circuits import (
    dfa_string_matcher_circuit,
    full_matcher_circuit,
    substring_matcher_circuit,
)
from repro.hw.circuits.string_circuits import ngrams


def gate_trace(circuit, stream):
    sim = CycleSimulator(circuit)
    return sim.run_stream(stream, extra_inputs={"record_reset": 0})


class TestNgrams:
    def test_table4_b1(self):
        """Paper Table IV row B=1 (duplicates indicated in the paper)."""
        assert substrings("temperature", 1) == [
            c.encode() for c in "temperature"
        ]
        assert unique_substrings("temperature", 1) == [
            b"t", b"e", b"m", b"p", b"r", b"a", b"u"
        ]

    def test_table4_b2(self):
        assert substrings("temperature", 2) == [
            b"te", b"em", b"mp", b"pe", b"er", b"ra", b"at",
            b"tu", b"ur", b"re",
        ]

    def test_table4_b3(self):
        assert substrings("temperature", 3)[:3] == [b"tem", b"emp", b"mpe"]
        assert len(substrings("temperature", 3)) == 9

    def test_table4_full(self):
        assert substrings("temperature", 11) == [b"temperature"]

    def test_ngrams_rejects_bad_block(self):
        with pytest.raises(SynthesisError):
            ngrams("abc", 4)
        with pytest.raises(SynthesisError):
            ngrams("abc", 0)


class TestSubstringMatcherGateEquivalence:
    @pytest.mark.parametrize("block", [1, 2, 3, 4])
    def test_temperature_stream(self, block):
        circuit = substring_matcher_circuit("temperature", block)
        stream = (
            b'{"n":"temperature","v":"35.2"} temperatura erutarepmet '
            b"tttt eeee tem-per-a-ture"
        )
        got = gate_trace(circuit, stream)["fire"]
        want = reference_fire_trace(stream, "temperature", block)
        assert got == want

    def test_b1_counts_any_letter_set_run(self):
        """B=1 fires on any 4-run over {d,u,s,t} — e.g. 'stud'+1."""
        circuit = substring_matcher_circuit("dust", 1)
        trace = gate_trace(circuit, b"xx studt xx")["fire"]
        assert any(trace)

    def test_b2_rejects_letter_set_runs(self):
        circuit = substring_matcher_circuit("dust", 2)
        trace = gate_trace(circuit, b"xx studt xx")["fire"]
        assert not any(trace)

    def test_tolls_total_collision_b1(self):
        """Table II: s1('tolls_amount') matches 'total_amount' (FPR 1.0)."""
        circuit = substring_matcher_circuit("tolls_amount", 1)
        trace = gate_trace(circuit, b'"total_amount":14.50')["fire"]
        assert any(trace)

    def test_tolls_total_collision_fixed_by_b2(self):
        circuit = substring_matcher_circuit("tolls_amount", 2)
        trace = gate_trace(circuit, b'"total_amount":14.50')["fire"]
        assert not any(trace)
        trace = gate_trace(circuit, b'"tolls_amount":4.50')["fire"]
        assert any(trace)

    def test_record_reset_clears_match(self):
        circuit = substring_matcher_circuit("dust", 2)
        sim = CycleSimulator(circuit)
        sim.run_stream(b"dust", extra_inputs={"record_reset": 0})
        out = sim.step({"byte": 0, "record_reset": 1})
        assert out["match"]  # sampled before the edge
        out = sim.step({"byte": 0, "record_reset": 0})
        assert not out["match"]

    def test_match_is_sticky(self):
        circuit = substring_matcher_circuit("dust", 1)
        trace = gate_trace(circuit, b"dust and more text")["match"]
        first = trace.index(True)
        assert all(trace[first:])


class TestFullAndDfaMatchers:
    def test_full_matcher_exact_only(self):
        circuit = full_matcher_circuit("light")
        assert any(gate_trace(circuit, b'"n":"light"')["fire"])
        assert not any(gate_trace(circuit, b'"n":"lihgt"')["fire"])

    def test_full_matcher_fire_positions(self):
        circuit = full_matcher_circuit("ab")
        trace = gate_trace(circuit, b"abab")["fire"]
        assert trace == [False, True, False, True]

    def test_dfa_matcher_absorbing(self):
        circuit = dfa_string_matcher_circuit("ab")
        trace = gate_trace(circuit, b"xxabxx")["fire"]
        assert trace == [False, False, False, True, True, True]

    def test_dfa_matcher_overlapping_needle(self):
        """KMP behaviour: 'aab' inside 'aaab' must be found."""
        circuit = dfa_string_matcher_circuit("aab")
        assert any(gate_trace(circuit, b"aaab")["fire"])

    def test_dfa_reset(self):
        circuit = dfa_string_matcher_circuit("ab")
        sim = CycleSimulator(circuit)
        sim.run_stream(b"ab", extra_inputs={"record_reset": 0})
        sim.step({"byte": 0, "record_reset": 1})
        out = sim.run_stream(b"xx", extra_inputs={"record_reset": 0})
        assert not any(out["fire"])


class TestResourceTrends:
    """The paper's qualitative LUT claims, derived from our mapper."""

    def test_b1_is_cheapest_for_long_strings(self):
        needle = "temperature"
        b1 = substring_matcher_circuit(needle, 1).lut_count()
        b2 = substring_matcher_circuit(needle, 2).lut_count()
        full = full_matcher_circuit(needle).lut_count()
        dfa = dfa_string_matcher_circuit(needle).lut_count()
        assert b1 < b2
        assert b1 < full
        assert b1 < dfa

    def test_substring_cost_grows_with_block(self):
        needle = "trip_time_in_secs"
        counts = [
            substring_matcher_circuit(needle, block).lut_count()
            for block in (1, 2, 4)
        ]
        assert counts[0] < counts[1] <= counts[2]

    def test_exact_costs_grow_with_needle_length(self):
        short = full_matcher_circuit("user").lut_count()
        long = full_matcher_circuit("favourites_count").lut_count()
        assert short < long
        short_dfa = dfa_string_matcher_circuit("user").lut_count()
        long_dfa = dfa_string_matcher_circuit("favourites_count").lut_count()
        assert short_dfa < long_dfa

    def test_b1_few_luts_headline(self):
        """§III-A: B=1 matchers take on the order of ten LUTs."""
        assert substring_matcher_circuit("temperature", 1).lut_count() < 25


@settings(max_examples=25, deadline=None)
@given(
    needle=st.sampled_from(["dust", "user", "lang", "light"]),
    block=st.integers(1, 4),
    stream=st.binary(min_size=0, max_size=40),
)
def test_gate_equals_reference_on_random_streams(needle, block, stream):
    if block > len(needle):
        block = len(needle)
    if b"\n" in stream:
        stream = stream.replace(b"\n", b" ")
    circuit = substring_matcher_circuit(needle, block)
    got = gate_trace(circuit, stream)["fire"]
    want = reference_fire_trace(stream, needle, block)
    assert got == want
