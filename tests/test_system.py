"""Unit tests for the Fig. 4 SoC/DMA throughput simulation."""

import pytest

import repro.core.composition as comp
from repro.data import Dataset, inflate, load_dataset
from repro.errors import ReproError
from repro.system import (
    DMAConfig,
    DMAEngine,
    FilterLane,
    RawFilterSoC,
    SoCConfig,
)


def simple_filter():
    return comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))


class TestDMA:
    def test_transfer_timing_monotonic(self):
        engine = DMAEngine()
        _, first = engine.transfer(4096)
        start, second = engine.transfer(4096)
        assert start >= first
        assert second > first

    def test_burst_overheads_accumulate(self):
        config = DMAConfig(burst_bytes=1024,
                           descriptor_overhead_cycles=50)
        engine = DMAEngine(config)
        _, one_burst = engine.transfer(1024)
        engine.reset()
        _, four_bursts = engine.transfer(4096)
        assert four_bursts > 4 * (one_burst - config.channel_setup_cycles)

    def test_zero_bytes_is_free(self):
        engine = DMAEngine()
        assert engine.transfer(0) == (0, 0)

    def test_effective_bandwidth_below_raw_width(self):
        engine = DMAEngine()
        bandwidth = engine.effective_bandwidth(1 << 20, 200e6)
        assert bandwidth < 8 * 200e6

    def test_bad_config_rejected(self):
        with pytest.raises(ReproError):
            DMAConfig(burst_bytes=0)


class TestLane:
    def test_byte_per_cycle_contract(self):
        lane = FilterLane(simple_filter())
        records = [b'{"a":1}', b'{"b":2}']
        cycles, _ = lane.process_records(records)
        payload = sum(len(r) + 1 for r in records)
        assert cycles == payload + lane.pipeline_fill_cycles

    def test_functional_results(self):
        lane = FilterLane(simple_filter())
        records = [
            b'{"e":[{"v":"30.0","n":"temperature"}]}',
            b'{"e":[{"v":"99.0","n":"temperature"}]}',
        ]
        _, matches = lane.process_records(records)
        assert matches.tolist() == [True, False]


class TestSoC:
    def test_paper_throughput_band(self):
        """§IV-B: 1.33 GB/s measured vs 1.4 GB/s theoretical."""
        dataset = load_dataset("smartcity", 400)
        corpus = inflate(dataset, 44 * 1024 * 1024)
        soc = RawFilterSoC(simple_filter())
        report = soc.run(corpus, functional=False)
        assert report.theoretical_bandwidth == 7 * 200_000_000
        assert 1.25e9 < report.achieved_bandwidth < 1.40e9
        assert report.utilization > 0.9

    def test_sustains_10gbit_line_rate(self):
        dataset = load_dataset("smartcity", 200)
        corpus = inflate(dataset, 4 * 1024 * 1024)
        report = RawFilterSoC(simple_filter()).run(corpus,
                                                   functional=False)
        assert report.sustains_line_rate(10.0)
        assert not report.sustains_line_rate(40.0)

    def test_functional_results_match_oracle_superset(self):
        from repro.data import QS0

        dataset = load_dataset("smartcity", 300)
        expr = simple_filter()
        soc = RawFilterSoC(expr)
        report = soc.run(dataset)
        truth = QS0.truth_array(dataset)
        # the temperature group alone over-approximates the full query
        assert not (truth & ~report.matches).any()

    def test_lane_scaling(self):
        dataset = load_dataset("smartcity", 200)
        corpus = inflate(dataset, 2 * 1024 * 1024)
        one = RawFilterSoC(
            simple_filter(), SoCConfig(num_lanes=1)
        ).run(corpus, functional=False)
        seven = RawFilterSoC(
            simple_filter(), SoCConfig(num_lanes=7)
        ).run(corpus, functional=False)
        assert seven.achieved_bandwidth > 4 * one.achieved_bandwidth

    def test_record_partitioning_covers_everything(self):
        dataset = load_dataset("smartcity", 101)
        soc = RawFilterSoC(simple_filter())
        assignments = soc._partition(dataset)
        flat = sorted(i for lane in assignments for i in lane)
        assert flat == list(range(101))

    def test_empty_dataset(self):
        soc = RawFilterSoC(simple_filter())
        report = soc.run(Dataset("empty", []), functional=False)
        assert report.total_cycles == 0

    def test_bad_config(self):
        with pytest.raises(ReproError):
            SoCConfig(num_lanes=0)


class TestSoCIngest:
    """The SoC consumes raw chunk sources through the engine's ingest
    layer — the software model of the paper's I/O-to-lanes boundary."""

    def test_run_accepts_raw_ndjson_bytes(self):
        from repro.engine import FilterEngine

        dataset = load_dataset("smartcity", 60)
        payload = dataset.stream.tobytes()
        expr = comp.group(
            comp.s("temperature", 1), comp.v("0.7", "35.1")
        )
        engine = FilterEngine()
        from_dataset = RawFilterSoC(expr, engine=engine).run(dataset)
        from_bytes = RawFilterSoC(expr, engine=engine).run(payload)
        assert (
            from_bytes.matches.tolist()
            == from_dataset.matches.tolist()
        )
        assert from_bytes.total_bytes == from_dataset.total_bytes

    def test_run_accepts_a_chunk_source(self):
        from repro.engine import IterableSource

        dataset = load_dataset("taxi", 40)
        payload = dataset.stream.tobytes()
        chunks = [payload[i:i + 333] for i in range(0, len(payload), 333)]
        expr = comp.s("taxi", 2)
        report = RawFilterSoC(expr).run(IterableSource(chunks))
        direct = RawFilterSoC(expr).run(dataset)
        assert report.matches.tolist() == direct.matches.tolist()
