"""Additional tests for the cycle simulator itself."""

import pytest

from repro.hw.aig import TRUE
from repro.hw.gatesim import CycleSimulator
from repro.hw.rtl import Circuit


def shift_circuit():
    circuit = Circuit("shift")
    data_in = circuit.add_input("d")
    first = circuit.add_register("s0")
    second = circuit.add_register("s1")
    circuit.set_next(first, data_in)
    circuit.set_next(second, first)
    circuit.add_output("q", second)
    return circuit


class TestCycleSimulator:
    def test_two_cycle_latency(self):
        sim = CycleSimulator(shift_circuit())
        outputs = []
        for bit in (1, 0, 1, 1, 0, 0):
            outputs.append(sim.step({"d": bit})["q"])
        assert outputs == [False, False, True, False, True, True]

    def test_reset_restores_init(self):
        circuit = Circuit("c")
        reg = circuit.add_register("r", init=True)
        circuit.set_next(reg, circuit.aig.lnot(reg))
        circuit.add_output("q", reg)
        sim = CycleSimulator(circuit)
        assert sim.step({})["q"] is True
        assert sim.step({})["q"] is False
        sim.reset()
        assert sim.step({})["q"] is True

    def test_peek_register(self):
        sim = CycleSimulator(shift_circuit())
        sim.step({"d": 1})
        assert sim.peek("s0") is True
        assert sim.peek("s1") is False
        with pytest.raises(KeyError):
            sim.peek("nope")

    def test_vector_input_port(self):
        circuit = Circuit("v")
        vec = circuit.add_input_vector("x", 4)
        circuit.add_output("eq", vec.eq_const(9))
        sim = CycleSimulator(circuit)
        assert sim.step({"x": 9})["eq"]
        assert not sim.step({"x": 8})["eq"]

    def test_missing_inputs_default_to_zero(self):
        circuit = Circuit("m")
        a = circuit.add_input("a")
        circuit.add_output("q", a)
        sim = CycleSimulator(circuit)
        assert sim.step({})["q"] is False

    def test_run_stream_watch_subset(self):
        circuit = Circuit("w")
        byte = circuit.add_input_vector("byte", 8)
        circuit.add_output("is_a", byte.eq_const(ord("a")))
        circuit.add_output("always", TRUE)
        sim = CycleSimulator(circuit)
        trace = sim.run_stream(b"ab", watch=["is_a"])
        assert list(trace) == ["is_a"]
        assert trace["is_a"] == [True, False]

    def test_run_stream_accepts_str(self):
        circuit = Circuit("s")
        byte = circuit.add_input_vector("byte", 8)
        circuit.add_output("is_x", byte.eq_const(ord("x")))
        sim = CycleSimulator(circuit)
        assert sim.run_stream("axe")["is_x"] == [False, True, False]
