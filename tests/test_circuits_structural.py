"""Structural tracker: gate-level vs ScopeMachine vs vectorised closed form."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.structural import (
    ScopeMachine,
    comma_positions,
    depth_array,
    scope_close_positions,
    string_mask,
)
from repro.hw.gatesim import CycleSimulator
from repro.hw.circuits import add_structural_tracker, structural_group
from repro.hw.rtl import Circuit


def build_tracker_circuit():
    circuit = Circuit("tracker")
    byte = circuit.add_input_vector("byte", 8)
    reset = circuit.add_input("record_reset")
    signals = add_structural_tracker(circuit, byte, reset)
    circuit.add_output("masked", signals.masked)
    circuit.add_output("open", signals.open_bracket)
    circuit.add_output("close", signals.close_bracket)
    circuit.add_output("comma", signals.comma)
    for i, bit in enumerate(signals.depth.bits):
        circuit.add_output(f"depth{i}", bit)
    return circuit


def gate_structural_trace(stream):
    circuit = build_tracker_circuit()
    sim = CycleSimulator(circuit)
    masked, opens, closes, commas, depths = [], [], [], [], []
    for byte in stream:
        out = sim.step({"byte": byte, "record_reset": 0})
        masked.append(out["masked"])
        opens.append(out["open"])
        closes.append(out["close"])
        commas.append(out["comma"])
        depths.append(
            sum(out[f"depth{i}"] << i for i in range(5))
        )
    return masked, opens, closes, commas, depths


def scalar_structural_trace(stream):
    machine = ScopeMachine()
    masked, opens, closes, commas, depths = [], [], [], [], []
    for byte in stream:
        depths.append(machine.depth)
        m, o, c, k = machine.step(byte)
        masked.append(m)
        opens.append(o)
        closes.append(c)
        commas.append(k)
    return masked, opens, closes, commas, depths


RECORD = (
    b'{"e":[{"v":"35.2","u":"far","n":"temp\\"er{ature"},'
    b'{"v":"12","u":"per","n":"humi[dity"}],"bt":1422748800000}'
)


class TestScalarVsVectorised:
    def test_string_mask_on_record(self):
        arr = np.frombuffer(RECORD, dtype=np.uint8)
        vectorised = string_mask(arr)
        scalar = scalar_structural_trace(RECORD)[0]
        assert vectorised.tolist() == scalar

    def test_depth_on_record(self):
        arr = np.frombuffer(RECORD, dtype=np.uint8)
        vectorised = depth_array(arr)
        scalar = scalar_structural_trace(RECORD)[4]
        assert vectorised.tolist() == scalar

    def test_close_positions_on_record(self):
        arr = np.frombuffer(RECORD, dtype=np.uint8)
        closes = scope_close_positions(arr)
        scalar_closes = [
            i for i, c in enumerate(scalar_structural_trace(RECORD)[2]) if c
        ]
        assert closes.tolist() == scalar_closes

    def test_comma_positions_exclude_strings(self):
        data = b'{"a":"x,y",  "b":1},'
        arr = np.frombuffer(data, dtype=np.uint8)
        commas = comma_positions(arr)
        # the comma inside "x,y" must be masked
        for position in commas:
            assert data[position] == ord(",")
        assert 8 not in commas.tolist()

    @settings(max_examples=60, deadline=None)
    @given(stream=st.binary(max_size=60))
    def test_mask_equivalence_on_arbitrary_bytes(self, stream):
        arr = np.frombuffer(stream, dtype=np.uint8)
        vectorised = string_mask(arr).tolist()
        scalar = scalar_structural_trace(stream)[0]
        assert vectorised == scalar


class TestGateVsScalar:
    def test_on_senml_record(self):
        gate = gate_structural_trace(RECORD)
        scalar = scalar_structural_trace(RECORD)
        assert gate == scalar

    def test_escaped_quotes(self):
        data = b'{"k":"a\\"b\\\\","n":[1,2]}'
        assert gate_structural_trace(data) == scalar_structural_trace(data)

    def test_brackets_inside_strings_ignored(self):
        data = b'{"k":"}{][","d":{"x":1}}'
        gate = gate_structural_trace(data)
        scalar = scalar_structural_trace(data)
        assert gate == scalar
        # depth must come back to 0 at the final close
        assert scalar[4][-1] == 1  # before processing final '}'

    @settings(max_examples=30, deadline=None)
    @given(
        stream=st.text(
            alphabet='{}[]",\\ab:0', max_size=40
        ).map(lambda s: s.encode())
    )
    def test_gate_equals_scalar_random(self, stream):
        assert gate_structural_trace(stream) == (
            scalar_structural_trace(stream)
        )


class TestStructuralGroupCircuit:
    def build_group(self, comma_scoped=False):
        """Group of two plain input fires (children driven externally)."""
        circuit = Circuit("group")
        byte = circuit.add_input_vector("byte", 8)
        reset = circuit.add_input("record_reset")
        fire_a = circuit.add_input("fire_a")
        fire_b = circuit.add_input("fire_b")
        signals = add_structural_tracker(circuit, byte, reset)
        match = structural_group(
            circuit, signals, [fire_a, fire_b],
            record_reset=reset, comma_scoped=comma_scoped,
        )
        circuit.add_output("match", match)
        return circuit

    def run(self, circuit, events):
        """events: list of (byte, fire_a, fire_b); returns final match."""
        sim = CycleSimulator(circuit)
        out = None
        for byte, fa, fb in events:
            out = sim.step(
                {
                    "byte": byte, "fire_a": fa, "fire_b": fb,
                    "record_reset": 0,
                }
            )
        return out["match"]

    def test_same_scope_fires(self):
        circuit = self.build_group()
        events = [(ord("{"), 0, 0), (ord("a"), 1, 0), (ord("b"), 0, 1),
                  (ord("}"), 0, 0), (ord("x"), 0, 0)]
        assert self.run(circuit, events)

    def test_different_scopes_do_not_combine(self):
        circuit = self.build_group()
        events = [
            (ord("{"), 0, 0), (ord("a"), 1, 0), (ord("}"), 0, 0),
            (ord("{"), 0, 0), (ord("b"), 0, 1), (ord("}"), 0, 0),
            (ord("x"), 0, 0),
        ]
        assert not self.run(circuit, events)

    def test_fire_on_closing_byte_counts(self):
        """A number delimited by '}' fires on the close itself."""
        circuit = self.build_group()
        events = [(ord("{"), 0, 0), (ord("a"), 1, 0), (ord("}"), 0, 1),
                  (ord("x"), 0, 0)]
        assert self.run(circuit, events)

    def test_comma_scoped_variant(self):
        circuit = self.build_group(comma_scoped=True)
        # fires split by a comma never combine
        events = [(ord("{"), 0, 0), (ord("a"), 1, 0), (ord(","), 0, 0),
                  (ord("b"), 0, 1), (ord("}"), 0, 0), (ord("x"), 0, 0)]
        assert not self.run(circuit, events)

    def test_masked_close_does_not_clear(self):
        circuit = self.build_group()
        events = [
            (ord("{"), 0, 0), (ord('"'), 0, 0), (ord("}"), 1, 0),
            (ord('"'), 0, 0),  # the '}' was inside a string
            (ord("b"), 0, 1), (ord("}"), 0, 0), (ord("x"), 0, 0),
        ]
        assert self.run(circuit, events)
