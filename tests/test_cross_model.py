"""Randomised cross-model equivalence: the library's strongest property.

For randomly composed raw-filter expressions and randomly drawn records,
the three implementations of the same specification must agree:

    scalar behavioural  ==  vectorised harness  ==  gate-level circuit

and none of them may ever reject a record that provably satisfies the
filter semantics (spot-checked via constructed witnesses).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.composition as comp
from repro.data import Dataset, load_dataset
from repro.eval.harness import DatasetView, evaluate_expression
from repro.hw.gatesim import CycleSimulator
from repro.hw.circuits import build_raw_filter_circuit

NEEDLES = ["temperature", "humidity", "dust", "light", "n", "v"]

def _string_pred(args):
    needle, block = args
    if block != "N" and block > len(needle):
        block = 1
    return comp.StringPredicate(needle, block)


primitive_exprs = st.one_of(
    st.tuples(
        st.sampled_from(NEEDLES), st.sampled_from([1, 2, "N"])
    ).map(_string_pred),
    st.tuples(
        st.integers(-50, 100), st.integers(0, 200)
    ).map(lambda t: comp.v_int(t[0], t[0] + t[1])),
    st.tuples(
        st.integers(-500, 500), st.integers(1, 400)
    ).map(
        lambda t: comp.v(
            f"{t[0] / 10:.1f}", f"{(t[0] + t[1]) / 10:.1f}"
        )
    ),
)


def group_exprs(children):
    return st.lists(primitive_exprs, min_size=1, max_size=2).map(
        comp.Group
    )


filter_exprs = st.recursive(
    st.one_of(primitive_exprs, group_exprs(primitive_exprs)),
    lambda children: st.one_of(
        st.lists(children, min_size=1, max_size=3).map(comp.And),
        st.lists(children, min_size=1, max_size=3).map(comp.Or),
    ),
    max_leaves=5,
)


@pytest.fixture(scope="module")
def record_pool():
    return load_dataset("smartcity", 60).records


@settings(max_examples=40, deadline=None)
@given(expr=filter_exprs, indices=st.lists(st.integers(0, 59),
                                           min_size=1, max_size=6))
def test_scalar_equals_vectorised(expr, indices, record_pool):
    records = [record_pool[i] for i in indices]
    dataset = Dataset("probe", records)
    vectorised = evaluate_expression(DatasetView(dataset), expr)
    scalar = [comp.evaluate_record(expr, r) for r in records]
    assert vectorised.tolist() == scalar


@settings(max_examples=12, deadline=None)
@given(expr=filter_exprs, index=st.integers(0, 59))
def test_gate_level_equals_scalar(expr, index, record_pool):
    record = record_pool[index]
    circuit = build_raw_filter_circuit(expr)
    sim = CycleSimulator(circuit)
    trace = sim.run_stream(record + b"\n",
                           extra_inputs={"record_reset": 0})
    assert trace["accept"][-1] == comp.evaluate_record(expr, record)


@settings(max_examples=30, deadline=None)
@given(
    needle=st.sampled_from(["temperature", "dust"]),
    value_tenths=st.integers(8, 350),
)
def test_witness_records_always_accepted(needle, value_tenths):
    """Constructed witness: a record that literally satisfies the filter
    semantics (needle present, value in range, same object) must be
    accepted by every model."""
    value = f"{value_tenths / 10:.1f}"
    record = (
        '{"e":[{"v":"%s","u":"per","n":"%s"}],"bt":1}'
        % (value, needle)
    ).encode()
    expr = comp.group(
        comp.StringPredicate(needle, 1), comp.v("0.7", "35.1")
    )
    in_range = 0.7 <= value_tenths / 10 <= 35.1
    scalar = comp.evaluate_record(expr, record)
    if in_range:
        assert scalar
    dataset = Dataset("w", [record])
    vectorised = evaluate_expression(DatasetView(dataset), expr)
    assert bool(vectorised[0]) == scalar


@settings(max_examples=25, deadline=None)
@given(
    expr=filter_exprs,
    blob=st.binary(min_size=0, max_size=50),
)
def test_filters_robust_to_garbage_bytes(expr, blob):
    """Raw filters see raw bytes: arbitrary (newline-free) garbage must
    never crash any model, and scalar == vectorised on it."""
    record = blob.replace(b"\n", b" ")
    scalar = comp.evaluate_record(expr, record)
    dataset = Dataset("garbage", [record])
    vectorised = evaluate_expression(DatasetView(dataset), expr)
    assert bool(vectorised[0]) == scalar
