"""Unit tests for Thompson NFAs, subset construction and minimisation."""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regex.ast import alt, concat, lit, opt, plus, star
from repro.regex.charclass import CharClass
from repro.regex.dfa import DFA
from repro.regex.nfa import build_nfa
from repro.regex.parser import parse_regex


class TestNFA:
    def test_literal_accepts(self):
        nfa = build_nfa(lit("ab"))
        assert nfa.accepts("ab")
        assert not nfa.accepts("a")
        assert not nfa.accepts("abc")

    def test_alternation(self):
        nfa = build_nfa(alt(lit("ab"), lit("cd")))
        assert nfa.accepts("ab") and nfa.accepts("cd")
        assert not nfa.accepts("ac")

    def test_star(self):
        nfa = build_nfa(star(lit("ab")))
        assert nfa.accepts("")
        assert nfa.accepts("abab")
        assert not nfa.accepts("aba")

    def test_epsilon_closure(self):
        nfa = build_nfa(opt(lit("a")))
        closure = nfa.epsilon_closure({nfa.start})
        assert nfa.accept in closure  # empty string accepted

    def test_plus_requires_one(self):
        nfa = build_nfa(plus(lit("a")))
        assert not nfa.accepts("")
        assert nfa.accepts("aaa")

    def test_all_charclasses(self):
        node = concat(lit("a"), lit(CharClass.digits()))
        nfa = build_nfa(node)
        assert CharClass.digits() in nfa.all_charclasses()


class TestSubsetConstruction:
    def test_dfa_matches_nfa(self):
        node = parse_regex("(ab|a)(b|)")
        nfa = build_nfa(node)
        dfa = DFA.from_nfa(nfa)
        for text in ["ab", "abb", "a", "b", "", "aab"]:
            assert dfa.accepts(text) == nfa.accepts(text)

    def test_complete_table(self):
        dfa = DFA.from_regex(lit("a"))
        assert dfa.table.shape[1] == 256
        # every entry is a valid state
        assert (dfa.table >= 0).all()
        assert (dfa.table < dfa.num_states).all()

    def test_sink_absorbs(self):
        dfa = DFA.from_regex(lit("abc"))
        state = dfa.run("x")
        assert dfa.run("anything", state) == state

    def test_run_resumes_from_state(self):
        dfa = DFA.from_regex(lit("abc"))
        mid = dfa.run("ab")
        assert dfa.accepting[dfa.run("c", mid)]


class TestMinimisation:
    def test_removes_redundant_states(self):
        # (a|b)(a|b) written redundantly
        node = alt(
            concat(lit("a"), lit("a")),
            concat(lit("a"), lit("b")),
            concat(lit("b"), lit("a")),
            concat(lit("b"), lit("b")),
        )
        dfa = DFA.from_nfa(build_nfa(node))
        minimal = dfa.minimized()
        # states: start, after-1-char, accept, sink
        assert minimal.num_states == 4

    def test_language_preserved(self):
        node = parse_regex("(ab)*c|d+")
        dfa = DFA.from_nfa(build_nfa(node))
        minimal = dfa.minimized()
        for text in ["c", "abc", "ababc", "d", "ddd", "ab", "", "abd"]:
            assert dfa.accepts(text) == minimal.accepts(text)

    def test_fig2_state_count(self):
        """Fig. 2's DFA for i >= 35 has 5 live states (s0-s3 + accept)."""
        dfa = DFA.from_pattern("3[5-9]|[4-9][0-9]|[1-9][0-9][0-9]+")
        live = dfa.num_states - len(dfa.dead_states())
        assert live == 5

    def test_idempotent(self):
        dfa = DFA.from_pattern("(a|b)*abb")
        once = dfa.minimized()
        twice = once.minimized()
        assert once.num_states == twice.num_states


class TestAlgebra:
    def test_intersection(self):
        evens = DFA.from_pattern("(aa)*")
        nonempty = DFA.from_pattern("a+")
        both = evens.intersect(nonempty)
        assert both.accepts("aa")
        assert not both.accepts("")
        assert not both.accepts("aaa")

    def test_union(self):
        either = DFA.from_pattern("ab").union(DFA.from_pattern("cd"))
        assert either.accepts("ab") and either.accepts("cd")
        assert not either.accepts("ad")

    def test_difference_and_emptiness(self):
        broad = DFA.from_pattern("a+")
        narrow = DFA.from_pattern("a")
        diff = broad.difference(narrow)
        assert diff.accepts("aa")
        assert not diff.accepts("a")
        assert narrow.difference(broad).is_empty()

    def test_equivalence(self):
        left = DFA.from_pattern("(a|b)*")
        right = DFA.from_pattern("(b|a)*")
        assert left.equivalent(right)
        assert not left.equivalent(DFA.from_pattern("a*"))

    def test_complement(self):
        dfa = DFA.from_pattern("ab")
        comp = dfa.complement()
        assert not comp.accepts("ab")
        assert comp.accepts("x")

    def test_shortest_accepted(self):
        dfa = DFA.from_pattern("aaa|aa")
        assert dfa.shortest_accepted() == b"aa"

    def test_shortest_accepted_empty_language(self):
        dfa = DFA.from_pattern("a").intersect(DFA.from_pattern("b"))
        assert dfa.shortest_accepted() is None


class TestHardwareReorder:
    def test_language_preserved(self):
        dfa = DFA.from_pattern("ab|cd+")
        reordered = dfa.hardware_reordered()
        for text in ["ab", "cd", "cddd", "x", ""]:
            assert dfa.accepts(text) == reordered.accepts(text)

    def test_sink_becomes_zero(self):
        dfa = DFA.from_pattern("abc")
        reordered = dfa.hardware_reordered()
        # state 0 is the most-targeted one: the sink
        assert 0 in reordered.dead_states()

    def test_transition_classes_cover_alphabet(self):
        dfa = DFA.from_pattern("[0-9]+")
        for edges in dfa.transition_classes():
            union = CharClass.empty()
            for charclass in edges.values():
                union = union | charclass
            assert len(union) == 256


@settings(max_examples=60, deadline=None)
@given(
    pattern=st.sampled_from(
        [
            "(a|b)*abb",
            "a(b|c)d*",
            "x+y+",
            "(ab|ba)+",
            "a{2,4}b?",
            "[ab]*c",
        ]
    ),
    text=st.text(alphabet="abcdxy", max_size=12),
)
def test_dfa_agrees_with_python_re(pattern, text):
    dfa = DFA.from_pattern(pattern)
    expected = re.fullmatch(pattern, text) is not None
    assert dfa.accepts(text) == expected


@settings(max_examples=40, deadline=None)
@given(text=st.text(alphabet="ab", max_size=16))
def test_minimized_equals_original_pointwise(text):
    dfa = DFA.from_nfa(build_nfa(parse_regex("(ab)*a?b+|ba")))
    assert dfa.accepts(text) == dfa.minimized().accepts(text)
