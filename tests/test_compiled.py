"""Tests for the compiled fused-kernel backend.

The contract under test: ``backend="compiled"`` is bit-identical to the
scalar reference oracle (and therefore to the vectorised backend) on
every expression shape it specialises — including the short-circuit
path, precomputed AtomCache inputs, worker transports and seam-fuzzed
chunk streaming — and degrades loudly but correctly on predicates it
cannot specialise.
"""

import random
import warnings

import pytest

import repro.core.composition as comp
from repro.data import load_dataset
from repro.engine import (
    AtomCache,
    CompiledBackend,
    EngineConfig,
    FilterEngine,
    SelectivityTracker,
    VectorizedBackend,
    clear_kernels,
    resolve_backend,
)
from repro.engine.compiled import (
    build_plan,
    cost_seed,
    generate_kernel_source,
    kernel_for,
)


def qs1_style_filter():
    return comp.And([
        comp.group(comp.s("temperature", 1), comp.v("-12.5", "43.1")),
        comp.group(comp.s("light", 1), comp.v("1345", "26282")),
    ])


@pytest.fixture(scope="module")
def corpus():
    return load_dataset("smartcity", 300, seed=11)


# ---------------------------------------------------------------------------
# selectivity tracking
# ---------------------------------------------------------------------------

class TestSelectivityTracker:
    def test_rates_accumulate_across_observations(self):
        tracker = SelectivityTracker()
        atom = comp.s("temperature", 1)
        assert tracker.rate(atom) is None
        assert tracker.rate(atom, 0.5) == 0.5
        tracker.observe(atom, 100, 25)
        tracker.observe(atom, 100, 35)
        assert tracker.rate(atom) == pytest.approx(0.3)

    def test_snapshot_sorted_most_selective_first(self):
        tracker = SelectivityTracker()
        tracker.observe(comp.s("aa", 1), 100, 90)
        tracker.observe(comp.s("bb", 1), 100, 10)
        rows = list(tracker.snapshot().items())
        assert rows[0][0] == 's1("bb")'
        assert rows[0][1]["selectivity"] == pytest.approx(0.1)
        assert rows[1][1]["passed"] == 90

    def test_zero_evaluated_ignored(self):
        tracker = SelectivityTracker()
        tracker.observe(comp.s("aa", 1), 0, 0)
        assert tracker.snapshot() == {}


# ---------------------------------------------------------------------------
# plans and codegen
# ---------------------------------------------------------------------------

class TestKernelPlan:
    def test_group_children_become_prefilters(self):
        plan = build_plan(qs1_style_filter())
        kinds = [(step.kind, step.atom.notation()) for step in plan.steps]
        assert plan.mode == "and"
        # 4 record-level prefilters (2 groups x 2 children) + 2 exact
        assert [kind for kind, _ in kinds].count("prefilter") == 4
        assert [kind for kind, _ in kinds].count("exact") == 2
        prefilter_notations = {n for k, n in kinds if k == "prefilter"}
        assert 's1("temperature")' in prefilter_notations
        assert "v(1345 <= f <= 26282)" in prefilter_notations

    def test_duplicate_children_deduplicated(self):
        shared = comp.s("light", 1)
        expr = comp.And([
            comp.group(shared, comp.v("1", "2")),
            comp.group(shared, comp.v("3", "4")),
        ])
        plan = build_plan(expr)
        notations = [
            step.atom.notation()
            for step in plan.steps if step.kind == "prefilter"
        ]
        assert notations.count('s1("light")') == 1

    def test_nested_and_flattened(self):
        expr = comp.And([
            comp.s("a", 1),
            comp.And([comp.s("b", 1), comp.s("c", 1)]),
        ])
        plan = build_plan(expr)
        assert [s.atom.notation() for s in plan.steps] == [
            's1("a")', 's1("b")', 's1("c")',
        ]
        assert all(step.kind == "exact" for step in plan.steps)

    def test_or_plan_has_disjunct_steps_only(self):
        expr = comp.Or([comp.s("a", 1), comp.s("b", 1)])
        plan = build_plan(expr)
        assert plan.mode == "or"
        assert [step.kind for step in plan.steps] == [
            "disjunct", "disjunct",
        ]

    def test_single_primitive_plan(self):
        plan = build_plan(comp.v("1", "2"))
        assert len(plan.steps) == 1
        assert plan.steps[0].kind == "exact"


class TestCodegen:
    def test_source_contains_step_functions_and_driver(self):
        plan = build_plan(qs1_style_filter())
        source = generate_kernel_source(plan)
        for step in plan.steps:
            assert f"def _step_{step.index}(ctx, state):" in source
        assert "def kernel(ctx, state, order):" in source
        assert "_STEPS" in source

    def test_kernel_source_retained_on_kernel(self):
        clear_kernels()
        kernel, reused = kernel_for(comp.s("temperature", 1))
        assert not reused
        assert "def kernel" in kernel.source

    def test_registry_reuses_by_fingerprint(self):
        clear_kernels()
        first, reused_first = kernel_for(qs1_style_filter())
        second, reused_second = kernel_for(qs1_style_filter())
        assert not reused_first
        assert reused_second
        assert second is first

    def test_cost_seed_ranks_strings_below_groups(self):
        string_cost = cost_seed(comp.s("light", 1))
        group_cost = cost_seed(
            comp.group(comp.s("light", 1), comp.v("1345", "26282"))
        )
        assert 0 < string_cost < group_cost


class TestOrdering:
    def test_selective_atom_ordered_first(self):
        backend = CompiledBackend()
        expr = comp.And([comp.s("rare", 1), comp.s("common", 1)])
        plan = build_plan(expr)
        backend.tracker().observe(comp.s("rare", 1), 100, 2)
        backend.tracker().observe(comp.s("common", 1), 100, 98)
        order = backend.order_for(plan)
        first = plan.steps[order[0]]
        assert first.atom.notation() == 's1("rare")'

    def test_useless_prefilters_dropped(self):
        backend = CompiledBackend()
        plan = build_plan(qs1_style_filter())
        for step in plan.steps:
            # every prefilter observed to pass ~everything
            passed = 99 if step.kind == "prefilter" else 50
            backend.tracker().observe(step.atom, 100, passed)
        order = backend.order_for(plan)
        kinds = [plan.steps[i].kind for i in order]
        assert "prefilter" not in kinds
        assert kinds.count("exact") == 2


# ---------------------------------------------------------------------------
# differential: compiled vs vectorized vs the scalar oracle
# ---------------------------------------------------------------------------

NEEDLE_POOL = ["temperature", "humidity", "taxi", '"n"', "29", "e", "al"]


def random_primitive(rng, for_group=False):
    if rng.random() < 0.5:
        needle = rng.choice(NEEDLE_POOL)
        blocks = [1, min(2, len(needle)), len(needle)]
        if not for_group:
            blocks.append("N")
        return comp.s(needle, rng.choice(blocks))
    kind = rng.choice(["int", "float"])
    lo = rng.randint(0, 40)
    hi = lo + rng.randint(0, 60)
    if kind == "float":
        return comp.v(f"{lo}.{rng.randint(0, 9)}", f"{hi}.9")
    return comp.v_int(lo, hi)


def random_expression(rng, depth=0):
    roll = rng.random()
    if depth >= 2 or roll < 0.3:
        return random_primitive(rng)
    if roll < 0.5:
        children = [
            random_primitive(rng, for_group=True)
            for _ in range(rng.randint(1, 3))
        ]
        return comp.Group(children, comma_scoped=rng.random() < 0.3)
    combinator = comp.And if roll < 0.8 else comp.Or
    children = [
        random_expression(rng, depth + 1)
        for _ in range(rng.randint(2, 3))
    ]
    return combinator(children)


class TestDifferential:
    @pytest.mark.parametrize("dataset_name", ["smartcity", "taxi"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_compiled_equals_oracle_on_random_expressions(
        self, dataset_name, seed
    ):
        """Randomised FilterExpr trees: compiled == vectorized ==
        scalar, bit for bit."""
        rng = random.Random(seed)
        dataset = load_dataset(dataset_name, 150, seed=2000 + seed)
        engine = FilterEngine(backend="compiled")
        for _ in range(8):
            expr = random_expression(rng)
            fused = engine.match_bits(expr, dataset)
            vec = engine.match_bits(expr, dataset, backend="vectorized")
            oracle = engine.match_bits(expr, dataset, backend="scalar")
            assert fused.dtype == bool and len(fused) == len(dataset)
            assert (fused == oracle).all(), expr.notation()
            assert (vec == oracle).all(), expr.notation()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seam_fuzzed_streaming_matches_batch(self, seed, corpus):
        """Random chunk boundaries must not change compiled results:
        streamed matches == whole-corpus oracle for fuzzed chunk
        sizes (records straddle every kind of seam)."""
        rng = random.Random(100 + seed)
        expr = random_expression(rng)
        oracle = FilterEngine().match_bits(
            expr, corpus, backend="scalar"
        ).tolist()
        data = corpus.stream.tobytes()
        for _ in range(3):
            chunk_bytes = rng.choice([17, 129, 1024, 8192])
            engine = FilterEngine(
                backend="compiled", chunk_bytes=chunk_bytes
            )
            streamed = []
            for batch in engine.stream(expr, data):
                streamed.extend(bool(m) for m in batch.matches)
            assert streamed == oracle, (
                f"chunk_bytes={chunk_bytes}: {expr.notation()}"
            )

    def test_short_circuit_path_exercised_and_identical(self, corpus):
        """A never-matching first conjunct empties the active set: the
        remaining steps are skipped yet the result stays exact."""
        expr = comp.And([
            comp.s("no-such-needle-anywhere", 1),
            comp.group(comp.s("temperature", 1), comp.v("-99", "99")),
        ])
        engine = FilterEngine(backend="compiled")
        bits = engine.match_bits(expr, corpus)
        oracle = engine.match_bits(expr, corpus, backend="scalar")
        assert (bits == oracle).all()
        assert not bits.any()
        compiled = engine.stats()["compiled"]
        assert compiled["atoms_short_circuited"] > 0

    def test_or_short_circuit_identical(self, corpus):
        """Accepted records skip later disjuncts without changing the
        union."""
        expr = comp.Or([
            comp.s("temperature", 1),
            comp.s("humidity", 1),
            comp.v_int(0, 10 ** 9),
        ])
        engine = FilterEngine(backend="compiled")
        bits = engine.match_bits(expr, corpus)
        oracle = engine.match_bits(expr, corpus, backend="scalar")
        assert (bits == oracle).all()
        assert engine.stats()["compiled"]["atoms_short_circuited"] > 0

    def test_regex_predicate_specialised(self, corpus):
        """Regex atoms run through the harness' per-record path inside
        the kernel; results still match the oracle."""
        expr = comp.And([
            comp.s("temperature", 1),
            comp.RegexPredicate(r'"u":"[A-Za-z]+"'),
        ])
        engine = FilterEngine(backend="compiled")
        bits = engine.match_bits(expr, corpus)
        oracle = engine.match_bits(expr, corpus, backend="scalar")
        assert (bits == oracle).all()

    def test_empty_batch_and_single_record(self):
        engine = FilterEngine(backend="compiled")
        expr = qs1_style_filter()
        assert engine.match_bits(expr, []).shape == (0,)
        record = (
            b'{"e":[{"v":"30.0","n":"temperature"},'
            b'{"v":"2000","n":"light"}]}'
        )
        bits = engine.match_bits(expr, [record])
        assert bits.tolist() == [
            engine.matches_record(expr, record)
        ]


# ---------------------------------------------------------------------------
# kernel reuse + engine integration
# ---------------------------------------------------------------------------

class TestEngineIntegration:
    def test_kernel_compiled_once_then_reused(self, corpus):
        clear_kernels()
        engine = FilterEngine(backend="compiled")
        expr = qs1_style_filter()
        engine.match_bits(expr, corpus)
        engine.match_bits(expr, corpus)
        compiled = engine.stats()["compiled"]
        assert compiled["kernels_compiled"] == 1
        assert compiled["kernels_reused"] == 1

    def test_kernels_shared_across_engines(self, corpus):
        """Gateway SWAP shape: a second engine reuses the first's
        compilation via the process-wide registry."""
        clear_kernels()
        expr = qs1_style_filter()
        FilterEngine(backend="compiled").match_bits(expr, corpus)
        second = FilterEngine(backend="compiled")
        second.match_bits(expr, corpus)
        compiled = second.stats()["compiled"]
        assert compiled["kernels_compiled"] == 0
        assert compiled["kernels_reused"] == 1

    def test_engine_stats_expose_selectivity(self, corpus):
        engine = FilterEngine(backend="compiled")
        engine.match_bits(qs1_style_filter(), corpus)
        table = engine.stats()["selectivity"]
        assert table, "expected observed selectivity rows"
        rates = [row["selectivity"] for row in table.values()]
        assert all(0.0 <= rate <= 1.0 for rate in rates)
        # sorted most selective first
        assert rates == sorted(rates)

    def test_vectorized_runs_feed_the_same_tracker(self, corpus):
        engine = FilterEngine()  # vectorized default
        engine.match_bits(qs1_style_filter(), corpus)
        assert engine.stats()["selectivity"]

    def test_engine_config_accepts_compiled(self):
        config = EngineConfig(backend="compiled")
        engine = FilterEngine(config=config)
        assert isinstance(engine.backend(), CompiledBackend)
        assert isinstance(
            resolve_backend("compiled"), CompiledBackend
        )

    def test_worker_transport_differential(self, corpus):
        """Workers recompile the kernel from the shipped expression;
        parallel streaming stays bit-identical to the oracle."""
        expr = qs1_style_filter()
        oracle = FilterEngine().match_bits(
            expr, corpus, backend="scalar"
        ).tolist()
        engine = FilterEngine(
            config=EngineConfig(
                backend="compiled",
                chunk_bytes=8 * 1024,
                num_workers=2,
            ),
            cache=True,
        )
        streamed = []
        for batch in engine.stream(expr, corpus.stream.tobytes()):
            streamed.extend(bool(m) for m in batch.matches)
        assert streamed == oracle
        assert engine.stats()["parallel_fallback"] is None


# ---------------------------------------------------------------------------
# AtomCache composition
# ---------------------------------------------------------------------------

class TestAtomCacheComposition:
    def test_cached_masks_feed_the_fused_pass(self, corpus):
        """Masks computed by a vectorized pass are consumed by the
        compiled kernel as precomputed inputs (cache hits, identical
        bits)."""
        engine = FilterEngine(cache=True)
        expr = qs1_style_filter()
        vec = engine.match_bits(expr, corpus, backend="vectorized")
        hits_before = engine.atom_cache.stats()["hits"]
        fused = engine.match_bits(expr, corpus, backend="compiled")
        hits_after = engine.atom_cache.stats()["hits"]
        assert (fused == vec).all()
        assert hits_after > hits_before

    def test_compiled_masks_warm_the_shared_cache(self, corpus):
        """Full-batch masks the kernel computes are inserted back, so a
        later vectorized pass over the same corpus starts warm."""
        engine = FilterEngine(backend="compiled", cache=True)
        expr = qs1_style_filter()
        engine.match_bits(expr, corpus)
        inserts = engine.atom_cache.stats()["inserts"]
        assert inserts > 0
        misses_before = engine.atom_cache.stats()["misses"]
        vec = engine.match_bits(expr, corpus, backend="vectorized")
        oracle = engine.match_bits(expr, corpus, backend="scalar")
        assert (vec == oracle).all()
        # the top-level expression itself is evaluated fresh, but the
        # kernel-computed full-batch atom masks must be served from
        # the cache rather than re-missed
        assert engine.atom_cache.stats()["hits"] > 0
        assert engine.atom_cache.stats()["misses"] >= misses_before

    def test_shared_cache_instance_across_backends(self, corpus):
        cache = AtomCache()
        engine = FilterEngine(backend="compiled", cache=cache)
        assert engine.backend().atom_cache is cache
        assert engine.backend("vectorized").atom_cache is cache


# ---------------------------------------------------------------------------
# fallback behaviour
# ---------------------------------------------------------------------------

class _MatchesOnly:
    """A predicate with no raw-filter form (scalar protocol only)."""

    def __init__(self, needle):
        self.needle = needle

    def matches(self, record):
        return self.needle in record


class TestFallback:
    def test_fallback_warns_once_and_stays_correct(self, corpus):
        engine = FilterEngine(backend="compiled")
        predicate = _MatchesOnly(b"temperature")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = engine.match_bits(predicate, corpus)
            second = engine.match_bits(predicate, corpus)
        ours = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "compiled backend" in str(w.message)
        ]
        assert len(ours) == 1, "fallback must warn exactly once"
        oracle = engine.match_bits(predicate, corpus, backend="scalar")
        assert (first == oracle).all()
        assert (second == oracle).all()

    def test_fallback_reason_reported_in_stats(self, corpus):
        engine = FilterEngine(backend="compiled")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            engine.match_bits(_MatchesOnly(b"taxi"), corpus)
        stats = engine.stats()
        assert stats["compiled_fallback"] is not None
        assert "as_raw_filter" in stats["compiled_fallback"]
        assert stats["compiled"]["fallbacks"] == 1

    def test_no_fallback_on_expressions(self, corpus):
        engine = FilterEngine(backend="compiled")
        engine.match_bits(qs1_style_filter(), corpus)
        assert engine.stats()["compiled_fallback"] is None


# ---------------------------------------------------------------------------
# satellite: cache-less DatasetView memoisation
# ---------------------------------------------------------------------------

class TestVectorizedViewMemo:
    def test_same_batch_object_reuses_view(self, corpus, monkeypatch):
        import repro.engine.backends as backends_module

        built = []
        real_view = backends_module.DatasetView

        def counting_view(dataset):
            built.append(dataset)
            return real_view(dataset)

        monkeypatch.setattr(
            backends_module, "DatasetView", counting_view
        )
        backend = VectorizedBackend()
        expr = comp.s("temperature", 1)
        first = backend.match_bits(expr, corpus)
        second = backend.match_bits(comp.s("humidity", 1), corpus)
        assert len(built) == 1, (
            "cache-less repeated queries over one batch must share "
            "one DatasetView"
        )
        assert len(first) == len(second) == len(corpus)

    def test_new_batch_object_rebuilds_view(self, corpus):
        backend = VectorizedBackend()
        records_a = list(corpus)[:10]
        records_b = list(corpus)[10:20]
        backend.match_bits(comp.s("e", 1), records_a)
        memo_a = backend._view_memo
        backend.match_bits(comp.s("e", 1), records_b)
        memo_b = backend._view_memo
        assert memo_a[0] is records_a
        assert memo_b[0] is records_b
        assert memo_a[1] is not memo_b[1]

    def test_memoised_results_stay_correct(self, corpus):
        backend = VectorizedBackend()
        oracle_backend = resolve_backend("scalar")
        for expr in (
            comp.s("temperature", 1),
            comp.group(comp.s("temperature", 1), comp.v("0", "99")),
        ):
            fast = backend.match_bits(expr, corpus)
            slow = oracle_backend.match_bits(expr, corpus)
            assert (fast == slow).all(), expr.notation()
