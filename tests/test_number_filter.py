"""Unit tests for the behavioural number-range filter."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.number_filter import (
    NumberRangeFilter,
    batch_token_accepts,
    token_spans,
)


def arr(data):
    return np.frombuffer(data, dtype=np.uint8)


class TestTokenSpans:
    def test_simple_record(self):
        spans = token_spans(arr(b'{"v":35.2,"n":7}'))
        texts = [b'{"v":35.2,"n":7}'[s:e] for s, e in spans]
        assert texts == [b"35.2", b"7"]

    def test_letters_in_number_charset(self):
        # 'e' is a token char: words shed 'e' tokens that simply fail
        spans = token_spans(arr(b"temp"))
        texts = [b"temp"[s:e] for s, e in spans]
        assert texts == [b"e"]

    def test_signs_and_dots_merge(self):
        spans = token_spans(arr(b"x-12.5e+3y"))
        assert len(spans) == 1
        start, end = spans[0]
        assert b"x-12.5e+3y"[start:end] == b"-12.5e+3"

    def test_no_tokens(self):
        assert token_spans(arr(b"ghost wxyz!")) == []

    def test_empty_input(self):
        assert token_spans(arr(b"")) == []

    def test_adjacent_tokens_split_by_delimiters(self):
        spans = token_spans(arr(b"1,2,3"))
        assert len(spans) == 3


class TestTokenAccepts:
    def test_integer_range(self):
        f = NumberRangeFilter(12, 49, kind="int")
        assert f.token_accepts("13")
        assert not f.token_accepts("50")
        assert not f.token_accepts("13.0")

    def test_float_range(self):
        f = NumberRangeFilter("0.7", "35.1")
        assert f.token_accepts("35.1")
        assert not f.token_accepts("35.2")
        assert f.token_accepts("1")

    def test_exponent_escape(self):
        f = NumberRangeFilter(12, 49, kind="int")
        assert f.token_accepts("1e1")
        assert f.token_accepts(b"999e9")

    def test_junk_tokens_rejected(self):
        f = NumberRangeFilter(12, 49, kind="int")
        for junk in ["e", "-", ".", "-.e", "--12", "1-2"]:
            assert not f.token_accepts(junk), junk


class TestRecordLevel:
    def test_record_matches(self):
        f = NumberRangeFilter(12, 49, kind="int")
        assert f.record_matches(b'{"a":"13"}')
        assert not f.record_matches(b'{"a":"50"}')

    def test_trailing_number_is_evaluated(self):
        f = NumberRangeFilter(12, 49, kind="int")
        assert f.record_matches(b"13")  # framing newline appended

    def test_fire_positions_point_at_delimiters(self):
        f = NumberRangeFilter(12, 49, kind="int")
        data = b'{"a":13,"b":49}\n'
        positions = f.fire_positions(arr(data))
        assert positions == [7, 14]
        assert data[7:8] == b"," and data[14:15] == b"}"

    def test_quoted_values_visible(self):
        f = NumberRangeFilter("0.7", "35.1")
        assert f.record_matches(b'{"v":"30.2"}')


class TestBatchStepping:
    def build_matrix(self, tokens):
        max_len = max(len(t) for t in tokens)
        matrix = np.zeros((len(tokens), max_len), dtype=np.uint8)
        lengths = np.zeros(len(tokens), dtype=np.int64)
        for i, token in enumerate(tokens):
            matrix[i, : len(token)] = np.frombuffer(token, dtype=np.uint8)
            lengths[i] = len(token)
        return matrix, lengths

    def test_batch_equals_scalar(self):
        f = NumberRangeFilter("0.7", "35.1")
        tokens = [b"0.7", b"0.69", b"35.2", b"35.1", b"12", b"1e3",
                  b"e", b"-5", b"35.10"]
        matrix, lengths = self.build_matrix(tokens)
        got = batch_token_accepts(f.dfa, matrix, lengths)
        want = [f.token_accepts(t) for t in tokens]
        assert got.tolist() == want

    @settings(max_examples=40, deadline=None)
    @given(
        tokens=st.lists(
            st.text(alphabet="0123456789.-e+", min_size=1, max_size=8),
            min_size=1,
            max_size=12,
        )
    )
    def test_batch_equals_scalar_property(self, tokens):
        f = NumberRangeFilter(12, 49, kind="int")
        encoded = [t.encode() for t in tokens]
        matrix, lengths = self.build_matrix(encoded)
        got = batch_token_accepts(f.dfa, matrix, lengths)
        want = [f.token_accepts(t) for t in encoded]
        assert got.tolist() == want


class TestDFACaching:
    def test_same_bounds_share_dfa(self):
        a = NumberRangeFilter(12, 49, kind="int")
        b = NumberRangeFilter(12, 49, kind="int")
        assert a.dfa is b.dfa

    def test_different_kind_different_dfa(self):
        a = NumberRangeFilter(12, 49, kind="int")
        b = NumberRangeFilter(12, 49, kind="float")
        assert a.dfa is not b.dfa


class TestNoFalseNegatives:
    @settings(max_examples=80, deadline=None)
    @given(value=st.integers(12, 49))
    def test_every_in_range_int_matches(self, value):
        f = NumberRangeFilter(12, 49, kind="int")
        assert f.record_matches(f'{{"x":{value}}}'.encode())

    @settings(max_examples=80, deadline=None)
    @given(cents=st.integers(70, 3510))
    def test_every_in_range_decimal_matches(self, cents):
        f = NumberRangeFilter("0.7", "35.1")
        text = f"{cents // 100}.{cents % 100:02d}"
        assert f.record_matches(f'{{"x":"{text}"}}'.encode())
