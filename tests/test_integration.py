"""End-to-end integration tests: query → filter → hardware → system.

These tests wire the whole flow together the way the paper's evaluation
does, including a gate-level spot check of a composed Pareto-style filter
against the vectorised harness over real (synthetic) records.
"""


import repro.core.composition as comp
from repro.core.compiler import paper_pareto_expression
from repro.core.cost import exact_luts
from repro.core.design_space import DesignSpace
from repro.data import QS0, QS1, QT, inflate, load_dataset
from repro.eval.harness import DatasetView, evaluate_expression
from repro.eval.metrics import FilterMetrics
from repro.hw.gatesim import CycleSimulator
from repro.hw.circuits import build_raw_filter_circuit
from repro.system import RawFilterSoC


class TestQueryToFilterFlow:
    def test_qs0_best_filter_end_to_end(self):
        dataset = load_dataset("smartcity", 1000)
        expr = paper_pareto_expression(
            QS0,
            [
                ("group", "temperature", 1),
                ("group", "humidity", 1),
                ("group", "dust", 1),
                ("group", "airquality_raw", 1),
            ],
        )
        view = DatasetView(dataset)
        accepted = evaluate_expression(view, expr)
        truth = QS0.truth_array(dataset)
        metrics = FilterMetrics(accepted, truth)
        assert not metrics.has_false_negatives
        assert metrics.fpr < 0.2
        assert exact_luts(expr) < 600

    def test_qt_b2_fixes_tolls_collision(self):
        dataset = load_dataset("taxi", 1000)
        truth = QT.truth_array(dataset)
        view = DatasetView(dataset)
        b1 = paper_pareto_expression(
            QT, [("group", "tolls_amount", 1)]
        )
        b2 = paper_pareto_expression(
            QT, [("group", "tolls_amount", 2)]
        )
        fpr_b1 = FilterMetrics(
            evaluate_expression(view, b1), truth
        ).fpr
        fpr_b2 = FilterMetrics(
            evaluate_expression(view, b2), truth
        ).fpr
        # Table VII: 0.722 → 0.021
        assert fpr_b1 > 0.3
        assert fpr_b2 < 0.15
        assert fpr_b2 < fpr_b1 / 3

    def test_structural_beats_nonstructural(self):
        dataset = load_dataset("smartcity", 1000)
        truth = QS0.truth_array(dataset)
        view = DatasetView(dataset)
        grouped = paper_pareto_expression(
            QS0, [("group", "airquality_raw", 1)]
        )
        flat = paper_pareto_expression(
            QS0, [("pair", "airquality_raw", 1)]
        )
        fpr_grouped = FilterMetrics(
            evaluate_expression(view, grouped), truth
        ).fpr
        fpr_flat = FilterMetrics(
            evaluate_expression(view, flat), truth
        ).fpr
        assert fpr_grouped <= fpr_flat


class TestKeyValueScoping:
    """§III-C's second mechanism: key and value before the same comma."""

    def test_comma_scoping_discriminates_flat_records(self):
        """Taxi records are flat (one bracket scope), so bracket groups
        cannot separate fields — comma scoping can."""
        dataset = load_dataset("taxi", 800)
        truth = QT.truth_array(dataset)
        view = DatasetView(dataset)
        key = comp.s("fare_amount", 2)
        # a range only fares occupy rarely: high fares
        value = comp.v("100.00", "201.00")
        bracket = comp.Group([key, value])
        comma = comp.Group([key, value], comma_scoped=True)
        fpr_bracket = FilterMetrics(
            evaluate_expression(view, bracket), truth
        ).fpr
        fpr_comma = FilterMetrics(
            evaluate_expression(view, comma), truth
        ).fpr
        # comma scoping requires the value to sit in the fare's own
        # key-value segment; bracket scoping sees the whole record
        assert fpr_comma <= fpr_bracket

    def test_comma_scoping_never_loses_true_pairs(self):
        dataset = load_dataset("taxi", 500)
        view = DatasetView(dataset)
        expr = comp.Group(
            [comp.s("tolls_amount", 2), comp.v("2.50", "18.00")],
            comma_scoped=True,
        )
        accepted = evaluate_expression(view, expr)
        # every record whose tolls_amount is genuinely in range must pass
        for index, parsed in enumerate(dataset.parsed):
            tolls = parsed.get("tolls_amount")
            if tolls is not None and 2.5 <= tolls <= 18.0:
                assert accepted[index]


class TestGateLevelSpotCheck:
    def test_composed_circuit_agrees_with_harness(self):
        dataset = load_dataset("smartcity", 40)
        expr = comp.And(
            [
                comp.group(
                    comp.s("temperature", 1), comp.v("0.7", "35.1")
                ),
                comp.v_int(12, 49),
            ]
        )
        view = DatasetView(dataset)
        vectorised = evaluate_expression(view, expr)
        circuit = build_raw_filter_circuit(expr)
        sim = CycleSimulator(circuit)
        for index, record in enumerate(dataset):
            sim.reset()
            trace = sim.run_stream(
                record + b"\n", extra_inputs={"record_reset": 0}
            )
            assert trace["accept"][-1] == vectorised[index], record


class TestDesignSpaceEndToEnd:
    def test_qs1_front_shape(self):
        """QS1's headline: near-zero FPR at a fraction of the max cost."""
        dataset = load_dataset("smartcity", 800)
        space = DesignSpace(QS1, dataset)
        points = space.explore()
        front = space.pareto(points, epsilon=0.004, exact_luts=False)
        fprs = [p.fpr for p in front]
        luts = [p.luts for p in front]
        assert min(fprs) < 0.01
        # a sub-0.1-FPR point exists at well under half the max cost
        cheap_good = [
            p for p in front if p.fpr < 0.1 and p.luts < max(luts) / 2
        ]
        assert cheap_good

    def test_fronts_monotone(self):
        dataset = load_dataset("taxi", 600)
        space = DesignSpace(QT, dataset)
        front = space.pareto(space.explore(), epsilon=0.003,
                             exact_luts=False)
        for earlier, later in zip(front, front[1:]):
            assert earlier.fpr >= later.fpr
            assert earlier.luts <= later.luts


class TestSystemEndToEnd:
    def test_filter_offloads_parser(self):
        dataset = load_dataset("smartcity", 500)
        corpus = inflate(dataset, 2 * 1024 * 1024)
        expr = paper_pareto_expression(
            QS0,
            [("group", "humidity", 1), ("value", "airquality_raw")],
        )
        soc = RawFilterSoC(expr)
        report = soc.run(corpus)
        truth = QS0.truth_array(corpus)
        metrics = FilterMetrics(report.matches, truth)
        assert not metrics.has_false_negatives
        assert metrics.filtered_fraction > 0.05
        assert report.achieved_bandwidth > 1e9
