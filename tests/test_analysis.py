"""Static analysis & verification (``repro.analysis``).

Covers the three passes end to end: the kernel verifier's source
whitelist and truth-table plan-equivalence proof (accepting every plan
the real codegen emits, rejecting injected miscompiles), the
annotation-driven lock-discipline checker, the resource-lifecycle
linter, the baseline machinery, the ``repro lint`` CLI, and the
``verify_kernels`` wiring through :class:`CompiledBackend` /
:class:`FilterEngine` — including that the whole shipped tree is
finding-free with an empty baseline.
"""

import json
import random
import textwrap

import pytest

import repro.core.composition as comp
import repro.engine.compiled as compiled_module
from repro.analysis import (
    Finding,
    KernelVerificationError,
    clear_verified,
    filter_baselined,
    kernel_selfcheck,
    load_baseline,
    plan_violations,
    run_lint,
    save_baseline,
    source_violations,
    verified_count,
    verify_kernel,
    verify_kernel_source,
    verify_plan,
)
from repro.analysis import lifecycle, lockcheck
from repro.cli import main as cli_main
from repro.data import load_dataset
from repro.engine import FilterEngine, clear_kernels
from repro.engine.compiled import (
    CompiledBackend,
    CompiledKernel,
    KernelPlan,
    KernelStep,
    build_plan,
)
from repro.errors import ReproError


def qs1_style_filter():
    return comp.And([
        comp.group(comp.s("temperature", 1), comp.v("-12.5", "43.1")),
        comp.group(comp.s("light", 1), comp.v("1345", "26282")),
    ])


NEEDLE_POOL = ["temperature", "humidity", "taxi", '"n"', "29", "e", "al"]


def random_primitive(rng, for_group=False):
    if rng.random() < 0.5:
        needle = rng.choice(NEEDLE_POOL)
        blocks = [1, min(2, len(needle)), len(needle)]
        if not for_group:
            blocks.append("N")
        return comp.s(needle, rng.choice(blocks))
    kind = rng.choice(["int", "float"])
    lo = rng.randint(0, 40)
    hi = lo + rng.randint(0, 60)
    if kind == "float":
        return comp.v(f"{lo}.{rng.randint(0, 9)}", f"{hi}.9")
    return comp.v_int(lo, hi)


def random_expression(rng, depth=0):
    roll = rng.random()
    if depth >= 2 or roll < 0.3:
        return random_primitive(rng)
    if roll < 0.5:
        children = [
            random_primitive(rng, for_group=True)
            for _ in range(rng.randint(1, 3))
        ]
        return comp.Group(children, comma_scoped=rng.random() < 0.3)
    combinator = comp.And if roll < 0.8 else comp.Or
    children = [
        random_expression(rng, depth + 1)
        for _ in range(rng.randint(2, 3))
    ]
    return combinator(children)


# ---------------------------------------------------------------------------
# kernel source whitelist
# ---------------------------------------------------------------------------

class TestSourceWhitelist:
    def test_real_codegen_is_clean(self):
        for expr in (
            comp.s("temperature", 1),
            qs1_style_filter(),
            comp.Or([qs1_style_filter(), comp.s("rain", 1)]),
        ):
            kernel = CompiledKernel(expr)
            assert source_violations(kernel.source) == []
            verify_kernel_source(kernel.source)  # does not raise

    def test_injected_import_refused(self):
        source = CompiledKernel(qs1_style_filter()).source
        bad = "import os\n" + source
        assert source_violations(bad)
        with pytest.raises(KernelVerificationError):
            verify_kernel_source(bad)

    def test_attribute_escape_refused(self):
        source = CompiledKernel(qs1_style_filter()).source
        bad = source.replace("ctx.finish(state)", "ctx.__class__")
        assert any("__class__" in v for v in source_violations(bad))

    def test_disallowed_name_and_call_refused(self):
        source = CompiledKernel(qs1_style_filter()).source
        assert source_violations(
            source.replace("len(order)", "open('/etc/passwd')")
        )
        assert source_violations(
            source.replace("state.n_active", "state.result")
        )

    def test_unparseable_source_refused(self):
        assert source_violations("def kernel(:\n")


# ---------------------------------------------------------------------------
# plan equivalence
# ---------------------------------------------------------------------------

class TestPlanEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_fuzz_accepts_every_real_plan(self, seed):
        """Whatever the fuzzer builds, codegen's own plan verifies."""
        rng = random.Random(seed)
        for _ in range(12):
            kernel = CompiledKernel(random_expression(rng))
            assert source_violations(kernel.source) == []
            assert plan_violations(kernel.plan) == [], (
                kernel.expr.notation()
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_fuzz_rejects_swapped_exact_atom(self, seed):
        """AND plans with one conjunct silently replaced are refused."""
        rng = random.Random(100 + seed)
        corrupted = 0
        for _ in range(12):
            expr = random_expression(rng)
            plan = build_plan(expr)
            if plan.mode != "and":
                continue
            fresh = comp.s("zzz-corrupt", 1)
            steps = [
                KernelStep(s.index, fresh, s.kind, s.conjunct)
                if s.kind == "exact" and s.index == plan.steps[-1].index
                else s
                for s in plan.steps
            ]
            assert plan_violations(KernelPlan(expr, "and", steps)), (
                expr.notation()
            )
            corrupted += 1
        assert corrupted > 0

    def test_rejects_dropped_disjunct(self):
        expr = comp.Or([comp.s("xx", 1), comp.s("yy", 1)])
        plan = build_plan(expr)
        truncated = KernelPlan(expr, "or", plan.steps[:1])
        assert plan_violations(truncated)

    def test_rejects_inverted_short_circuit_kind(self):
        """AND steps relabelled as disjuncts (accumulate instead of
        refine — the inverted short-circuit) are refused."""
        expr = qs1_style_filter()
        flipped = [
            KernelStep(s.index, s.atom, "disjunct", s.conjunct)
            for s in build_plan(expr).steps
        ]
        assert plan_violations(KernelPlan(expr, "and", flipped))

    def test_rejects_non_necessary_prefilter(self):
        """A prefilter that can reject an accepted record is refused,
        even though the exact steps alone are still equivalent."""
        expr = qs1_style_filter()
        plan = build_plan(expr)
        steps = [
            KernelStep(s.index, comp.s("zzz-corrupt", 1), s.kind,
                       s.conjunct)
            if s.kind == "prefilter" and s.index == 0 else s
            for s in plan.steps
        ]
        violations = plan_violations(KernelPlan(expr, "and", steps))
        assert any("prefilter" in v for v in violations)

    def test_rejects_shuffled_step_indices(self):
        expr = qs1_style_filter()
        plan = build_plan(expr)
        steps = list(plan.steps)
        steps[0], steps[1] = steps[1], steps[0]
        assert plan_violations(KernelPlan(expr, "and", steps))

    def test_verify_plan_raises_typed_error(self):
        expr = comp.Or([comp.s("xx", 1), comp.s("yy", 1)])
        plan = build_plan(expr)
        with pytest.raises(KernelVerificationError):
            verify_plan(KernelPlan(expr, "or", plan.steps[:1]))


# ---------------------------------------------------------------------------
# memoisation + backend wiring
# ---------------------------------------------------------------------------

class TestVerifyWiring:
    def test_verification_memoised_by_fingerprint(self):
        clear_verified()
        kernel = CompiledKernel(qs1_style_filter())
        assert verify_kernel(kernel) is True     # actually verified
        count = verified_count()
        assert verify_kernel(kernel) is False    # memo hit
        assert verified_count() == count

    def test_default_resolves_on_under_pytest(self):
        assert CompiledBackend()._verify_enabled() is True
        assert CompiledBackend(
            verify_kernels=False
        )._verify_enabled() is False

    def test_engine_threads_verify_kernels_to_backend(self):
        engine = FilterEngine(backend="compiled", verify_kernels=False)
        assert engine.backend().verify_kernels is False
        assert "verify_kernels=False" in repr(engine.config)

    def test_engine_rejects_conflicting_config(self):
        from repro.engine import EngineConfig

        with pytest.raises(ReproError, match="verify_kernels"):
            FilterEngine(config=EngineConfig(), verify_kernels=True)

    def test_miscompiled_plan_raises_through_backend(self, monkeypatch):
        """A codegen bug (wrong plan) surfaces as a typed error at
        evaluation time instead of wrong bits."""
        real_build_plan = compiled_module.build_plan

        def corrupt_build_plan(expr):
            plan = real_build_plan(expr)
            steps = [
                KernelStep(s.index, comp.s("zzz-corrupt", 1), s.kind,
                           s.conjunct)
                if s.kind == "exact" else s
                for s in plan.steps
            ]
            return KernelPlan(plan.expr, plan.mode, steps)

        dataset = load_dataset("smartcity", 100, seed=5)
        try:
            monkeypatch.setattr(
                compiled_module, "build_plan", corrupt_build_plan
            )
            clear_kernels()
            clear_verified()
            backend = CompiledBackend(verify_kernels=True)
            with pytest.raises(KernelVerificationError):
                backend.match_bits(qs1_style_filter(), dataset)
        finally:
            clear_kernels()
            clear_verified()

    def test_injected_source_raises_through_backend(self, monkeypatch):
        real_codegen = compiled_module.generate_kernel_source

        def evil_codegen(plan):
            return real_codegen(plan) + "\nimport os\n"

        dataset = load_dataset("smartcity", 100, seed=5)
        try:
            monkeypatch.setattr(
                compiled_module, "generate_kernel_source", evil_codegen
            )
            clear_kernels()
            clear_verified()
            backend = CompiledBackend(verify_kernels=True)
            with pytest.raises(KernelVerificationError):
                backend.match_bits(comp.s("temperature", 1), dataset)
        finally:
            clear_kernels()
            clear_verified()

    def test_verify_off_skips_the_check(self, monkeypatch):
        real_codegen = compiled_module.generate_kernel_source

        def evil_codegen(plan):
            return real_codegen(plan) + "\n_UNCHECKED = len\n"

        dataset = load_dataset("smartcity", 100, seed=5)
        try:
            monkeypatch.setattr(
                compiled_module, "generate_kernel_source", evil_codegen
            )
            clear_kernels()
            clear_verified()
            backend = CompiledBackend(verify_kernels=False)
            bits = backend.match_bits(comp.s("temperature", 1), dataset)
            assert len(bits) == len(dataset)
        finally:
            clear_kernels()
            clear_verified()


# ---------------------------------------------------------------------------
# lock-discipline checker
# ---------------------------------------------------------------------------

LOCK_FIXTURE = textwrap.dedent('''
    import threading

    class Cache:
        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}  # guarded-by: _lock
            self.hits = 0  # guarded-by: _lock

        def good(self):
            with self._lock:
                self.hits += 1
                return len(self._entries)

        def bad(self):
            return len(self._entries)

        def justified(self):
            return len(self._entries)  # unlocked-ok: test fixture

        def _helper(self):  # holds-lock: _lock
            return len(self._entries)

        def escaping_closure(self):
            with self._lock:
                def inner():
                    return self._entries
                return inner
''')

GLOBAL_FIXTURE = textwrap.dedent('''
    import threading
    from collections import OrderedDict

    _LOCK = threading.Lock()
    _REGISTRY: OrderedDict = OrderedDict()  # guarded-by: _LOCK

    def good():
        with _LOCK:
            return len(_REGISTRY)

    def bad():
        return len(_REGISTRY)
''')


class TestLockcheck:
    def test_annotated_class_attrs(self):
        findings = lockcheck.check_source(LOCK_FIXTURE, "fixture.py")
        symbols = sorted(f.symbol for f in findings)
        assert symbols == ["Cache.bad", "Cache.escaping_closure"]
        assert all(f.rule == "lock-discipline" for f in findings)
        assert "self._entries" in findings[0].message

    def test_init_is_exempt(self):
        findings = lockcheck.check_source(LOCK_FIXTURE, "fixture.py")
        assert not any("__init__" in f.symbol for f in findings)

    def test_annotated_module_globals(self):
        findings = lockcheck.check_source(GLOBAL_FIXTURE, "globals.py")
        assert [f.symbol for f in findings] == ["bad"]
        assert "_REGISTRY" in findings[0].message

    def test_unannotated_source_is_silent(self):
        source = "class C:\n    def f(self):\n        return self.x\n"
        assert lockcheck.check_source(source, "plain.py") == []

    def test_syntax_error_is_one_finding(self):
        findings = lockcheck.check_source("def broken(:\n", "bad.py")
        assert len(findings) == 1
        assert "does not parse" in findings[0].message


# ---------------------------------------------------------------------------
# lifecycle linter
# ---------------------------------------------------------------------------

class TestLifecycle:
    def test_unclosed_source_flagged(self):
        source = textwrap.dedent('''
            def leak(path):
                src = FileSource(path)
                data = src.read_chunk()
                print(data)
        ''')
        findings = lifecycle.check_source(source, "leak.py")
        assert [f.rule for f in findings] == ["source-close"]
        assert "FileSource" in findings[0].message

    @pytest.mark.parametrize("body", [
        "with MmapSource(path) as src:\n        pass",
        "src = MmapSource(path)\n    src.close()",
        "src = MmapSource(path)\n    return src",
        "src = MmapSource(path)\n    consume(src)",
        "src = MmapSource(path)\n    self.src = src",
        "src = MmapSource(path)  # lifecycle-ok: test fixture",
    ])
    def test_ownership_sinks_are_clean(self, body):
        source = f"def ok(self, path):\n    {body}\n"
        assert lifecycle.check_source(source, "ok.py") == []

    def test_escaped_memoryview_flagged(self):
        source = textwrap.dedent('''
            class Pinner:
                def grab(self, buf):
                    self.view = memoryview(buf)

                def append_one(self, buf):
                    view = memoryview(buf)
                    self.views.append(view)
        ''')
        findings = lifecycle.check_source(source, "pin.py")
        assert [f.rule for f in findings] == [
            "escaped-memoryview", "escaped-memoryview",
        ]

    def test_release_path_allows_stored_views(self):
        source = textwrap.dedent('''
            class Tracked:
                def grab(self, buf):
                    self.view = memoryview(buf)

                def close(self):
                    self.view.release()
        ''')
        assert lifecycle.check_source(source, "tracked.py") == []

    def test_shm_without_finalize_flagged(self):
        source = textwrap.dedent('''
            class Ring:
                def setup(self):
                    self.shm = SharedMemory(create=True, size=4096)
        ''')
        findings = lifecycle.check_source(source, "ring.py")
        assert [f.rule for f in findings] == ["shm-finalize"]

    def test_shm_with_finalize_clean(self):
        source = textwrap.dedent('''
            class Ring:
                def setup(self):
                    self.shm = SharedMemory(create=True, size=4096)
                    weakref.finalize(self, _cleanup, self.shm)
        ''')
        assert lifecycle.check_source(source, "ring.py") == []


# ---------------------------------------------------------------------------
# findings + baseline
# ---------------------------------------------------------------------------

class TestBaseline:
    def test_fingerprint_is_line_stable(self):
        a = Finding("r", "p.py", 10, "S.f", "msg")
        b = Finding("r", "p.py", 99, "S.f", "msg")
        assert a.fingerprint() == b.fingerprint()
        assert a == b

    def test_save_load_filter_roundtrip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        old = Finding("r", "p.py", 1, "S.f", "known")
        new = Finding("r", "p.py", 2, "S.g", "fresh")
        assert save_baseline(path, [old]) == 1
        baseline = load_baseline(path)
        assert filter_baselined([old, new], baseline) == [new]
        doc = json.loads(open(path).read())
        assert doc["format"] == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == set()

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99}')
        with pytest.raises(ReproError):
            load_baseline(str(path))


# ---------------------------------------------------------------------------
# runner + the shipped tree
# ---------------------------------------------------------------------------

class TestRunner:
    def test_shipped_tree_is_finding_free(self):
        """Satellite acceptance: the annotated core modules (and the
        whole package) lint clean with an EMPTY baseline."""
        assert run_lint() == []

    def test_kernel_selfcheck_clean_on_real_codegen(self):
        assert kernel_selfcheck() == []

    def test_kernel_selfcheck_catches_injected_escape(self, monkeypatch):
        real_codegen = compiled_module.generate_kernel_source
        monkeypatch.setattr(
            compiled_module, "generate_kernel_source",
            lambda plan: real_codegen(plan) + "\nimport os\n",
        )
        findings = kernel_selfcheck()
        assert findings
        assert all(f.rule == "kernel-verify" for f in findings)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ReproError, match="unknown lint rule"):
            run_lint(rules=("locks", "nonsense"))

    def test_explicit_paths(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(GLOBAL_FIXTURE)
        findings = run_lint(
            [str(tmp_path)], rules=("locks",), root=str(tmp_path)
        )
        assert [f.symbol for f in findings] == ["bad"]
        assert findings[0].path == "bad.py"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def test_lint_clean_tree_exits_zero(self, capsys):
        assert cli_main(["lint"]) == 0
        out = capsys.readouterr()
        assert "0 finding(s)" in out.err

    def test_lint_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(GLOBAL_FIXTURE)
        code = cli_main(["lint", str(bad), "--rules", "locks"])
        assert code == 1
        out = capsys.readouterr()
        assert "lock-discipline" in out.out

    def test_lint_baseline_workflow(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(GLOBAL_FIXTURE)
        baseline = str(tmp_path / "baseline.json")
        assert cli_main([
            "lint", str(bad), "--rules", "locks",
            "--baseline", baseline, "--update-baseline",
        ]) == 0
        assert cli_main([
            "lint", str(bad), "--rules", "locks",
            "--baseline", baseline,
        ]) == 0
        out = capsys.readouterr()
        assert "1 baselined" in out.err

    def test_lint_unknown_rule_is_cli_error(self, capsys):
        assert cli_main(["lint", "--rules", "bogus"]) == 1
        out = capsys.readouterr()
        assert "unknown lint rule" in out.err
