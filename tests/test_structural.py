"""Unit tests for behavioural structural awareness (scalar + vectorised)."""

import numpy as np

from repro.core.structural import (
    ScopeMachine,
    comma_positions,
    depth_array,
    group_fire_closes,
    group_matches_record,
    scope_close_positions,
    string_mask,
)


def arr(data):
    return np.frombuffer(data, dtype=np.uint8)


class TestStringMask:
    def test_simple_string(self):
        data = b'a"bc"d'
        masked = string_mask(arr(data))
        # opening quote unmasked, contents + closing quote masked
        assert masked.tolist() == [False, False, True, True, True, False]

    def test_escaped_quote_does_not_close(self):
        data = br'"a\"b"c'
        masked = string_mask(arr(data))
        assert not masked[6]  # 'c' is outside
        assert masked[4]      # 'b' still inside

    def test_double_backslash_closes(self):
        data = br'"a\\"b'
        masked = string_mask(arr(data))
        assert not masked[5]  # 'b' outside: \\ escaped itself

    def test_empty(self):
        assert string_mask(arr(b"")).shape == (0,)

    def test_scalar_machine_agrees(self):
        data = br'{"a":"x\"y{","b":[1,"}"]}'
        machine = ScopeMachine()
        scalar = []
        for byte in data:
            masked, _, _, _ = machine.step(byte)
            scalar.append(masked)
        assert string_mask(arr(data)).tolist() == scalar


class TestDepth:
    def test_senml_depths(self):
        data = b'{"e":[{"v":1}]}'
        depths = depth_array(arr(data))
        assert depths[0] == 0      # before '{'
        assert depths[6] == 2      # at inner '{'
        assert depths[-1] == 1     # before final '}'

    def test_brackets_in_strings_ignored(self):
        data = b'{"k":"}}}"}'
        depths = depth_array(arr(data))
        assert depths[-1] == 1

    def test_scope_close_positions(self):
        data = b'{"a":[1],"b":{}}'
        closes = scope_close_positions(arr(data))
        assert closes.tolist() == [7, 14, 15]

    def test_comma_positions(self):
        data = b'{"a":1,"b":"x,y"},'
        commas = comma_positions(arr(data))
        assert commas.tolist() == [6, 17]


class TestGroupSemantics:
    def make_fires(self, length, positions):
        fires = np.zeros(length, dtype=bool)
        fires[list(positions)] = True
        return fires

    def test_same_segment_combines(self):
        data = b'{ab}'
        closes = scope_close_positions(arr(data))
        fire_a = self.make_fires(len(data), [1])
        fire_b = self.make_fires(len(data), [2])
        cums = [np.cumsum(f.astype(np.int64)) for f in (fire_a, fire_b)]
        assert group_fire_closes(closes, cums).any()

    def test_fire_at_close_position_counts(self):
        data = b'{a}'
        closes = scope_close_positions(arr(data))
        fire_a = self.make_fires(len(data), [1])
        fire_b = self.make_fires(len(data), [2])  # the '}' itself
        cums = [np.cumsum(f.astype(np.int64)) for f in (fire_a, fire_b)]
        assert group_fire_closes(closes, cums).any()

    def test_separate_segments_do_not_combine(self):
        data = b'{a}{b}'
        closes = scope_close_positions(arr(data))
        fire_a = self.make_fires(len(data), [1])
        fire_b = self.make_fires(len(data), [4])
        cums = [np.cumsum(f.astype(np.int64)) for f in (fire_a, fire_b)]
        assert not group_fire_closes(closes, cums).any()

    def test_no_closes_no_match(self):
        assert group_fire_closes(
            np.array([], dtype=np.int64), []
        ).shape == (0,)

    def test_group_matches_record_structural(self):
        record = (
            b'{"e":[{"v":"30.2","n":"temperature"},'
            b'{"v":"12","n":"humidity"}]}\n'
        )
        data = arr(record)
        temp_fire = np.zeros(len(record), dtype=bool)
        # simulate a string fire inside the first object
        temp_fire[30] = True
        value_fire = np.zeros(len(record), dtype=bool)
        value_fire[20] = True
        assert group_matches_record(data, [temp_fire, value_fire])

    def test_group_matches_record_cross_object(self):
        record = b'{"a":[{"x":1},{"y":2}]}\n'
        data = arr(record)
        fire_a = np.zeros(len(record), dtype=bool)
        fire_a[8] = True   # inside first object
        fire_b = np.zeros(len(record), dtype=bool)
        fire_b[17] = True  # inside second object
        assert not group_matches_record(data, [fire_a, fire_b])

    def test_comma_scoped_group(self):
        record = b'{"k":"a","v":"b"}\n'
        data = arr(record)
        fire_a = np.zeros(len(record), dtype=bool)
        fire_a[6] = True   # before the comma
        fire_b = np.zeros(len(record), dtype=bool)
        fire_b[14] = True  # after the comma
        assert group_matches_record(data, [fire_a, fire_b])
        assert not group_matches_record(
            data, [fire_a, fire_b], comma_scoped=True
        )


class TestScopeMachine:
    def test_depth_clamps_at_zero(self):
        machine = ScopeMachine()
        machine.step(ord("}"))
        assert machine.depth == 0

    def test_events_not_emitted_inside_strings(self):
        machine = ScopeMachine()
        machine.step(ord('"'))
        masked, open_event, close_event, comma = machine.step(ord("{"))
        assert masked and not open_event

    def test_full_record_round_trip(self):
        record = b'{"e":[{"v":1},{"v":2}],"bt":3}'
        machine = ScopeMachine()
        for byte in record:
            machine.step(byte)
        assert machine.depth == 0
        assert not machine.in_string
