"""Composed raw-filter circuits vs behavioural evaluation (end to end)."""

import pytest

import repro.core.composition as comp
from repro.core.cost import estimate_luts, exact_luts, tracker_luts
from repro.hw.gatesim import CycleSimulator
from repro.hw.circuits import build_raw_filter_circuit


def gate_accepts(circuit, record):
    sim = CycleSimulator(circuit)
    trace = sim.run_stream(
        record + b"\n", extra_inputs={"record_reset": 0}
    )
    return trace["accept"][-1]


RECORDS = [
    # matches: temperature in range, humidity in range
    b'{"e":[{"v":"30.2","u":"far","n":"temperature"},'
    b'{"v":"55.0","u":"per","n":"humidity"}],"bt":1422748800000}',
    # temperature out of range
    b'{"e":[{"v":"36.2","u":"far","n":"temperature"},'
    b'{"v":"55.0","u":"per","n":"humidity"}],"bt":1422748800000}',
    # humidity missing
    b'{"e":[{"v":"30.2","u":"far","n":"temperature"}],"bt":1422748800000}',
    # cross-attribute confusion: humidity value in temperature range
    b'{"e":[{"v":"99.9","u":"far","n":"temperature"},'
    b'{"v":"30.0","u":"per","n":"humidity"}],"bt":1422748800000}',
]


def expressions():
    t_string = comp.s("temperature", 1)
    t_value = comp.v("0.7", "35.1")
    h_string = comp.s("humidity", 2)
    h_value = comp.v("20.3", "69.1")
    return {
        "single_string": t_string,
        "single_value": t_value,
        "pair": comp.And([t_string, t_value]),
        "group": comp.group(t_string, t_value),
        "two_groups": comp.And(
            [comp.group(t_string, t_value), comp.group(h_string, h_value)]
        ),
        "or_of_groups": comp.Or(
            [comp.group(t_string, t_value), comp.group(h_string, h_value)]
        ),
        "mixed": comp.And(
            [comp.group(t_string, t_value), h_value]
        ),
    }


class TestGateEqualsBehavioural:
    @pytest.mark.parametrize("name", list(expressions().keys()))
    def test_all_expressions_all_records(self, name):
        expr = expressions()[name]
        circuit = build_raw_filter_circuit(expr)
        for record in RECORDS:
            assert gate_accepts(circuit, record) == (
                comp.evaluate_record(expr, record)
            ), (name, record)

    def test_structural_discrimination(self):
        """The running example: structure separates 35.2 from 12/20."""
        expr = comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))
        confused = (
            b'{"e":[{"v":"35.2","u":"far","n":"temperature"},'
            b'{"v":"12","u":"per","n":"humidity"}],"bt":1422748800000}'
        )
        nonstructural = comp.And(
            [comp.s("temperature", 1), comp.v("0.7", "35.1")]
        )
        # without structure: FP (the "12" is in range, string present)
        assert comp.evaluate_record(nonstructural, confused)
        # with structure: correctly dropped
        assert not comp.evaluate_record(expr, confused)
        circuit = build_raw_filter_circuit(expr)
        assert not gate_accepts(circuit, confused)


class TestComposedResources:
    def test_tracker_built_only_when_needed(self):
        plain = build_raw_filter_circuit(
            comp.And([comp.s("temperature", 1), comp.v("0.7", "35.1")])
        )
        grouped = build_raw_filter_circuit(
            comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))
        )
        names_plain = {r.name for r in plain.registers}
        names_grouped = {r.name for r in grouped.registers}
        assert not any("struct" in n for n in names_plain)
        assert any("struct" in n for n in names_grouped)

    def test_estimate_is_close_to_exact(self):
        exprs = expressions()
        for name in ("pair", "group", "two_groups", "mixed"):
            expr = exprs[name]
            atoms = list(expr.atoms())
            estimate = estimate_luts(atoms)
            exact = exact_luts(expr)
            # composition only adds sharing plus a small AND tree
            assert exact <= estimate + 3, name
            assert exact >= estimate * 0.6, name

    def test_shared_tracker_saves_luts(self):
        exprs = expressions()
        two_groups = exact_luts(exprs["two_groups"])
        separate = exact_luts(
            comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))
        ) + exact_luts(
            comp.group(comp.s("humidity", 2), comp.v("20.3", "69.1"))
        )
        assert two_groups < separate
        assert separate - two_groups >= tracker_luts() - 4

    def test_paper_scale_group_cost(self):
        """{s1 & v} pairs land in the paper's order of magnitude (~100)."""
        expr = comp.group(comp.s("humidity", 1), comp.v("20.3", "69.1"))
        luts = exact_luts(expr)
        assert 40 <= luts <= 250


class TestRegexPredicateInHardware:
    def test_stream_mode_regex_gate_equals_behavioural(self):
        expr = comp.And(
            [
                comp.RegexPredicate(r'"bt":1[0-9]{12}'),
                comp.s("temperature", 1),
            ]
        )
        circuit = build_raw_filter_circuit(expr)
        for record in RECORDS:
            assert gate_accepts(circuit, record) == (
                comp.evaluate_record(expr, record)
            ), record

    def test_number_mode_regex_gate_equals_behavioural(self):
        expr = comp.RegexPredicate("3[05][0-9.]*", token_mode="number")
        circuit = build_raw_filter_circuit(expr)
        for record in RECORDS:
            assert gate_accepts(circuit, record) == (
                comp.evaluate_record(expr, record)
            ), record
