"""Unit tests for repro.regex.charclass."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.regex.charclass import (
    ALPHABET_SIZE,
    CharClass,
    NUMBER_TOKEN_CHARS,
    partition_classes,
)


class TestConstruction:
    def test_empty_has_no_members(self):
        assert len(CharClass.empty()) == 0
        assert not CharClass.empty()

    def test_full_has_all_members(self):
        assert len(CharClass.full()) == ALPHABET_SIZE

    def test_of_characters(self):
        cls = CharClass.of("a", "b")
        assert "a" in cls
        assert "b" in cls
        assert "c" not in cls

    def test_of_integer_codes(self):
        cls = CharClass.of(0, 255)
        assert 0 in cls
        assert 255 in cls
        assert 1 not in cls

    def test_of_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CharClass.of(256)

    def test_from_string(self):
        cls = CharClass.from_string("temperature")
        # duplicates collapse
        assert len(cls) == len(set("temperature"))

    def test_range(self):
        digits = CharClass.range("0", "9")
        assert all(chr(c) in digits for c in range(ord("0"), ord("9") + 1))
        assert "a" not in digits

    def test_range_rejects_reversed(self):
        with pytest.raises(ValueError):
            CharClass.range("9", "0")

    def test_digit_range(self):
        cls = CharClass.digit_range(4, 9)
        assert "4" in cls and "9" in cls and "3" not in cls

    def test_digit_range_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            CharClass.digit_range(5, 4)

    def test_number_token_chars_content(self):
        cls = CharClass.number_token_chars()
        for ch in "0123456789+-.eE":
            assert ch in cls
        assert " " not in cls
        assert len(NUMBER_TOKEN_CHARS) == len(cls)


class TestAlgebra:
    def test_union(self):
        assert len(CharClass.of("a") | CharClass.of("b")) == 2

    def test_intersect(self):
        left = CharClass.range("a", "m")
        right = CharClass.range("g", "z")
        inter = left & right
        assert "g" in inter and "m" in inter
        assert "a" not in inter and "z" not in inter

    def test_difference(self):
        digits = CharClass.digits()
        low = CharClass.digit_range(0, 4)
        assert (digits - low) == CharClass.digit_range(5, 9)

    def test_complement_involution(self):
        cls = CharClass.from_string("xyz")
        assert ~~cls == cls

    def test_complement_size(self):
        cls = CharClass.of("a")
        assert len(~cls) == ALPHABET_SIZE - 1

    def test_immutability(self):
        cls = CharClass.of("a")
        with pytest.raises(AttributeError):
            cls.mask = 0


class TestQueries:
    def test_ranges_contiguous(self):
        cls = CharClass.range("a", "c") | CharClass.of("x")
        assert cls.ranges() == [(ord("a"), ord("c")), (ord("x"), ord("x"))]

    def test_chars_sorted(self):
        cls = CharClass.of("z", "a", "m")
        assert [chr(c) for c in cls.chars()] == ["a", "m", "z"]

    def test_pattern_single_char(self):
        assert CharClass.of("a").pattern() == "a"

    def test_pattern_range(self):
        assert CharClass.range("0", "9").pattern() == "[0-9]"

    def test_pattern_full(self):
        assert CharClass.full().pattern() == "."

    def test_pattern_escapes_special(self):
        assert "\\" in CharClass.of("]").pattern()

    def test_hashable_and_equal(self):
        assert CharClass.of("a", "b") == CharClass.from_string("ba")
        assert hash(CharClass.of("a")) == hash(CharClass.of("a"))


class TestPartition:
    def test_disjoint_atoms(self):
        classes = [CharClass.range("0", "9"), CharClass.digit_range(3, 5)]
        atoms = partition_classes(classes)
        for i, a in enumerate(atoms):
            for b in atoms[i + 1:]:
                assert (a & b).is_empty()

    def test_union_preserved(self):
        classes = [CharClass.range("a", "m"), CharClass.range("g", "z")]
        atoms = partition_classes(classes)
        union = CharClass.empty()
        for atom in atoms:
            union = union | atom
        expected = classes[0] | classes[1]
        assert union == expected

    def test_each_class_is_union_of_atoms(self):
        classes = [
            CharClass.range("0", "9"),
            CharClass.digit_range(2, 7),
            CharClass.of("5"),
        ]
        atoms = partition_classes(classes)
        for cls in classes:
            covered = CharClass.empty()
            for atom in atoms:
                inter = atom & cls
                assert inter.is_empty() or inter == atom
                covered = covered | inter
            assert covered == cls

    def test_empty_input(self):
        assert partition_classes([]) == []

    def test_skips_empty_classes(self):
        atoms = partition_classes([CharClass.empty(), CharClass.of("a")])
        assert len(atoms) == 1

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 255), st.integers(0, 255)
            ).map(lambda t: CharClass.range(min(t), max(t))),
            max_size=6,
        )
    )
    def test_partition_property(self, classes):
        atoms = partition_classes(classes)
        # pairwise disjoint
        for i, a in enumerate(atoms):
            for b in atoms[i + 1:]:
                assert (a & b).is_empty()
        # every input is a disjoint union of atoms
        for cls in classes:
            total = 0
            for atom in atoms:
                inter = atom & cls
                assert inter.is_empty() or inter == atom
                total += len(inter)
            assert total == len(cls)
