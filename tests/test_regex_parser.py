"""Unit tests for the regex parser, cross-checked against Python's re."""

import re

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RegexSyntaxError
from repro.regex.dfa import DFA
from repro.regex.parser import parse_regex


def dfa_of(pattern):
    return DFA.from_regex(parse_regex(pattern))


def agrees_with_re(pattern, candidates):
    """Our DFA accepts exactly the strings re fullmatch accepts."""
    compiled = re.compile(pattern, re.DOTALL)
    dfa = dfa_of(pattern)
    for text in candidates:
        expected = compiled.fullmatch(text) is not None
        assert dfa.accepts(text) == expected, (pattern, text)


class TestBasicSyntax:
    def test_literal(self):
        agrees_with_re("abc", ["abc", "ab", "abcd", ""])

    def test_alternation(self):
        agrees_with_re("ab|cd", ["ab", "cd", "ad", ""])

    def test_star(self):
        agrees_with_re("a*", ["", "a", "aaaa", "b"])

    def test_plus(self):
        agrees_with_re("a+", ["", "a", "aaa"])

    def test_opt(self):
        agrees_with_re("ab?c", ["ac", "abc", "abbc"])

    def test_grouping(self):
        agrees_with_re("(ab)+", ["ab", "abab", "aba"])

    def test_non_capturing_group(self):
        agrees_with_re("(?:ab)+", ["ab", "abab", "a"])

    def test_dot_matches_everything(self):
        dfa = dfa_of(".")
        assert dfa.accepts("a")
        assert dfa.accepts("\n")  # byte-alphabet dot, no DOTALL needed

    def test_empty_pattern(self):
        dfa = dfa_of("")
        assert dfa.accepts("")
        assert not dfa.accepts("a")


class TestCharClasses:
    def test_simple_class(self):
        agrees_with_re("[abc]+", ["a", "abc", "d", ""])

    def test_range_class(self):
        agrees_with_re("[0-9]+", ["42", "a", ""])

    def test_negated_class(self):
        agrees_with_re("[^0-9]", ["a", "5", ""])

    def test_class_with_escape(self):
        agrees_with_re(r"[\d]+", ["123", "a"])

    def test_literal_dash_at_end(self):
        agrees_with_re("[a-]", ["a", "-", "b"])

    def test_shorthand_digit(self):
        agrees_with_re(r"\d{2}", ["12", "1", "123", "ab"])

    def test_shorthand_word(self):
        agrees_with_re(r"\w+", ["abc_123", "a b"])

    def test_shorthand_space(self):
        agrees_with_re(r"\s", [" ", "\t", "a"])

    def test_hex_escape(self):
        dfa = dfa_of(r"\x41")
        assert dfa.accepts("A")
        assert not dfa.accepts("B")


class TestCountedRepetition:
    def test_exact(self):
        agrees_with_re("a{3}", ["aaa", "aa", "aaaa"])

    def test_range(self):
        agrees_with_re("a{2,4}", ["a", "aa", "aaa", "aaaa", "aaaaa"])

    def test_open_ended(self):
        agrees_with_re("a{2,}", ["a", "aa", "aaaaaa"])

    def test_zero_allowed(self):
        agrees_with_re("a{0,2}", ["", "a", "aa", "aaa"])

    def test_applies_to_group(self):
        agrees_with_re("(ab){2}", ["abab", "ab", "ababab"])


class TestErrors:
    @pytest.mark.parametrize(
        "pattern",
        [
            "(ab",
            "ab)",
            "[abc",
            "a{2,1}",
            "*a",
            "a{",
            "a|*",
            "[]",
        ],
    )
    def test_syntax_errors(self, pattern):
        with pytest.raises(RegexSyntaxError):
            parse_regex(pattern)

    def test_error_carries_position(self):
        try:
            parse_regex("ab(cd")
        except RegexSyntaxError as err:
            assert err.pattern == "ab(cd"
            assert err.position >= 2
        else:  # pragma: no cover
            pytest.fail("expected a syntax error")


class TestPaperPatterns:
    def test_fig2_regex(self):
        """The paper's Fig. 2 regular expression for i >= 35."""
        pattern = "3[5-9]|[4-9][0-9]|[1-9][0-9][0-9]+"
        dfa = dfa_of(pattern)
        for value in [0, 34, 35, 36, 99, 100, 5153, 9]:
            assert dfa.accepts(str(value)) == (value >= 35)

    def test_date_format(self):
        """§III-B: the method also covers date formats."""
        pattern = r"2013-01-[0-3][0-9] [0-2][0-9]:[0-5][0-9]:[0-5][0-9]"
        dfa = dfa_of(pattern)
        assert dfa.accepts("2013-01-07 18:15:00")
        assert not dfa.accepts("2014-01-07 18:15:00")


@given(st.text(alphabet="ab()|*+?", max_size=10))
def test_parser_never_crashes_unexpectedly(pattern):
    """Any input either parses or raises RegexSyntaxError — nothing else."""
    try:
        parse_regex(pattern)
    except RegexSyntaxError:
        pass


@given(
    st.text(alphabet="abc", max_size=6),
    st.lists(st.text(alphabet="abc", max_size=8), max_size=8),
)
def test_literal_patterns_agree_with_re(pattern, candidates):
    agrees_with_re(pattern, candidates)
