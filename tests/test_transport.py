"""Tests for the WorkerTransport layer (repro.engine.transport).

The acceptance bar: parallel streaming through either transport is
bit-identical to the serial path, workers can start from a warm
AtomCache snapshot, the multiprocessing start method is explicit, and
per-worker counters surface through ``engine.stats()``.
"""

import io
import multiprocessing
import random

import pytest

import repro.core.composition as comp
from repro.data import load_dataset
from repro.engine import (
    AtomCache,
    EngineConfig,
    FilterEngine,
    ForkPickleTransport,
    SharedMemoryTransport,
    resolve_mp_context,
    resolve_transport,
)
from repro.errors import ReproError


def simple_filter():
    return comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))


@pytest.fixture(scope="module")
def corpus():
    return load_dataset("smartcity", 160, seed=13)


@pytest.fixture(scope="module")
def payload(corpus):
    return corpus.stream.tobytes()


def stream_all(engine, expr, payload, backend=None):
    records, matches = [], []
    last = None
    for last in engine.stream_file(
        expr, io.BytesIO(payload), backend=backend
    ):
        records.extend(last.records)
        matches.extend(last.matches.tolist())
    return records, matches, last


# ---------------------------------------------------------------------------
# resolution + configuration
# ---------------------------------------------------------------------------

class TestResolution:
    def test_transport_names_resolve(self):
        assert resolve_transport("fork-pickle") is ForkPickleTransport
        assert (
            resolve_transport("shared-memory") is SharedMemoryTransport
        )
        assert (
            resolve_transport(SharedMemoryTransport)
            is SharedMemoryTransport
        )

    def test_unknown_transport_rejected(self):
        with pytest.raises(ReproError):
            resolve_transport("carrier-pigeon")
        with pytest.raises(ReproError):
            EngineConfig(transport="carrier-pigeon")

    def test_mp_context_explicit_and_default(self):
        methods = multiprocessing.get_all_start_methods()
        default = resolve_mp_context(None)
        expected = "fork" if "fork" in methods else "spawn"
        assert default.get_start_method() == expected
        assert (
            resolve_mp_context("spawn").get_start_method() == "spawn"
        )
        context = multiprocessing.get_context("spawn")
        assert resolve_mp_context(context) is context

    def test_unknown_mp_context_rejected(self):
        with pytest.raises(ReproError):
            resolve_mp_context("teleport")
        with pytest.raises(ReproError):
            EngineConfig(mp_context="teleport")
        with pytest.raises(ReproError):
            resolve_mp_context(42)

    def test_config_carries_transport_and_context(self):
        config = EngineConfig(
            num_workers=2, transport="shared-memory",
            mp_context="spawn",
        )
        assert config.transport_name() == "shared-memory"
        assert "shared-memory" in repr(config)
        assert "spawn" in repr(config)


# ---------------------------------------------------------------------------
# differential: parallel transports vs the serial path
# ---------------------------------------------------------------------------

class TestTransportDifferential:
    @pytest.mark.parametrize("transport", ["fork-pickle",
                                           "shared-memory"])
    @pytest.mark.parametrize("chunk_bytes", [256, 1024, 8192])
    def test_bit_identical_to_serial(self, corpus, payload,
                                     transport, chunk_bytes):
        expr = simple_filter()
        serial = FilterEngine(chunk_bytes=chunk_bytes)
        parallel = FilterEngine(
            chunk_bytes=chunk_bytes, num_workers=2,
            transport=transport,
        )
        want_records, want_matches, want_last = stream_all(
            serial, expr, payload
        )
        got_records, got_matches, got_last = stream_all(
            parallel, expr, payload
        )
        assert got_records == want_records
        assert got_matches == want_matches
        assert got_last.records_seen == want_last.records_seen
        assert got_last.bytes_seen == want_last.bytes_seen
        assert got_last.accepted_seen == want_last.accepted_seen

    def test_random_expressions_shared_memory(self, corpus, payload):
        rng = random.Random(5)
        from test_engine import random_expression

        serial = FilterEngine(chunk_bytes=700)
        parallel = FilterEngine(
            chunk_bytes=700, num_workers=2, transport="shared-memory"
        )
        for _ in range(4):
            expr = random_expression(rng)
            _, want, _ = stream_all(serial, expr, payload)
            _, got, _ = stream_all(parallel, expr, payload)
            assert got == want, expr.notation()

    def test_scalar_backend_through_transports(self, corpus, payload):
        expr = simple_filter()
        serial = FilterEngine(backend="scalar", chunk_bytes=512)
        parallel = FilterEngine(
            backend="scalar", chunk_bytes=512, num_workers=2,
            transport="shared-memory",
        )
        _, want, _ = stream_all(serial, expr, payload)
        _, got, _ = stream_all(parallel, expr, payload)
        assert got == want

    def test_oversized_record_falls_back_to_pickle(self):
        """A record bigger than the shared slot rides the pickled
        fallback path — results stay identical."""
        big = b'{"blob":"' + b"y" * (1 << 17) + b'","n":"temp"}'
        rows = [b'{"n":"temperature","v":"1.0"}'] * 20
        payload = b"\n".join(rows[:10]) + b"\n" + big + b"\n" + (
            b"\n".join(rows[10:]) + b"\n"
        )
        expr = comp.s("temperature", 1)
        serial = FilterEngine(chunk_bytes=128)
        parallel = FilterEngine(
            chunk_bytes=128, num_workers=2, transport="shared-memory"
        )
        _, want, _ = stream_all(serial, expr, payload)
        _, got, _ = stream_all(parallel, expr, payload)
        assert got == want
        workers = parallel.stats()["workers"]
        assert workers["fallback_batches"] >= 1

    def test_spawn_context_matches_fork(self, corpus, payload):
        expr = simple_filter()
        serial = FilterEngine(chunk_bytes=4096)
        _, want, _ = stream_all(serial, expr, payload)
        spawned = FilterEngine(
            chunk_bytes=4096, num_workers=2,
            transport="shared-memory", mp_context="spawn",
        )
        _, got, _ = stream_all(spawned, expr, payload)
        assert got == want
        assert spawned.stats()["workers"]["mp_context"] == "spawn"


# ---------------------------------------------------------------------------
# warm-cache workers + per-worker stats
# ---------------------------------------------------------------------------

class TestWarmWorkers:
    def test_workers_start_from_cache_snapshot(self, corpus, payload):
        """After a serial warm pass, every parallel chunk is served
        from the workers' snapshot — zero worker misses."""
        expr = simple_filter()
        cache = AtomCache()
        warm = FilterEngine(chunk_bytes=1024, cache=cache)
        _, want, _ = stream_all(warm, expr, payload)
        parallel = FilterEngine(
            chunk_bytes=1024, num_workers=2,
            transport="shared-memory", cache=cache,
        )
        _, got, _ = stream_all(parallel, expr, payload)
        assert got == want
        workers = parallel.stats()["workers"]
        assert workers["cache_hits"] > 0
        assert workers["cache_misses"] == 0

    def test_cold_workers_report_misses(self, corpus, payload):
        engine = FilterEngine(
            chunk_bytes=1024, num_workers=2,
            transport="fork-pickle", cache=True,
        )
        stream_all(engine, simple_filter(), payload)
        workers = engine.stats()["workers"]
        assert workers["cache_misses"] > 0
        assert workers["cache_hits"] == 0

    def test_stats_expose_per_worker_counters(self, corpus, payload):
        engine = FilterEngine(
            chunk_bytes=512, num_workers=2, transport="shared-memory"
        )
        _, _, last = stream_all(engine, simple_filter(), payload)
        stats = engine.stats()
        assert stats["transport"] == "shared-memory"
        workers = stats["workers"]
        assert workers["records"] == last.records_seen
        assert workers["chunks"] >= 1
        assert workers["slots"] == 4
        per_worker = workers["workers"]
        assert per_worker  # at least one worker reported
        assert sum(w["chunks"] for w in per_worker.values()) == (
            workers["chunks"]
        )
        for counters in per_worker.values():
            assert set(counters) == {
                "chunks", "records", "cache_hits", "cache_misses"
            }

    def test_serial_engine_reports_no_worker_stats(self, corpus):
        engine = FilterEngine()
        engine.match_bits(simple_filter(), corpus)
        assert engine.stats()["workers"] is None


# ---------------------------------------------------------------------------
# result ring: the pickle-free return path
# ---------------------------------------------------------------------------

class TestResultRing:
    @pytest.mark.parametrize("chunk_bytes", [256, 1024, 8192])
    def test_ring_differential_vs_fork_pickle(self, corpus, payload,
                                              chunk_bytes):
        """Shared-memory ring results are bit-identical to pickled
        returns at every chunk size, and every fitting batch's result
        comes back through the ring, not the pipe."""
        expr = simple_filter()
        pickled = FilterEngine(
            chunk_bytes=chunk_bytes, num_workers=2,
            transport="fork-pickle",
        )
        ring = FilterEngine(
            chunk_bytes=chunk_bytes, num_workers=2,
            transport="shared-memory",
        )
        want_records, want_matches, want_last = stream_all(
            pickled, expr, payload
        )
        got_records, got_matches, got_last = stream_all(
            ring, expr, payload
        )
        assert got_records == want_records
        assert got_matches == want_matches
        assert got_last.accepted_seen == want_last.accepted_seen
        workers = ring.stats()["workers"]
        assert workers["ring_results"] == workers["chunks"]
        assert workers["pickled_results"] == 0
        assert workers["fallback_batches"] == 0
        baseline = pickled.stats()["workers"]
        assert baseline["pickled_results"] == baseline["chunks"]

    @pytest.mark.parametrize("transport", ["fork-pickle",
                                           "shared-memory"])
    def test_ring_differential_under_spawn(self, corpus, payload,
                                           transport):
        expr = simple_filter()
        serial = FilterEngine(chunk_bytes=2048)
        _, want, _ = stream_all(serial, expr, payload)
        engine = FilterEngine(
            chunk_bytes=2048, num_workers=2, transport=transport,
            mp_context="spawn",
        )
        _, got, _ = stream_all(engine, expr, payload)
        assert got == want
        workers = engine.stats()["workers"]
        assert workers["mp_context"] == "spawn"
        if transport == "shared-memory":
            assert workers["ring_results"] == workers["chunks"]
            assert workers["pickled_results"] == 0

    def test_fallback_batches_return_pickled(self):
        """A batch that rode the pickled request fallback also returns
        its result through the pipe — and is counted as such."""
        big = b'{"blob":"' + b"y" * (1 << 17) + b'","n":"temp"}'
        rows = [b'{"n":"temperature","v":"1.0"}'] * 20
        payload = b"\n".join(rows[:10]) + b"\n" + big + b"\n" + (
            b"\n".join(rows[10:]) + b"\n"
        )
        engine = FilterEngine(
            chunk_bytes=128, num_workers=2, transport="shared-memory"
        )
        stream_all(engine, comp.s("temperature", 1), payload)
        workers = engine.stats()["workers"]
        assert workers["fallback_batches"] >= 1
        assert workers["pickled_results"] >= workers["fallback_batches"]
        assert workers["ring_results"] + workers["pickled_results"] == (
            workers["chunks"]
        )


# ---------------------------------------------------------------------------
# AtomCache merge-back: a parallel pass warms later passes
# ---------------------------------------------------------------------------

class TestMergeBack:
    @pytest.mark.parametrize("transport", ["fork-pickle",
                                           "shared-memory"])
    def test_parallel_pass_warms_serial_repass(self, corpus, payload,
                                               transport):
        """The acceptance bar: a *cold parallel* first pass leaves the
        parent cache warm enough that a second serial pass over the
        same corpus is served entirely from merged worker entries."""
        expr = simple_filter()
        cache = AtomCache()
        parallel = FilterEngine(
            chunk_bytes=1024, num_workers=2, transport=transport,
            cache=cache,
        )
        _, want, _ = stream_all(parallel, expr, payload)
        workers = parallel.stats()["workers"]
        assert workers["merged_entries"] > 0
        assert workers["delta_entries"] >= workers["merged_entries"]
        assert len(cache) == workers["merged_entries"]

        serial = FilterEngine(chunk_bytes=1024, cache=cache)
        hits_before, misses_before = cache.hits, cache.misses
        _, got, _ = stream_all(serial, expr, payload)
        assert got == want
        assert cache.hits > hits_before
        assert cache.misses == misses_before

    def test_warm_workers_ship_no_deltas(self, corpus, payload):
        """Fully warm workers compute nothing new — so nothing rides
        back and the merge is a no-op."""
        expr = simple_filter()
        cache = AtomCache()
        warm = FilterEngine(chunk_bytes=1024, cache=cache)
        stream_all(warm, expr, payload)
        parallel = FilterEngine(
            chunk_bytes=1024, num_workers=2,
            transport="shared-memory", cache=cache,
        )
        stream_all(parallel, expr, payload)
        workers = parallel.stats()["workers"]
        assert workers["cache_misses"] == 0
        assert workers["delta_entries"] == 0
        assert workers["merged_entries"] == 0

    def test_deltas_merge_incrementally_not_buffered(self, corpus,
                                                     payload):
        """Deltas fold into the parent cache as results drain — the
        resident footprint is capped by the cache's own bounds, not by
        stream length (bounded-memory streaming holds for parallel
        cached runs)."""
        expr = simple_filter()
        cache = AtomCache()
        engine = FilterEngine(
            chunk_bytes=256, num_workers=2,
            transport="shared-memory", cache=cache,
        )
        mid_stream_entries = 0
        for batch in engine.stream_file(expr, io.BytesIO(payload)):
            if batch.index == 10:
                mid_stream_entries = len(cache)
        assert mid_stream_entries > 0, (
            "no entries merged before stream end"
        )

    def test_merge_after_abandoned_stream(self, corpus, payload):
        """Closing a half-consumed parallel stream generator still
        merges the drained batches' deltas (engine finally -> close)."""
        expr = simple_filter()
        cache = AtomCache()
        engine = FilterEngine(
            chunk_bytes=512, num_workers=2,
            transport="shared-memory", cache=cache,
        )
        stream = engine.stream_file(expr, io.BytesIO(payload))
        for _ in range(3):
            next(stream)
        stream.close()
        workers = engine.stats()["workers"]
        assert workers["merged_entries"] > 0
        assert len(cache) == workers["merged_entries"]

    def test_merge_skips_entries_the_parent_already_has(self):
        """Deltas whose key landed in the parent cache in the meantime
        are skipped, preserving the parent's entry and recency."""
        import pickle as pickle_module

        import numpy as np

        cache = AtomCache()
        fingerprint = (3, b"digest")
        kept = cache.put(fingerprint, "atom-a", np.array([1, 0, 1]))
        transport = ForkPickleTransport(
            num_workers=1,
            payload=pickle_module.dumps(simple_filter()),
            atom_cache=cache,
        )
        try:
            # the per-result merge step drain() runs on each delta
            transport._merge_entries([
                (fingerprint, "atom-a", np.array([1, 0, 1])),
                (fingerprint, "atom-b", np.array([0, 1, 0])),
            ])
        finally:
            transport.close()
        assert transport.merged_entries == 1
        assert transport.merge_skipped == 1
        assert cache.lookup(fingerprint, "atom-a") is kept
        assert transport.stats()["merged_entries"] == 1


# ---------------------------------------------------------------------------
# transport session protocol
# ---------------------------------------------------------------------------

class TestSessionProtocol:
    def test_drain_without_submit_rejected(self):
        import pickle

        transport = ForkPickleTransport(
            num_workers=1, payload=pickle.dumps(simple_filter())
        )
        try:
            with pytest.raises(ReproError):
                transport.drain()
        finally:
            transport.close()

    def test_context_manager_closes_slots(self):
        import pickle

        with SharedMemoryTransport(
            num_workers=1, payload=pickle.dumps(comp.s("temperature", 1)),
            chunk_bytes=1024,
        ) as transport:
            transport.submit([b'{"n":"temperature"}'])
            matches, count = transport.drain()
            assert count == 1
            assert matches.tolist() == [True]
            names = [slot.shm.name for slot in transport._slots]
        # after close, the slots must be unlinked
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ReproError):
            ForkPickleTransport(num_workers=0, payload=b"")


class TestWorkerFunctions:
    """The worker-side functions, driven in-process.

    The pool tests above execute these in child processes (invisible
    to coverage); here the same code paths run in the parent so the
    slot wire format and the worker state machine are directly
    verified.
    """

    def _init_worker(self, expr, backend="vectorized", snapshot=None):
        import pickle

        from repro.engine import transport as transport_module

        transport_module._worker_init(
            pickle.dumps(expr), backend, snapshot
        )
        return transport_module

    def test_slot_roundtrip_preserves_records_and_stream(self, corpus):
        from multiprocessing import shared_memory

        from repro.engine.transport import (
            _read_batch,
            _write_batch,
            batch_slot_bytes,
        )

        records = corpus.records[:40]
        shm = shared_memory.SharedMemory(
            create=True, size=batch_slot_bytes(records)
        )
        try:
            _write_batch(shm.buf, records)
            rebuilt = _read_batch(shm.buf)
            assert rebuilt.records == records
            assert rebuilt.stream.tobytes() == b"".join(
                record + b"\n" for record in records
            )
            assert rebuilt.starts.tolist() == [
                sum(len(r) + 1 for r in records[:i])
                for i in range(len(records))
            ]
        finally:
            shm.close()
            shm.unlink()

    def test_worker_init_resolves_expression_and_counts(self):
        transport_module = self._init_worker(simple_filter())
        packed, count, stats, delta = transport_module._task_pickled(
            [b'{"e":[{"v":"30.0","n":"temperature"}]}',
             b'{"e":[{"v":"99.0","n":"temperature"}]}']
        )
        import numpy as np

        assert count == 2
        assert np.unpackbits(packed, count=2).tolist() == [1, 0]
        pid, chunks, records, hits, misses = stats
        assert chunks == 1 and records == 2
        assert hits == 0 and misses == 0  # no cache configured
        assert delta == []  # no cache, nothing to merge back

    def test_worker_cache_snapshot_serves_hits(self, corpus, payload):
        """A worker initialised from a warm snapshot serves the same
        chunk content without re-evaluating."""
        expr = simple_filter()
        cache = AtomCache()
        warm = FilterEngine(chunk_bytes=1024, cache=cache)
        _, want, _ = stream_all(warm, expr, payload)
        transport_module = self._init_worker(
            expr, snapshot=cache.snapshot()
        )
        framer_engine = FilterEngine(chunk_bytes=1024)
        got = []
        deltas = []
        for batch in framer_engine.stream_file(
            expr, io.BytesIO(payload)
        ):
            packed, count, stats, delta = (
                transport_module._task_pickled(batch.records)
            )
            deltas.extend(delta)
            import numpy as np

            got.extend(
                np.unpackbits(packed, count=count).astype(bool).tolist()
            )
        assert got == want
        worker_cache = transport_module._WORKER["cache"]
        assert worker_cache.hits > 0
        assert worker_cache.misses == 0
        assert deltas == []  # fully warm: nothing newly computed

    def test_shared_task_equals_pickled_task(self, corpus):
        from multiprocessing import shared_memory

        from repro.engine.transport import (
            _read_result,
            _write_batch,
            batch_slot_bytes,
        )

        records = corpus.records[:25]
        transport_module = self._init_worker(simple_filter())
        want = transport_module._task_pickled(records)[0].tolist()
        shm = shared_memory.SharedMemory(
            create=True, size=batch_slot_bytes(records)
        )
        try:
            _write_batch(shm.buf, records)
            # the result frame fits the slot, so the task leaves it
            # there and returns only the ring sentinel
            assert transport_module._task_shared(shm.name) is None
            got, count, stats, delta = _read_result(shm.buf)
            assert count == len(records)
            assert got.tolist() == want
            assert delta == []
            pid, chunks, seen_records, hits, misses = stats
            # counters are cumulative: the pickled warm-up task above
            # already evaluated the same batch once
            assert chunks == 2
            assert seen_records == 2 * len(records)
            # the attachment is memoised per slot name
            assert shm.name.lstrip("/") in {
                name.lstrip("/")
                for name in transport_module._WORKER["shm"]
            }
        finally:
            for attached in transport_module._WORKER["shm"].values():
                attached.close()
            transport_module._WORKER["shm"].clear()
            shm.close()
            shm.unlink()

    def test_result_frame_roundtrip_with_delta(self):
        import numpy as np

        from repro.engine.transport import _read_result, _write_result

        packed = np.packbits(np.array([1, 0, 1, 1], dtype=bool))
        delta = [((4, b"fp"), ("atom", 1), np.array([1, 0, 1, 1]))]
        stats = (4242, 3, 12, 5, 7)
        buf = memoryview(bytearray(4096))
        assert _write_result(buf, packed, 4, stats, delta)
        got_packed, count, got_stats, got_delta = _read_result(buf)
        assert count == 4
        assert got_packed.tolist() == packed.tolist()
        assert got_stats == stats
        assert len(got_delta) == 1
        fingerprint, key, array = got_delta[0]
        assert fingerprint == (4, b"fp")
        assert key == ("atom", 1)
        assert array.tolist() == [1, 0, 1, 1]

    def test_result_frame_overflow_is_rejected(self):
        """A frame that cannot fit reports False so the caller falls
        back to the pickled pipe — the slot stays untouched."""
        import numpy as np

        from repro.engine.transport import (
            _RESULT_HEADER_BYTES,
            _write_result,
        )

        packed = np.packbits(np.ones(1024, dtype=bool))
        buf = memoryview(bytearray(_RESULT_HEADER_BYTES + 8))
        before = bytes(buf)
        assert not _write_result(buf, packed, 1024, (1, 1, 1, 0, 0), [])
        assert bytes(buf) == before

    def test_oversized_delta_result_returns_pickled(self, corpus):
        """Through the real task function: a result frame bigger than
        its slot (here: a slot barely larger than the request) comes
        back as the pickled tuple instead of the ring sentinel."""
        from multiprocessing import shared_memory

        from repro.engine.transport import _write_batch, batch_slot_bytes

        records = [b'{"n":"temperature","v":"1.0"}'] * 3
        # warm-capable worker: an empty snapshot still builds a cache,
        # so newly computed masks ride the (large) delta
        transport_module = self._init_worker(
            simple_filter(), snapshot=[]
        )
        shm = shared_memory.SharedMemory(
            create=True, size=batch_slot_bytes(records)
        )
        try:
            _write_batch(shm.buf, records)
            result = transport_module._task_shared(shm.name)
            assert result is not None  # fell back to the pickled pipe
            packed, count, stats, delta = result
            assert count == len(records)
            assert len(delta) > 0
        finally:
            for attached in transport_module._WORKER["shm"].values():
                attached.close()
            transport_module._WORKER["shm"].clear()
            shm.close()
            shm.unlink()
