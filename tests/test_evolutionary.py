"""Tests for the evolutionary design-space explorer (future-work item)."""

import pytest

from repro.core.design_space import DesignSpace
from repro.core.evolutionary import evolve
from repro.data import QS1, load_dataset
from repro.errors import DesignSpaceError


@pytest.fixture(scope="module")
def qs1_space():
    dataset = load_dataset("smartcity", 300)
    space = DesignSpace(QS1, dataset)
    space._prepare()
    return space


class TestEvolve:
    def test_produces_valid_front(self, qs1_space):
        result = evolve(qs1_space, population_size=16, generations=8,
                        seed=1)
        assert result.front
        for point in result.front:
            assert 0.0 <= point.fpr <= 1.0
            assert point.luts > 0

    def test_uses_fewer_evaluations_than_brute_force(self, qs1_space):
        result = evolve(qs1_space, population_size=16, generations=10,
                        seed=2)
        assert result.evaluations < qs1_space.num_configurations() / 10

    def test_front_is_nondominated(self, qs1_space):
        result = evolve(qs1_space, population_size=16, generations=8,
                        seed=3)
        for a in result.front:
            for b in result.front:
                if a is not b:
                    strictly = (
                        (b.fpr <= a.fpr and b.luts < a.luts)
                        or (b.fpr < a.fpr and b.luts <= a.luts)
                    )
                    assert not strictly

    def test_deterministic_for_seed(self, qs1_space):
        first = evolve(qs1_space, population_size=12, generations=5,
                       seed=7)
        second = evolve(qs1_space, population_size=12, generations=5,
                        seed=7)
        assert [(p.fpr, p.luts) for p in first.front] == [
            (p.fpr, p.luts) for p in second.front
        ]

    def test_best_fpr_improves_over_generations(self, qs1_space):
        result = evolve(qs1_space, population_size=24, generations=15,
                        seed=4)
        assert result.history[-1] <= result.history[0]

    def test_finds_near_bruteforce_knee(self, qs1_space):
        """GA should find a configuration with FPR < 0.15 (the knee)."""
        result = evolve(qs1_space, population_size=32, generations=20,
                        seed=5)
        assert min(p.fpr for p in result.front) < 0.15

    def test_rejects_tiny_population(self, qs1_space):
        with pytest.raises(DesignSpaceError):
            evolve(qs1_space, population_size=2, generations=2)
