"""Tests for the unified streaming FilterEngine execution layer."""

import io
import random

import pytest

import repro.core.composition as comp
from repro.baselines import (
    Cascade,
    ExactFilter,
    KeyValueProbe,
    SubstringProbe,
    optimize_cascade,
)
from repro.data import load_dataset
from repro.engine import (
    EngineConfig,
    FilterEngine,
    RecordFramer,
    ScalarBackend,
    VectorizedBackend,
    iter_file_chunks,
    resolve_backend,
)
from repro.errors import ReproError


def simple_filter():
    return comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))


def ndjson_bytes(dataset):
    return dataset.stream.tobytes()


# ---------------------------------------------------------------------------
# record framing across chunk seams
# ---------------------------------------------------------------------------

class TestRecordFramer:
    RECORDS = [b'{"a":1}', b'{"bb":22}', b'{"c":"x,y"}']

    def test_every_split_position_reframes_identically(self):
        """Records straddling a chunk seam are reassembled exactly."""
        data = b"".join(r + b"\n" for r in self.RECORDS)
        for cut in range(len(data) + 1):
            framer = RecordFramer()
            records = framer.push(data[:cut])
            records += framer.push(data[cut:])
            records += framer.flush()
            assert records == self.RECORDS, f"cut at {cut}"

    def test_single_byte_chunks(self):
        data = b"".join(r + b"\n" for r in self.RECORDS)
        framer = RecordFramer()
        records = []
        for i in range(len(data)):
            records += framer.push(data[i:i + 1])
        records += framer.flush()
        assert records == self.RECORDS

    def test_empty_chunks_are_noops(self):
        framer = RecordFramer()
        assert framer.push(b"") == []
        assert framer.push(b'{"a":1}\n') == [b'{"a":1}']
        assert framer.push(b"") == []
        assert framer.flush() == []

    def test_missing_trailing_newline_flushes_last_record(self):
        framer = RecordFramer()
        assert framer.push(b'{"a":1}\n{"b":2}') == [b'{"a":1}']
        assert framer.flush() == [b'{"b":2}']
        assert framer.records_emitted == 2

    def test_blank_lines_and_crlf(self):
        framer = RecordFramer()
        records = framer.push(b'{"a":1}\r\n\n  \n{"b":2}\r\n')
        assert records == [b'{"a":1}', b'{"b":2}']
        assert framer.flush() == []

    def test_oversized_unterminated_record_rejected(self):
        framer = RecordFramer(max_record_bytes=8)
        with pytest.raises(ReproError):
            framer.push(b"x" * 16)

    def test_non_bytes_chunk_rejected(self):
        with pytest.raises(ReproError):
            RecordFramer().push("text")

    def test_iter_file_chunks(self):
        handle = io.BytesIO(b"abcdefg")
        assert list(iter_file_chunks(handle, 3)) == [b"abc", b"def", b"g"]
        with pytest.raises(ReproError):
            list(iter_file_chunks(io.BytesIO(b"x"), 0))

    def test_iter_file_chunks_pipe_yields_available_bytes(self):
        """Non-seekable handles must not block for a full chunk: the
        bytes already available are delivered immediately (read1)."""

        class FakePipe:
            def __init__(self, pieces):
                self.pieces = list(pieces)
                self.read_called = False

            def seekable(self):
                return False

            def read1(self, size):
                return self.pieces.pop(0) if self.pieces else b""

            def read(self, size):  # would block in a real pipe
                self.read_called = True
                return self.read1(size)

        pipe = FakePipe([b'{"a":1}\n', b'{"b":2}\n'])
        chunks = list(iter_file_chunks(pipe, 1 << 20))
        assert chunks == [b'{"a":1}\n', b'{"b":2}\n']
        assert not pipe.read_called


# ---------------------------------------------------------------------------
# backend agreement (property-style cross-check)
# ---------------------------------------------------------------------------

NEEDLE_POOL = ["temperature", "humidity", "taxi", '"n"', "29", "e", "al"]


def random_primitive(rng, for_group=False):
    if rng.random() < 0.5:
        needle = rng.choice(NEEDLE_POOL)
        blocks = [1, min(2, len(needle)), len(needle)]
        if not for_group:
            blocks.append("N")
        return comp.s(needle, rng.choice(blocks))
    kind = rng.choice(["int", "float"])
    lo = rng.randint(0, 40)
    hi = lo + rng.randint(0, 60)
    if kind == "float":
        return comp.v(f"{lo}.{rng.randint(0, 9)}", f"{hi}.9")
    return comp.v_int(lo, hi)


def random_expression(rng, depth=0):
    roll = rng.random()
    if depth >= 2 or roll < 0.35:
        return random_primitive(rng)
    if roll < 0.55:
        children = [
            random_primitive(rng, for_group=True)
            for _ in range(rng.randint(1, 3))
        ]
        return comp.Group(children, comma_scoped=rng.random() < 0.3)
    combinator = comp.And if roll < 0.8 else comp.Or
    children = [
        random_expression(rng, depth + 1)
        for _ in range(rng.randint(2, 3))
    ]
    return combinator(children)


class TestBackendAgreement:
    @pytest.mark.parametrize("dataset_name", ["smartcity", "taxi"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_vectorized_equals_scalar_on_random_expressions(
        self, dataset_name, seed
    ):
        """The vectorised backend must agree bit-for-bit with the
        scalar reference oracle on randomised corpora/expressions."""
        rng = random.Random(seed)
        dataset = load_dataset(
            dataset_name, 150, seed=1000 + seed
        )
        engine = FilterEngine()
        for _ in range(8):
            expr = random_expression(rng)
            fast = engine.match_bits(expr, dataset)
            slow = engine.match_bits(expr, dataset, backend="scalar")
            assert fast.dtype == bool and len(fast) == len(dataset)
            assert (fast == slow).all(), expr.notation()

    def test_matches_record_single(self):
        engine = FilterEngine()
        expr = simple_filter()
        record = b'{"e":[{"v":"30.0","n":"temperature"}]}'
        assert engine.matches_record(expr, record) is True
        assert engine.matches_record(expr, b'{"n":"humidity"}') is False

    def test_plain_record_lists_accepted(self):
        engine = FilterEngine()
        records = [b'{"temperature":"1.0"}', b'{"humidity":"9"}']
        bits = engine.match_bits(comp.s("temperature", 1), records)
        assert bits.tolist() == [True, False]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            resolve_backend("quantum")
        with pytest.raises(ReproError):
            FilterEngine().match_bits(
                simple_filter(), [b"{}"], backend="quantum"
            )

    def test_backend_instances_usable_directly(self):
        dataset = load_dataset("smartcity", 50)
        expr = simple_filter()
        fast = VectorizedBackend().match_bits(expr, dataset)
        slow = ScalarBackend().match_bits(expr, dataset)
        assert (fast == slow).all()

    def test_config_validation(self):
        with pytest.raises(ReproError):
            EngineConfig(chunk_bytes=0)
        with pytest.raises(ReproError):
            EngineConfig(num_workers=0)


# ---------------------------------------------------------------------------
# chunked streaming
# ---------------------------------------------------------------------------

class TestStreaming:
    @pytest.fixture(scope="class")
    def corpus(self):
        return load_dataset("smartcity", 200, seed=7)

    @pytest.fixture(scope="class")
    def expected(self, corpus):
        return FilterEngine().match_bits(simple_filter(), corpus)

    @pytest.mark.parametrize("chunk_bytes", [1, 7, 64, 4096, 1 << 22])
    def test_chunk_size_invariance(self, corpus, expected, chunk_bytes):
        """Any chunking of the stream yields the same records/bits —
        including chunks far smaller than one record."""
        engine = FilterEngine(chunk_bytes=chunk_bytes)
        payload = ndjson_bytes(corpus)
        records = []
        matches = []
        for batch in engine.stream_file(
            simple_filter(), io.BytesIO(payload)
        ):
            records.extend(batch.records)
            matches.extend(batch.matches.tolist())
        assert records == corpus.records
        assert matches == expected.tolist()

    def test_stream_bounded_batches(self, corpus):
        """No framed batch materialises more than chunk + one record."""
        chunk_bytes = 256
        engine = FilterEngine(chunk_bytes=chunk_bytes)
        payload = ndjson_bytes(corpus)
        max_record = max(len(r) + 1 for r in corpus.records)
        for batch in engine.stream_file(
            simple_filter(), io.BytesIO(payload)
        ):
            batch_bytes = sum(len(r) + 1 for r in batch.records)
            assert batch_bytes <= chunk_bytes + max_record

    def test_stream_without_trailing_newline(self):
        engine = FilterEngine(chunk_bytes=16)
        records = [b'{"temperature":"1.0"}', b'{"temperature":"2.0"}']
        payload = b"\n".join(records)  # no final newline
        seen = []
        for batch in engine.stream(comp.s("temperature", 1), [payload]):
            seen.extend(batch.records)
        assert seen == records

    def test_stream_empty_and_blank_input(self):
        engine = FilterEngine()
        assert list(engine.stream(simple_filter(), [])) == []
        assert list(engine.stream(simple_filter(), [b"\n \n\n"])) == []

    def test_cumulative_counters(self, corpus, expected):
        engine = FilterEngine(chunk_bytes=512)
        payload = ndjson_bytes(corpus)
        last = None
        for last in engine.stream_file(
            simple_filter(), io.BytesIO(payload)
        ):
            pass
        assert last.records_seen == len(corpus)
        assert last.bytes_seen == len(payload)
        assert last.accepted_seen == int(expected.sum())

    def test_filter_stream_yields_accepted_in_order(self, corpus,
                                                    expected):
        engine = FilterEngine(chunk_bytes=128)
        got = list(engine.filter_stream(
            simple_filter(), [ndjson_bytes(corpus)]
        ))
        want = [
            record
            for record, match in zip(corpus.records, expected)
            if match
        ]
        assert got == want

    def test_scalar_backend_streaming(self, corpus, expected):
        engine = FilterEngine(backend="scalar", chunk_bytes=333)
        matches = []
        for batch in engine.stream_file(
            simple_filter(), io.BytesIO(ndjson_bytes(corpus))
        ):
            matches.extend(batch.matches.tolist())
        assert matches == expected.tolist()


class TestCachedStreamSeams:
    """Chunk-seam framing with the AtomCache enabled: any random split
    of the corpus must yield exactly the whole-buffer match bits."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return load_dataset("smartcity", 120, seed=31)

    def _random_chunks(self, rng, payload):
        cuts = sorted(
            rng.sample(range(1, len(payload)),
                       rng.randint(1, min(24, len(payload) - 1)))
        )
        bounds = [0] + cuts + [len(payload)]
        return [
            payload[start:end]
            for start, end in zip(bounds, bounds[1:])
        ]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_splits_match_whole_buffer(self, corpus, seed):
        rng = random.Random(seed)
        payload = ndjson_bytes(corpus)
        engine = FilterEngine(cache=True)
        for _ in range(6):
            expr = random_expression(rng)
            whole = engine.match_bits(expr, corpus)
            chunks = self._random_chunks(rng, payload)
            records = []
            matches = []
            for batch in engine.stream(expr, chunks):
                records.extend(batch.records)
                matches.extend(batch.matches.tolist())
            assert records == corpus.records, expr.notation()
            assert matches == whole.tolist(), expr.notation()

    def test_rerun_of_identical_chunks_hits_cache(self, corpus):
        """Streaming the same chunking twice serves the second pass from
        the cache — and still yields identical bits."""
        payload = ndjson_bytes(corpus)
        chunks = self._random_chunks(random.Random(99), payload)
        engine = FilterEngine(cache=True)
        expr = simple_filter()
        first = [
            batch.matches.tolist()
            for batch in engine.stream(expr, chunks)
        ]
        misses_cold = engine.atom_cache.misses
        hits_cold = engine.atom_cache.hits
        second = [
            batch.matches.tolist()
            for batch in engine.stream(expr, chunks)
        ]
        assert first == second
        assert engine.atom_cache.misses == misses_cold
        assert engine.atom_cache.hits > hits_cold

    def test_cached_and_uncached_streams_agree(self, corpus):
        payload = ndjson_bytes(corpus)
        expr = simple_filter()
        cached = FilterEngine(chunk_bytes=190, cache=True)
        plain = FilterEngine(chunk_bytes=190)
        cached_batches = list(
            cached.stream_file(expr, io.BytesIO(payload))
        )
        plain_batches = list(
            plain.stream_file(expr, io.BytesIO(payload))
        )
        assert len(cached_batches) == len(plain_batches)
        for left, right in zip(cached_batches, plain_batches):
            assert left.records == right.records
            assert left.matches.tolist() == right.matches.tolist()


class TestParallelStreaming:
    def test_workers_match_serial(self):
        corpus = load_dataset("taxi", 150, seed=11)
        expr = comp.And([comp.s("taxi", 2), comp.v_int(0, 80)])
        payload = ndjson_bytes(corpus)
        serial = FilterEngine(chunk_bytes=512)
        parallel = FilterEngine(chunk_bytes=512, num_workers=2)
        serial_batches = list(
            serial.stream_file(expr, io.BytesIO(payload))
        )
        parallel_batches = list(
            parallel.stream_file(expr, io.BytesIO(payload))
        )
        assert len(serial_batches) == len(parallel_batches)
        for left, right in zip(serial_batches, parallel_batches):
            assert left.records == right.records
            assert left.matches.tolist() == right.matches.tolist()
        assert (
            serial_batches[-1].accepted_seen
            == parallel_batches[-1].accepted_seen
        )

    def test_unpicklable_predicate_falls_back_to_serial(self):
        class LocalPredicate:
            """Defined in a function scope: cannot be pickled."""

            def matches(self, record):
                return b"x" in record

        engine = FilterEngine(
            backend="scalar", chunk_bytes=8, num_workers=2
        )
        payload = b'{"x":1}\n{"y":2}\n{"x":3}\n'
        with pytest.warns(RuntimeWarning, match="not picklable"):
            accepted = list(
                engine.filter_stream(LocalPredicate(), [payload])
            )
        assert accepted == [b'{"x":1}', b'{"x":3}']

    def test_fallback_reason_recorded_and_warned_once(self):
        class LocalPredicate:
            def matches(self, record):
                return True

        engine = FilterEngine(chunk_bytes=8, num_workers=2)
        payload = b'{"x":1}\n'
        with pytest.warns(RuntimeWarning, match="parallel_fallback"):
            list(engine.filter_stream(LocalPredicate(), [payload]))
        reason = engine.stats()["parallel_fallback"]
        assert reason is not None and "picklable" in reason
        assert engine.stats()["workers"] is None
        # the warning fires once per engine, the reason stays current
        import warnings as warnings_module

        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            list(engine.filter_stream(LocalPredicate(), [payload]))
        assert caught == []
        assert engine.stats()["parallel_fallback"] == reason

    def test_backend_instance_fallback_is_reported(self):
        engine = FilterEngine(chunk_bytes=64, num_workers=2)
        payload = b'{"n":"temperature","v":"1.0"}\n'
        with pytest.warns(RuntimeWarning, match="backend instance"):
            batches = list(
                engine.stream(simple_filter(), [payload],
                              backend=ScalarBackend())
            )
        assert batches[0].matches.tolist() == [True]
        assert "backend instance" in (
            engine.stats()["parallel_fallback"]
        )

    def test_successful_parallel_stream_clears_fallback_reason(self):
        class LocalPredicate:
            def matches(self, record):
                return True

        engine = FilterEngine(chunk_bytes=64, num_workers=2)
        payload = b'{"n":"temperature","v":"1.0"}\n'
        with pytest.warns(RuntimeWarning):
            list(engine.filter_stream(LocalPredicate(), [payload]))
        assert engine.stats()["parallel_fallback"] is not None
        list(engine.stream(simple_filter(), [payload]))
        assert engine.stats()["parallel_fallback"] is None
        assert engine.stats()["workers"] is not None

    def test_serial_engine_never_reports_fallback(self):
        engine = FilterEngine(chunk_bytes=64)
        payload = b'{"n":"temperature","v":"1.0"}\n'
        list(engine.stream(simple_filter(), [payload]))
        assert engine.stats()["parallel_fallback"] is None

    def test_fallback_clears_stale_worker_stats(self):
        """A fallback stream must not leave the previous parallel
        stream's worker counters next to its fallback reason."""

        class LocalPredicate:
            def matches(self, record):
                return True

        engine = FilterEngine(chunk_bytes=64, num_workers=2)
        payload = b'{"n":"temperature","v":"1.0"}\n'
        list(engine.stream(simple_filter(), [payload]))
        assert engine.stats()["workers"] is not None
        with pytest.warns(RuntimeWarning):
            list(engine.filter_stream(LocalPredicate(), [payload]))
        stats = engine.stats()
        assert stats["parallel_fallback"] is not None
        assert stats["workers"] is None


class TestEngineConfigArgument:
    def test_config_as_first_positional(self):
        config = EngineConfig(backend="scalar", chunk_bytes=4096,
                              num_workers=2)
        engine = FilterEngine(config)
        assert engine.config is config
        assert engine.config.backend == "scalar"
        assert engine.config.chunk_bytes == 4096

    def test_config_keyword_still_works(self):
        config = EngineConfig(chunk_bytes=2048)
        engine = FilterEngine(config=config)
        assert engine.config is config

    def test_positional_and_keyword_config_rejected(self):
        with pytest.raises(ReproError, match="not both"):
            FilterEngine(EngineConfig(), config=EngineConfig())

    def test_non_config_keyword_rejected_clearly(self):
        with pytest.raises(ReproError, match="EngineConfig"):
            FilterEngine(config=42)

    def test_tuning_kwargs_alongside_config_rejected(self):
        """Mixing a config object with loose execution kwargs would
        silently drop one of them — refuse loudly instead."""
        with pytest.raises(ReproError, match="num_workers"):
            FilterEngine(EngineConfig(backend="scalar"), num_workers=4)
        with pytest.raises(ReproError, match="transport"):
            FilterEngine(config=EngineConfig(),
                         transport="shared-memory")
        # cache is engine state, not an EngineConfig parameter
        engine = FilterEngine(EngineConfig(chunk_bytes=2048),
                              cache=True)
        assert engine.atom_cache is not None

    def test_config_engine_streams(self):
        engine = FilterEngine(EngineConfig(chunk_bytes=64))
        payload = b'{"n":"temperature","v":"1.0"}\n{"n":"x"}\n'
        matches = [
            m
            for batch in engine.stream(simple_filter(), [payload])
            for m in batch.matches.tolist()
        ]
        assert matches == [True, False]


# ---------------------------------------------------------------------------
# baselines through the engine
# ---------------------------------------------------------------------------

class TestBaselinePredicates:
    @pytest.fixture(scope="class")
    def corpus(self):
        return load_dataset("smartcity", 200, seed=21)

    def test_substring_probe_vectorizes_exactly(self, corpus):
        engine = FilterEngine()
        probe = SubstringProbe(b"temp")
        bits = engine.match_bits(probe, corpus)
        assert bits.tolist() == [
            b"temp" in record for record in corpus.records
        ]

    def test_cascade_backends_agree(self, corpus):
        engine = FilterEngine()
        cascade = optimize_cascade(
            ["temperature", "relativeHumidity"], corpus, max_probes=2
        )
        fast = engine.match_bits(cascade, corpus)
        slow = engine.match_bits(cascade, corpus, backend="scalar")
        assert (fast == slow).all()
        assert fast.tolist() == [
            cascade.matches(record) for record in corpus.records
        ]

    def test_keyvalue_probe_runs_scalar(self, corpus):
        engine = FilterEngine()
        probe = KeyValueProbe(b'"n"', b"temperature", window=24)
        bits = engine.match_bits(probe, corpus)
        assert bits.tolist() == [
            probe.matches(record) for record in corpus.records
        ]

    def test_cascade_streams_like_raw_filters(self, corpus):
        engine = FilterEngine(chunk_bytes=300)
        cascade = Cascade([SubstringProbe(b"temperature")])
        accepted = list(engine.filter_stream(
            cascade, [ndjson_bytes(corpus)]
        ))
        assert accepted == [
            record
            for record in corpus.records
            if cascade.matches(record)
        ]

    def test_exact_oracle_is_an_engine_predicate(self):
        from repro.data import ALL_QUERIES

        query = ALL_QUERIES["QS0"]
        dataset = load_dataset(query.dataset_name, 120, seed=5)
        engine = FilterEngine()
        oracle = ExactFilter(query)
        truth = engine.match_bits(oracle, dataset)
        assert truth.tolist() == query.truth_array(dataset).tolist()
        scalar = engine.match_bits(
            ExactFilter(query), dataset, backend="scalar"
        )
        assert (truth == scalar).all()

    def test_unsupported_predicate_rejected(self):
        with pytest.raises(ReproError):
            FilterEngine().match_bits(
                object(), [b"{}"], backend="scalar"
            )

    def test_probe_with_separator_falls_back_to_scalar(self, corpus):
        """A needle containing a record separator has no raw-filter
        form; the engine must run it scalar (all-False), not crash."""
        probe = SubstringProbe(b"a\nb")
        bits = probe.match_array(corpus)
        assert not bits.any()
        cascade = Cascade([probe, SubstringProbe(b"temp")])
        fast = FilterEngine().match_bits(cascade, corpus)
        assert not fast.any()


# ---------------------------------------------------------------------------
# engine behind the system simulation
# ---------------------------------------------------------------------------

class TestSystemIntegration:
    def test_soc_uses_shared_engine_bits(self):
        from repro.system import RawFilterSoC

        dataset = load_dataset("smartcity", 120)
        engine = FilterEngine()
        soc = RawFilterSoC(simple_filter(), engine=engine)
        report = soc.run(dataset)
        expected = engine.match_bits(simple_filter(), dataset)
        assert report.matches.tolist() == expected.tolist()

    def test_lane_rejects_short_accept_mask(self):
        from repro.system import FilterLane

        lane = FilterLane(simple_filter())
        with pytest.raises(ReproError):
            lane.process_records([b"a", b"b", b"c"],
                                 accept_mask=[True])

    def test_lane_without_mask_uses_engine(self):
        from repro.system import FilterLane

        lane = FilterLane(simple_filter())
        records = [
            b'{"e":[{"v":"30.0","n":"temperature"}]}',
            b'{"e":[{"v":"99.0","n":"temperature"}]}',
        ]
        cycles, matches = lane.process_records(records)
        payload = sum(len(r) + 1 for r in records)
        assert cycles == payload + lane.pipeline_fill_cycles
        assert matches.tolist() == [True, False]

    def test_multistream_shares_engine(self):
        from repro.system import MultiStreamSoC, StreamAssignment

        engine = FilterEngine()
        soc = MultiStreamSoC(
            [
                StreamAssignment("a", comp.s("temperature", 1), 3),
                StreamAssignment("b", comp.s("taxi", 2), 4),
            ],
            engine=engine,
        )
        datasets = {
            "a": load_dataset("smartcity", 60),
            "b": load_dataset("taxi", 60),
        }
        reports = soc.run(datasets)
        assert set(reports) == {"a", "b"}
        for name, assignment in (("a", soc.assignments[0]),
                                 ("b", soc.assignments[1])):
            expected = engine.match_bits(
                assignment.expr, datasets[name]
            )
            assert reports[name].matches.tolist() == expected.tolist()
