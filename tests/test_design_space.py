"""Unit + property tests for the query compiler and design-space explorer.

Includes the library's most important property: **no raw-filter
configuration ever produces a false negative** against the exact oracle.
"""

import numpy as np
import pytest

import repro.core.composition as comp
from repro.core.compiler import (
    condition_options,
    config_expression,
    paper_pareto_expression,
    string_primitive,
    value_primitive,
)
from repro.core.design_space import DesignSpace
from repro.data import QS0, QS1, QT, load_dataset
from repro.errors import QueryError
from repro.eval.harness import DatasetView, evaluate_expression


@pytest.fixture(scope="module")
def qs0_space():
    dataset = load_dataset("smartcity", 300)
    return DesignSpace(QS0, dataset)


class TestCompiler:
    def test_primitive_builders(self):
        condition = QS0.conditions[0]
        assert string_primitive(condition, 1).notation() == (
            's1("temperature")'
        )
        assert value_primitive(condition).notation() == (
            "v(0.7 <= f <= 35.1)"
        )

    def test_int_condition_builds_int_filter(self):
        light = next(
            c for c in QS0.conditions if c.attribute == "light"
        )
        assert value_primitive(light).notation() == "v(0 <= i <= 5153)"

    def test_default_option_count(self):
        options = condition_options(QS0.conditions[0])
        # omit + value + 3 blocks x (pair + group)
        assert len(options) == 8

    def test_option_count_with_string_only(self):
        options = condition_options(
            QS0.conditions[0], include_string_only=True
        )
        assert len(options) == 11

    def test_config_expression_single_atom_unwrapped(self):
        options = condition_options(QS0.conditions[0])
        value_option = next(o for o in options if o.label == "value")
        expr = config_expression([value_option])
        assert isinstance(expr, comp.NumberPredicate)

    def test_all_omit_rejected(self):
        options = condition_options(QS0.conditions[0])
        omit = next(o for o in options if o.is_omit)
        with pytest.raises(QueryError):
            config_expression([omit, omit])

    def test_paper_pareto_expression(self):
        expr = paper_pareto_expression(
            QS0,
            [
                ("group", "humidity", 1),
                ("value", "airquality_raw"),
            ],
        )
        assert expr.notation() == (
            '{ s1("humidity") & v(20.3 <= f <= 69.1) } & v(12 <= i <= 49)'
        )

    def test_paper_pareto_expression_pair_and_string(self):
        expr = paper_pareto_expression(
            QT, [("pair", "tolls_amount", 2), ("string", "tip_amount", 1)]
        )
        assert "s2(" in expr.notation() and "s1(" in expr.notation()


class TestDesignSpace:
    def test_configuration_count(self, qs0_space):
        assert qs0_space.num_configurations() == 8**5 - 1

    def test_evaluate_choice_matches_direct_evaluation(self, qs0_space):
        choice = next(iter(qs0_space.iter_choices()))
        fpr, luts, attributes = qs0_space.evaluate_choice(choice)
        expr = qs0_space.choice_expression(choice)
        view = DatasetView(qs0_space.dataset)
        accepted = evaluate_expression(view, expr)
        negatives = ~qs0_space.truth
        direct_fpr = (
            np.count_nonzero(accepted & negatives) / negatives.sum()
        )
        assert fpr == pytest.approx(direct_fpr)
        assert luts > 0

    def test_attribute_count(self, qs0_space):
        for choice in list(qs0_space.iter_choices())[:50]:
            _, _, attributes = qs0_space.evaluate_choice(choice)
            expected = sum(
                0 if qs0_space.options[i][g].is_omit else 1
                for i, g in enumerate(choice)
            )
            assert attributes == expected

    def test_explore_limit(self, qs0_space):
        points = qs0_space.explore(limit=100)
        assert len(points) == 100

    def test_pareto_front_is_nondominated(self, qs0_space):
        points = qs0_space.explore(limit=2000)
        front = qs0_space.pareto(points, exact_luts=False)
        for i, a in enumerate(front):
            for j, b in enumerate(front):
                if i != j:
                    assert not a.dominates(b, epsilon=1e-12) or (
                        a.fpr == b.fpr and a.luts == b.luts
                    )

    def test_all_omit_choice_accepts_everything(self, qs0_space):
        """Regression: an all-omit choice used to crash on
        ``np.bitwise_and(None, ...)``; it now reports the degenerate
        accept-everything filter."""
        all_omit = tuple(
            next(i for i, o in enumerate(options) if o.is_omit)
            for options in qs0_space.options
        )
        fpr, luts, attributes = qs0_space.evaluate_choice(all_omit)
        assert fpr == 1.0
        assert luts == 0
        assert attributes == 0

    def test_all_omit_zero_negatives(self):
        """The degenerate choice on an all-positive corpus has FPR 0."""
        from repro.data import QS0, load_dataset as load

        dataset = load("smartcity", 300)
        truth = QS0.truth_array(dataset)
        positives = dataset.subset(np.flatnonzero(truth))
        space = DesignSpace(QS0, positives)
        all_omit = tuple(
            next(i for i, o in enumerate(options) if o.is_omit)
            for options in space.options
        )
        assert space.evaluate_choice(all_omit) == (0.0, 0, 0)

    def test_space_uses_shared_engine(self):
        from repro.engine import FilterEngine

        dataset = load_dataset("smartcity", 200)
        engine = FilterEngine(cache=True)
        space = DesignSpace(QS0, dataset, engine=engine)
        assert space.engine is engine
        space.explore(limit=50)
        assert len(engine.atom_cache) > 0
        # the lazily built view is the engine cache's shared instance
        assert space.view is engine.atom_cache.view_for(dataset)

    def test_default_engine_is_process_shared(self):
        from repro.engine import default_engine

        dataset = load_dataset("smartcity", 120)
        space = DesignSpace(QS0, dataset)
        assert space.engine is default_engine()

    def test_full_filter_reaches_low_fpr(self):
        dataset = load_dataset("smartcity", 600)
        space = DesignSpace(QS0, dataset)
        # all five attributes as structural groups with B=1
        choice = []
        for options in space.options:
            index = next(
                i for i, o in enumerate(options)
                if o.label == "group[B=1]"
            )
            choice.append(index)
        fpr, luts, attributes = space.evaluate_choice(tuple(choice))
        assert attributes == 5
        assert fpr < 0.15
        assert luts > 100


class TestNoFalseNegatives:
    """Soundness: every configuration accepts every oracle-true record."""

    @pytest.mark.parametrize(
        "query,dataset_name",
        [(QS0, "smartcity"), (QS1, "smartcity"), (QT, "taxi")],
    )
    def test_sampled_configs_are_sound(self, query, dataset_name):
        dataset = load_dataset(dataset_name, 400)
        space = DesignSpace(query, dataset,
                            include_string_only=True)
        truth = query.truth_array(dataset)
        view = DatasetView(dataset)
        rng = np.random.default_rng(5)
        choices = list(space.iter_choices())
        picks = rng.choice(len(choices), size=60, replace=False)
        for pick in picks:
            expr = space.choice_expression(choices[int(pick)])
            accepted = evaluate_expression(view, expr)
            false_negatives = truth & ~accepted
            assert not false_negatives.any(), expr.notation()

    def test_paper_qs0_zero_fpr_config_is_sound_and_selective(self):
        dataset = load_dataset("smartcity", 1500)
        expr = paper_pareto_expression(
            QS0,
            [
                ("group", "temperature", 1),
                ("group", "humidity", 1),
                ("group", "light", 1),
                ("group", "dust", 1),
                ("group", "airquality_raw", 1),
            ],
        )
        view = DatasetView(dataset)
        accepted = evaluate_expression(view, expr)
        truth = QS0.truth_array(dataset)
        assert not (truth & ~accepted).any()
        # and it is actually a good filter
        from repro.eval.metrics import FilterMetrics

        assert FilterMetrics(accepted, truth).fpr < 0.15


class TestDesignSpaceIngest:
    def test_corpus_may_arrive_as_a_chunk_source(self):
        """The eval harness's phase-1 path accepts raw chunk sources:
        the corpus is framed by the engine's ingest layer."""
        from repro.engine import FilterEngine, IterableSource

        dataset = load_dataset(QT.dataset_name, 150, seed=4)
        payload = dataset.stream.tobytes()
        engine = FilterEngine(cache=True)
        direct = DesignSpace(QT, dataset, engine=engine)
        chunks = [payload[i:i + 512] for i in range(0, len(payload), 512)]
        streamed = DesignSpace(
            QT, IterableSource(chunks), engine=engine
        )
        assert streamed.dataset.records == dataset.records
        direct_points = direct.explore(limit=50)
        streamed_points = streamed.explore(limit=50)
        assert [p.fpr for p in streamed_points] == [
            p.fpr for p in direct_points
        ]
