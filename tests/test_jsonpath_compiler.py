"""Tests for JSONPath-to-raw-filter compilation (design-flow step i)."""

import numpy as np
import pytest

import repro.core.composition as comp
from repro.core.jsonpath_compiler import compile_jsonpath
from repro.data import load_dataset
from repro.errors import QueryError
from repro.eval.harness import DatasetView, evaluate_expression
from repro.jsonpath import compile_path, loads

LISTING2 = '$.e[?(@.n=="temperature" & @.v >= 0.7 & @.v <= 35.1)]'


class TestCompilation:
    def test_listing2_compiles_to_paper_filter(self):
        expr = compile_jsonpath(LISTING2)
        assert expr.notation() == (
            '{ s1("temperature") & v(0.7 <= f <= 35.1) }'
        )

    def test_nonstructural_variant(self):
        expr = compile_jsonpath(LISTING2, structural=False)
        assert expr.notation() == (
            's1("temperature") & v(0.7 <= f <= 35.1)'
        )

    def test_block_parameter(self):
        expr = compile_jsonpath(LISTING2, block=2)
        assert 's2("temperature")' in expr.notation()

    def test_existence_query(self):
        expr = compile_jsonpath("$.user.location")
        assert expr == comp.s("location", 1)

    def test_numeric_equality_becomes_point_range(self):
        expr = compile_jsonpath("$.e[?(@.v == 42)]")
        assert expr.notation() == "v(42 <= i <= 42)"

    def test_one_sided_bound(self):
        expr = compile_jsonpath("$.e[?(@.v >= 35)]")
        assert expr.notation() == "v(35 <= i)"

    def test_float_literal_gives_float_kind(self):
        expr = compile_jsonpath("$.e[?(@.v >= 0.5)]")
        assert "f" in expr.notation()

    def test_or_predicate(self):
        expr = compile_jsonpath(
            '$.e[?(@.n=="light" | @.n=="humidity")]'
        )
        assert isinstance(expr, comp.Or)
        assert len(expr.children) == 2

    def test_not_equal_is_dropped(self):
        expr = compile_jsonpath(
            '$.e[?(@.n=="light" & @.u != "per")]'
        )
        # the != clause cannot be raw-filtered; only the needle remains
        assert expr == comp.s("light", 1)

    def test_multiple_fields_fold_separately(self):
        expr = compile_jsonpath(
            "$.e[?(@.v >= 1 & @.v <= 9 & @.w >= 100 & @.w <= 200)]"
        )
        notations = expr.notation()
        assert "v(1 <= i <= 9)" in notations
        assert "v(100 <= i <= 200)" in notations

    def test_contradictory_bounds_rejected(self):
        with pytest.raises(QueryError):
            compile_jsonpath("$.e[?(@.v >= 9 & @.v <= 1)]")

    def test_unfilterable_query_rejected(self):
        with pytest.raises(QueryError):
            compile_jsonpath('$.e[?(@.v != 3)]')

    def test_accepts_precompiled_path(self):
        path = compile_path(LISTING2)
        assert compile_jsonpath(path).notation().startswith("{")


class TestSoundness:
    """The compiled raw filter over-approximates the JSONPath oracle."""

    @pytest.mark.parametrize(
        "path_text",
        [
            LISTING2,
            '$.e[?(@.n=="humidity" & @.v >= 20.3 & @.v <= 69.1)]',
            '$.e[?(@.n=="light" | @.n=="dust")]',
            "$.e[?(@.v >= 1000 & @.v <= 30000)]",
        ],
    )
    def test_no_false_negatives_on_smartcity(self, path_text):
        dataset = load_dataset("smartcity", 500)
        path = compile_path(path_text)
        expr = compile_jsonpath(path_text)
        truth = np.fromiter(
            (path.matches(parsed) for parsed in dataset.parsed),
            dtype=bool,
            count=len(dataset),
        )
        accepted = evaluate_expression(DatasetView(dataset), expr)
        assert not (truth & ~accepted).any()

    def test_filter_is_actually_selective(self):
        dataset = load_dataset("smartcity", 500)
        expr = compile_jsonpath(
            '$.e[?(@.n=="light" & @.v >= 100000)]'
        )
        accepted = evaluate_expression(DatasetView(dataset), expr)
        # no light value is that large; only strays can pass
        assert accepted.mean() < 0.5

    def test_record_level_agreement_example(self):
        expr = compile_jsonpath(LISTING2)
        path = compile_path(LISTING2)
        record = (
            b'{"e":[{"v":"30.0","u":"far","n":"temperature"}],"bt":1}'
        )
        assert path.matches(loads(record))
        assert comp.evaluate_record(expr, record)
        out_of_range = record.replace(b"30.0", b"99.0")
        assert not path.matches(loads(out_of_range))
        assert not comp.evaluate_record(expr, out_of_range)
