"""Unit tests for the Sparser baseline and the exact oracle."""

import numpy as np
import pytest

from repro.baselines import (
    ExactFilter,
    KeyValueProbe,
    SubstringProbe,
    candidate_probes,
    filtered_pipeline_stats,
    optimize_cascade,
)
from repro.data import QS0, QT
from repro.errors import QueryError


class TestSubstringProbe:
    def test_matches(self):
        probe = SubstringProbe("temp")
        assert probe.matches(b'{"n":"temperature"}')
        assert not probe.matches(b'{"n":"humidity"}')

    def test_match_array(self, smartcity_small):
        probe = SubstringProbe("temperature")
        mask = probe.match_array(smartcity_small)
        want = [b"temperature" in r for r in smartcity_small]
        assert mask.tolist() == want

    def test_rejects_empty(self):
        with pytest.raises(QueryError):
            SubstringProbe("")


class TestKeyValueProbe:
    def test_co_occurrence_within_window(self):
        probe = KeyValueProbe('"n":', '"temperature"', window=16)
        assert probe.matches(b'{"v":"1","n":"temperature"}')

    def test_outside_window_rejected(self):
        probe = KeyValueProbe('"n":', '"temperature"', window=2)
        assert not probe.matches(
            b'{"n":"xxxxxxxxxxxxxxxx","z":"temperature"}'
        )

    def test_retries_later_key_occurrences(self):
        probe = KeyValueProbe(b"k", b"v", window=3)
        assert probe.matches(b"k...........k.v")


class TestCandidateProbes:
    def test_lengths(self):
        probes = candidate_probes(["temperature"])
        lengths = {len(p.needle) for p in probes}
        assert lengths == {2, 4, 8}

    def test_short_terms_skip_long_probes(self):
        probes = candidate_probes(["user"])
        assert {len(p.needle) for p in probes} == {2, 4}

    def test_deduplication(self):
        probes = candidate_probes(["aaaa"])
        needles = [p.needle for p in probes]
        assert len(needles) == len(set(needles))


class TestOptimizer:
    def test_picks_selective_probe(self, taxi_small):
        cascade = optimize_cascade(
            ["tolls_amount"], taxi_small, max_probes=1
        )
        rate = cascade.match_array(taxi_small).mean()
        # tolls_amount appears in ~12% of trips; a good probe gets close
        assert rate < 0.5

    def test_cascade_is_sound_for_conjunctive_query(self, taxi_small):
        """Records matching QT all contain the probed substrings."""
        terms = [c.attribute for c in QT.conditions]
        cascade = optimize_cascade(terms, taxi_small, max_probes=2)
        accepted = cascade.match_array(taxi_small)
        truth = QT.truth_array(taxi_small)
        assert not (truth & ~accepted).any()

    def test_cascade_depth_limit(self, smartcity_small):
        terms = [c.attribute for c in QS0.conditions]
        cascade = optimize_cascade(terms, smartcity_small, max_probes=3)
        assert len(cascade.probes) <= 3

    def test_sparser_cannot_use_numeric_selectivity(self, smartcity_small):
        """The paper's core argument: string-only RFs stall on IoT data.

        QS0's selectivity comes from value ranges; every SmartCity record
        contains all the attribute names, so Sparser's best cascade still
        passes nearly everything that has the keys.
        """
        terms = [c.attribute for c in QS0.conditions]
        cascade = optimize_cascade(terms, smartcity_small, max_probes=2)
        accepted = cascade.match_array(smartcity_small)
        truth = QS0.truth_array(smartcity_small)
        from repro.eval.metrics import FilterMetrics

        sparser_fpr = FilterMetrics(accepted, truth).fpr
        assert sparser_fpr > 0.5  # string probes cannot discriminate

    def test_empty_terms_rejected(self, smartcity_small):
        with pytest.raises(QueryError):
            optimize_cascade([], smartcity_small)


class TestExactOracle:
    def test_counts_work(self, smartcity_small):
        oracle = ExactFilter(QS0)
        record = smartcity_small.records[0]
        oracle.matches(record)
        assert oracle.records_parsed == 1
        assert oracle.bytes_parsed == len(record)

    def test_match_array_equals_truth(self, smartcity_small):
        oracle = ExactFilter(QS0)
        got = oracle.match_array(smartcity_small)
        assert got.tolist() == QS0.truth_array(smartcity_small).tolist()

    def test_pipeline_stats(self, smartcity_small):
        truth = QS0.truth_array(smartcity_small)
        stats = filtered_pipeline_stats(truth, smartcity_small, QS0)
        assert stats["missing_matches"] == 0
        assert (
            stats["records_parsed_filtered"]
            <= stats["records_parsed_unfiltered"]
        )
        assert (
            stats["bytes_parsed_filtered"]
            <= stats["bytes_parsed_unfiltered"]
        )

    def test_pipeline_stats_detects_false_negatives(self, smartcity_small):
        truth = QS0.truth_array(smartcity_small)
        broken = np.zeros_like(truth)
        stats = filtered_pipeline_stats(broken, smartcity_small, QS0)
        assert stats["missing_matches"] == int(truth.sum())
