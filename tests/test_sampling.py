"""Tests for sampled FPR estimation (future-work item)."""

import pytest

from repro.core.sampling import (
    sample_dataset,
    sampled_design_space,
    sampling_error_study,
)
from repro.data import QS0, load_dataset
from repro.errors import DesignSpaceError


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("smartcity", 800)


class TestSampleDataset:
    def test_size(self, dataset):
        subset, indices = sample_dataset(dataset, 0.25, seed=1)
        assert len(subset) == pytest.approx(200, abs=2)
        assert len(indices) == len(subset)

    def test_stratified_preserves_balance(self, dataset):
        truth = QS0.truth_array(dataset)
        subset, indices = sample_dataset(
            dataset, 0.2, seed=2, stratify_truth=truth
        )
        sub_rate = truth[indices].mean()
        assert abs(sub_rate - truth.mean()) < 0.05

    def test_full_fraction_keeps_everything(self, dataset):
        subset, _ = sample_dataset(dataset, 1.0, seed=3)
        assert len(subset) == len(dataset)

    def test_bad_fraction(self, dataset):
        with pytest.raises(DesignSpaceError):
            sample_dataset(dataset, 0.0)
        with pytest.raises(DesignSpaceError):
            sample_dataset(dataset, 1.5)

    def test_deterministic(self, dataset):
        a, ia = sample_dataset(dataset, 0.3, seed=9)
        b, ib = sample_dataset(dataset, 0.3, seed=9)
        assert ia.tolist() == ib.tolist()


class TestSampledSpace:
    def test_space_over_subset(self, dataset):
        space = sampled_design_space(QS0, dataset, 0.25, seed=1)
        assert len(space.dataset) < len(dataset)
        choice = next(iter(space.iter_choices()))
        fpr, luts, _ = space.evaluate_choice(choice)
        assert 0.0 <= fpr <= 1.0

    def test_error_study_shrinks_with_sample_size(self, dataset):
        rows = sampling_error_study(
            QS0, dataset, fractions=(0.5, 0.1), seed=0
        )
        assert rows[0]["fraction"] == 0.5
        # larger samples estimate at least as well on average
        assert rows[0]["mean_abs_error"] <= rows[1]["mean_abs_error"] + 0.02

    def test_error_study_reports_record_counts(self, dataset):
        rows = sampling_error_study(QS0, dataset, fractions=(0.25,),
                                    seed=1)
        assert rows[0]["records"] == pytest.approx(200, abs=3)

    def test_errors_are_small_for_half_sample(self, dataset):
        rows = sampling_error_study(QS0, dataset, fractions=(0.5,),
                                    seed=2)
        assert rows[0]["mean_abs_error"] < 0.06
