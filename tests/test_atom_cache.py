"""Differential + policy tests for the shared AtomCache.

The cache may only ever change *when* work happens, never *what* is
computed: every cached evaluation must be bit-identical to a cold,
cache-free run.  The differential suite locks that down over randomised
corpora and query sets; the policy tests pin the LRU/fingerprint
behaviour the bound relies on.
"""

import random

import numpy as np
import pytest

import repro.core.composition as comp
from repro.core.design_space import DesignSpace
from repro.data import Dataset, load_dataset
from repro.data.riotbench import Query, RangeCondition
from repro.engine import AtomCache, FilterEngine, as_atom_cache
from repro.errors import ReproError

ATTRIBUTES = ("temperature", "humidity", "light", "dust",
              "airquality_raw")


def random_query(rng, name, num_conditions):
    """A random conjunction of range conditions over smartcity fields."""
    attrs = rng.sample(ATTRIBUTES, num_conditions)
    conditions = []
    for attr in attrs:
        if rng.random() < 0.5:
            lo = rng.randint(0, 40)
            conditions.append(
                RangeCondition(attr, lo, lo + rng.randint(1, 400))
            )
        else:
            lo = rng.uniform(0, 40)
            conditions.append(
                RangeCondition(
                    attr, f"{lo:.2f}", f"{lo + rng.uniform(1, 60):.2f}"
                )
            )
    return Query(name, "smartcity", "senml", conditions, 0.5)


def explored_tuples(points):
    return [
        (point.choice, point.fpr, point.luts, point.num_attributes)
        for point in points
    ]


def front_tuples(front):
    return [
        (point.meta["choice"], point.fpr, point.luts)
        for point in front
    ]


# ---------------------------------------------------------------------------
# differential: cached runs are bit-identical to cold cache-free runs
# ---------------------------------------------------------------------------

class TestDifferentialDesignSpace:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cached_explore_equals_cold_run(self, seed):
        """A shared cached engine serving several queries in sequence
        must reproduce every cold, cache-free result bit for bit."""
        rng = random.Random(seed)
        dataset = load_dataset("smartcity", 150 + 25 * seed,
                               seed=900 + seed)
        shared = FilterEngine(cache=True)
        for index in range(3):
            query = random_query(rng, f"rq{seed}-{index}",
                                 rng.randint(1, 3))
            cached_space = DesignSpace(query, dataset, engine=shared)
            cold_space = DesignSpace(query, dataset,
                                     engine=FilterEngine())
            cached_points = cached_space.explore()
            cold_points = cold_space.explore()
            assert explored_tuples(cached_points) == (
                explored_tuples(cold_points)
            )
            cached_front = cached_space.pareto(
                cached_points, exact_luts=False
            )
            cold_front = cold_space.pareto(cold_points, exact_luts=False)
            assert front_tuples(cached_front) == front_tuples(cold_front)
        stats = shared.stats()["cache"]
        assert stats["hits"] > 0  # queries actually shared atoms/masks

    def test_cached_evaluate_choice_equals_cold(self):
        dataset = load_dataset("smartcity", 220, seed=17)
        rng = random.Random(7)
        query = random_query(rng, "rq-choice", 3)
        shared = FilterEngine(cache=True)
        # warm the cache with a sibling query sharing conditions
        sibling = Query("rq-sibling", "smartcity", "senml",
                        query.conditions[:2], 0.5)
        DesignSpace(sibling, dataset, engine=shared).explore()
        cached_space = DesignSpace(query, dataset, engine=shared)
        cold_space = DesignSpace(query, dataset, engine=FilterEngine())
        choices = list(cached_space.iter_choices())
        for choice in rng.sample(choices, 40):
            assert cached_space.evaluate_choice(choice) == (
                cold_space.evaluate_choice(choice)
            )

    def test_repeated_explore_is_stable(self):
        """Exploring the same query twice through one cached engine
        serves phase 1 fully from the cache and changes nothing."""
        dataset = load_dataset("smartcity", 180, seed=3)
        query = random_query(random.Random(11), "rq-stable", 2)
        engine = FilterEngine(cache=True)
        first = DesignSpace(query, dataset, engine=engine).explore()
        misses_after_first = engine.atom_cache.misses
        second = DesignSpace(query, dataset, engine=engine).explore()
        assert explored_tuples(first) == explored_tuples(second)
        assert engine.atom_cache.misses == misses_after_first

    def test_match_bits_cached_equals_uncached(self):
        """Engine-level differential: cached vectorised bits equal both
        the uncached vectorised and the scalar oracle bits."""
        dataset = load_dataset("taxi", 150, seed=5)
        exprs = [
            comp.s("taxi", 2),
            comp.And([comp.s("taxi", 2), comp.v_int(0, 80)]),
            comp.group(comp.s("fare_amount", 1), comp.v("6.0", "201.0")),
        ]
        cached = FilterEngine(cache=True)
        plain = FilterEngine()
        for expr in exprs:
            for _ in range(2):  # second pass is served from the cache
                fast = cached.match_bits(expr, dataset)
                assert fast.tolist() == (
                    plain.match_bits(expr, dataset).tolist()
                )
                assert fast.tolist() == (
                    plain.match_bits(
                        expr, dataset, backend="scalar"
                    ).tolist()
                )

    def test_cached_results_are_writable_copies(self):
        dataset = load_dataset("smartcity", 60)
        engine = FilterEngine(cache=True)
        expr = comp.s("temperature", 1)
        first = engine.match_bits(expr, dataset)
        first[:] = False  # caller may scribble on its copy
        second = engine.match_bits(expr, dataset)
        assert second.any()


# ---------------------------------------------------------------------------
# cache policy: LRU bound, fingerprint invalidation, counters
# ---------------------------------------------------------------------------

class TestCachePolicy:
    def test_lru_eviction_at_entry_bound(self):
        cache = AtomCache(max_entries=3)
        fp = (1, b"fp")
        for index in range(5):
            cache.put(fp, ("atom", index), np.ones(4, dtype=bool))
        assert len(cache) == 3
        assert cache.evictions == 2
        # oldest two are gone, newest three remain
        assert cache.lookup(fp, ("atom", 0)) is None
        assert cache.lookup(fp, ("atom", 1)) is None
        assert cache.lookup(fp, ("atom", 4)) is not None

    def test_lru_recency_updated_by_lookup(self):
        cache = AtomCache(max_entries=2)
        fp = (1, b"fp")
        cache.put(fp, "a", np.ones(2, dtype=bool))
        cache.put(fp, "b", np.ones(2, dtype=bool))
        assert cache.lookup(fp, "a") is not None  # refresh "a"
        cache.put(fp, "c", np.ones(2, dtype=bool))  # evicts "b"
        assert cache.lookup(fp, "a") is not None
        assert cache.lookup(fp, "b") is None

    def test_byte_bound_eviction(self):
        cache = AtomCache(max_entries=None, max_bytes=100)
        fp = (1, b"fp")
        cache.put(fp, "a", np.zeros(60, dtype=np.uint8))
        cache.put(fp, "b", np.zeros(60, dtype=np.uint8))
        assert cache.nbytes <= 100
        assert cache.evictions == 1
        assert cache.lookup(fp, "a") is None

    def test_fingerprint_invalidation_on_dataset_change(self):
        """Same atom over datasets differing in one byte must not share
        masks: the content fingerprint separates them."""
        records = [b'{"temperature":"1.0"}', b'{"humidity":"9"}']
        changed = [b'{"temperature":"9.9"}', b'{"humidity":"9"}']
        engine = FilterEngine(cache=True)
        expr = comp.v("0.5", "2.0")
        first = engine.match_bits(expr, Dataset("a", records))
        hits_before = engine.atom_cache.hits
        second = engine.match_bits(expr, Dataset("a", changed))
        assert engine.atom_cache.hits == hits_before  # no false hit
        assert first.tolist() == [True, False]
        assert second.tolist() == [False, False]

    def test_equal_content_shares_fingerprint(self):
        records = [b'{"temperature":"1.0"}']
        engine = FilterEngine(cache=True)
        expr = comp.s("temperature", 1)
        engine.match_bits(expr, Dataset("a", records))
        misses = engine.atom_cache.misses
        engine.match_bits(expr, Dataset("b", list(records)))
        assert engine.atom_cache.misses == misses  # pure hits
        assert engine.atom_cache.hits > 0

    def test_hit_miss_counters_via_engine_stats(self):
        dataset = load_dataset("smartcity", 80)
        engine = FilterEngine(cache=True)
        expr = comp.s("temperature", 1)
        assert engine.stats()["cache"]["misses"] == 0
        engine.match_bits(expr, dataset)
        stats = engine.stats()["cache"]
        assert stats["misses"] >= 1 and stats["hits"] == 0
        engine.match_bits(expr, dataset)
        warm = engine.stats()["cache"]
        assert warm["hits"] >= 1
        assert warm["misses"] == stats["misses"]
        assert 0.0 < warm["hit_rate"] < 1.0

    def test_stats_disabled_without_cache(self):
        engine = FilterEngine()
        stats = engine.stats()
        assert stats["cache"] is None
        assert stats["backend"] == "vectorized"

    def test_view_memo_is_bounded(self):
        cache = AtomCache(max_views=2)
        views = [
            cache.view_for(Dataset(f"d{i}", [b'{"x":%d}' % i]))
            for i in range(4)
        ]
        assert cache.stats()["views"] == 2
        # the memo serves the same instance for equal content
        dataset = Dataset("again", [b'{"x":3}'])
        assert cache.view_for(dataset) is views[-1]

    def test_clear_drops_entries_and_views(self):
        dataset = load_dataset("smartcity", 40)
        engine = FilterEngine(cache=True)
        engine.match_bits(comp.s("temperature", 1), dataset)
        cache = engine.atom_cache
        assert len(cache) > 0
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["views"] == 0

    def test_cached_arrays_are_frozen(self):
        cache = AtomCache()
        fp = (1, b"fp")
        stored = cache.put(fp, "a", np.ones(3, dtype=bool))
        with pytest.raises(ValueError):
            stored[0] = False
        looked_up = cache.lookup(fp, "a")
        with pytest.raises(ValueError):
            looked_up[0] = False

    def test_constructor_validation(self):
        with pytest.raises(ReproError):
            AtomCache(max_entries=0)
        with pytest.raises(ReproError):
            AtomCache(max_bytes=0)
        with pytest.raises(ReproError):
            AtomCache(max_views=0)

    def test_as_atom_cache_normalisation(self):
        assert as_atom_cache(None) is None
        assert as_atom_cache(False) is None
        assert isinstance(as_atom_cache(True), AtomCache)
        cache = AtomCache()
        assert as_atom_cache(cache) is cache
        with pytest.raises(ReproError):
            as_atom_cache("yes")

    def test_engine_cache_argument_forms(self):
        assert FilterEngine().atom_cache is None
        assert isinstance(FilterEngine(cache=True).atom_cache, AtomCache)
        cache = AtomCache()
        shared_a = FilterEngine(cache=cache)
        shared_b = FilterEngine(cache=cache)
        assert shared_a.atom_cache is shared_b.atom_cache

    def test_backend_instance_override_honours_cache(self):
        """cache=True must not be silently dropped when the backend is
        supplied as an instance rather than by name."""
        from repro.engine import VectorizedBackend

        dataset = load_dataset("smartcity", 50)
        expr = comp.s("temperature", 1)
        instance = VectorizedBackend()
        engine = FilterEngine(backend=instance, cache=True)
        engine.match_bits(expr, dataset)
        assert engine.atom_cache.misses > 0
        hits_before = engine.atom_cache.hits
        engine.match_bits(expr, dataset, backend=VectorizedBackend())
        assert engine.atom_cache.hits > hits_before
        # a backend carrying its own cache keeps it
        own = AtomCache()
        preloaded = VectorizedBackend(atom_cache=own)
        assert FilterEngine(cache=True).backend(preloaded) is preloaded
        assert preloaded.atom_cache is own

    def test_stats_report_view_bytes(self):
        dataset = load_dataset("smartcity", 80)
        engine = FilterEngine(cache=True)
        engine.match_bits(comp.v_int(0, 9), dataset)
        stats = engine.stats()["cache"]
        assert stats["view_bytes"] >= dataset.total_bytes
        engine.atom_cache.clear()
        assert engine.stats()["cache"]["view_bytes"] == 0

    def test_scalar_backend_bypasses_cache(self):
        """The scalar reference oracle must never be cache-served."""
        dataset = load_dataset("smartcity", 50)
        engine = FilterEngine(cache=True)
        engine.match_bits(comp.s("temperature", 1), dataset,
                          backend="scalar")
        assert engine.atom_cache.misses == 0
        assert len(engine.atom_cache) == 0


class TestSnapshots:
    """Snapshot/spill: worker warm-up and cross-process persistence."""

    def _warmed_cache(self, num_records=60):
        dataset = load_dataset("smartcity", num_records, seed=9)
        engine = FilterEngine(cache=True)
        engine.match_bits(comp.s("temperature", 1), dataset)
        engine.match_bits(comp.v_int(0, 40), dataset)
        return engine.atom_cache, dataset

    def test_snapshot_roundtrip_preserves_entries(self):
        cache, dataset = self._warmed_cache()
        entries = cache.snapshot()
        assert len(entries) == len(cache)
        clone = AtomCache().load_snapshot(entries)
        assert len(clone) == len(cache)
        # the clone serves the same masks without re-evaluating
        engine = FilterEngine(cache=clone)
        misses_before = clone.misses
        bits = engine.match_bits(comp.s("temperature", 1), dataset)
        assert clone.misses == misses_before
        reference = FilterEngine().match_bits(
            comp.s("temperature", 1), dataset
        )
        assert bits.tolist() == reference.tolist()

    def test_snapshot_orders_most_recent_first(self):
        cache = AtomCache()
        cache.put((1, b"fp"), "old", np.zeros(4, dtype=bool))
        cache.put((1, b"fp"), "new", np.ones(4, dtype=bool))
        entries = cache.snapshot()
        assert [key for _, key, _ in entries] == ["new", "old"]

    def test_snapshot_byte_budget_keeps_recent_entries(self):
        cache = AtomCache()
        cache.put((1, b"fp"), "old", np.zeros(1024, dtype=np.uint8))
        cache.put((1, b"fp"), "new", np.zeros(1024, dtype=np.uint8))
        entries = cache.snapshot(max_bytes=1024)
        assert [key for _, key, _ in entries] == ["new"]

    def test_save_and_from_file(self, tmp_path):
        cache, dataset = self._warmed_cache()
        path = tmp_path / "atoms.pkl"
        cache.save(path)
        warm = AtomCache.from_file(path)
        assert len(warm) == len(cache)
        engine = FilterEngine(cache=warm)
        engine.match_bits(comp.s("temperature", 1), dataset)
        assert warm.hits > 0
        assert warm.misses == 0

    def test_from_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        import pickle

        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(ReproError):
            AtomCache.from_file(path)


class TestMergeSnapshot:
    """Worker merge-back policy (AtomCache.merge_snapshot)."""

    def test_merges_new_entries_and_reports_counts(self):
        cache = AtomCache()
        entries = [
            ((1, b"fp"), "a", np.array([1, 0], dtype=bool)),
            ((1, b"fp"), "b", np.array([0, 1], dtype=bool)),
        ]
        merged, skipped = cache.merge_snapshot(entries)
        assert (merged, skipped) == (2, 0)
        assert len(cache) == 2
        assert cache.lookup((1, b"fp"), "a").tolist() == [True, False]

    def test_conflicting_keys_keep_the_existing_entry(self):
        """Keys embed a content fingerprint, so a conflict means
        byte-equivalent data: the resident entry (and its recency)
        wins, and nothing is recomputed or overwritten."""
        cache = AtomCache()
        resident = cache.put((1, b"fp"), "a", np.array([1, 0]))
        cache.put((1, b"fp"), "newer", np.array([0, 0]))
        merged, skipped = cache.merge_snapshot(
            [((1, b"fp"), "a", np.array([1, 0]))]
        )
        assert (merged, skipped) == (0, 1)
        assert cache.lookup((1, b"fp"), "a") is resident
        # recency order unchanged: "a" was not re-inserted as MRU
        assert [key for _, key in cache._entries] == ["newer", "a"]

    def test_merge_respects_entry_bound(self):
        cache = AtomCache(max_entries=2)
        entries = [
            ((1, b"fp"), f"atom-{i}", np.zeros(4, dtype=bool))
            for i in range(5)
        ]
        merged, skipped = cache.merge_snapshot(entries)
        assert merged == 5 and skipped == 0
        assert len(cache) == 2
        assert cache.evictions == 3

    def test_merge_respects_byte_bound(self):
        cache = AtomCache(max_bytes=2048)
        entries = [
            ((1, b"fp"), f"atom-{i}", np.zeros(1024, dtype=np.uint8))
            for i in range(4)
        ]
        cache.merge_snapshot(entries)
        assert cache.nbytes <= 2048
        assert cache.evictions == 2

    def test_delta_log_records_only_new_inserts(self):
        cache = AtomCache()
        cache.load_snapshot(
            [((1, b"fp"), "warm", np.array([1], dtype=bool))]
        )
        cache.track_deltas()
        assert cache.pop_deltas() == []  # snapshot loads don't count
        cache.put((2, b"fp"), "fresh", np.array([0], dtype=bool))
        deltas = cache.pop_deltas()
        assert [(f, k) for f, k, _ in deltas] == [((2, b"fp"), "fresh")]
        assert cache.pop_deltas() == []  # consumed exactly once
        # deltas merged into another cache serve the same array
        other = AtomCache()
        other.merge_snapshot(deltas)
        assert other.lookup((2, b"fp"), "fresh").tolist() == [False]

    def test_pop_deltas_without_tracking_is_empty(self):
        cache = AtomCache()
        cache.put((1, b"fp"), "a", np.array([1]))
        assert cache.pop_deltas() == []
