"""Unit tests for the regex AST and its smart constructors."""

import pytest

from repro.regex.ast import (
    EPSILON,
    NEVER,
    Alt,
    Concat,
    Literal,
    Opt,
    Star,
    alt,
    concat,
    lit,
    opt,
    plus,
    repeat,
    star,
)
from repro.regex.charclass import CharClass


class TestLiterals:
    def test_lit_single_char(self):
        node = lit("a")
        assert isinstance(node, Literal)
        assert "a" in node.charclass

    def test_lit_string_becomes_concat(self):
        node = lit("ab")
        assert isinstance(node, Concat)
        assert node.to_pattern() == "ab"

    def test_lit_empty_string_is_epsilon(self):
        assert lit("") is EPSILON

    def test_lit_charclass(self):
        node = lit(CharClass.digits())
        assert node.to_pattern() == "[0-9]"

    def test_lit_empty_class_is_never(self):
        assert lit(CharClass.empty()) is NEVER

    def test_literal_rejects_empty_class(self):
        with pytest.raises(ValueError):
            Literal(CharClass.empty())


class TestConcat:
    def test_flattens(self):
        node = concat(lit("a"), concat(lit("b"), lit("c")))
        assert isinstance(node, Concat)
        assert len(node.parts) == 3

    def test_epsilon_elision(self):
        assert concat(EPSILON, lit("a"), EPSILON).to_pattern() == "a"

    def test_never_absorbs(self):
        assert concat(lit("a"), NEVER) is NEVER

    def test_empty_concat_is_epsilon(self):
        assert concat() is EPSILON

    def test_single_part_unwrapped(self):
        assert concat(lit("a")) == lit("a")


class TestAlt:
    def test_merges_single_char_options(self):
        node = alt(lit("3"), lit(CharClass.digit_range(4, 9)))
        assert isinstance(node, Literal)
        assert node.to_pattern() == "[3-9]"

    def test_never_dropped(self):
        assert alt(NEVER, lit("a")) == lit("a")

    def test_all_never_is_never(self):
        assert alt(NEVER, NEVER) is NEVER

    def test_epsilon_option_becomes_opt(self):
        node = alt(EPSILON, lit("ab"))
        assert isinstance(node, Opt)

    def test_flattening(self):
        node = alt(lit("ab"), alt(lit("cd"), lit("ef")))
        assert isinstance(node, Alt)
        assert len(node.options) == 3

    def test_deduplication(self):
        node = alt(lit("ab"), lit("ab"))
        assert node == lit("ab")

    def test_pattern_rendering(self):
        node = alt(lit("ab"), lit("cd"))
        assert node.to_pattern() == "ab|cd"


class TestRepetition:
    def test_star_of_star(self):
        assert star(star(lit("a"))) == star(lit("a"))

    def test_star_of_epsilon(self):
        assert star(EPSILON) is EPSILON

    def test_plus_of_never(self):
        assert plus(NEVER) is NEVER

    def test_opt_of_plus_is_star(self):
        node = opt(plus(lit("a")))
        assert isinstance(node, Star)

    def test_repeat_exact(self):
        node = repeat(lit("a"), 3, 3)
        assert node.to_pattern() == "a{3}"

    def test_repeat_unbounded(self):
        node = repeat(lit("a"), 2, None)
        assert node.to_pattern() == "a{2,}"

    def test_repeat_zero_one_is_opt(self):
        assert isinstance(repeat(lit("ab"), 0, 1), Opt)

    def test_repeat_one_is_identity(self):
        assert repeat(lit("a"), 1, 1) == lit("a")

    def test_repeat_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            repeat(lit("a"), 3, 2)


class TestEquality:
    def test_structural_equality(self):
        assert concat(lit("a"), lit("b")) == concat(lit("a"), lit("b"))

    def test_hashable(self):
        seen = {star(lit("a")), star(lit("a"))}
        assert len(seen) == 1

    def test_pattern_round_trip_shapes(self):
        node = concat(lit("a"), alt(lit("bc"), star(lit("d"))))
        assert node.to_pattern() == "a(bc|d*)"

    def test_immutable(self):
        node = lit("a")
        with pytest.raises(AttributeError):
            node.charclass = CharClass.full()
