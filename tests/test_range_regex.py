"""Unit + property tests for the number-range regex derivation (Fig. 2)."""

from decimal import Decimal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RangeBoundError
from repro.regex.dfa import DFA
from repro.regex.range_regex import (
    DecimalBound,
    decimal_range_regex,
    exponent_escape_regex,
    integer_range_regex,
    number_range_regex,
)

def int_dfa(lo, hi):
    return DFA.from_regex(integer_range_regex(lo, hi))


def dec_dfa(lo, hi):
    return DFA.from_regex(decimal_range_regex(lo, hi))


class TestDecimalBound:
    def test_parse_integer(self):
        bound = DecimalBound.parse("35")
        assert bound.int_part == 35
        assert bound.frac_part == ""
        assert not bound.negative

    def test_parse_fraction_strips_trailing_zeros(self):
        assert DecimalBound.parse("0.700").frac_part == "7"

    def test_parse_negative(self):
        assert DecimalBound.parse("-12.5").negative

    def test_negative_zero_normalised(self):
        assert not DecimalBound.parse("-0.0").negative

    def test_rejects_exponent(self):
        with pytest.raises(RangeBoundError):
            DecimalBound.parse("1e3")

    def test_rejects_garbage(self):
        with pytest.raises(RangeBoundError):
            DecimalBound.parse("12a")


class TestIntegerRanges:
    def test_bounded_range_exhaustive(self):
        dfa = int_dfa(12, 49)
        for value in range(-20, 200):
            assert dfa.accepts(str(value)) == (12 <= value <= 49), value

    def test_fig2_lower_bound_only(self):
        dfa = int_dfa(35, None)
        for value in [0, 1, 34, 35, 36, 99, 100, 999, 12345]:
            assert dfa.accepts(str(value)) == (value >= 35)

    def test_upper_bound_only(self):
        dfa = int_dfa(None, 120)
        for value in [-500, -1, 0, 1, 119, 120, 121, 999]:
            assert dfa.accepts(str(value)) == (value <= 120)

    def test_negative_range(self):
        dfa = int_dfa(-50, -10)
        for value in range(-80, 30):
            assert dfa.accepts(str(value)) == (-50 <= value <= -10), value

    def test_range_spanning_zero(self):
        dfa = int_dfa(-5, 5)
        for value in range(-20, 21):
            assert dfa.accepts(str(value)) == (-5 <= value <= 5)

    def test_minus_zero_accepted_when_zero_in_range(self):
        assert int_dfa(-5, 5).accepts("-0")
        assert int_dfa(0, 5).accepts("-0")
        assert not int_dfa(1, 5).accepts("-0")

    def test_rejects_leading_zeros(self):
        dfa = int_dfa(12, 49)
        assert not dfa.accepts("012")
        assert not dfa.accepts("00")

    def test_rejects_float_tokens(self):
        dfa = int_dfa(12, 49)
        assert not dfa.accepts("12.5")
        assert not dfa.accepts("30.0")

    def test_single_value_range(self):
        dfa = int_dfa(7, 7)
        assert dfa.accepts("7")
        assert not dfa.accepts("8")

    def test_wide_range_with_digit_count_change(self):
        dfa = int_dfa(140, 3155)
        for value in [139, 140, 999, 1000, 3155, 3156, 9999]:
            assert dfa.accepts(str(value)) == (140 <= value <= 3155)

    def test_empty_range_rejected(self):
        with pytest.raises(RangeBoundError):
            integer_range_regex(10, 9)

    @given(
        lo=st.integers(-9999, 9999),
        span=st.integers(0, 9999),
        value=st.integers(-20000, 20000),
    )
    @settings(max_examples=150, deadline=None)
    def test_membership_property(self, lo, span, value):
        hi = lo + span
        dfa = int_dfa(lo, hi)
        assert dfa.accepts(str(value)) == (lo <= value <= hi)


class TestDecimalRanges:
    def test_paper_temperature_range(self):
        dfa = dec_dfa("0.7", "35.1")
        cases = {
            "0.7": True, "0.70": True, "0.69": False, "0.71": True,
            "35.1": True, "35.10": True, "35.11": False, "35.2": False,
            "35": True, "0": False, "1": True, "34.999": True,
            "0.6999": False,
        }
        for text, expected in cases.items():
            assert dfa.accepts(text) == expected, text

    def test_integer_tokens_match_float_filters(self):
        dfa = dec_dfa("2.5", "18.0")
        assert dfa.accepts("3")
        assert dfa.accepts("18")
        assert not dfa.accepts("2")
        assert not dfa.accepts("19")

    def test_negative_bounds(self):
        dfa = dec_dfa("-12.5", "43.1")
        cases = {
            "-12.5": True, "-12.51": False, "-12.4": True,
            "-0.1": True, "-0": True, "0": True, "43.1": True,
            "43.2": False, "-13": False,
        }
        for text, expected in cases.items():
            assert dfa.accepts(text) == expected, text

    def test_fully_negative_range(self):
        dfa = dec_dfa("-8.25", "-1.5")
        cases = {
            "-8.25": True, "-8.26": False, "-1.5": True, "-1.49": False,
            "-5": True, "0": False, "-0": False, "3": False,
        }
        for text, expected in cases.items():
            assert dfa.accepts(text) == expected, text

    def test_open_upper_bound(self):
        dfa = DFA.from_regex(decimal_range_regex("83.36", None))
        assert dfa.accepts("83.36")
        assert dfa.accepts("84")
        assert dfa.accepts("10000.01")
        assert not dfa.accepts("83.35")
        assert not dfa.accepts("83")

    def test_open_lower_bound(self):
        dfa = DFA.from_regex(decimal_range_regex(None, "18.0"))
        assert dfa.accepts("18.0")
        assert dfa.accepts("-99999")
        assert not dfa.accepts("18.01")

    def test_fraction_only_difference(self):
        dfa = dec_dfa("1.25", "1.75")
        cases = {
            "1.25": True, "1.5": True, "1.75": True, "1.750001": False,
            "1.24999": False, "1": False, "2": False, "1.3": True,
        }
        for text, expected in cases.items():
            assert dfa.accepts(text) == expected, text

    def test_trailing_zeros_never_change_meaning(self):
        dfa = dec_dfa("0.5", "2")
        assert dfa.accepts("0.5000")
        assert dfa.accepts("2.0000")
        assert not dfa.accepts("2.0001")

    def test_rejects_bare_dot_tokens(self):
        dfa = dec_dfa("0.5", "2")
        assert not dfa.accepts("1.")
        assert not dfa.accepts(".5")

    def test_empty_range_rejected(self):
        with pytest.raises(RangeBoundError):
            decimal_range_regex("2.5", "2.4")

    @given(
        lo_cents=st.integers(-500000, 500000),
        span_cents=st.integers(0, 500000),
        value_milli=st.integers(-800000000, 800000000),
    )
    @settings(max_examples=150, deadline=None)
    def test_membership_property(self, lo_cents, span_cents, value_milli):
        lo = Decimal(lo_cents) / 100
        hi = Decimal(lo_cents + span_cents) / 100
        value = Decimal(value_milli) / 1000
        dfa = dec_dfa(str(lo), str(hi))
        text = format(value, "f")
        assert dfa.accepts(text) == (lo <= value <= hi), (
            text, str(lo), str(hi)
        )


class TestExponentEscape:
    def test_tokens_with_digit_then_e_accepted(self):
        dfa = DFA.from_regex(exponent_escape_regex())
        for token in ["2.1e3", "1e+1", "100e-1", "1E9", "-3.5e2"]:
            assert dfa.accepts(token), token

    def test_tokens_without_exponent_rejected(self):
        dfa = DFA.from_regex(exponent_escape_regex())
        for token in ["213", "2.13", "-5", "e5", ".e1", "e", "-e-"]:
            assert not dfa.accepts(token), token

    def test_number_range_includes_escape_by_default(self):
        dfa = DFA.from_regex(number_range_regex(12, 49, kind="int"))
        assert dfa.accepts("9e9")  # out of range, exponent escape
        assert not dfa.accepts("50")

    def test_escape_can_be_disabled(self):
        dfa = DFA.from_regex(
            number_range_regex(12, 49, kind="int", allow_exponent=False)
        )
        assert not dfa.accepts("9e9")

    def test_no_false_negative_for_exponent_values_in_range(self):
        """The whole point: e-notation values in range are never dropped."""
        dfa = DFA.from_regex(number_range_regex("0.7", "35.1"))
        for token in ["2.1e1", "7e-1", "3.51e1"]:
            assert dfa.accepts(token)


class TestNumberRangeAPI:
    def test_requires_a_bound(self):
        with pytest.raises(RangeBoundError):
            number_range_regex(None, None)

    def test_rejects_unknown_kind(self):
        with pytest.raises(RangeBoundError):
            number_range_regex(1, 2, kind="complex")

    def test_int_kind_truncates_to_int_semantics(self):
        dfa = DFA.from_regex(
            number_range_regex(12, 49, kind="int", allow_exponent=False)
        )
        assert not dfa.accepts("12.0")
        assert dfa.accepts("12")

    def test_float_kind_accepts_both_shapes(self):
        dfa = DFA.from_regex(
            number_range_regex(12, 49, kind="float", allow_exponent=False)
        )
        assert dfa.accepts("12.0")
        assert dfa.accepts("12")


class TestOpenBoundProperties:
    @given(lo=st.integers(-5000, 5000), value=st.integers(-20000, 20000))
    @settings(max_examples=100, deadline=None)
    def test_lower_bound_only(self, lo, value):
        dfa = int_dfa(lo, None)
        assert dfa.accepts(str(value)) == (value >= lo)

    @given(hi=st.integers(-5000, 5000), value=st.integers(-20000, 20000))
    @settings(max_examples=100, deadline=None)
    def test_upper_bound_only(self, hi, value):
        dfa = int_dfa(None, hi)
        assert dfa.accepts(str(value)) == (value <= hi)

    @given(
        lo_cents=st.integers(-30000, 30000),
        value_milli=st.integers(-80000000, 80000000),
    )
    @settings(max_examples=80, deadline=None)
    def test_decimal_lower_bound_only(self, lo_cents, value_milli):
        lo = Decimal(lo_cents) / 100
        value = Decimal(value_milli) / 1000
        dfa = DFA.from_regex(decimal_range_regex(str(lo), None))
        assert dfa.accepts(format(value, "f")) == (value >= lo)
