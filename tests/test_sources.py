"""Tests for the ChunkSource ingest layer (repro.engine.sources)."""

import io
import socket
import threading

import pytest

import repro.core.composition as comp
from repro.data import Dataset, load_dataset
from repro.engine import (
    AsyncSource,
    ChunkSource,
    FileSource,
    FilterEngine,
    IterableSource,
    MmapSource,
    ReadaheadSource,
    SocketSource,
    as_chunk_source,
    ingest_dataset,
    ingest_records,
)
from repro.errors import ReproError


def simple_filter():
    return comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))


@pytest.fixture(scope="module")
def corpus():
    return load_dataset("smartcity", 120, seed=3)


@pytest.fixture(scope="module")
def payload(corpus):
    return corpus.stream.tobytes()


# ---------------------------------------------------------------------------
# individual sources
# ---------------------------------------------------------------------------

class TestIterableSource:
    def test_yields_chunks_with_accounting(self):
        source = IterableSource([b"abc", b"", bytearray(b"def")])
        assert list(source) == [b"abc", b"", b"def"]
        stats = source.stats()
        assert stats["source"] == "iterable"
        assert stats["chunks_read"] == 3
        assert stats["bytes_read"] == 6

    def test_empty_chunks_do_not_terminate_the_stream(self):
        """Bursty producers may deliver nothing; only exhaustion ends
        the stream (unlike a file read, where b"" means EOF)."""
        chunks = [b'{"a":1}\n', b"", b"", b'{"b":2}\n', b"", b'{"c":3}']
        assert ingest_records(IterableSource(chunks)) == [
            b'{"a":1}', b'{"b":2}', b'{"c":3}'
        ]

    def test_rejects_text_chunks(self):
        with pytest.raises(ReproError):
            list(IterableSource(["text"]))


class TestFileSource:
    def test_reads_path_and_owns_handle(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_bytes(b'{"a":1}\n{"b":2}\n')
        with FileSource(path, chunk_bytes=4) as source:
            chunks = list(source)
        assert b"".join(chunks) == b'{"a":1}\n{"b":2}\n'
        assert source.bytes_read == 16
        assert source.chunks_read == 4

    def test_wraps_handle_without_owning_it(self):
        handle = io.BytesIO(b"abcdef")
        source = FileSource(handle, chunk_bytes=4)
        assert list(source) == [b"abcd", b"ef"]
        source.close()
        assert not handle.closed  # caller still owns the handle

    def test_non_seekable_uses_read1(self):
        class FakePipe:
            def __init__(self, pieces):
                self.pieces = list(pieces)
                self.read_called = False

            def seekable(self):
                return False

            def read1(self, size):
                return self.pieces.pop(0) if self.pieces else b""

            def read(self, size):  # would block in a real pipe
                self.read_called = True
                return self.read1(size)

        pipe = FakePipe([b'{"a":1}\n', b'{"b":2}\n'])
        source = FileSource(pipe, chunk_bytes=1 << 20)
        assert list(source) == [b'{"a":1}\n', b'{"b":2}\n']
        assert not pipe.read_called

    def test_rejects_bad_arguments(self):
        with pytest.raises(ReproError):
            FileSource(object())
        with pytest.raises(ReproError):
            FileSource(io.BytesIO(b""), chunk_bytes=0)


class TestMmapSource:
    def _write(self, tmp_path, payload, name="data.ndjson"):
        path = tmp_path / name
        path.write_bytes(payload)
        return path

    def test_windows_roundtrip_and_accounting(self, tmp_path, payload):
        path = self._write(tmp_path, payload)
        with MmapSource(path, chunk_bytes=777) as source:
            chunks = [bytes(chunk) for chunk in source]
        assert b"".join(chunks) == payload
        assert source.bytes_read == len(payload)
        assert source.chunks_read == -(-len(payload) // 777)
        assert source.stats()["source"] == "mmap"

    def test_windows_are_zero_copy_memoryviews(self, tmp_path):
        path = self._write(tmp_path, b'{"a":1}\n{"b":2}\n')
        source = MmapSource(path, chunk_bytes=4)
        for window in source:
            assert isinstance(window, memoryview)

    def test_empty_file_yields_no_windows(self, tmp_path):
        """Length-0 files cannot be mapped; an empty stream is simply
        no chunks, not an error."""
        path = self._write(tmp_path, b"")
        with MmapSource(path) as source:
            assert list(source) == []
        assert source.bytes_read == 0

    def test_size_exact_multiple_of_window(self, tmp_path):
        """No phantom empty tail window when the file size divides the
        window size exactly (b"" would mean EOF to downstream code)."""
        payload = b'{"k":1}\n' * 16  # 128 bytes
        path = self._write(tmp_path, payload)
        with MmapSource(path, chunk_bytes=32) as source:
            chunks = [bytes(chunk) for chunk in source]
        assert len(chunks) == 4
        assert all(chunks)
        assert b"".join(chunks) == payload

    def test_record_spanning_two_windows(self, tmp_path):
        """A record cut by a window seam reassembles exactly (the
        framer copies bytes out of each window before the next)."""
        first = b'{"n":"temperature","v":"1.0"}'
        second = b'{"n":"humidity","v":"2.0"}'
        payload = first + b"\n" + second + b"\n"
        path = self._write(tmp_path, payload)
        # a 17-byte window cuts both records mid-body
        engine = FilterEngine(chunk_bytes=17)
        records = []
        for batch in engine.stream(
            comp.s("temperature", 1), MmapSource(path, chunk_bytes=17)
        ):
            records.extend(batch.records)
        assert records == [first, second]

    def test_record_larger_than_window(self, tmp_path):
        big = b'{"blob":"' + b"y" * 4000 + b'","temperature":"1.0"}'
        small = b'{"temperature":"2.0"}'
        path = self._write(tmp_path, big + b"\n" + small + b"\n")
        engine = FilterEngine(chunk_bytes=64)
        records = []
        for batch in engine.stream(
            comp.s("temperature", 1), MmapSource(path, chunk_bytes=64)
        ):
            records.extend(batch.records)
        assert records == [big, small]

    def test_stream_end_closes_the_map(self, tmp_path, payload):
        path = self._write(tmp_path, payload)
        source = MmapSource(path)
        for _ in source:
            pass
        assert source._mmap is None
        assert source._handle.closed

    def test_escaped_window_reference_raises_on_close(self, tmp_path):
        """A consumer-created slice of a window pins the map; close()
        surfaces that as a clear ReproError, not a raw BufferError."""
        path = self._write(tmp_path, b'{"a":1}\n' * 8)
        source = MmapSource(path, chunk_bytes=16)
        windows = iter(source)
        escaped = next(windows)[:4]  # a new memoryview over the map
        with pytest.raises(ReproError, match="still referenced"):
            source.close()
        escaped.release()
        source.close()  # now succeeds

    def test_handle_callers_keep_ownership(self, tmp_path, payload):
        path = self._write(tmp_path, payload)
        with open(path, "rb") as handle:
            source = MmapSource(handle, chunk_bytes=512)
            assert b"".join(
                bytes(c) for c in source
            ) == payload
            assert not handle.closed  # caller still owns the handle

    def test_rejects_fd_less_handles(self):
        with pytest.raises(ReproError):
            MmapSource(io.BytesIO(b"no fileno"))
        with pytest.raises(ReproError):
            MmapSource(io.BytesIO(b""), chunk_bytes=0)

    def test_as_chunk_source_picks_mmap_for_large_files(
        self, tmp_path, payload, monkeypatch
    ):
        import repro.engine.sources as sources_module

        path = self._write(tmp_path, payload)
        monkeypatch.setattr(
            sources_module, "MMAP_THRESHOLD_BYTES", len(payload)
        )
        source = as_chunk_source(str(path))
        assert isinstance(source, MmapSource)
        assert b"".join(bytes(c) for c in source) == payload
        # below the threshold the buffered path is kept
        monkeypatch.setattr(
            sources_module, "MMAP_THRESHOLD_BYTES", len(payload) + 1
        )
        small = as_chunk_source(str(path))
        assert isinstance(small, FileSource)
        small.close()


class TestReadaheadSource:
    def test_preserves_order_and_content(self, payload):
        pieces = [payload[i:i + 997] for i in range(0, len(payload), 997)]
        source = ReadaheadSource(IterableSource(list(pieces)), depth=3)
        assert [bytes(c) for c in source] == pieces
        stats = source.stats()
        assert stats["source"] == "readahead"
        assert stats["depth"] == 3
        assert stats["inner"]["source"] == "iterable"
        assert stats["bytes_read"] == len(payload)

    def test_wraps_paths_via_as_chunk_source(self, tmp_path, payload):
        path = tmp_path / "corpus.ndjson"
        path.write_bytes(payload)
        source = ReadaheadSource(str(path), chunk_bytes=1024)
        assert b"".join(bytes(c) for c in source) == payload
        assert source.source._handle.closed

    def test_prefetch_runs_ahead_of_a_slow_consumer(self):
        import time

        pieces = [b'{"k":%d}\n' % i for i in range(12)]
        source = ReadaheadSource(IterableSource(pieces), depth=4)
        consumed = []
        for chunk in source:
            if not consumed:
                time.sleep(0.1)  # let the producer fill the queue
            consumed.append(bytes(chunk))
        assert consumed == pieces
        assert source.peak_depth >= 2  # prefetch actually got ahead

    def test_prefetch_depth_is_bounded(self):
        """The producer can never be more than depth (queued) + 1 (in
        hand) chunks past the consumer — bounded resident memory."""
        import time

        produced = []

        def generate():
            for i in range(50):
                produced.append(i)
                yield b'{"k":%d}\n' % i

        source = ReadaheadSource(IterableSource(generate()), depth=2)
        chunks = iter(source)
        next(chunks)
        time.sleep(0.1)  # producer parks on the full queue
        assert len(produced) <= 1 + 2 + 1
        source.close()

    def test_inner_errors_surface_in_the_consumer(self):
        def exploding():
            yield b'{"a":1}\n'
            raise OSError("disk on fire")

        source = ReadaheadSource(IterableSource(exploding()))
        chunks = iter(source)
        assert bytes(next(chunks)) == b'{"a":1}\n'
        with pytest.raises(OSError, match="disk on fire"):
            next(chunks)

    def test_close_mid_stream_stops_producer_and_inner(self, tmp_path,
                                                       payload):
        path = tmp_path / "corpus.ndjson"
        path.write_bytes(payload)
        inner = FileSource(str(path), chunk_bytes=64)
        source = ReadaheadSource(inner, depth=2)
        chunks = iter(source)
        next(chunks)
        source.close()
        assert not source._thread.is_alive()
        assert inner._handle.closed
        with pytest.raises(ReproError):
            list(source)  # a closed source does not restart

    def test_rejects_bad_depth(self):
        with pytest.raises(ReproError):
            ReadaheadSource(IterableSource([]), depth=0)

    def test_engine_stream_over_readahead_mmap(self, tmp_path, corpus,
                                               payload):
        """The composed larger-than-memory path (readahead over mmap)
        produces exactly the offline match bits."""
        path = tmp_path / "corpus.ndjson"
        path.write_bytes(payload)
        engine = FilterEngine(chunk_bytes=512)
        expected = engine.match_bits(simple_filter(), corpus)
        matches = []
        source = ReadaheadSource(
            MmapSource(path, chunk_bytes=512), depth=3
        )
        for batch in engine.stream(simple_filter(), source):
            matches.extend(batch.matches.tolist())
        assert matches == expected.tolist()


class TestSourceBackendDifferential:
    """Every backend over mmap/readahead ingest must be bit-identical
    to the scalar oracle over the in-memory corpus."""

    @pytest.mark.parametrize("backend", ["scalar", "vectorized",
                                         "compiled"])
    @pytest.mark.parametrize("wrap", ["mmap", "readahead"])
    def test_backends_match_scalar_oracle(self, tmp_path, corpus,
                                          payload, backend, wrap):
        path = tmp_path / "corpus.ndjson"
        path.write_bytes(payload)
        oracle = FilterEngine(backend="scalar").match_bits(
            simple_filter(), corpus
        )
        if wrap == "mmap":
            source = MmapSource(path, chunk_bytes=333)
        else:
            source = ReadaheadSource(
                FileSource(str(path), chunk_bytes=333), depth=2
            )
        engine = FilterEngine(backend=backend, chunk_bytes=333)
        matches = []
        for batch in engine.stream(simple_filter(), source):
            matches.extend(batch.matches.tolist())
        assert matches == oracle.tolist()


class TestSocketSource:
    def test_receives_until_peer_eof(self, payload):
        feeder, receiver = socket.socketpair()

        def feed():
            for start in range(0, len(payload), 700):
                feeder.sendall(payload[start:start + 700])
            feeder.close()

        thread = threading.Thread(target=feed)
        thread.start()
        source = SocketSource(receiver, chunk_bytes=1024)
        data = b"".join(source)
        thread.join()
        receiver.close()
        assert data == payload
        assert source.bytes_read == len(payload)
        assert source.stats()["source"] == "socket"

    def test_connects_to_address_and_owns_connection(self, payload):
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]

        def serve():
            conn, _ = server.accept()
            conn.sendall(payload[:1000])
            conn.close()

        thread = threading.Thread(target=serve)
        thread.start()
        with SocketSource(("127.0.0.1", port)) as source:
            data = b"".join(source)
        thread.join()
        server.close()
        assert data == payload[:1000]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ReproError):
            SocketSource("not-a-socket")
        feeder, receiver = socket.socketpair()
        try:
            with pytest.raises(ReproError):
                SocketSource(receiver, chunk_bytes=0)
            with pytest.raises(ReproError):
                SocketSource(receiver, timeout=0)
        finally:
            feeder.close()
            receiver.close()

    def test_recv_timeout_raises_repro_error(self):
        """A stalled peer surfaces as a clear ReproError, not a hang."""
        feeder, receiver = socket.socketpair()
        try:
            feeder.sendall(b'{"n":"temperature"}\n')
            source = SocketSource(
                receiver, chunk_bytes=64, timeout=0.05
            )
            chunks = iter(source)
            assert next(chunks)  # delivered bytes flow normally
            with pytest.raises(ReproError, match="timed out"):
                next(chunks)  # then the peer goes silent
        finally:
            feeder.close()
            receiver.close()

    def test_mid_stream_peer_close_yields_partial_tail(self):
        """A peer dying mid-record ends the stream at EOF; the framer
        still flushes the partial trailing record (service ingest must
        not lose or duplicate what arrived before the close)."""
        full = b'{"n":"temperature","v":"1.0"}\n'
        partial = b'{"n":"temperature","v":"2.0"'
        feeder, receiver = socket.socketpair()

        def feed():
            feeder.sendall(full + partial)
            feeder.close()  # mid-record disconnect

        thread = threading.Thread(target=feed)
        thread.start()
        engine = FilterEngine(chunk_bytes=64)
        records = []
        for batch in engine.stream(
            comp.s("temperature", 1),
            SocketSource(receiver, chunk_bytes=64, timeout=5),
        ):
            records.extend(batch.records)
        thread.join()
        receiver.close()
        assert records == [full.rstrip(b"\n"), partial]

    def test_partial_recv_reassembly(self, corpus, payload):
        """Records split across many tiny recv() returns reassemble to
        exactly the offline match bits (regression for service use:
        TCP hands the gateway arbitrary segment boundaries)."""
        feeder, receiver = socket.socketpair()

        def feed():
            for start in range(0, len(payload), 13):
                feeder.sendall(payload[start:start + 13])
            feeder.close()

        thread = threading.Thread(target=feed)
        thread.start()
        engine = FilterEngine()
        expected = engine.match_bits(simple_filter(), corpus)
        matches = []
        for batch in engine.stream(
            simple_filter(),
            SocketSource(receiver, chunk_bytes=31, timeout=10),
        ):
            matches.extend(batch.matches.tolist())
        thread.join()
        receiver.close()
        assert matches == expected.tolist()


class TestAsyncSource:
    def test_drains_async_generator(self, payload):
        async def produce():
            for start in range(0, len(payload), 900):
                yield payload[start:start + 900]

        source = AsyncSource(produce())
        assert b"".join(source) == payload
        assert source.chunks_read == -(-len(payload) // 900)

    def test_async_records_reach_the_engine(self, corpus, payload):
        async def produce():
            yield payload

        engine = FilterEngine()
        expected = engine.match_bits(simple_filter(), corpus)
        matches = []
        for batch in engine.stream(simple_filter(),
                                   AsyncSource(produce())):
            matches.extend(batch.matches.tolist())
        assert matches == expected.tolist()

    def test_rejects_non_async_iterables(self):
        with pytest.raises(ReproError):
            AsyncSource([b"chunk"])

    def test_abandoned_stream_runs_producer_finalisers(self):
        """Abandoning a gateway-style stream must aclose the async
        producer (its ``finally`` runs via ``shutdown_asyncgens``)
        instead of leaving a suspended generator behind."""
        cleanup = []

        async def produce():
            try:
                while True:
                    yield b'{"n":"temperature","v":"1.0"}\n' * 8
            finally:
                cleanup.append("closed")

        engine = FilterEngine(chunk_bytes=64)
        stream = engine.stream(
            comp.s("temperature", 1), AsyncSource(produce())
        )
        next(stream)  # partially consume, then abandon
        stream.close()
        assert cleanup == ["closed"]

    def test_abandonment_emits_no_pending_task_noise(self, capsys):
        """No "Task was destroyed but it is pending!" / "Event loop is
        closed" stderr noise when a consumer walks away mid-stream."""
        async def produce():
            while True:
                yield b'{"n":"temperature","v":"1.0"}\n' * 8

        source = AsyncSource(produce())
        chunks = iter(source)
        next(chunks)
        chunks.close()  # abandon the source's own generator
        import gc

        gc.collect()
        err = capsys.readouterr().err
        assert "Task was destroyed" not in err
        assert "Event loop is closed" not in err

    def test_close_cancels_in_flight_anext(self):
        """An in-flight __anext__ task is cancelled and awaited on
        close — the parked producer sees CancelledError instead of
        being destroyed while pending."""
        import asyncio

        from repro.engine.sources import _anext_coroutine

        states = []

        async def parked():
            try:
                await asyncio.sleep(3600)  # never delivers a chunk
                yield b""  # pragma: no cover - unreachable
            except asyncio.CancelledError:
                states.append("cancelled")
                raise

        source = AsyncSource(parked())
        # arm the in-flight state chunks() would be in while awaiting
        # a chunk that never arrives, then tear down
        source._loop = asyncio.new_event_loop()
        iterator = source._async_iterable.__aiter__()
        source._task = source._loop.create_task(
            _anext_coroutine(iterator)
        )
        source._loop.run_until_complete(asyncio.sleep(0.01))
        assert not source._task.done()
        source.close()
        assert states == ["cancelled"]
        assert source._loop is None
        source.close()  # idempotent


# ---------------------------------------------------------------------------
# normalisation + ingest
# ---------------------------------------------------------------------------

class TestAsChunkSource:
    def test_passthrough_and_dispatch(self):
        source = IterableSource([b"x"])
        assert as_chunk_source(source) is source
        assert isinstance(as_chunk_source(b"bytes"), IterableSource)
        assert isinstance(
            as_chunk_source(io.BytesIO(b"x")), FileSource
        )
        assert isinstance(as_chunk_source([b"a", b"b"]), IterableSource)

        async def produce():
            yield b"x"

        assert isinstance(as_chunk_source(produce()), AsyncSource)

    def test_socket_dispatch(self):
        feeder, receiver = socket.socketpair()
        try:
            assert isinstance(
                as_chunk_source(receiver), SocketSource
            )
        finally:
            feeder.close()
            receiver.close()

    def test_rejects_unknown_objects(self):
        with pytest.raises(ReproError):
            as_chunk_source(42)

    def test_base_chunks_hook_is_abstract(self):
        with pytest.raises(NotImplementedError):
            list(ChunkSource())


class TestPathIngest:
    """str / os.PathLike inputs open as FileSources (regression: a
    path string used to be consumed as an iterable of 1-character
    text "chunks" and rejected deep in framing)."""

    @pytest.fixture()
    def ndjson_path(self, tmp_path, payload):
        path = tmp_path / "corpus.ndjson"
        path.write_bytes(payload)
        return path

    def test_str_path_dispatches_to_file_source(self, ndjson_path,
                                                payload):
        source = as_chunk_source(str(ndjson_path), chunk_bytes=256)
        assert isinstance(source, FileSource)
        assert b"".join(source) == payload
        assert source.stats()["bytes_read"] == len(payload)

    def test_pathlike_dispatches_to_file_source(self, ndjson_path,
                                                payload):
        source = as_chunk_source(ndjson_path)
        assert isinstance(source, FileSource)
        assert b"".join(source) == payload

    def test_bytes_stay_stream_data_not_paths(self):
        """b"..." is always chunk data; only str/PathLike are paths."""
        source = as_chunk_source(b"not/a/path")
        assert isinstance(source, IterableSource)
        assert list(source) == [b"not/a/path"]

    def test_stream_accepts_a_path_and_closes_it(self, corpus,
                                                 ndjson_path):
        engine = FilterEngine(chunk_bytes=512)
        reference = engine.match_bits(simple_filter(), corpus)
        matches = []
        for batch in engine.stream(simple_filter(), str(ndjson_path)):
            matches.extend(batch.matches.tolist())
        assert matches == reference.tolist()

    def test_path_source_closes_handle_at_stream_end(self,
                                                     ndjson_path):
        source = as_chunk_source(str(ndjson_path))
        for _ in source:
            pass
        assert source._handle.closed

    def test_abandoned_path_stream_closes_handle(self, ndjson_path):
        engine = FilterEngine(chunk_bytes=64)
        source = as_chunk_source(str(ndjson_path), chunk_bytes=64)
        stream = engine.stream(simple_filter(), source)
        next(stream)
        stream.close()
        assert source._handle.closed

    def test_ingest_dataset_from_path(self, corpus, ndjson_path):
        dataset = ingest_dataset(str(ndjson_path), name="from-path")
        assert dataset.records == corpus.records

    def test_engine_and_soc_ingest_paths(self, corpus, ndjson_path):
        engine = FilterEngine(chunk_bytes=128)
        assert engine.ingest(ndjson_path).records == corpus.records
        from repro.system import RawFilterSoC

        soc = RawFilterSoC(simple_filter())
        report = soc.run(str(ndjson_path))
        reference = soc.run(corpus)
        assert report.total_bytes == reference.total_bytes
        assert report.matches.tolist() == reference.matches.tolist()


class TestIngest:
    def test_ingest_dataset_from_chunks(self, corpus, payload):
        dataset = ingest_dataset(
            IterableSource([payload]), name="ingested"
        )
        assert dataset.records == corpus.records
        assert dataset.name == "ingested"

    def test_dataset_and_record_lists_pass_through(self, corpus):
        assert ingest_dataset(corpus) is corpus
        wrapped = ingest_dataset([b'{"a":1}', b'{"b":2}'])
        assert isinstance(wrapped, Dataset)
        assert len(wrapped) == 2

    def test_engine_ingest_uses_config_chunking(self, corpus, payload):
        engine = FilterEngine(chunk_bytes=128)
        dataset = engine.ingest(io.BytesIO(payload))
        assert dataset.records == corpus.records

    def test_match_bits_accepts_a_source(self, corpus, payload):
        engine = FilterEngine()
        direct = engine.match_bits(simple_filter(), corpus)
        from_source = engine.match_bits(
            simple_filter(), IterableSource([payload])
        )
        assert from_source.tolist() == direct.tolist()


# ---------------------------------------------------------------------------
# framing edge cases through the sources
# ---------------------------------------------------------------------------

class TestFramingEdgeCases:
    def test_record_larger_than_chunk_bytes(self):
        """A single record spanning many chunks reassembles exactly."""
        big = b'{"blob":"' + b"x" * 5000 + b'","temperature":"1.0"}'
        small = b'{"temperature":"2.0"}'
        payload = big + b"\n" + small + b"\n"
        engine = FilterEngine(chunk_bytes=64)
        records = []
        for batch in engine.stream(
            comp.s("temperature", 1), io.BytesIO(payload)
        ):
            records.extend(batch.records)
        assert records == [big, small]

    def test_seam_split_inside_unicode_escape(self):
        r"""A chunk seam landing inside a \uXXXX escape must not split
        the record or corrupt the escape bytes."""
        record = b'{"n":"temp\\u00e9rature","v":"3.0"}'
        other = b'{"n":"humidity","v":"9.9"}'
        payload = record + b"\n" + other + b"\n"
        escape_at = record.index(b"\\u00e9")
        engine = FilterEngine()
        expected = engine.match_bits(
            comp.s("humidity", 1), [record, other]
        ).tolist()
        # cut at every position inside the escape sequence
        for offset in range(len(b"\\u00e9") + 1):
            cut = escape_at + offset
            chunks = [payload[:cut], payload[cut:]]
            records, matches = [], []
            for batch in engine.stream(comp.s("humidity", 1), chunks):
                records.extend(batch.records)
                matches.extend(batch.matches.tolist())
            assert records == [record, other], f"cut at {cut}"
            assert matches == expected, f"cut at {cut}"

    def test_empty_chunks_between_records(self, corpus, payload):
        """Interleaved empty chunks change nothing — byte accounting
        and match bits are identical to the dense stream."""
        pieces = [payload[i:i + 301] for i in range(0, len(payload), 301)]
        sparse = []
        for piece in pieces:
            sparse += [b"", piece, b""]
        engine = FilterEngine()
        expected = engine.match_bits(simple_filter(), corpus)
        matches = []
        last = None
        for last in engine.stream(simple_filter(),
                                  IterableSource(sparse)):
            matches.extend(last.matches.tolist())
        assert matches == expected.tolist()
        assert last.bytes_seen == len(payload)


class TestStreamFileOwnership:
    def _write_corpus(self, tmp_path):
        path = tmp_path / "corpus.ndjson"
        path.write_bytes(b'{"n":"temperature","v":"1.0"}\n' * 40)
        return path

    def test_stream_file_accepts_path_and_closes_it(self, tmp_path):
        import gc
        import warnings

        path = self._write_corpus(tmp_path)
        engine = FilterEngine(chunk_bytes=128)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            batches = list(
                engine.stream_file(comp.s("temperature", 1), str(path))
            )
            gc.collect()
        assert sum(len(batch) for batch in batches) == 40
        assert not [
            w for w in caught
            if issubclass(w.category, ResourceWarning)
        ]

    def test_abandoned_path_stream_still_closes(self, tmp_path):
        import gc
        import warnings

        path = self._write_corpus(tmp_path)
        engine = FilterEngine(chunk_bytes=64)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            stream = engine.stream_file(
                comp.s("temperature", 1), str(path)
            )
            next(stream)  # partially consume, then abandon
            stream.close()
            gc.collect()
        assert not [
            w for w in caught
            if issubclass(w.category, ResourceWarning)
        ]
