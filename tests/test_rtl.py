"""Unit tests for the RTL layer: BitVec arithmetic, registers, simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.hw.aig import FALSE, TRUE, node_of
from repro.hw.gatesim import CycleSimulator
from repro.hw.rtl import BitVec, Circuit
from repro.regex.charclass import CharClass


def eval_vec_literal(circuit, literal, assignments):
    """Evaluate a literal for dict {input_name: int} over vector ports."""
    aig = circuit.aig
    node_values = {}
    for name, value in assignments.items():
        port = circuit.inputs[name]
        if hasattr(port, "bits"):
            for position, bit in enumerate(port.bits):
                node_values[node_of(bit)] = bool(value >> position & 1)
        else:
            node_values[node_of(port)] = bool(value)
    return circuit.aig.eval_literals([literal], node_values)[0]


class TestBitVecComparisons:
    @given(value=st.integers(0, 255), const=st.integers(0, 255))
    @settings(max_examples=80, deadline=None)
    def test_eq_const(self, value, const):
        circuit = Circuit()
        vec = circuit.add_input_vector("x", 8)
        literal = vec.eq_const(const)
        assert eval_vec_literal(circuit, literal, {"x": value}) == (
            value == const
        )

    @given(value=st.integers(0, 255), const=st.integers(0, 300))
    @settings(max_examples=80, deadline=None)
    def test_ge_const(self, value, const):
        circuit = Circuit()
        vec = circuit.add_input_vector("x", 8)
        literal = vec.ge_const(const)
        assert eval_vec_literal(circuit, literal, {"x": value}) == (
            value >= const
        )

    @given(value=st.integers(0, 255), const=st.integers(0, 300))
    @settings(max_examples=80, deadline=None)
    def test_le_const(self, value, const):
        circuit = Circuit()
        vec = circuit.add_input_vector("x", 8)
        literal = vec.le_const(const)
        assert eval_vec_literal(circuit, literal, {"x": value}) == (
            value <= const
        )

    def test_eq_vector(self):
        circuit = Circuit()
        a = circuit.add_input_vector("a", 4)
        b = circuit.add_input_vector("b", 4)
        literal = a.eq(b)
        assert eval_vec_literal(circuit, literal, {"a": 9, "b": 9})
        assert not eval_vec_literal(circuit, literal, {"a": 9, "b": 8})

    def test_eq_width_mismatch(self):
        circuit = Circuit()
        a = circuit.add_input_vector("a", 4)
        b = circuit.add_input_vector("b", 5)
        with pytest.raises(SynthesisError):
            a.eq(b)

    def test_is_zero(self):
        circuit = Circuit()
        vec = circuit.add_input_vector("x", 5)
        literal = vec.is_zero()
        assert eval_vec_literal(circuit, literal, {"x": 0})
        assert not eval_vec_literal(circuit, literal, {"x": 16})


class TestBitVecArithmetic:
    @given(value=st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_increment(self, value):
        circuit = Circuit()
        vec = circuit.add_input_vector("x", 5)
        inc = vec.increment()
        got = sum(
            eval_vec_literal(circuit, bit, {"x": value}) << i
            for i, bit in enumerate(inc.bits)
        )
        assert got == (value + 1) % 32

    @given(value=st.integers(0, 31))
    @settings(max_examples=40, deadline=None)
    def test_decrement(self, value):
        circuit = Circuit()
        vec = circuit.add_input_vector("x", 5)
        dec = vec.decrement()
        got = sum(
            eval_vec_literal(circuit, bit, {"x": value}) << i
            for i, bit in enumerate(dec.bits)
        )
        assert got == (value - 1) % 32

    def test_increment_disabled(self):
        circuit = Circuit()
        vec = circuit.add_input_vector("x", 4)
        same = vec.increment(enable=FALSE)
        got = sum(
            eval_vec_literal(circuit, bit, {"x": 11}) << i
            for i, bit in enumerate(same.bits)
        )
        assert got == 11

    def test_mux_selects(self):
        circuit = Circuit()
        a = circuit.add_input_vector("a", 4)
        b = circuit.add_input_vector("b", 4)
        sel = circuit.add_input("sel")
        out = a.mux(sel, b)
        values = {"a": 3, "b": 12, "sel": 1}
        got = sum(
            eval_vec_literal(circuit, bit, values) << i
            for i, bit in enumerate(out.bits)
        )
        assert got == 12

    def test_constant_vector(self):
        circuit = Circuit()
        vec = BitVec.constant(circuit, 6, 37)
        assert [bit == TRUE for bit in vec.bits] == [
            bool(37 >> i & 1) for i in range(6)
        ]


class TestByteClass:
    @given(byte=st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_byte_in_class(self, byte):
        charclass = CharClass.range("0", "9") | CharClass.of("e", "E", "-")
        circuit = Circuit()
        vec = circuit.add_input_vector("byte", 8)
        literal = circuit.byte_in_class(vec, charclass)
        assert eval_vec_literal(circuit, literal, {"byte": byte}) == (
            byte in charclass
        )

    def test_empty_class_is_false(self):
        circuit = Circuit()
        vec = circuit.add_input_vector("byte", 8)
        assert circuit.byte_in_class(vec, CharClass.empty()) == FALSE


class TestRegisters:
    def test_register_requires_next(self):
        circuit = Circuit()
        circuit.add_register("r")
        with pytest.raises(SynthesisError):
            circuit.lut_count()

    def test_set_next_rejects_non_register(self):
        circuit = Circuit()
        a = circuit.add_input("a")
        with pytest.raises(SynthesisError):
            circuit.set_next(a, TRUE)

    def test_toggle_register(self):
        circuit = Circuit()
        r = circuit.add_register("r")
        circuit.set_next(r, circuit.aig.lnot(r))
        circuit.add_output("q", r)
        sim = CycleSimulator(circuit)
        trace = [sim.step({})["q"] for _ in range(4)]
        assert trace == [False, True, False, True]

    def test_sticky_flag(self):
        circuit = Circuit()
        set_in = circuit.add_input("set")
        clear_in = circuit.add_input("clear")
        flag = circuit.sticky("flag", set_in, clear_in)
        circuit.add_output("q", flag)
        sim = CycleSimulator(circuit)
        assert not sim.step({"set": 0, "clear": 0})["q"]
        sim.step({"set": 1, "clear": 0})
        assert sim.step({"set": 0, "clear": 0})["q"]  # stays set
        sim.step({"set": 0, "clear": 1})
        assert not sim.step({"set": 0, "clear": 0})["q"]

    def test_register_vector_init(self):
        circuit = Circuit()
        vec = circuit.add_register_vector("count", 4, init=5)
        circuit.set_next_vector(vec, vec)
        circuit.add_output("bit0", vec[0])
        circuit.add_output("bit2", vec[2])
        sim = CycleSimulator(circuit)
        out = sim.step({})
        assert out["bit0"] and out["bit2"]

    def test_counter_circuit(self):
        circuit = Circuit()
        vec = circuit.add_register_vector("count", 4)
        circuit.set_next_vector(vec, vec.increment())
        circuit.add_output("wrap", vec.eq_const(15))
        sim = CycleSimulator(circuit)
        fired = [sim.step({})["wrap"] for _ in range(32)]
        assert fired.index(True) == 15
        assert fired[31]

    def test_stats_reports(self):
        circuit = Circuit()
        vec = circuit.add_register_vector("count", 4)
        circuit.set_next_vector(vec, vec.increment())
        circuit.add_output("z", vec.is_zero())
        stats = circuit.stats()
        assert stats["ffs"] == 4
        assert stats["luts"] > 0
        assert stats["depth"] >= 1
