"""Unit tests for the behavioural string matchers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import string_match as sm
from repro.errors import ReproError


def arr(data):
    return np.frombuffer(data, dtype=np.uint8)


class TestHelpers:
    def test_as_needle_bytes_from_str(self):
        assert sm.as_needle_bytes("dust") == b"dust"

    def test_rejects_empty_needle(self):
        with pytest.raises(ReproError):
            sm.as_needle_bytes("")

    def test_rejects_newline(self):
        with pytest.raises(ReproError):
            sm.as_needle_bytes("a\nb")

    def test_resolve_block_full(self):
        assert sm.resolve_block("dust", sm.FULL) == 4

    def test_resolve_block_dfa(self):
        assert sm.resolve_block("dust", sm.DFA_TECHNIQUE) == (
            sm.DFA_TECHNIQUE
        )

    def test_resolve_block_out_of_range(self):
        with pytest.raises(ReproError):
            sm.resolve_block("dust", 5)

    def test_run_lengths(self):
        hits = np.array([True, True, False, True, True, True])
        assert sm.run_lengths(hits).tolist() == [1, 2, 0, 1, 2, 3]

    def test_run_lengths_empty(self):
        assert sm.run_lengths(np.zeros(0, dtype=bool)).shape == (0,)


class TestWindowHits:
    def test_b1_membership(self):
        hits = sm.window_hit_array(arr(b"dxu"), "dust", 1)
        assert hits.tolist() == [True, False, True]

    def test_b2_pairs(self):
        hits = sm.window_hit_array(arr(b"dust"), "dust", 2)
        # position 0 window is (0x00, 'd') — no hit
        assert hits.tolist() == [False, True, True, True]

    def test_zero_prefix_never_matches(self):
        hits = sm.window_hit_array(arr(b"d"), "dd", 2)
        assert not hits.any()


class TestFireSemantics:
    def test_exact_occurrence_fires(self):
        fires = sm.fire_array(arr(b"xx dust yy"), "dust", 1)
        assert fires.any()
        # first fire exactly at the end of the run of 4
        assert int(np.flatnonzero(fires)[0]) == 6

    def test_full_block_is_exact(self):
        fires = sm.fire_array(arr(b"xx dust yy"), "dust", sm.FULL)
        assert np.flatnonzero(fires).tolist() == [6]
        assert not sm.fire_array(arr(b"xx dsut yy"), "dust", sm.FULL).any()

    def test_dfa_fires_are_sticky(self):
        fires = sm.fire_array(arr(b"a dust b"), "dust", sm.DFA_TECHNIQUE)
        first = int(np.flatnonzero(fires)[0])
        assert fires[first:].all()

    def test_anagram_fools_b1_not_b2(self):
        data = arr(b"xx stud yy")
        assert sm.fire_array(data, "dust", 1).any()
        assert not sm.fire_array(data, "dust", 2).any()

    def test_threshold_needs_full_run(self):
        # run of 3 letters from the set is not enough
        assert not sm.fire_array(arr(b"xx dus yy"), "dust", 1).any()


class TestRecordLevel:
    def test_record_matches_scalar(self):
        assert sm.record_matches(b'"n":"dust"', "dust", 1)
        assert sm.record_matches(b'"n":"stud"', "dust", 1)
        assert not sm.record_matches(b'"n":"stud"', "dust", 2)
        assert sm.record_matches(b'"n":"dust"', "dust", sm.FULL)
        assert sm.record_matches(b'"n":"dust"', "dust", sm.DFA_TECHNIQUE)

    def test_exact_techniques_equal_substring_find(self):
        for record in [b"total_amount", b"tolls_amount", b"xtollsx"]:
            want = b"tolls_amount" in record
            assert sm.record_matches(
                record, "tolls_amount", sm.FULL
            ) == want
            assert sm.record_matches(
                record, "tolls_amount", sm.DFA_TECHNIQUE
            ) == want

    def test_record_match_array_multi_record(self):
        records = [b'{"n":"dust"}', b'{"n":"light"}', b'{"n":"stud"}']
        stream = b"".join(r + b"\n" for r in records)
        data = arr(stream)
        starts = np.array(
            [0, len(records[0]) + 1, len(records[0]) + len(records[1]) + 2]
        )
        got = sm.record_match_array(data, starts, "dust", 1)
        assert got.tolist() == [True, False, True]
        got_exact = sm.record_match_array(data, starts, "dust", sm.FULL)
        assert got_exact.tolist() == [True, False, False]

    def test_needle_never_spans_records(self):
        records = [b"du", b"st"]
        stream = b"".join(r + b"\n" for r in records)
        starts = np.array([0, 3])
        got = sm.record_match_array(arr(stream), starts, "dust", sm.FULL)
        assert got.tolist() == [False, False]


class TestReferenceTrace:
    def test_matches_vectorised(self):
        data = b'xx dust dutsud "light" tsud'
        for block in (1, 2, 3, 4):
            want = sm.fire_array(arr(data), "dust", block).tolist()
            got = sm.reference_fire_trace(data, "dust", block)
            assert got == want, block

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.text(alphabet="dustlight \"{}:x", max_size=40),
        block=st.integers(1, 4),
        needle=st.sampled_from(["dust", "light"]),
    )
    def test_reference_equals_vectorised_property(self, data, block, needle):
        raw = data.encode()
        want = sm.fire_array(arr(raw), needle, block).tolist()
        assert sm.reference_fire_trace(raw, needle, block) == want


class TestNoFalseNegatives:
    """The raw-filtering invariant: exact presence implies a match."""

    @settings(max_examples=60, deadline=None)
    @given(
        prefix=st.text(alphabet="abcxyz {}\":,", max_size=20),
        suffix=st.text(alphabet="abcxyz {}\":,", max_size=20),
        needle=st.sampled_from(
            ["dust", "temperature", "tolls_amount", "user"]
        ),
        block=st.sampled_from([1, 2, 3, sm.FULL, sm.DFA_TECHNIQUE]),
    )
    def test_containing_record_always_matches(self, prefix, suffix, needle,
                                               block):
        record = (prefix + needle + suffix).encode()
        if block not in (sm.FULL, sm.DFA_TECHNIQUE) and block > len(needle):
            block = 1
        assert sm.record_matches(record, needle, block)
