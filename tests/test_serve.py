"""Tests for the multi-tenant filter gateway (repro.serve).

Covers the wire protocol units, the gateway's service properties
(admission, backpressure, disconnect isolation, live swap, drain), the
differential guarantee (gateway results are bit-identical to an offline
``FilterEngine.stream`` run) and the multi-tenant cache-sharing smoke
that CI runs standalone.
"""

import asyncio
import socket
import threading
import time

import numpy as np
import pytest

from repro.cli import parse_filter_expression
from repro.data import load_dataset
from repro.engine import FilterEngine
from repro.errors import ReproError
from repro.serve import (
    AdmissionError,
    AsyncGatewayClient,
    FrameDecoder,
    GatewayClient,
    GatewayError,
    GatewayThread,
    ProtocolError,
    SessionError,
    render_status,
)
from repro.serve import protocol
from repro.serve import server as serve_server

EXPR = "group(s:1:temperature,v:float:0.7:35.1)"
HUMIDITY_EXPR = "group(s:1:humidity,v:float:20.3:69.1)"


def offline_bits(expression, payload):
    """Reference match bits from a plain offline engine stream."""
    engine = FilterEngine()
    bits = []
    for batch in engine.stream(
        parse_filter_expression(expression), payload
    ):
        bits.extend(batch.matches.tolist())
    return bits


def collect(client, expression, payload, chunk_bytes=None):
    """Stream through the gateway; return (bits, accepted records)."""
    bits, accepted = [], []
    for batch in client.submit(expression, payload, chunk_bytes):
        bits.extend(batch.matches.tolist())
        accepted.extend(batch.accepted)
    return bits, accepted


@pytest.fixture(scope="module")
def payload():
    return load_dataset("smartcity", 300, seed=11).stream.tobytes()


@pytest.fixture()
def gateway():
    with GatewayThread(engines=2) as gw:
        yield gw


# ---------------------------------------------------------------------------
# protocol units
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_frame_roundtrip_through_decoder(self):
        frames = [
            protocol.encode_json_frame(protocol.HELLO, {"tenant": "t"}),
            protocol.encode_frame(protocol.CHUNK, b"raw \x00 bytes"),
            protocol.encode_frame(protocol.END),
        ]
        wire = b"".join(frames)
        decoder = FrameDecoder()
        seen = []
        # feed byte by byte: partial headers/payloads must carry over
        for i in range(len(wire)):
            decoder.feed(wire[i:i + 1])
            seen.extend(decoder.frames())
        assert [t for t, _ in seen] == [
            protocol.HELLO, protocol.CHUNK, protocol.END
        ]
        assert seen[1][1] == b"raw \x00 bytes"
        assert decoder.pending_bytes == 0

    def test_malformed_frames_raise_typed_errors(self):
        with pytest.raises(ProtocolError, match="magic"):
            decode = FrameDecoder()
            decode.feed(b"XX" + b"\x00" * 14)
            list(decode.frames())
        with pytest.raises(ProtocolError, match="version"):
            decode = FrameDecoder()
            decode.feed(b"RF\x63\x01\x00\x00\x00\x00")
            list(decode.frames())
        with pytest.raises(ProtocolError, match="unknown frame type"):
            decode = FrameDecoder()
            decode.feed(b"RF\x01\x7f\x00\x00\x00\x00")
            list(decode.frames())
        with pytest.raises(ProtocolError, match="frame limit"):
            decode = FrameDecoder()
            decode.feed(b"RF\x01\x05\xff\xff\xff\xff")
            list(decode.frames())
        with pytest.raises(ProtocolError):
            protocol.encode_frame(99, b"")
        assert isinstance(ProtocolError("x"), ReproError)

    def test_json_payload_validation(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            protocol.decode_json(protocol.HELLO, b"\xff\xfe")
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_json(protocol.HELLO, b"[1,2]")

    def test_result_roundtrip(self):
        records = [b'{"a":1}', b'{"b":2}', b'{"c":3}']
        matches = np.array([True, False, True])
        accepted = [records[0], records[2]]
        payload = protocol.encode_result(matches, accepted)
        got_matches, got_accepted = protocol.decode_result(payload)
        assert got_matches.tolist() == matches.tolist()
        assert got_accepted == accepted

    def test_result_roundtrip_empty_batch(self):
        payload = protocol.encode_result(np.array([], dtype=bool), [])
        matches, accepted = protocol.decode_result(payload)
        assert matches.tolist() == []
        assert accepted == []

    def test_result_rejects_corrupt_payloads(self):
        with pytest.raises(ProtocolError):
            protocol.decode_result(b"\x00")
        with pytest.raises(ProtocolError):
            protocol.decode_result(b"\x00\x00\x00\x09\x00\x00\x00\x00")
        good = protocol.encode_result(
            np.array([True]), [b'{"a":1}']
        )
        with pytest.raises(ProtocolError):
            # accepted-record count no longer matches the bit vector
            protocol.decode_result(good + b"\nextra")

    def test_error_frames_map_to_typed_exceptions(self):
        for kind, exc in [
            ("protocol", ProtocolError),
            ("admission", AdmissionError),
            ("query", SessionError),
            ("unheard-of", SessionError),
        ]:
            frame = protocol.encode_json_frame(
                protocol.ERROR, {"error": "boom", "kind": kind}
            )
            _, payload = next(iter(_decode_all(frame)))
            with pytest.raises(exc, match="boom"):
                protocol.raise_error_frame(payload)


def _decode_all(wire):
    decoder = FrameDecoder()
    decoder.feed(wire)
    return decoder.frames()


# ---------------------------------------------------------------------------
# differential: gateway == offline engine
# ---------------------------------------------------------------------------

class TestGatewayDifferential:
    @pytest.mark.parametrize("chunk_bytes", [999, 4096, 1 << 20])
    def test_bits_identical_to_offline_stream(self, gateway, payload,
                                              chunk_bytes):
        expected = offline_bits(EXPR, payload)
        with GatewayClient(
            "127.0.0.1", gateway.port, tenant="diff"
        ) as client:
            bits, accepted = collect(
                client, EXPR, payload, chunk_bytes
            )
        assert bits == expected
        assert len(accepted) == sum(expected)
        assert client.last_summary["records"] == len(expected)
        assert client.last_summary["bytes"] == len(payload)

    def test_accepted_records_are_the_matching_records(
            self, gateway, payload):
        expected = offline_bits(EXPR, payload)
        records = [r for r in payload.split(b"\n") if r.strip()]
        with GatewayClient(
            "127.0.0.1", gateway.port, tenant="diff"
        ) as client:
            _, accepted = collect(client, EXPR, payload, 2048)
        assert accepted == [
            record
            for record, match in zip(records, expected)
            if match
        ]

    def test_sequential_queries_on_one_connection(self, gateway,
                                                  payload):
        with GatewayClient(
            "127.0.0.1", gateway.port, tenant="seq"
        ) as client:
            first, _ = collect(client, EXPR, payload, 4096)
            second, _ = collect(
                client, HUMIDITY_EXPR, payload, 4096
            )
        assert first == offline_bits(EXPR, payload)
        assert second == offline_bits(HUMIDITY_EXPR, payload)

    def test_stream_without_trailing_newline(self, gateway):
        ndjson = (
            b'{"n":"temperature","v":"30.0"}\n'
            b'{"n":"temperature","v":"99.0"}\n'
            b'{"n":"temperature","v":"1.0"}'  # no trailing newline
        )
        with GatewayClient(
            "127.0.0.1", gateway.port, tenant="tail"
        ) as client:
            bits, _ = collect(client, EXPR, ndjson, 16)
        assert bits == [True, False, True]


# ---------------------------------------------------------------------------
# service failure modes
# ---------------------------------------------------------------------------

class TestAdmissionControl:
    def test_session_ceiling_rejects_with_typed_error(self, payload):
        with GatewayThread(engines=1, max_sessions=1) as gw:
            first = GatewayClient(
                "127.0.0.1", gw.port, tenant="a"
            ).connect()
            try:
                with pytest.raises(AdmissionError, match="capacity"):
                    GatewayClient(
                        "127.0.0.1", gw.port, tenant="b"
                    ).connect()
                assert gw.snapshot()["gateway"][
                    "admission_rejections"
                ] == 1
            finally:
                first.close()
            # the slot frees up once the first session ends
            deadline = time.time() + 5
            while time.time() < deadline:
                if gw.snapshot()["gateway"]["active_sessions"] == 0:
                    break
                time.sleep(0.01)
            with GatewayClient(
                "127.0.0.1", gw.port, tenant="c"
            ) as client:
                bits, _ = collect(client, EXPR, payload, 8192)
            assert bits == offline_bits(EXPR, payload)

    def test_observer_bypasses_admission_and_stays_unmetered(self,
                                                             payload):
        """Observability must work exactly when the gateway is
        saturated: STATS probes skip admission and the tenant table."""
        with GatewayThread(engines=1, max_sessions=1) as gw:
            occupant = GatewayClient(
                "127.0.0.1", gw.port, tenant="occupant"
            ).connect()
            try:
                # a normal session is refused...
                with pytest.raises(AdmissionError):
                    GatewayClient(
                        "127.0.0.1", gw.port, tenant="extra"
                    ).connect()
                # ...but an observer probe still reads the metrics
                with GatewayClient(
                    "127.0.0.1", gw.port, tenant="probe",
                    observer=True,
                ) as probe:
                    snapshot = probe.stats()
                assert snapshot["gateway"]["active_sessions"] == 1
                assert "probe" not in snapshot["tenants"]
            finally:
                occupant.close()

    def test_observer_sessions_are_read_only(self, payload):
        """Observers bypassed admission, so letting them stream would
        be an unmetered hole in the session ceiling: only STATS."""
        with GatewayThread(engines=1) as gw:
            with GatewayClient(
                "127.0.0.1", gw.port, tenant="sneaky", observer=True
            ) as client:
                with pytest.raises(SessionError, match="read-only"):
                    list(client.submit(EXPR, payload))

    def test_constructor_validation(self):
        from repro.serve import EnginePool, FilterGateway

        with pytest.raises(GatewayError):
            EnginePool(0)
        with pytest.raises(GatewayError):
            FilterGateway(max_sessions=0)
        with pytest.raises(GatewayError):
            FilterGateway(max_inflight_bytes=0)
        with pytest.raises(GatewayError):
            FilterGateway(queue_chunks=0)


class TestBackpressure:
    def test_bounded_queue_bounds_resident_bytes(self, payload,
                                                 monkeypatch):
        """With evaluation slower than ingest, the per-session queue —
        not the stream length — bounds the bytes the gateway holds."""
        real_evaluate = serve_server._evaluate_batch

        def slow_evaluate(engine, predicate, records):
            time.sleep(0.005)
            return real_evaluate(engine, predicate, records)

        monkeypatch.setattr(
            serve_server, "_evaluate_batch", slow_evaluate
        )
        chunk = 2048
        queue_chunks = 2
        with GatewayThread(
            engines=1, queue_chunks=queue_chunks
        ) as gw:
            with GatewayClient(
                "127.0.0.1", gw.port, tenant="slow"
            ) as client:
                bits, _ = collect(client, EXPR, payload, chunk)
            snapshot = gw.snapshot()
        assert bits == offline_bits(EXPR, payload)
        tenant = snapshot["tenants"]["slow"]
        assert tenant["bytes_in"] == len(payload)
        # queue_chunks queued + one the reader is waiting to enqueue
        bound = (queue_chunks + 1) * chunk
        assert 0 < tenant["peak_queued_bytes"] <= bound
        assert tenant["peak_queued_bytes"] < len(payload) / 4
        gateway_stats = snapshot["gateway"]
        assert gateway_stats["inflight_bytes"] == 0
        # in-evaluation bytes ride on top of the queue bound
        assert gateway_stats["peak_inflight_bytes"] <= bound + chunk

    def test_oversized_chunk_still_admitted_when_alone(self, payload):
        """A single chunk larger than max_inflight_bytes must pass
        (otherwise it could never be admitted at all)."""
        with GatewayThread(
            engines=1, max_inflight_bytes=1024
        ) as gw:
            with GatewayClient(
                "127.0.0.1", gw.port, tenant="big"
            ) as client:
                bits, _ = collect(
                    client, EXPR, payload, len(payload)
                )
        assert bits == offline_bits(EXPR, payload)


class TestDisconnects:
    def test_mid_stream_disconnect_cleans_up_session(self, gateway,
                                                     payload):
        sock = socket.create_connection(
            ("127.0.0.1", gateway.port), timeout=5
        )
        stream = protocol.SocketFrameStream(sock)
        stream.send(protocol.encode_json_frame(
            protocol.HELLO, {"tenant": "flaky"}
        ))
        assert stream.read_frame()[0] == protocol.HELLO_OK
        stream.send(protocol.encode_json_frame(
            protocol.QUERY, {"expression": EXPR}
        ))
        assert stream.read_frame()[0] == protocol.QUERY_OK
        stream.send(protocol.encode_frame(
            protocol.CHUNK, payload[:4096]
        ))
        sock.close()  # vanish mid-stream, END never sent

        deadline = time.time() + 5
        while time.time() < deadline:
            snapshot = gateway.snapshot()
            if snapshot["tenants"]["flaky"]["active_sessions"] == 0:
                break
            time.sleep(0.01)
        tenant = gateway.snapshot()["tenants"]["flaky"]
        assert tenant["active_sessions"] == 0
        assert tenant["disconnects"] == 1
        # no byte of the dead session stays accounted as in flight
        assert gateway.snapshot()["gateway"]["inflight_bytes"] == 0

    def test_other_tenants_unaffected_by_a_disconnect(self, gateway,
                                                      payload):
        # a tenant connects and dies mid-stream...
        sock = socket.create_connection(
            ("127.0.0.1", gateway.port), timeout=5
        )
        stream = protocol.SocketFrameStream(sock)
        stream.send(protocol.encode_json_frame(
            protocol.HELLO, {"tenant": "dying"}
        ))
        stream.read_frame()
        stream.send(protocol.encode_json_frame(
            protocol.QUERY, {"expression": EXPR}
        ))
        stream.send(protocol.encode_frame(
            protocol.CHUNK, payload[:1000]
        ))
        sock.close()
        # ...while another tenant's stream completes, bit-exact
        with GatewayClient(
            "127.0.0.1", gateway.port, tenant="steady"
        ) as client:
            bits, _ = collect(client, EXPR, payload, 4096)
        assert bits == offline_bits(EXPR, payload)


class TestProtocolFailures:
    def test_garbage_handshake_gets_protocol_error(self, gateway):
        sock = socket.create_connection(
            ("127.0.0.1", gateway.port), timeout=5
        )
        try:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n\x00\x00\x00\x00")
            stream = protocol.SocketFrameStream(sock)
            with pytest.raises(ProtocolError):
                frame = stream.read_frame()
                if frame is not None and frame[0] == protocol.ERROR:
                    protocol.raise_error_frame(frame[1])
        finally:
            sock.close()
        assert gateway.snapshot()["gateway"]["protocol_errors"] >= 1

    def test_unexpected_frame_mid_session(self, gateway):
        sock = socket.create_connection(
            ("127.0.0.1", gateway.port), timeout=5
        )
        try:
            stream = protocol.SocketFrameStream(sock)
            stream.send(protocol.encode_json_frame(
                protocol.HELLO, {"tenant": "odd"}
            ))
            assert stream.read_frame()[0] == protocol.HELLO_OK
            # HELLO again is not a client frame the session accepts
            stream.send(protocol.encode_json_frame(
                protocol.HELLO, {"tenant": "odd"}
            ))
            frame = stream.read_frame()
            assert frame[0] == protocol.ERROR
            with pytest.raises(ProtocolError):
                protocol.raise_error_frame(frame[1])
        finally:
            sock.close()

    def test_bad_query_expression_is_a_session_error(self, gateway,
                                                     payload):
        with GatewayClient(
            "127.0.0.1", gateway.port, tenant="bad"
        ) as client:
            with pytest.raises(SessionError, match="expression"):
                list(client.submit("nonsense(((", payload))

    def test_chunk_before_query_is_a_session_error(self, gateway):
        sock = socket.create_connection(
            ("127.0.0.1", gateway.port), timeout=5
        )
        try:
            stream = protocol.SocketFrameStream(sock)
            stream.send(protocol.encode_json_frame(
                protocol.HELLO, {"tenant": "eager"}
            ))
            assert stream.read_frame()[0] == protocol.HELLO_OK
            stream.send(protocol.encode_frame(
                protocol.CHUNK, b'{"n":"temperature"}\n'
            ))
            frame = stream.read_frame()
            assert frame[0] == protocol.ERROR
            with pytest.raises(SessionError, match="before QUERY"):
                protocol.raise_error_frame(frame[1])
        finally:
            sock.close()


# ---------------------------------------------------------------------------
# live filter swap
# ---------------------------------------------------------------------------

class TestLiveSwap:
    def test_swap_applies_at_the_exact_stream_point(self, gateway):
        part1 = (
            b'{"n":"temperature","v":"30.0"}\n'
            b'{"n":"humidity","v":"50.0"}\n'
        )
        part2 = (
            b'{"n":"temperature","v":"30.0"}\n'
            b'{"n":"humidity","v":"50.0"}\n'
        )

        async def run():
            client = AsyncGatewayClient(
                "127.0.0.1", gateway.port, tenant="swapper"
            )
            async with client:
                await client.query(EXPR)
                await client.send_chunk(part1)
                await client.swap(HUMIDITY_EXPR)
                await client.send_chunk(part2)
                await client.end()
                batches = []
                async for batch in client.results():
                    batches.append(batch)
                return batches, client.swaps, client.last_summary

        batches, swaps, summary = asyncio.run(run())
        assert len(batches) == 2
        # part 1 judged by the temperature filter...
        assert batches[0].matches.tolist() == [True, False]
        # ...part 2, after the swap, by the humidity filter
        assert batches[1].matches.tolist() == [False, True]
        assert len(swaps) == 1
        assert swaps[0]["downtime_seconds"] > 0
        assert summary["records"] == 4
        tenant = gateway.snapshot()["tenants"]["swapper"]
        assert tenant["swaps"] == 1
        assert tenant["reconfiguration_seconds"] > 0

    def test_swap_downtime_matches_reconfiguration_model(self,
                                                         gateway):
        from repro.system.multi import reconfiguration_seconds

        expected = reconfiguration_seconds(
            parse_filter_expression(HUMIDITY_EXPR)
        )

        async def run():
            client = AsyncGatewayClient(
                "127.0.0.1", gateway.port, tenant="model"
            )
            async with client:
                await client.query(EXPR)
                await client.swap(HUMIDITY_EXPR)
                await client.end()
                async for _ in client.results():
                    pass
                return client.swaps

        swaps = asyncio.run(run())
        assert swaps[0]["downtime_seconds"] == pytest.approx(expected)


# ---------------------------------------------------------------------------
# async client + stats + drain
# ---------------------------------------------------------------------------

class TestClientAbandonment:
    def test_abandoned_submit_closes_connection_and_source(
            self, gateway, payload, tmp_path):
        """Walking away from submit() mid-stream gives the socket up
        (the remaining frames cannot be resynchronised) and closes a
        client-owned source instead of leaking its handle."""
        path = tmp_path / "corpus.ndjson"
        path.write_bytes(payload)
        client = GatewayClient(
            "127.0.0.1", gateway.port, tenant="quitter"
        ).connect()
        from repro.engine import FileSource

        source = FileSource(str(path), chunk_bytes=1024)
        stream = client.submit(EXPR, source)
        next(stream)  # first batch only, then walk away
        stream.close()
        assert client._stream is None
        assert source._handle.closed
        with pytest.raises(GatewayError, match="not connected"):
            next(client.submit(EXPR, payload))
        # the gateway carries on serving fresh connections
        with GatewayClient(
            "127.0.0.1", gateway.port, tenant="quitter"
        ) as again:
            bits, _ = collect(again, EXPR, payload, 4096)
        assert bits == offline_bits(EXPR, payload)

    def test_completed_submit_keeps_the_connection(self, gateway,
                                                   payload):
        with GatewayClient(
            "127.0.0.1", gateway.port, tenant="keeper"
        ) as client:
            first, _ = collect(client, EXPR, payload, 8192)
            assert client._stream is not None  # reusable
            second, _ = collect(client, EXPR, payload, 8192)
        assert first == second


class TestAsyncClient:
    def test_async_submit_matches_offline(self, gateway, payload):
        expected = offline_bits(EXPR, payload)

        async def run():
            client = AsyncGatewayClient(
                "127.0.0.1", gateway.port, tenant="async"
            )
            async with client:
                bits = []
                async for batch in client.submit(
                    EXPR, payload, 4096
                ):
                    bits.extend(batch.matches.tolist())
                stats = await client.stats()
                return bits, stats

        bits, stats = asyncio.run(run())
        assert bits == expected
        assert stats["tenants"]["async"]["records"] == len(expected)


class TestStatsAndMetrics:
    def test_stats_snapshot_shape(self, gateway, payload):
        with GatewayClient(
            "127.0.0.1", gateway.port, tenant="obs"
        ) as client:
            collect(client, EXPR, payload, 8192)
            snapshot = client.stats()
        gw = snapshot["gateway"]
        tenant = snapshot["tenants"]["obs"]
        engine = snapshot["engine"]
        assert gw["records"] >= tenant["records"] > 0
        assert 0.0 <= tenant["accept_rate"] <= 1.0
        assert tenant["result_batches"] > 0
        assert engine["engines"] == 2
        assert engine["cache"]["hits"] + engine["cache"]["misses"] > 0
        # the whole snapshot is JSON-serialisable (the STATS_OK wire)
        import json

        json.dumps(snapshot)

    def test_render_status_is_readable(self, gateway, payload):
        with GatewayClient(
            "127.0.0.1", gateway.port, tenant="render"
        ) as client:
            collect(client, EXPR, payload, 8192)
            snapshot = client.stats()
        text = render_status(snapshot)
        assert "gateway:" in text
        assert "shared cache:" in text
        assert "render" in text

    def test_mid_stream_stats_arrive_in_order(self, gateway, payload):
        async def run():
            client = AsyncGatewayClient(
                "127.0.0.1", gateway.port, tenant="inline"
            )
            async with client:
                await client.query(EXPR)
                await client.send_chunk(payload[:4096])
                await client.request_stats()  # reply in stream order
                await client.end()
                async for _ in client.results():
                    pass
                return client.last_summary, client.last_stats

        summary, stats = asyncio.run(run())
        assert summary["records"] > 0
        # the snapshot was cut mid-stream: the session was still live
        assert stats["tenants"]["inline"]["active_sessions"] == 1


class TestDrain:
    def test_shutdown_with_idle_session_times_out_cleanly(self):
        gw = GatewayThread(engines=1, drain_timeout=0.2).start()
        client = GatewayClient("127.0.0.1", gw.port, tenant="idle")
        client.connect()
        try:
            gw.stop(timeout=10)  # idle session is cancelled by drain
        finally:
            client.close()
        with pytest.raises(OSError):
            socket.create_connection(
                ("127.0.0.1", gw.port), timeout=0.5
            )

    def test_gateway_thread_reports_startup_failure(self):
        with pytest.raises(GatewayError):
            GatewayThread(engines=-1).start()


# ---------------------------------------------------------------------------
# the CI smoke: >= 4 concurrent tenants + warm second tenant
# ---------------------------------------------------------------------------

class TestGatewaySmoke:
    def test_concurrent_tenants_and_warm_cache(self):
        """Four concurrent clients with distinct corpora get offline-
        identical bits; a second tenant re-streaming the first corpus
        is served warm from the shared AtomCache (strictly higher hit
        rate than the tenant that paid the cold evaluation)."""
        corpora = {
            f"tenant-{seed}": load_dataset(
                "smartcity", 150, seed=seed
            ).stream.tobytes()
            for seed in range(4)
        }
        expected = {
            name: offline_bits(EXPR, data)
            for name, data in corpora.items()
        }
        results = {}
        errors = []

        def run_client(name, data, port):
            try:
                with GatewayClient(
                    "127.0.0.1", port, tenant=name
                ) as client:
                    bits, _ = collect(client, EXPR, data, 2048)
                    results[name] = bits
            except Exception as err:  # pragma: no cover - diagnostics
                errors.append((name, err))

        with GatewayThread(engines=2) as gw:
            threads = [
                threading.Thread(
                    target=run_client, args=(name, data, gw.port)
                )
                for name, data in corpora.items()
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors, errors
            assert results == expected

            # warm second tenant over tenant-0's corpus
            with GatewayClient(
                "127.0.0.1", gw.port, tenant="warm"
            ) as client:
                bits, _ = collect(
                    client, EXPR, corpora["tenant-0"], 2048
                )
            assert bits == expected["tenant-0"]
            snapshot = gw.snapshot()
            cold = snapshot["tenants"]["tenant-0"]
            warm = snapshot["tenants"]["warm"]
            assert warm["cache_hit_rate"] > cold["cache_hit_rate"]
            assert warm["cache_hit_rate"] > 0.9
            # session teardown is asynchronous on the server side
            deadline = time.time() + 5
            while time.time() < deadline:
                active = gw.snapshot()["gateway"]["active_sessions"]
                if active == 0:
                    break
                time.sleep(0.01)
            assert active == 0


# ---------------------------------------------------------------------------
# pooled engines: resident workers behind the gateway
# ---------------------------------------------------------------------------

class TestResidentGateway:
    """``repro serve --workers N``: every engine keeps a resident
    worker pool, pre-forked before the executor threads exist, and the
    pool's residency counters surface through STATS."""

    @staticmethod
    def _resident_stragglers(timeout=5.0):
        import multiprocessing

        deadline = time.time() + timeout
        while True:
            stragglers = [
                child for child in multiprocessing.active_children()
                if child.name.startswith("repro-resident")
            ]
            if not stragglers or time.time() > deadline:
                return stragglers
            time.sleep(0.05)

    def test_pooled_engine_matches_offline_and_reports_workers(
        self, payload
    ):
        expected = offline_bits(EXPR, payload)
        with GatewayThread(engines=1, workers=2) as gw:
            with GatewayClient(
                "127.0.0.1", gw.port, tenant="pooled"
            ) as client:
                bits, _ = collect(client, EXPR, payload, 4096)
            assert bits == expected
            snapshot = gw.snapshot()
            engine = snapshot["engine"]
            workers = engine["workers"]
            assert engine["engine_workers"] == 2
            assert workers["resident"] is True
            assert workers["num_workers"] == 2
            assert workers["sessions"] >= 1
            assert workers["respawns"] == 0
            # per-worker counters rode the STATS wire (pid-keyed,
            # JSON-stringified by the snapshot)
            per_worker = workers["workers"]
            assert per_worker
            assert all(
                counters["records"] >= 0
                for counters in per_worker.values()
            )
            assert sum(
                counters["records"] for counters in per_worker.values()
            ) > 0
            text = render_status(snapshot)
            assert "resident workers: 2 per engine" in text
        # gateway shutdown closes the pooled engines: nothing left
        assert self._resident_stragglers() == []

    def test_swap_mid_stream_reconfigures_pooled_engine(self):
        part1 = (
            b'{"n":"temperature","v":"30.0"}\n'
            b'{"n":"humidity","v":"50.0"}\n'
        )
        part2 = part1

        async def run(port):
            client = AsyncGatewayClient(
                "127.0.0.1", port, tenant="pooled-swap"
            )
            async with client:
                await client.query(EXPR)
                await client.send_chunk(part1)
                await client.swap(HUMIDITY_EXPR)
                await client.send_chunk(part2)
                await client.end()
                return [batch async for batch in client.results()]

        with GatewayThread(engines=1, workers=2) as gw:
            batches = asyncio.run(run(gw.port))
            assert len(batches) == 2
            assert batches[0].matches.tolist() == [True, False]
            assert batches[1].matches.tolist() == [False, True]
            snapshot = gw.snapshot()
            assert snapshot["tenants"]["pooled-swap"]["swaps"] == 1
            workers = snapshot["engine"]["workers"]
            # the swap reconfigured the resident workers in place —
            # a second filter means a second configure, not a respawn
            assert workers["configures"] >= 2
            assert workers["respawns"] == 0
        assert self._resident_stragglers() == []

    def test_concurrent_tenants_on_pooled_engines(self, payload):
        """Two sessions race over pooled engines; per-batch engine
        checkout plus the pool's serial-fallback guard keep every
        result bit-identical to the offline run."""
        expected = offline_bits(EXPR, payload)
        results, errors = {}, []

        def run_client(name, port):
            try:
                with GatewayClient(
                    "127.0.0.1", port, tenant=name
                ) as client:
                    results[name] = collect(
                        client, EXPR, payload, 4096
                    )[0]
            except Exception as err:  # pragma: no cover - diagnostics
                errors.append((name, err))

        with GatewayThread(engines=2, workers=2) as gw:
            threads = [
                threading.Thread(target=run_client, args=(name, gw.port))
                for name in ("race-a", "race-b")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors
            assert results == {
                "race-a": expected, "race-b": expected,
            }
        assert self._resident_stragglers() == []
