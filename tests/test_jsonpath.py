"""Unit tests for the JSON parser, JSONPath subset and SenML helpers."""

import pytest

from repro.errors import JSONParseError, JSONPathError
from repro.jsonpath import (
    base_time,
    coerce_number,
    compile_path,
    iter_records,
    loads,
    measurement_value,
    measurements,
    sensor_names,
)


class TestParserValues:
    def test_scalars(self):
        assert loads("true") is True
        assert loads("false") is False
        assert loads("null") is None
        assert loads("42") == 42
        assert loads("-3.5") == -3.5
        assert loads('"hi"') == "hi"

    def test_exponents(self):
        assert loads("2.5e3") == 2500.0
        assert loads("1E-2") == 0.01
        assert loads("100e-1") == 10.0

    def test_nested_structure(self):
        value = loads('{"a":[1,{"b":[2,3]}],"c":{}}')
        assert value == {"a": [1, {"b": [2, 3]}], "c": {}}

    def test_empty_containers(self):
        assert loads("[]") == []
        assert loads("{}") == {}

    def test_string_escapes(self):
        assert loads(r'"a\"b\\c\nd"') == 'a"b\\c\nd'
        assert loads(r'"A"') == "A"

    def test_unicode_passthrough(self):
        assert loads('"münchen"'.encode("utf-8")) == "münchen"

    def test_whitespace_tolerated(self):
        assert loads(' { "a" : [ 1 , 2 ] } ') == {"a": [1, 2]}


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "{",
            "[1,",
            '{"a"}',
            '{"a":}',
            '{a:1}',
            '"unterminated',
            "01",
            "1.",
            "1e",
            "tru",
            '[1] trailing',
            '{"a":1,}',
            '"bad\\escape"'.replace("escape", "q"),
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(JSONParseError):
            loads(text)

    def test_error_position(self):
        try:
            loads('{"a": nope}')
        except JSONParseError as err:
            assert err.position == 6
        else:  # pragma: no cover
            pytest.fail("expected parse error")

    def test_control_characters_rejected(self):
        with pytest.raises(JSONParseError):
            loads(b'"a\x01b"')


class TestIterRecords:
    def test_ndjson(self):
        stream = b'{"a":1}\n{"a":2}\n\n{"a":3}\n'
        values = [value for _, value in iter_records(stream)]
        assert [v["a"] for v in values] == [1, 2, 3]

    def test_raw_bytes_returned(self):
        stream = b'{"a":1}\n'
        raw, _ = next(iter_records(stream))
        assert raw == b'{"a":1}'


class TestJSONPath:
    DOC = loads(
        '{"e":[{"v":"35.2","u":"far","n":"temperature"},'
        '{"v":"12","u":"per","n":"humidity"}],"bt":1422748800000}'
    )

    def test_field_access(self):
        assert compile_path("$.bt").select(self.DOC) == [1422748800000]

    def test_missing_field(self):
        assert compile_path("$.zz").select(self.DOC) == []

    def test_wildcard(self):
        assert len(compile_path("$.e[*]").select(self.DOC)) == 2

    def test_index(self):
        node = compile_path("$.e[1]").select(self.DOC)[0]
        assert node["n"] == "humidity"

    def test_negative_index(self):
        node = compile_path("$.e[-1]").select(self.DOC)[0]
        assert node["n"] == "humidity"

    def test_paper_listing2_query(self):
        """Listing 2: temperature in [0.7, 35.1] — 35.2 fails."""
        path = compile_path(
            '$.e[?(@.n=="temperature" & @.v >= 0.7 & @.v <= 35.1)]'
        )
        assert not path.matches(self.DOC)
        in_range = loads(
            '{"e":[{"v":"30.0","u":"far","n":"temperature"}]}'
        )
        assert path.matches(in_range)

    def test_filter_with_or(self):
        path = compile_path('$.e[?(@.n=="light" | @.n=="humidity")]')
        assert len(path.select(self.DOC)) == 1

    def test_string_coercion_in_comparison(self):
        """SenML "v" values are strings; numeric literals coerce them."""
        path = compile_path("$.e[?(@.v >= 12 & @.v <= 12)]")
        assert path.matches(self.DOC)

    def test_unicode_comparison_glyphs(self):
        path = compile_path('$.e[?(@.v ≥ 35 & @.v ≤ 36)]')
        assert path.matches(self.DOC)

    def test_nonnumeric_value_fails_numeric_compare(self):
        doc = loads('{"e":[{"v":"abc","n":"temperature"}]}')
        path = compile_path("$.e[?(@.v >= 0)]")
        assert not path.matches(doc)

    @pytest.mark.parametrize(
        "text",
        ["$.", "e.a", "$.e[?(@.n=)]", "$.e[abc]", "$[?(n==1)]",
         "$.e[?(@.v >< 1)]"],
    )
    def test_path_errors(self, text):
        with pytest.raises(JSONPathError):
            compile_path(text)


class TestCoerce:
    def test_int_string(self):
        assert coerce_number("42") == 42

    def test_float_string(self):
        assert coerce_number("3.5") == 3.5

    def test_exponent_string(self):
        assert coerce_number("2e3") == 2000.0

    def test_non_numeric(self):
        assert coerce_number("abc") is None

    def test_bool_is_not_number(self):
        assert coerce_number(True) is None

    def test_passthrough(self):
        assert coerce_number(7) == 7


class TestSenML:
    RECORD = loads(
        '{"e":[{"v":"35.2","u":"far","n":"temperature"},'
        '{"v":"713","u":"per","n":"light"}],"bt":1422748800000}'
    )

    def test_measurements(self):
        values = list(measurements(self.RECORD))
        assert ("temperature", 35.2, "far") in values
        assert ("light", 713, "per") in values

    def test_measurement_value(self):
        assert measurement_value(self.RECORD, "light") == 713
        assert measurement_value(self.RECORD, "dust") is None

    def test_base_time(self):
        assert base_time(self.RECORD) == 1422748800000

    def test_sensor_names(self):
        assert sensor_names(self.RECORD) == {"temperature", "light"}

    def test_robust_to_malformed_entries(self):
        record = loads('{"e":[{"x":1},"junk",{"n":"t","v":"1"}]}')
        assert sensor_names(record) == {"t"}

    def test_non_senml_record(self):
        assert list(measurements(loads('{"a":1}'))) == []
        assert base_time(loads("[1]")) is None
