"""Unit tests for metrics and Pareto utilities."""

import numpy as np
import pytest

from repro.eval.metrics import (
    FilterMetrics,
    false_positive_rate,
    parse_offload,
    selectivity,
)
from repro.eval.pareto import DesignPoint, is_pareto_optimal, pareto_front


class TestMetrics:
    def test_confusion_matrix(self):
        accepted = np.array([True, True, False, False])
        truth = np.array([True, False, True, False])
        m = FilterMetrics(accepted, truth)
        assert (m.tp, m.fp, m.fn, m.tn) == (1, 1, 1, 1)

    def test_fpr_definition(self):
        accepted = np.array([True, True, True, False])
        truth = np.array([True, False, False, False])
        assert FilterMetrics(accepted, truth).fpr == pytest.approx(2 / 3)

    def test_fpr_no_negatives(self):
        accepted = np.array([True])
        truth = np.array([True])
        assert FilterMetrics(accepted, truth).fpr == 0.0

    def test_perfect_filter(self):
        truth = np.array([True, False, True, False])
        m = FilterMetrics(truth, truth)
        assert m.fpr == 0.0
        assert not m.has_false_negatives

    def test_pass_everything_filter(self):
        truth = np.array([True, False, False, False])
        accepted = np.ones(4, dtype=bool)
        m = FilterMetrics(accepted, truth)
        assert m.fpr == 1.0
        assert m.filtered_fraction == 0.0

    def test_filtered_fraction_headline(self):
        """94.3% filtered = only 5.7% of records reach the parser."""
        truth = np.zeros(1000, dtype=bool)
        truth[:57] = True
        m = FilterMetrics(truth, truth)
        assert m.filtered_fraction == pytest.approx(0.943)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            FilterMetrics(np.array([True]), np.array([True, False]))

    def test_false_negative_detection(self):
        accepted = np.array([False, True])
        truth = np.array([True, True])
        assert FilterMetrics(accepted, truth).has_false_negatives

    def test_selectivity(self):
        assert selectivity(np.array([True, False, True, False])) == 0.5
        assert selectivity(np.array([], dtype=bool)) == 0.0

    def test_parse_offload(self):
        truth = np.zeros(100, dtype=bool)
        truth[:10] = True
        m = FilterMetrics(truth, truth)
        assert parse_offload(m) == pytest.approx(0.9)

    def test_shorthand(self):
        accepted = np.array([True, False])
        truth = np.array([False, False])
        assert false_positive_rate(accepted, truth) == 0.5

    def test_as_dict(self):
        m = FilterMetrics(np.array([True]), np.array([False]))
        d = m.as_dict()
        assert d["fp"] == 1 and "fpr" in d


class TestPareto:
    def points(self):
        return [
            DesignPoint(None, 0.9, 10),
            DesignPoint(None, 0.5, 50),
            DesignPoint(None, 0.5, 60),   # dominated (same fpr, more luts)
            DesignPoint(None, 0.6, 40),
            DesignPoint(None, 0.0, 200),
            DesignPoint(None, 0.1, 300),  # dominated by (0.0, 200)
        ]

    def test_front_contents(self):
        front = pareto_front(self.points())
        pairs = {(p.fpr, p.luts) for p in front}
        assert pairs == {(0.9, 10), (0.6, 40), (0.5, 50), (0.0, 200)}

    def test_front_sorted_descending_fpr(self):
        front = pareto_front(self.points())
        fprs = [p.fpr for p in front]
        assert fprs == sorted(fprs, reverse=True)

    def test_dominates(self):
        a = DesignPoint(None, 0.1, 10)
        b = DesignPoint(None, 0.2, 20)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(a)

    def test_is_pareto_optimal(self):
        points = self.points()
        assert is_pareto_optimal(points[0], points)
        assert not is_pareto_optimal(points[2], points)

    def test_epsilon_merges_near_ties(self):
        points = [
            DesignPoint(None, 0.500, 50),
            DesignPoint(None, 0.4999, 80),
            DesignPoint(None, 0.1, 100),
        ]
        front = pareto_front(points, epsilon=0.01)
        assert len(front) == 2

    def test_single_point(self):
        front = pareto_front([DesignPoint(None, 0.5, 5)])
        assert len(front) == 1

    def test_empty(self):
        assert pareto_front([]) == []
