"""Tests for the persistent disk tier under the AtomCache.

Three layers: the :class:`CacheStore` log itself (append/read/reopen/
corruption), the tiered :class:`AtomCache` (demote on eviction, batched
promote on miss, counters), and the end-to-end wiring
(``EngineConfig(cache_store=...)``, gateway restart-warm).
"""

import os
import pickle

import numpy as np
import pytest

import repro.core.composition as comp
from repro.data import load_dataset
from repro.engine import AtomCache, CacheStore, FilterEngine, as_cache_store
from repro.engine.cache_store import LOG_NAME, MAGIC, _HEADER
from repro.errors import CachePersistenceError, ReproError


def simple_filter():
    return comp.group(comp.s("temperature", 1), comp.v("0.7", "35.1"))


def mask(*bits):
    return np.array(bits, dtype=bool)


# ---------------------------------------------------------------------------
# the log itself
# ---------------------------------------------------------------------------

class TestCacheStoreLog:
    def test_put_get_roundtrip(self, tmp_path):
        with CacheStore(tmp_path / "store") as store:
            fp = (100, b"fp-a")
            assert store.put(fp, "atom:x", mask(1, 0, 1)) is True
            assert store.get(fp, "atom:x").tolist() == [True, False, True]
            assert store.get(fp, "atom:missing") is None
            assert store.get((1, b"other"), "atom:x") is None
            assert len(store) == 1
            assert (fp, "atom:x") in store

    def test_duplicate_puts_are_skipped(self, tmp_path):
        """Content-addressed: re-demoting a stored key must not grow
        the log (promote/evict churn would otherwise inflate it)."""
        with CacheStore(tmp_path / "store") as store:
            fp = (4, b"fp")
            assert store.put(fp, "k", mask(1)) is True
            size_after_first = store.nbytes
            assert store.put(fp, "k", mask(1)) is False
            assert store.nbytes == size_after_first
            assert store.appends == 1

    def test_reopen_serves_previous_entries(self, tmp_path):
        directory = tmp_path / "store"
        fp = (7, b"fp-persist")
        with CacheStore(directory) as store:
            store.put(fp, "a", mask(1, 1))
            store.put(fp, "b", mask(0, 1))
            store.put((8, b"fp-other"), "a", mask(0))
        reopened = CacheStore(directory)
        assert len(reopened) == 3
        assert reopened.get(fp, "b").tolist() == [False, True]
        assert sorted(
            key for key, _ in reopened.fingerprint_batch(fp)
        ) == ["a", "b"]
        reopened.close()

    def test_fingerprint_batch_loads_in_offset_order(self, tmp_path):
        with CacheStore(tmp_path / "store") as store:
            fp = (9, b"fp-batch")
            for name in ("c", "a", "b"):
                store.put(fp, name, mask(1))
            batch = store.fingerprint_batch(fp)
            # append order == file offset order: one sequential sweep
            assert [key for key, _ in batch] == ["c", "a", "b"]
            assert store.fingerprint_batch((0, b"none")) == []

    def test_max_bytes_degrades_to_read_only(self, tmp_path):
        store = CacheStore(tmp_path / "store", max_bytes=256)
        fp = (3, b"fp")
        assert store.put(fp, "small", mask(1)) is True
        assert store.put(
            fp, "big", np.zeros(4096, dtype=bool)
        ) is False
        assert store.appends_skipped == 1
        assert store.get(fp, "small") is not None
        store.close()
        with pytest.raises(ReproError):
            CacheStore(tmp_path / "elsewhere", max_bytes=0)

    def test_stats_shape(self, tmp_path):
        with CacheStore(tmp_path / "store") as store:
            store.put((1, b"f"), "k", mask(1))
            store.get((1, b"f"), "k")
            stats = store.stats()
        assert stats["entries"] == 1
        assert stats["fingerprints"] == 1
        assert stats["appends"] == 1
        assert stats["reads"] == 1
        assert stats["bytes"] > len(MAGIC)
        assert stats["path"].endswith(LOG_NAME)

    def test_closed_store_raises(self, tmp_path):
        store = CacheStore(tmp_path / "store")
        store.close()
        store.close()  # idempotent
        with pytest.raises(ReproError, match="closed"):
            store.put((1, b"f"), "k", mask(1))
        with pytest.raises(ReproError, match="closed"):
            store.get((1, b"f"), "k")

    def test_as_cache_store_normalisation(self, tmp_path):
        assert as_cache_store(None) is None
        assert as_cache_store(False) is None
        store = CacheStore(tmp_path / "store")
        assert as_cache_store(store) is store
        from_path = as_cache_store(str(tmp_path / "other"))
        assert isinstance(from_path, CacheStore)
        with pytest.raises(ReproError):
            as_cache_store(42)
        import io

        with pytest.raises(ReproError, match="not an open file"):
            as_cache_store(io.BytesIO())
        store.close()
        from_path.close()


class TestCacheStoreCorruption:
    """A damaged log opens as a typed CachePersistenceError, never a
    raw pickle/EOF/struct exception."""

    def _seed(self, tmp_path):
        directory = tmp_path / "store"
        with CacheStore(directory) as store:
            store.put((1, b"fp"), "a", mask(1, 0))
            store.put((1, b"fp"), "b", mask(0, 1))
        return directory, directory / LOG_NAME

    def test_bad_magic(self, tmp_path):
        directory, log = self._seed(tmp_path)
        data = log.read_bytes()
        log.write_bytes(b"NOT-A-CACHESTORE!!\n" + data[len(MAGIC):])
        with pytest.raises(CachePersistenceError, match="magic"):
            CacheStore(directory)

    def test_truncated_header(self, tmp_path):
        directory, log = self._seed(tmp_path)
        data = log.read_bytes()
        log.write_bytes(data[:len(MAGIC) + _HEADER.size // 2])
        with pytest.raises(CachePersistenceError, match="truncated"):
            CacheStore(directory)

    def test_truncated_payload(self, tmp_path):
        directory, log = self._seed(tmp_path)
        data = log.read_bytes()
        log.write_bytes(data[:-3])  # cut mid-payload
        with pytest.raises(CachePersistenceError, match="truncated"):
            CacheStore(directory)

    def test_undecodable_metadata(self, tmp_path):
        directory = tmp_path / "store"
        log = directory / LOG_NAME
        os.makedirs(directory)
        meta = b"\xff" * 8  # not a pickle
        log.write_bytes(
            MAGIC + _HEADER.pack(len(meta), 0) + meta
        )
        with pytest.raises(CachePersistenceError, match="metadata"):
            CacheStore(directory)

    def test_undecodable_payload_on_read(self, tmp_path):
        directory = tmp_path / "store"
        log = directory / LOG_NAME
        os.makedirs(directory)
        meta = pickle.dumps(((1, b"fp"), "k"))
        payload = b"\xff" * 6
        log.write_bytes(
            MAGIC + _HEADER.pack(len(meta), len(payload))
            + meta + payload
        )
        store = CacheStore(directory)  # index scan never reads payloads
        with pytest.raises(CachePersistenceError, match="payload"):
            store.get((1, b"fp"), "k")
        store.close()

    def test_corruption_error_is_a_repro_error(self, tmp_path):
        directory, log = self._seed(tmp_path)
        log.write_bytes(b"junk")
        with pytest.raises(ReproError):
            CacheStore(directory)


# ---------------------------------------------------------------------------
# the tiered AtomCache
# ---------------------------------------------------------------------------

class TestTieredAtomCache:
    def test_eviction_demotes_to_the_store(self, tmp_path):
        store = CacheStore(tmp_path / "store")
        cache = AtomCache(max_entries=2, store=store)
        fp = (2, b"fp")
        cache.put(fp, "a", mask(1))
        cache.put(fp, "b", mask(0))
        cache.put(fp, "c", mask(1))  # evicts "a" -> disk
        assert cache.demoted == 1
        assert store.get(fp, "a").tolist() == [True]
        assert len(cache) == 2

    def test_miss_promotes_the_whole_fingerprint_batch(self, tmp_path):
        store = CacheStore(tmp_path / "store")
        fp = (5, b"fp")
        store.put(fp, "a", mask(1, 0))
        store.put(fp, "b", mask(0, 1))
        cache = AtomCache(store=store)
        assert cache.lookup(fp, "a").tolist() == [True, False]
        assert cache.tier_hits == 1
        assert cache.promoted == 2  # "b" came along for the ride
        # the batch-mate now hits memory without touching the store
        reads_before = store.reads
        assert cache.lookup(fp, "b").tolist() == [False, True]
        assert store.reads == reads_before
        assert cache.hits == 2
        assert cache.misses == 0

    def test_store_miss_counts_once(self, tmp_path):
        cache = AtomCache(store=CacheStore(tmp_path / "store"))
        assert cache.lookup((1, b"fp"), "nowhere") is None
        assert cache.tier_misses == 1
        assert cache.misses == 1
        assert cache.hits == 0

    def test_promotion_survives_eviction_pressure(self, tmp_path):
        """Promoting a batch larger than the LRU must still return the
        requested entry, even if the batch itself evicts it."""
        store = CacheStore(tmp_path / "store")
        fp = (6, b"fp")
        for name in ("a", "b", "c", "d"):
            store.put(fp, name, mask(name == "a"))
        cache = AtomCache(max_entries=2, store=store)
        got = cache.lookup(fp, "a")
        assert got is not None
        assert got.tolist() == [True]
        assert cache.tier_hits == 1

    def test_stats_report_tier_counters_and_store(self, tmp_path):
        store = CacheStore(tmp_path / "store")
        cache = AtomCache(max_entries=1, store=store)
        fp = (8, b"fp")
        cache.put(fp, "a", mask(1))
        cache.put(fp, "b", mask(0))  # demotes "a"
        cache.lookup(fp, "a")  # promotes it back
        stats = cache.stats()
        assert stats["demoted"] >= 1
        assert stats["promoted"] >= 1
        assert stats["tier_hits"] == 1
        assert stats["store"]["entries"] >= 1
        plain = AtomCache()
        assert plain.stats()["store"] is None

    def test_attach_store_accepts_a_path(self, tmp_path):
        cache = AtomCache(max_entries=1)
        cache.attach_store(str(tmp_path / "store"))
        fp = (9, b"fp")
        cache.put(fp, "a", mask(1))
        cache.put(fp, "b", mask(0))
        assert cache.demoted == 1
        assert cache.store.get(fp, "a") is not None

    def test_differential_masks_identical_with_tiny_tier(self, tmp_path):
        """A pathologically small tiered cache (constant demote/promote
        churn) must not change a single match bit."""
        dataset = load_dataset("smartcity", 150, seed=3)
        reference = FilterEngine(cache=False).match_bits(
            simple_filter(), dataset
        )
        cache = AtomCache(
            max_bytes=256, store=CacheStore(tmp_path / "store")
        )
        engine = FilterEngine(cache=cache, chunk_bytes=1024)
        for _ in range(3):  # repeated passes churn the tier
            matches = []
            for batch in engine.stream(
                simple_filter(), dataset.stream.tobytes()
            ):
                matches.extend(batch.matches.tolist())
            assert matches == reference.tolist()
        assert cache.demoted > 0


# ---------------------------------------------------------------------------
# end-to-end wiring
# ---------------------------------------------------------------------------

class TestEngineWiring:
    def test_engine_config_cache_store(self, tmp_path):
        engine = FilterEngine(
            cache=AtomCache(max_bytes=256),
            cache_store=str(tmp_path / "store"),
        )
        dataset = load_dataset("smartcity", 120, seed=3)
        engine.match_bits(simple_filter(), dataset)
        stats = engine.stats()["cache"]
        assert stats["store"] is not None
        assert stats["demoted"] > 0

    def test_cache_store_implies_a_cache(self, tmp_path):
        """cache_store without cache=True still gets a tiered cache —
        a disk tier under no cache would be dead configuration."""
        engine = FilterEngine(cache_store=str(tmp_path / "store"))
        assert engine.atom_cache is not None
        assert engine.atom_cache.store is not None

    def test_restart_serves_warm_from_disk(self, tmp_path):
        """The headline property: a new process (fresh cache, same
        store directory) serves the previous run's masks via promotion
        instead of re-evaluating."""
        dataset = load_dataset("smartcity", 140, seed=5)
        directory = str(tmp_path / "store")
        first = FilterEngine(
            cache=AtomCache(max_bytes=1), cache_store=directory
        )
        reference = first.match_bits(simple_filter(), dataset)
        assert first.atom_cache.demoted > 0
        first.atom_cache.store.close()

        second = FilterEngine(
            cache=AtomCache(max_bytes=None), cache_store=directory
        )
        bits = second.match_bits(simple_filter(), dataset)
        assert bits.tolist() == reference.tolist()
        cache = second.atom_cache
        assert cache.tier_hits > 0
        assert cache.promoted > 0
        # served from disk: the expensive sweeps were not recomputed
        assert cache.misses < cache.tier_hits + cache.promoted

    def test_gateway_restart_serves_warm(self, tmp_path):
        """Gateway wiring: EnginePool attaches the store to its shared
        cache; a second pool over the same directory starts warm."""
        from repro.serve.server import EnginePool

        dataset = load_dataset("smartcity", 120, seed=7)
        directory = str(tmp_path / "store")
        pool = EnginePool(size=1, cache_store=directory)
        engine = pool.engines[0]
        engine.match_bits(simple_filter(), dataset)
        assert pool.cache.store is not None
        # force everything to disk, as a long-running gateway would
        # under byte pressure
        for (fp, key), array in list(pool.cache._entries.items()):
            pool.cache.store.put(fp, key, array)
        pool.cache.store.close()
        pool.close()

        warm_pool = EnginePool(size=1, cache_store=directory)
        warm_engine = warm_pool.engines[0]
        warm_engine.match_bits(simple_filter(), dataset)
        assert warm_pool.cache.tier_hits > 0
        warm_pool.cache.store.close()
        warm_pool.close()


class TestAtomCacheSpillErrors:
    """Satellite: AtomCache.from_file raises typed errors on damaged
    spills instead of leaking pickle internals."""

    def test_truncated_spill(self, tmp_path):
        cache = AtomCache()
        cache.put((1, b"fp"), "k", mask(1, 0, 1))
        path = tmp_path / "atoms.pkl"
        cache.save(path)
        path.write_bytes(path.read_bytes()[:-5])
        with pytest.raises(CachePersistenceError, match="truncated"):
            AtomCache.from_file(path)

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "atoms.pkl"
        path.write_bytes(b"\x00\x01not a pickle at all")
        with pytest.raises(CachePersistenceError):
            AtomCache.from_file(path)

    def test_wrong_document_shape(self, tmp_path):
        path = tmp_path / "atoms.pkl"
        path.write_bytes(pickle.dumps({"format": 1, "entries": 13}))
        with pytest.raises(CachePersistenceError):
            AtomCache.from_file(path)

    def test_missing_file_stays_oserror(self, tmp_path):
        """A missing path is an environment problem, not a corrupt
        artifact — it must keep raising FileNotFoundError."""
        with pytest.raises(FileNotFoundError):
            AtomCache.from_file(tmp_path / "never-written.pkl")

    def test_typed_error_is_a_repro_error(self, tmp_path):
        path = tmp_path / "atoms.pkl"
        path.write_bytes(b"junk")
        with pytest.raises(ReproError):
            AtomCache.from_file(path)
