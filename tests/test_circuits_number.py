"""Gate-level number filters vs behavioural models (paper §III-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.composition as comp
from repro.core.number_filter import NumberRangeFilter
from repro.errors import SynthesisError
from repro.hw.gatesim import CycleSimulator
from repro.hw.circuits import number_filter_circuit
from repro.hw.circuits.dfa_circuit import choose_encoding, dfa_state_machine
from repro.hw.rtl import Circuit
from repro.regex.dfa import DFA
from repro.regex.parser import parse_regex


def gate_trace(circuit, stream):
    sim = CycleSimulator(circuit)
    return sim.run_stream(stream, extra_inputs={"record_reset": 0})


def behavioural_trace(predicate, stream):
    arr = np.frombuffer(stream, dtype=np.uint8)
    return predicate.fire_array(arr).tolist()


class TestNumberFilterCircuit:
    @pytest.mark.parametrize(
        "lo,hi,kind",
        [
            (12, 49, "int"),
            ("0.7", "35.1", "float"),
            ("-12.5", "43.1", "float"),
            (1345, 26282, "int"),
        ],
    )
    def test_gate_equals_behavioural(self, lo, hi, kind):
        predicate = comp.NumberPredicate(lo, hi, kind=kind)
        circuit = number_filter_circuit(predicate.dfa, name="probe")
        stream = (
            b'{"a":13,"b":"35.2","c":-12.5,"d":2e3,"e":"0.7","f":1345}\n'
        )
        assert gate_trace(circuit, stream)["fire"] == behavioural_trace(
            predicate, stream
        )

    def test_fire_at_delimiter_cycle(self):
        predicate = comp.NumberPredicate(12, 49, kind="int")
        circuit = number_filter_circuit(predicate.dfa)
        trace = gate_trace(circuit, b"13}")["fire"]
        # the '}' is the delimiter that evaluates the token
        assert trace == [False, False, True]

    def test_number_at_record_end_needs_terminator(self):
        predicate = comp.NumberPredicate(12, 49, kind="int")
        circuit = number_filter_circuit(predicate.dfa)
        unterminated = gate_trace(circuit, b"13")["fire"]
        assert not any(unterminated)
        terminated = gate_trace(circuit, b"13\n")["fire"]
        assert any(terminated)

    def test_quoted_numbers_found(self):
        """SenML stores numbers as strings; raw filters see digit runs."""
        predicate = comp.NumberPredicate("0.7", "35.1")
        circuit = number_filter_circuit(predicate.dfa)
        assert any(gate_trace(circuit, b'"v":"30.2",')["fire"])

    def test_exponent_escape_in_gate_level(self):
        predicate = comp.NumberPredicate(12, 49, kind="int")
        circuit = number_filter_circuit(predicate.dfa)
        assert any(gate_trace(circuit, b"x 7e9 x")["fire"])

    def test_match_sticky_until_reset(self):
        predicate = comp.NumberPredicate(12, 49, kind="int")
        circuit = number_filter_circuit(predicate.dfa)
        sim = CycleSimulator(circuit)
        trace = sim.run_stream(b"13, then text",
                               extra_inputs={"record_reset": 0})
        assert trace["match"][-1]
        sim.step({"byte": 0, "record_reset": 1})
        out = sim.step({"byte": ord("x"), "record_reset": 0})
        assert not out["match"]

    def test_rejects_epsilon_accepting_dfa(self):
        dfa = DFA.from_regex(parse_regex("a*"))
        with pytest.raises(SynthesisError):
            number_filter_circuit(dfa)

    def test_splits_tokens_on_any_nonnumeric(self):
        predicate = comp.NumberPredicate(12, 49, kind="int")
        circuit = number_filter_circuit(predicate.dfa)
        # "1x3" is two tokens "1" and "3", neither in range
        assert not any(gate_trace(circuit, b"1x3 ")["fire"])


class TestEncodings:
    @pytest.mark.parametrize("encoding", ["binary", "onehot"])
    def test_both_encodings_functionally_equal(self, encoding):
        dfa = DFA.from_pattern("(ab)+|cd*")
        circuit = Circuit("probe")
        byte = circuit.add_input_vector("byte", 8)
        reset = circuit.add_input("record_reset")
        _, accepting, _ = dfa_state_machine(
            circuit, dfa, byte, reset=reset, encoding=encoding
        )
        circuit.add_output("acc", accepting)
        sim = CycleSimulator(circuit)
        stream = b"ababcdddab"
        trace = sim.run_stream(stream, extra_inputs={"record_reset": 0})
        # Moore output: accepting AFTER byte i arrives on cycle i+1
        state = dfa.start
        expected = []
        for byte_value in stream:
            expected.append(bool(dfa.accepting[state]))
            state = dfa.step(state, byte_value)
        assert trace["acc"] == expected

    def test_choose_encoding_cached_and_valid(self):
        dfa = DFA.from_pattern("[0-9]{3}")
        first = choose_encoding(dfa.hardware_reordered())
        second = choose_encoding(dfa.hardware_reordered())
        assert first == second
        assert first in ("binary", "onehot")

    def test_auto_picks_cheaper(self):
        dfa = NumberRangeFilter("83.36", "3322.67").dfa
        counts = {}
        for encoding in ("binary", "onehot"):
            circuit = Circuit("probe")
            byte = circuit.add_input_vector("byte", 8)
            reset = circuit.add_input("r")
            _, acc, acc_after = dfa_state_machine(
                circuit, dfa, byte, reset=reset, encoding=encoding
            )
            circuit.add_output("a", acc)
            circuit.add_output("b", acc_after)
            counts[encoding] = circuit.lut_count()
        chosen = choose_encoding(dfa.hardware_reordered())
        assert counts[chosen] == min(counts.values())


class TestResourceTrends:
    def test_wider_ranges_cost_more_states(self):
        narrow = NumberRangeFilter(12, 49, kind="int")
        wide = NumberRangeFilter("83.36", "3322.67")
        assert narrow.dfa.num_states < wide.dfa.num_states
        narrow_luts = number_filter_circuit(narrow.dfa).lut_count()
        wide_luts = number_filter_circuit(wide.dfa).lut_count()
        assert narrow_luts < wide_luts

    def test_single_range_beats_two_separate(self):
        """§III-B: one automaton for [l,u] beats two one-sided ones."""
        combined = number_filter_circuit(
            NumberRangeFilter(12, 49, kind="int").dfa, name="c"
        ).lut_count()
        lower = number_filter_circuit(
            NumberRangeFilter(12, None, kind="int").dfa, name="l"
        ).lut_count()
        upper = number_filter_circuit(
            NumberRangeFilter(None, 49, kind="int").dfa, name="u"
        ).lut_count()
        assert combined < lower + upper


@settings(max_examples=20, deadline=None)
@given(stream=st.text(alphabet='0123456789.,-e {}":x', max_size=30))
def test_gate_equals_behavioural_random(stream):
    predicate = comp.NumberPredicate(12, 49, kind="int")
    circuit = number_filter_circuit(predicate.dfa)
    data = stream.encode("ascii")
    assert gate_trace(circuit, data)["fire"] == behavioural_trace(
        predicate, data
    )
