"""RiotBench query definitions (paper Table VIII) and the exact oracle.

Each query is a conjunction of attribute range conditions.  The oracle
semantics (what the CPU parser would compute, and hence the ground truth
for FPR):

* **SenML accessor** (SmartCity): a condition on attribute ``a`` holds if
  the pack contains a measurement with ``n == a`` whose numeric ``v`` is
  within range; a missing sensor fails the condition.
* **flat accessor** (Taxi): a condition holds if the top-level field
  exists and its numeric value is within range; sparse records (e.g. no
  ``tolls_amount``) fail the condition.
"""

from __future__ import annotations

from ..errors import QueryError
from ..jsonpath.path import coerce_number
from ..jsonpath.senml import measurement_value


class RangeCondition:
    """``lo <= attribute <= hi`` over parsed records."""

    __slots__ = ("attribute", "lo", "hi", "kind")

    def __init__(self, attribute, lo, hi):
        self.attribute = attribute
        self.lo = lo
        self.hi = hi
        # the paper writes v(l <= i <= u) when both bounds are integral
        both_int = (
            isinstance(lo, int) and isinstance(hi, int)
        )
        self.kind = "int" if both_int else "float"

    @property
    def lo_text(self):
        return _bound_text(self.lo)

    @property
    def hi_text(self):
        return _bound_text(self.hi)

    def holds(self, value):
        if value is None:
            return False
        return float(self.lo) <= float(value) <= float(self.hi)

    def __repr__(self):
        return (
            f"RangeCondition({self.lo} <= {self.attribute!r} <= {self.hi})"
        )


def _bound_text(bound):
    if isinstance(bound, int):
        return str(bound)
    return str(bound)


class Query:
    """A RiotBench filter query: a conjunction of range conditions."""

    def __init__(self, name, dataset_name, accessor, conditions,
                 paper_selectivity):
        if accessor not in ("senml", "flat"):
            raise QueryError(f"unknown accessor {accessor!r}")
        self.name = name
        self.dataset_name = dataset_name
        self.accessor = accessor
        self.conditions = tuple(conditions)
        self.paper_selectivity = paper_selectivity

    def attribute_value(self, parsed, attribute):
        if self.accessor == "senml":
            return measurement_value(parsed, attribute)
        if isinstance(parsed, dict):
            return coerce_number(parsed.get(attribute))
        return None

    def matches(self, parsed):
        """Exact oracle: does a parsed record satisfy the query?"""
        return all(
            condition.holds(
                self.attribute_value(parsed, condition.attribute)
            )
            for condition in self.conditions
        )

    def truth_array(self, dataset):
        """Oracle booleans for every record of a dataset."""
        import numpy as np

        return np.fromiter(
            (self.matches(parsed) for parsed in dataset.parsed),
            dtype=bool,
            count=len(dataset),
        )

    def expression_text(self):
        parts = [
            f"({c.lo} <= \"{c.attribute}\" <= {c.hi})"
            for c in self.conditions
        ]
        return " AND ".join(parts)

    def __repr__(self):
        return f"Query({self.name}, {len(self.conditions)} conditions)"


# -- Table VIII ---------------------------------------------------------------

QS0 = Query(
    "QS0",
    "smartcity",
    "senml",
    [
        RangeCondition("temperature", "0.7", "35.1"),
        RangeCondition("humidity", "20.3", "69.1"),
        RangeCondition("light", 0, 5153),
        RangeCondition("dust", "83.36", "3322.67"),
        RangeCondition("airquality_raw", 12, 49),
    ],
    paper_selectivity=0.639,
)

QS1 = Query(
    "QS1",
    "smartcity",
    "senml",
    [
        RangeCondition("temperature", "-12.5", "43.1"),
        RangeCondition("humidity", "10.7", "95.2"),
        RangeCondition("light", 1345, 26282),
        RangeCondition("dust", "186.61", "5188.21"),
        RangeCondition("airquality_raw", 17, 363),
    ],
    paper_selectivity=0.054,
)

QT = Query(
    "QT",
    "taxi",
    "flat",
    [
        RangeCondition("trip_time_in_secs", 140, 3155),
        RangeCondition("tip_amount", "0.65", "38.55"),
        RangeCondition("fare_amount", "6.00", "201.00"),
        RangeCondition("tolls_amount", "2.50", "18.00"),
        RangeCondition("trip_distance", "1.37", "29.86"),
    ],
    paper_selectivity=0.057,
)

ALL_QUERIES = {"QS0": QS0, "QS1": QS1, "QT": QT}

#: needles evaluated in the paper's string-matcher tables
TABLE1_STRINGS = (
    "light", "temperature", "dust", "humidity", "airquality_raw"
)
TABLE2_STRINGS = (
    "tolls_amount", "trip_distance", "fare_amount",
    "trip_time_in_secs", "tip_amount",
)
TABLE3_STRINGS = (
    "created_at", "user", "location", "lang", "favourites_count"
)


def load_dataset(name, num_records=4000, seed=None):
    """Instantiate one of the benchmark datasets by name."""
    from .smartcity import generate_smartcity
    from .taxi import generate_taxi
    from .twitter import generate_twitter

    if name == "smartcity":
        return generate_smartcity(
            num_records, seed=7 if seed is None else seed
        )
    if name == "taxi":
        return generate_taxi(num_records, seed=11 if seed is None else seed)
    if name == "twitter":
        return generate_twitter(num_records, seed=13 if seed is None else seed)
    raise QueryError(f"unknown dataset {name!r}")
