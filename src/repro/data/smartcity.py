"""Synthetic RiotBench-style SmartCity dataset (SenML records).

The real RiotBench SmartCity stream (urban sensing CSV rows converted to
SenML JSON) is not redistributable, so this generator reproduces its
*generative properties* — the ones the paper's numbers depend on:

* SenML packs ``{"e":[{"v":..,"u":..,"n":..}, ...], "bt": ...}`` with the
  five sensors temperature / humidity / light / dust / airquality_raw
  (Listing 1);
* numeric values serialised as JSON *strings* (``"v":"35.2"``), so the
  raw number filters must find them inside quoted text;
* value distributions calibrated such that the Table VIII selectivities
  come out close to the paper (QS0 ≈ 64 %, QS1 ≈ 5 %), including the
  structure the paper discusses: light values mostly > 1000 while other
  attributes are mostly < 1000, humidity overlapping the airquality
  range (the false-positive source of the running example), and dust
  concentrated between the QS0 lower and QS1 lower bounds;
* occasional partial packs (sensor outages) so that string-table FPR
  denominators are non-empty.
"""

from __future__ import annotations

import numpy as np

from .corpus import Dataset

SENSORS = ("temperature", "humidity", "light", "dust", "airquality_raw")

_UNITS = {
    "temperature": "far",
    "humidity": "per",
    "light": "per",
    "dust": "per",
    "airquality_raw": "per",
}

#: fraction of packs with at least one sensor missing
PARTIAL_FRACTION = 0.12

_BASE_TIME = 1422748800000
_INTERVAL_MS = 300000


def _format_value(name, value):
    if name in ("light", "airquality_raw"):
        return str(int(round(value)))
    if name == "dust":
        return f"{value:.2f}"
    return f"{value:.1f}"


def _draw_values(rng):
    """One full sensor sample, calibrated to the query selectivities.

    The calibration reproduces the paper's observations: QS0/QS1 land at
    their Table VIII selectivities; light is mostly > 1000 but usually
    *below* QS1's 1345 floor (which is why ``v(1345 <= i <= 26282)``
    alone already reaches a low FPR in Table VI); dust straddles QS1's
    186.61 bound; humidity overlaps the airquality integer range (the
    running example's false-positive source).
    """
    return {
        # mostly inside QS0's [0.7, 35.1] and QS1's [-12.5, 43.1]
        "temperature": rng.normal(22.0, 11.0),
        # mostly inside QS0's [20.3, 69.1]; overlaps airquality's range
        "humidity": rng.normal(45.0, 15.0),
        # mostly > 1000 yet usually below QS1's 1345 (and always below
        # QS0's 5153)
        "light": float(np.exp(rng.normal(np.log(1150.0), 0.134))),
        # nearly always above QS0's 83.36, ~half above QS1's 186.61
        "dust": float(np.exp(rng.normal(np.log(185.0), 0.35))),
        # mostly inside QS0's [12, 49] and above QS1's floor of 17
        "airquality_raw": rng.normal(30.0, 9.0),
    }


def generate_smartcity(num_records=4000, seed=7,
                       partial_fraction=PARTIAL_FRACTION):
    """Generate a SmartCity dataset of SenML packs.

    Returns a :class:`~repro.data.corpus.Dataset`.
    """
    rng = np.random.default_rng(seed)
    records = []
    for index in range(num_records):
        values = _draw_values(rng)
        present = list(SENSORS)
        if rng.random() < partial_fraction:
            missing_count = 1 if rng.random() < 0.8 else 2
            for _ in range(missing_count):
                victim = present[int(rng.integers(0, len(present)))]
                present.remove(victim)
        entries = []
        for name in present:
            value_text = _format_value(name, values[name])
            entries.append(
                '{"v":"%s","u":"%s","n":"%s"}'
                % (value_text, _UNITS[name], name)
            )
        timestamp = _BASE_TIME + index * _INTERVAL_MS
        record = '{"e":[%s],"bt":%d}' % (",".join(entries), timestamp)
        records.append(record.encode("ascii"))
    return Dataset("smartcity", records)
