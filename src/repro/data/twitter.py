"""Synthetic Twitter-style dataset (stand-in for Go et al.'s corpus [4]).

The paper uses a Twitter dataset only to stress the string matchers with
*diverse natural text* (Table III): short needles like ``user`` and
``lang`` are almost always spuriously matched by the B = 1 matcher inside
ordinary English words, while long snake_case needles are safe even at
B = 1.  This generator reproduces exactly that phenomenon:

* ~75 % full statuses (with ``user`` object, ``created_at``, ``lang``,
  usually ``location`` and ``favourites_count``),
* ~17 % minimal statuses (legacy/stripped API shape: id + text only) and
* ~8 % deletion notices — together the *negative* records for the needle
  strings;
* tweet text drawn from a vocabulary whose letter statistics produce
  B = 1 letter-set runs at realistic rates ("nurses", "causes" … fool
  ``s1("user")``; "angle", "signal" … fool ``s1("lang")``; "notation",
  "vocational" … fool ``s1("location")``).
"""

from __future__ import annotations

import numpy as np

from .corpus import Dataset

# Common filler words (no relevant letter-set runs).
_FILLER = (
    "the and for with this that from have just what when they will "
    "about going today really think good time people know why now "
    "work home music video game coffee morning night week year "
    "happy love life best friend world city team play watch read "
    "book movie photo food rain sun cold warm fast slow big small"
).split()

# Words containing a 4-run over {u,s,e,r} but NOT the substring "user".
_USER_TRAPS = (
    "sure nurses causes courses houses results measure pressure "
    "closures ensures leisure treasure surely insures"
).split()

# Words containing a 4-run over {l,a,n,g} but NOT "lang".
_LANG_TRAPS = "angle angel signal analog gala annals".split()

# Words containing an 8-run over {l,o,c,a,t,i,n} but NOT "location".
_LOCATION_TRAPS = "notation intonation vocational notational".split()

_SOURCES = ("web", "android", "iphone", "tweetdeck")
_LOCATIONS = (
    "New York", "Berlin", "Tokyo", "London", "Paris", "Sydney",
    "San Francisco", "Toronto",
)
_LANGS = ("en", "de", "es", "fr", "ja")
_MONTHS = ("Jan", "Feb", "Mar", "Apr", "May", "Jun")
_DAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")

FULL_FRACTION = 0.75
MINIMAL_FRACTION = 0.17  # remainder are deletion notices


def _text(rng, words=None):
    if words is None:
        words = int(rng.integers(8, 22))
    picked = []
    for _ in range(words):
        roll = rng.random()
        if roll < 0.13:
            # "sure", "measure", "results" ... are genuinely frequent in
            # informal English; this is what drives Table III's
            # s1("user") FPR of ~1.0
            pool = _USER_TRAPS
        elif roll < 0.148:
            pool = _LANG_TRAPS
        elif roll < 0.152:
            pool = _LOCATION_TRAPS
        else:
            pool = _FILLER
        picked.append(pool[int(rng.integers(0, len(pool)))])
    return " ".join(picked)


def _created_at(rng):
    day = _DAYS[int(rng.integers(0, len(_DAYS)))]
    month = _MONTHS[int(rng.integers(0, len(_MONTHS)))]
    return "%s %s %02d %02d:%02d:%02d +0000 2015" % (
        day, month, int(rng.integers(1, 29)), int(rng.integers(0, 24)),
        int(rng.integers(0, 60)), int(rng.integers(0, 60)),
    )


def _screen_name(rng):
    word = _FILLER[int(rng.integers(0, len(_FILLER)))]
    return f"{word}{int(rng.integers(1, 9999))}"


def generate_twitter(num_records=4000, seed=13,
                     full_fraction=FULL_FRACTION,
                     minimal_fraction=MINIMAL_FRACTION):
    """Generate a Twitter-style dataset; returns a Dataset."""
    rng = np.random.default_rng(seed)
    records = []
    for index in range(num_records):
        roll = rng.random()
        tweet_id = 560000000000000000 + int(rng.integers(0, 10**15))
        if roll < full_fraction:
            records.append(_full_status(rng, tweet_id))
        elif roll < full_fraction + minimal_fraction:
            records.append(_minimal_status(rng, tweet_id))
        else:
            records.append(_deletion(rng, tweet_id))
    return Dataset("twitter", records)


def _full_status(rng, tweet_id):
    user_id = int(rng.integers(10**6, 10**9))
    parts = [
        '"created_at":"%s"' % _created_at(rng),
        '"id":%d' % tweet_id,
        '"text":"%s"' % _text(rng),
        '"source":"%s"' % _SOURCES[int(rng.integers(0, len(_SOURCES)))],
    ]
    user_parts = [
        '"id":%d' % user_id,
        '"name":"%s"' % _screen_name(rng),
        '"screen_name":"%s"' % _screen_name(rng),
        '"followers_count":%d' % int(rng.integers(0, 20000)),
        '"friends_count":%d' % int(rng.integers(0, 3000)),
        '"favourites_count":%d' % int(rng.integers(0, 5000)),
        '"statuses_count":%d' % int(rng.integers(1, 80000)),
    ]
    if rng.random() < 0.8:
        location = _LOCATIONS[int(rng.integers(0, len(_LOCATIONS)))]
        user_parts.insert(3, '"location":"%s"' % location)
    parts.append('"user":{%s}' % ",".join(user_parts))
    parts.append('"lang":"%s"' % _LANGS[int(rng.integers(0, len(_LANGS)))])
    parts.append('"retweet_count":%d' % int(rng.integers(0, 500)))
    parts.append('"favorited":false')
    return ("{" + ",".join(parts) + "}").encode("ascii")


def _minimal_status(rng, tweet_id):
    parts = [
        '"id":%d' % tweet_id,
        '"text":"%s"' % _text(rng),
        '"source":"%s"' % _SOURCES[int(rng.integers(0, len(_SOURCES)))],
        '"retweet_count":%d' % int(rng.integers(0, 50)),
    ]
    return ("{" + ",".join(parts) + "}").encode("ascii")


def _deletion(rng, tweet_id):
    # "closures" carries a {u,s,e,r} letter run without containing "user":
    # deletion notices are negatives that the B=1 matcher still accepts,
    # reproducing Table III's FPR of 1.000 for s1("user")
    parts = [
        '"delete":{"status":{"id":%d,"uid":%d},"reason":"closures",'
        '"timestamp_ms":"%d"}'
        % (
            tweet_id,
            int(rng.integers(10**6, 10**9)),
            1420000000000 + int(rng.integers(0, 10**10)),
        )
    ]
    return ("{" + ",".join(parts) + "}").encode("ascii")
