"""Dataset substrate: synthetic RiotBench-style workloads + containers.

See DESIGN.md §4 for the substitution rationale: the real RiotBench CSVs
and the Twitter corpus are not redistributable, so these generators
reproduce the schema and distributional properties the paper's results
depend on.
"""

from .corpus import Dataset, inflate, write_ndjson_corpus
from .riotbench import (
    ALL_QUERIES,
    QS0,
    QS1,
    QT,
    Query,
    RangeCondition,
    TABLE1_STRINGS,
    TABLE2_STRINGS,
    TABLE3_STRINGS,
    load_dataset,
)
from .smartcity import generate_smartcity
from .taxi import generate_taxi
from .twitter import generate_twitter

__all__ = [
    "Dataset",
    "inflate",
    "write_ndjson_corpus",
    "ALL_QUERIES",
    "QS0",
    "QS1",
    "QT",
    "Query",
    "RangeCondition",
    "TABLE1_STRINGS",
    "TABLE2_STRINGS",
    "TABLE3_STRINGS",
    "load_dataset",
    "generate_smartcity",
    "generate_taxi",
    "generate_twitter",
]
