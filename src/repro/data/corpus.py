"""Dataset containers and corpus utilities.

A :class:`Dataset` is an ordered collection of newline-delimited JSON
records, held both as raw bytes (what the FPGA sees) and parsed values
(what the oracle sees).  :func:`inflate` grows a dataset to a byte budget
for the throughput experiment (§IV-B preloads "44 MB of inflated JSON
data" into RAM).  :func:`write_ndjson_corpus` is the on-disk
counterpart for the larger-than-memory experiments: it streams a
RiotBench-style synthetic corpus to a file in bounded memory, so the
corpus size is limited by disk, not RAM.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..jsonpath.parser import loads


class Dataset:
    """Raw + parsed views of a record stream."""

    def __init__(self, name, records, parsed=None):
        self.name = name
        self.records = [bytes(record) for record in records]
        for record in self.records:
            if b"\n" in record:
                raise ReproError("records must not contain newlines")
        self._parsed = list(parsed) if parsed is not None else None
        self._stream = None
        self._starts = None

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    @property
    def parsed(self):
        """Parsed record values (via the strict JSON parser), cached."""
        if self._parsed is None:
            self._parsed = [loads(record) for record in self.records]
        return self._parsed

    @property
    def stream(self):
        """The concatenated newline-terminated byte stream (uint8 array)."""
        if self._stream is None:
            joined = b"".join(record + b"\n" for record in self.records)
            self._stream = np.frombuffer(joined, dtype=np.uint8)
        return self._stream

    @property
    def starts(self):
        """Start offset of each record inside :attr:`stream`."""
        if self._starts is None:
            lengths = np.fromiter(
                (len(record) + 1 for record in self.records),
                dtype=np.int64,
                count=len(self.records),
            )
            starts = np.zeros(len(self.records), dtype=np.int64)
            np.cumsum(lengths[:-1], out=starts[1:])
            self._starts = starts
        return self._starts

    @property
    def total_bytes(self):
        return int(self.stream.shape[0])

    @classmethod
    def from_ndjson(cls, path, name=None, validate=True):
        """Load a dataset from a newline-delimited JSON file.

        With ``validate`` (default) every record is parsed eagerly by the
        strict parser, so malformed lines fail loudly at load time rather
        than during evaluation.
        """
        records = []
        with open(path, "rb") as handle:
            for line in handle:
                record = line.rstrip(b"\r\n")
                if record.strip():
                    records.append(record)
        dataset = cls(name or str(path), records)
        if validate:
            dataset.parsed  # noqa: B018 - force eager strict parsing
        return dataset

    def subset(self, indices):
        parsed = None
        if self._parsed is not None:
            parsed = [self._parsed[i] for i in indices]
        return Dataset(
            self.name, [self.records[i] for i in indices], parsed
        )

    def __repr__(self):
        return (
            f"Dataset({self.name!r}, records={len(self)}, "
            f"bytes={self.total_bytes})"
        )


def inflate(dataset, target_bytes):
    """Repeat a dataset's records until the stream reaches a byte budget.

    Mirrors the paper's throughput experiment setup (44 MB of inflated
    RiotBench JSON preloaded to RAM).
    """
    if target_bytes <= 0:
        raise ReproError("target size must be positive")
    records = []
    parsed = []
    total = 0
    source_parsed = dataset.parsed
    index = 0
    count = len(dataset.records)
    if count == 0:
        raise ReproError("cannot inflate an empty dataset")
    while total < target_bytes:
        record = dataset.records[index % count]
        records.append(record)
        parsed.append(source_parsed[index % count])
        total += len(record) + 1
        index += 1
    return Dataset(f"{dataset.name}-inflated", records, parsed)


def write_ndjson_corpus(path, dataset="smartcity", target_bytes=0,
                        seed=0, batch_records=2000):
    """Stream a synthetic RiotBench-style corpus to disk in bounded memory.

    Unlike :func:`inflate` (which materialises the whole corpus in RAM,
    matching the paper's preloaded-44-MB setup), this writes batches of
    ``batch_records`` freshly generated records at a time until the file
    reaches ``target_bytes`` — peak memory is one batch, so multi-GB
    corpora for the larger-than-memory experiments cost disk, not RAM.
    Each batch uses a distinct generator seed (derived from ``seed``),
    so batch contents — and therefore their dataset fingerprints — are
    unique rather than one batch repeated.

    Returns a summary dict: ``path``, ``bytes``, ``records``,
    ``batches``.
    """
    # local import: the generators build Dataset instances from this
    # module, so a top-level import would be circular
    from .riotbench import load_dataset

    if target_bytes <= 0:
        raise ReproError("target size must be positive")
    if batch_records <= 0:
        raise ReproError("batch_records must be positive")
    total = 0
    records_written = 0
    batches = 0
    with open(path, "wb") as handle:
        while total < target_bytes:
            batch = load_dataset(
                dataset, batch_records, seed=seed + batches
            )
            payload = b"".join(
                record + b"\n" for record in batch.records
            )
            handle.write(payload)
            total += len(payload)
            records_written += len(batch.records)
            batches += 1
    return {
        "path": str(path),
        "bytes": total,
        "records": records_written,
        "batches": batches,
    }
