"""Synthetic NYC-taxi-style dataset (RiotBench TAXI stream stand-in).

Each record is one taxi trip, flat JSON with the 2013 FOIL-trip schema.
Generative properties the paper's Table II / Table VII depend on:

* every record carries ``total_amount`` — whose letters are a subset of
  ``tolls_amount``'s, which is why the paper measures FPR 1.000 for
  ``s1("tolls_amount")``;
* sparse monetary fields: ``tolls_amount`` appears only when tolls were
  actually paid (~12 % of trips) and ``tip_amount`` only for card tips
  (~60 %), so the string tables have negatives and QT's selectivity is
  dominated by the tolls predicate;
* hex trip identifiers contain letter ``e`` between digits, exercising
  the number filters' exponent escape hatch (a deliberate FP source);
* fare/time/distance are correlated (fare ≈ base + rate × distance), the
  paper's explanation for why filtering one of the correlated attributes
  suffices.
"""

from __future__ import annotations

import numpy as np

from .corpus import Dataset

_HEX = "0123456789abcdef"

#: fraction of trips that paid a toll (tolls_amount present)
TOLL_FRACTION = 0.12
#: fraction of trips with a card tip (tip_amount present)
TIP_FRACTION = 0.60


def _hex_string(rng, length):
    return "".join(_HEX[i] for i in rng.integers(0, 16, size=length))


def _datetime(rng, day_offset):
    hour = int(rng.integers(0, 24))
    minute = int(rng.integers(0, 60))
    second = int(rng.integers(0, 60))
    day = 1 + (day_offset % 28)
    return f"2013-01-{day:02d} {hour:02d}:{minute:02d}:{second:02d}"


def generate_taxi(num_records=4000, seed=11, toll_fraction=TOLL_FRACTION,
                  tip_fraction=TIP_FRACTION):
    """Generate a taxi-trip dataset; returns a Dataset."""
    rng = np.random.default_rng(seed)
    records = []
    for index in range(num_records):
        has_toll = rng.random() < toll_fraction
        if has_toll:
            # toll trips are bridge/tunnel crossings: long highway hauls,
            # which is why the tolls predicate alone nearly implies the
            # distance/time/fare predicates (the correlation the paper
            # exploits to reach FPR 0.000 with two attribute groups)
            distance = float(
                np.clip(np.exp(rng.normal(np.log(7.0), 0.5)), 2.0, 28.0)
            )
            speed_mph = max(15.0, rng.normal(28.0, 5.0))
        else:
            distance = float(np.exp(rng.normal(np.log(2.4), 0.75)))
            speed_mph = max(4.0, rng.normal(12.0, 3.5))
        trip_time = int(max(30.0, distance / speed_mph * 3600.0
                            + rng.normal(0.0, 60.0)))
        fare = max(2.5, 3.0 + 2.5 * distance + rng.normal(0.0, 1.5))
        surcharge = 0.5 if rng.random() < 0.35 else 0.0
        mta_tax = 0.5
        toll = 0.0
        if has_toll:
            toll = float(np.clip(rng.normal(5.33, 1.8), 2.5, 18.0))
        has_tip = rng.random() < tip_fraction
        tip = 0.0
        if has_tip:
            tip = max(0.5, fare * rng.normal(0.18, 0.05))
        total = fare + surcharge + mta_tax + toll + tip

        pickup = _datetime(rng, index)
        parts = [
            '"medallion":"%s"' % _hex_string(rng, 32),
            '"hack_license":"%s"' % _hex_string(rng, 32),
            '"pickup_datetime":"%s"' % pickup,
            '"payment_type":"%s"' % ("CRD" if has_tip else "CSH"),
            '"trip_time_in_secs":%d' % trip_time,
            '"trip_distance":%.2f' % distance,
            '"pickup_longitude":%.6f' % rng.normal(-73.97, 0.04),
            '"pickup_latitude":%.6f' % rng.normal(40.75, 0.03),
            '"fare_amount":%.2f' % fare,
            '"surcharge":%.2f' % surcharge,
            '"mta_tax":%.2f' % mta_tax,
        ]
        if has_tip:
            parts.append('"tip_amount":%.2f' % tip)
        if has_toll:
            parts.append('"tolls_amount":%.2f' % toll)
        parts.append('"total_amount":%.2f' % total)
        records.append(("{" + ",".join(parts) + "}").encode("ascii"))
    return Dataset("taxi", records)
