"""Pluggable evaluation backends for the :class:`FilterEngine`.

A backend turns (*predicate*, *records*) into per-record match bits.
Two first-party backends cover the repo's two evaluation strategies:

* :class:`VectorizedBackend` — the dataset-scale harness
  (:class:`repro.eval.harness.DatasetView` + ``evaluate_expression``),
  which batches all heavy lifting into numpy sweeps over the
  concatenated record stream;
* :class:`ScalarBackend` — the per-record behavioural evaluator
  (:func:`repro.core.composition.evaluate_record`), the reference
  oracle the vectorised path is audited against.

Backends accept more than raw-filter expression trees.  Any *predicate*
object is usable if it speaks one of three protocols, probed in order:

1. ``as_raw_filter()`` — convert to a :class:`repro.core.RawFilter`
   expression (used by the Sparser baseline probes, so CPU-baseline
   accuracy comparisons run through the same audited vectorised path);
2. ``match_array(dataset)`` — a dataset-level evaluator of its own
   (the exact parse-everything oracle);
3. ``matches(record)`` / raw-filter ``matches_record`` — a per-record
   accept, evaluated in a scalar loop.
"""

from __future__ import annotations

import numpy as np

from ..core import composition as comp
from ..data.corpus import Dataset
from ..errors import ReproError
from ..eval.harness import DatasetView, evaluate_expression


def as_dataset(records):
    """Wrap a record sequence in a :class:`Dataset` (pass-through if one)."""
    if isinstance(records, Dataset):
        return records
    return Dataset("engine-batch", records)


def resolve_expression(predicate):
    """Return a RawFilter expression for the predicate, or ``None``."""
    if isinstance(predicate, comp.RawFilter):
        return predicate
    converter = getattr(predicate, "as_raw_filter", None)
    if callable(converter):
        try:
            return converter()
        except NotImplementedError:
            return None
    return None


def record_matcher(predicate):
    """A per-record ``bytes -> bool`` callable for any known predicate."""
    if isinstance(predicate, comp.RawFilter):
        return lambda record: comp.evaluate_record(predicate, record)
    matches = getattr(predicate, "matches", None)
    if callable(matches):
        return lambda record: bool(matches(record))
    expr = resolve_expression(predicate)
    if expr is not None:
        return lambda record: comp.evaluate_record(expr, record)
    raise ReproError(
        f"cannot evaluate {predicate!r}: expected a RawFilter expression "
        "or an object with matches()/as_raw_filter()"
    )


class Backend:
    """Base class: evaluate a predicate over a batch of records."""

    name = "?"

    def match_bits(self, predicate, records):
        """Per-record boolean accept array (numpy, len == #records)."""
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}()"


class ScalarBackend(Backend):
    """Reference oracle: one behavioural evaluation per record."""

    name = "scalar"

    def match_bits(self, predicate, records):
        matcher = record_matcher(predicate)
        records = list(records) if not hasattr(records, "__len__") else (
            records
        )
        return np.fromiter(
            (matcher(record) for record in records),
            dtype=bool,
            count=len(records),
        )


class VectorizedBackend(Backend):
    """Dataset-scale numpy evaluation via the harness.

    With an :class:`~repro.engine.atom_cache.AtomCache` attached
    (``atom_cache``, normally wired up by the owning ``FilterEngine``),
    per-atom masks and the per-corpus ``DatasetView`` are memoised by
    dataset content, so repeated evaluation over the same records —
    different queries sharing atoms, re-streamed chunks, reconfigured
    filters — skips the vectorised sweeps entirely.  Without a cache,
    the most recent batch's ``DatasetView`` is still memoised by batch
    identity, so repeated queries over the same in-memory records do
    not pay the token-matrix/structural rebuilds.
    """

    name = "vectorized"
    #: streaming resolves the predicate to its expression once per
    #: stream for this backend (see FilterEngine._stream_target)
    wants_expression = True

    def __init__(self, scalar_fallback=True, atom_cache=None,
                 selectivity=None):
        self.scalar_fallback = scalar_fallback
        self.atom_cache = atom_cache
        #: optional SelectivityTracker fed with per-atom pass rates
        #: (attached by the owning engine; shared with the compiled
        #: backend's ordering decision)
        self.selectivity = selectivity
        self._scalar = ScalarBackend()
        self._view_memo = None

    def match_bits(self, predicate, records):
        expr = resolve_expression(predicate)
        if expr is not None:
            dataset = as_dataset(records)
            if self.atom_cache is not None:
                view = self.atom_cache.view_for(dataset)
                cache = self.atom_cache.evaluation_cache(dataset)
            else:
                view = self._memoised_view(records, dataset)
                cache = {}
            bits = evaluate_expression(view, expr, cache)
            self._observe(expr, cache)
            return np.array(bits, dtype=bool)
        match_array = getattr(predicate, "match_array", None)
        if callable(match_array):
            return np.asarray(match_array(as_dataset(records)), dtype=bool)
        if self.scalar_fallback:
            return self._scalar.match_bits(predicate, records)
        raise ReproError(
            f"no vectorised evaluation for {predicate!r}"
        )

    def _memoised_view(self, records, dataset):
        """One-slot DatasetView memo keyed by batch object identity.

        Identity (not content) keeps the cache-disabled path free of
        hashing; re-evaluating the same records list/Dataset — the
        repeated-query and per-chunk streaming patterns — reuses the
        token matrix and structural masks instead of rebuilding them.
        """
        memo = self._view_memo
        if memo is not None and memo[0] is records:
            return memo[1]
        view = DatasetView(dataset)
        self._view_memo = (records, view)
        return view

    def _observe(self, expr, cache):
        """Harvest observed per-atom pass rates from the evaluation."""
        tracker = self.selectivity
        if tracker is None:
            return
        local = getattr(cache, "_local", cache)
        for atom in expr.atoms():
            bits = local.get(atom.cache_key())
            if bits is not None:
                tracker.observe(
                    atom, int(bits.shape[0]),
                    int(np.count_nonzero(bits)),
                )


def _compiled_factory():
    # imported lazily: compiled.py builds on this module
    from .compiled import CompiledBackend

    return CompiledBackend()


BACKENDS = {
    "vectorized": VectorizedBackend,
    "scalar": ScalarBackend,
    "compiled": _compiled_factory,
    "auto": VectorizedBackend,
}


def resolve_backend(backend):
    """Accept a backend name or instance; return a Backend instance."""
    if isinstance(backend, Backend):
        return backend
    try:
        factory = BACKENDS[backend]
    except (KeyError, TypeError):
        known = ", ".join(sorted(BACKENDS))
        raise ReproError(
            f"unknown backend {backend!r} (known: {known})"
        ) from None
    return factory()
