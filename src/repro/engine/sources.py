"""Pluggable chunk ingest for the :class:`FilterEngine` (ChunkSource).

The paper's SoC ingests a raw byte stream from I/O at line rate; the
software engine models that boundary explicitly: a :class:`ChunkSource`
produces bytes-like chunks from *somewhere* (a file, an in-memory
iterable, a connected socket, an async producer) and keeps per-source
accounting (chunks/bytes delivered), while the engine is only concerned
with framing and evaluation.  Every ingest path in the repo — the CLI
``filter``/``bench`` commands, ``FilterEngine.stream``/``stream_file``
and the SoC simulations' dataset ingest — goes through this layer.

Sources are iterables of bytes chunks and context managers; iterating
updates :attr:`bytes_read`/:attr:`chunks_read` so ``stats()`` reflects
exactly what was delivered.  :func:`as_chunk_source` normalises the
engine's accepted inputs (source instances, raw byte strings,
filesystem paths, file-like handles, sockets, async iterables, plain
iterables) into a source.
"""

from __future__ import annotations

import socket as socket_module

from ..data.corpus import Dataset
from ..errors import ReproError
from .framing import RecordFramer

DEFAULT_SOURCE_CHUNK_BYTES = 1 << 20


def _require_chunk(chunk):
    if not isinstance(chunk, (bytes, bytearray, memoryview)):
        raise ReproError(
            f"chunk sources must yield bytes-like chunks, "
            f"got {type(chunk)!r}"
        )
    return chunk


class ChunkSource:
    """Base class: an accounted, closable producer of byte chunks."""

    name = "?"

    def __init__(self):
        #: bytes delivered to the consumer so far
        self.bytes_read = 0
        #: chunks delivered to the consumer so far (empty chunks count)
        self.chunks_read = 0

    def chunks(self):
        """Yield raw chunks (subclass hook, unaccounted)."""
        raise NotImplementedError

    def __iter__(self):
        for chunk in self.chunks():
            chunk = _require_chunk(chunk)
            self.chunks_read += 1
            self.bytes_read += len(chunk)
            yield chunk

    def stats(self):
        """Per-source delivery counters."""
        return {
            "source": self.name,
            "chunks_read": self.chunks_read,
            "bytes_read": self.bytes_read,
        }

    def close(self):
        """Release whatever the source owns (default: nothing)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return (
            f"{type(self).__name__}(chunks={self.chunks_read}, "
            f"bytes={self.bytes_read})"
        )


class IterableSource(ChunkSource):
    """Chunks from any iterable of bytes-like objects.

    Empty chunks pass through as no-ops (they do **not** terminate the
    stream — only iterator exhaustion does), so bursty producers that
    occasionally deliver nothing are handled.
    """

    name = "iterable"

    def __init__(self, iterable):
        super().__init__()
        self._iterable = iterable

    def chunks(self):
        yield from self._iterable


class FileSource(ChunkSource):
    """Chunks from a binary file handle or a filesystem path.

    Paths are opened (and owned) by the source; handles stay owned by
    the caller.  Seekable handles read full ``chunk_bytes`` chunks for
    maximum vectorisation width; non-seekable handles (pipes, FIFOs)
    use ``read1`` so available bytes flow immediately instead of
    blocking until a full chunk accumulates.
    """

    name = "file"

    def __init__(self, file, chunk_bytes=DEFAULT_SOURCE_CHUNK_BYTES):
        super().__init__()
        if chunk_bytes <= 0:
            raise ReproError("chunk_bytes must be positive")
        self.chunk_bytes = chunk_bytes
        if isinstance(file, (str, bytes)) or hasattr(file, "__fspath__"):
            self._handle = open(file, "rb")
            self._owns_handle = True
        else:
            if not hasattr(file, "read"):
                raise ReproError(
                    f"FileSource needs a path or a binary handle, "
                    f"got {file!r}"
                )
            self._handle = file
            self._owns_handle = False

    def chunks(self):
        handle = self._handle
        read = handle.read
        try:
            seekable = handle.seekable()
        except (AttributeError, OSError):
            seekable = False
        if not seekable and hasattr(handle, "read1"):
            read = handle.read1
        try:
            while True:
                chunk = read(self.chunk_bytes)
                if not chunk:
                    return
                yield chunk
        finally:
            # a handle this source opened itself is closed as soon as
            # the stream ends or is abandoned — path ingest never
            # leaks a descriptor; caller-owned handles are untouched
            self.close()

    def close(self):
        if self._owns_handle:
            self._handle.close()


class SocketSource(ChunkSource):
    """Chunks received from a connected stream socket until EOF.

    Accepts an already connected socket object (ownership stays with
    the caller) or a ``(host, port)`` address to connect to (the source
    owns and closes the connection).  The peer signals end-of-stream by
    shutting down its write side; a peer that closes mid-record simply
    ends the stream there — the engine's framer still yields the
    partial trailing record on flush.

    ``timeout`` (seconds) bounds how long one ``recv`` may block; a
    stalled peer then surfaces as a :class:`ReproError` instead of
    hanging a service ingest loop forever.  The timeout is applied to
    the socket itself, including caller-owned sockets.
    """

    name = "socket"

    def __init__(self, sock, chunk_bytes=DEFAULT_SOURCE_CHUNK_BYTES,
                 timeout=None):
        super().__init__()
        if chunk_bytes <= 0:
            raise ReproError("chunk_bytes must be positive")
        if timeout is not None and timeout <= 0:
            raise ReproError("timeout must be positive (or None)")
        self.chunk_bytes = chunk_bytes
        self.timeout = timeout
        if isinstance(sock, tuple):
            self._sock = socket_module.create_connection(sock)
            self._owns_socket = True
        elif isinstance(sock, socket_module.socket):
            self._sock = sock
            self._owns_socket = False
        else:
            raise ReproError(
                f"SocketSource needs a socket or (host, port), "
                f"got {sock!r}"
            )
        if timeout is not None:
            self._sock.settimeout(timeout)

    def chunks(self):
        recv = self._sock.recv
        while True:
            try:
                chunk = recv(self.chunk_bytes)
            except socket_module.timeout:
                raise ReproError(
                    f"socket recv timed out after {self.timeout}s "
                    f"({self.bytes_read} bytes received so far)"
                ) from None
            if not chunk:
                return
            yield chunk

    def close(self):
        if self._owns_socket:
            self._sock.close()


class AsyncSource(ChunkSource):
    """Adapter draining an async iterable of chunks synchronously.

    The engine's execution loop is synchronous; this adapter pumps an
    ``async def`` producer (``__aiter__``/``__anext__``) one chunk at a
    time on a private event loop, so asyncio-based ingest (asyncio
    streams, aiofiles-style readers) plugs into the same layer without
    an async engine variant.
    """

    name = "async"

    def __init__(self, async_iterable):
        super().__init__()
        if not hasattr(async_iterable, "__aiter__"):
            raise ReproError(
                f"AsyncSource needs an async iterable, "
                f"got {async_iterable!r}"
            )
        self._async_iterable = async_iterable
        self._loop = None
        self._task = None

    def chunks(self):
        import asyncio

        self._loop = asyncio.new_event_loop()
        iterator = self._async_iterable.__aiter__()
        try:
            while True:
                # the pending __anext__ is held as a task so an
                # abandoning consumer can cancel it from close()
                self._task = self._loop.create_task(
                    _anext_coroutine(iterator)
                )
                try:
                    chunk = self._loop.run_until_complete(self._task)
                except StopAsyncIteration:
                    return
                finally:
                    self._task = None
                yield chunk
        finally:
            self.close()

    def close(self):
        """Tear the private loop down without leaking pending work.

        Abandoning a stream mid-iteration (a gateway client vanishing,
        an engine ``stream(...).close()``) must not leave the
        producer's ``__anext__`` task pending or its ``async def``
        generator suspended: the in-flight task is cancelled and
        awaited, then ``loop.shutdown_asyncgens()`` runs the
        producer's finalisers (``finally:`` blocks around its yields)
        before the loop closes — no "task was destroyed but it is
        pending" noise, no skipped producer cleanup.
        """
        import asyncio

        loop, self._loop = self._loop, None
        if loop is None or loop.is_closed():
            return
        task, self._task = self._task, None
        try:
            if task is not None and not task.done():
                task.cancel()
                try:
                    loop.run_until_complete(task)
                except (asyncio.CancelledError, StopAsyncIteration):
                    pass
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()


async def _anext_coroutine(iterator):
    """``await iterator.__anext__()`` as a cancellable coroutine."""
    return await iterator.__anext__()


def as_chunk_source(obj, chunk_bytes=DEFAULT_SOURCE_CHUNK_BYTES):
    """Normalise any accepted ingest object into a :class:`ChunkSource`.

    * ``ChunkSource`` — passed through unchanged;
    * ``bytes``/``bytearray``/``memoryview`` — a one-chunk source
      (``bytes`` is always stream *data*, never a path);
    * ``str``/``os.PathLike`` — a :class:`FileSource` over that path
      (opened by the source, closed at stream end or abandonment);
    * binary file-like (has ``read``) — :class:`FileSource`;
    * ``socket.socket`` — :class:`SocketSource`;
    * async iterable — :class:`AsyncSource`;
    * any other iterable — :class:`IterableSource` over its chunks.

    The path case matters: a ``str`` is iterable, so without it a path
    would be consumed as 1-character text "chunks" and rejected (or
    worse, corrupted) deep in framing instead of being opened.
    """
    if isinstance(obj, ChunkSource):
        return obj
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return IterableSource([obj])
    if isinstance(obj, str) or hasattr(obj, "__fspath__"):
        return FileSource(obj, chunk_bytes)
    if isinstance(obj, socket_module.socket):
        return SocketSource(obj, chunk_bytes)
    if hasattr(obj, "read"):
        return FileSource(obj, chunk_bytes)
    if hasattr(obj, "__aiter__"):
        return AsyncSource(obj)
    if hasattr(obj, "__iter__"):
        return IterableSource(obj)
    raise ReproError(
        f"cannot ingest {obj!r}: expected a ChunkSource, bytes, "
        "a binary handle, a socket, or an (async) iterable of chunks"
    )


def ingest_records(source, chunk_bytes=DEFAULT_SOURCE_CHUNK_BYTES):
    """Frame every record of a chunk source into a list (in order)."""
    framer = RecordFramer()
    records = []
    for chunk in as_chunk_source(source, chunk_bytes):
        records += framer.push(chunk)
    records += framer.flush()
    return records


def ingest_dataset(source, name="ingest",
                   chunk_bytes=DEFAULT_SOURCE_CHUNK_BYTES):
    """Materialise a chunk source into a :class:`Dataset`.

    The ingest path of the SoC simulations: raw chunks from any source
    are framed on newline boundaries (exactly what the hardware splitter
    keys on) and land as a record corpus the lanes can consume.
    ``Dataset`` instances pass through unchanged; plain record lists are
    wrapped as-is (they are records, not chunks).
    """
    if isinstance(source, Dataset):
        return source
    if isinstance(source, (list, tuple)):
        return Dataset(name, source)
    return Dataset(name, ingest_records(source, chunk_bytes))
