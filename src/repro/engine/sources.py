"""Pluggable chunk ingest for the :class:`FilterEngine` (ChunkSource).

The paper's SoC ingests a raw byte stream from I/O at line rate; the
software engine models that boundary explicitly: a :class:`ChunkSource`
produces bytes-like chunks from *somewhere* (a file, an in-memory
iterable, a connected socket, an async producer) and keeps per-source
accounting (chunks/bytes delivered), while the engine is only concerned
with framing and evaluation.  Every ingest path in the repo — the CLI
``filter``/``bench`` commands, ``FilterEngine.stream``/``stream_file``
and the SoC simulations' dataset ingest — goes through this layer.

Sources are iterables of bytes chunks and context managers; iterating
updates :attr:`bytes_read`/:attr:`chunks_read` so ``stats()`` reflects
exactly what was delivered.  :func:`as_chunk_source` normalises the
engine's accepted inputs (source instances, raw byte strings,
filesystem paths, file-like handles, sockets, async iterables, plain
iterables) into a source.
"""

from __future__ import annotations

import mmap as mmap_module
import os
import queue as queue_module
import socket as socket_module
import threading

from ..data.corpus import Dataset
from ..errors import ReproError
from .framing import RecordFramer

DEFAULT_SOURCE_CHUNK_BYTES = 1 << 20

#: regular files at least this large are ingested through
#: :class:`MmapSource` by :func:`as_chunk_source` — below it the page
#: table + madvise setup costs more than buffered reads save
MMAP_THRESHOLD_BYTES = 8 << 20

#: default bounded prefetch depth of :class:`ReadaheadSource`
DEFAULT_READAHEAD_DEPTH = 4


def _require_chunk(chunk):
    if not isinstance(chunk, (bytes, bytearray, memoryview)):
        raise ReproError(
            f"chunk sources must yield bytes-like chunks, "
            f"got {type(chunk)!r}"
        )
    return chunk


class ChunkSource:
    """Base class: an accounted, closable producer of byte chunks."""

    name = "?"

    def __init__(self):
        #: bytes delivered to the consumer so far
        self.bytes_read = 0
        #: chunks delivered to the consumer so far (empty chunks count)
        self.chunks_read = 0

    def chunks(self):
        """Yield raw chunks (subclass hook, unaccounted)."""
        raise NotImplementedError

    def __iter__(self):
        for chunk in self.chunks():
            chunk = _require_chunk(chunk)
            self.chunks_read += 1
            self.bytes_read += len(chunk)
            yield chunk

    def stats(self):
        """Per-source delivery counters."""
        return {
            "source": self.name,
            "chunks_read": self.chunks_read,
            "bytes_read": self.bytes_read,
        }

    def close(self):
        """Release whatever the source owns (default: nothing)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return (
            f"{type(self).__name__}(chunks={self.chunks_read}, "
            f"bytes={self.bytes_read})"
        )


class IterableSource(ChunkSource):
    """Chunks from any iterable of bytes-like objects.

    Empty chunks pass through as no-ops (they do **not** terminate the
    stream — only iterator exhaustion does), so bursty producers that
    occasionally deliver nothing are handled.
    """

    name = "iterable"

    def __init__(self, iterable):
        super().__init__()
        self._iterable = iterable

    def chunks(self):
        yield from self._iterable


class FileSource(ChunkSource):
    """Chunks from a binary file handle or a filesystem path.

    Paths are opened (and owned) by the source; handles stay owned by
    the caller.  Seekable handles read full ``chunk_bytes`` chunks for
    maximum vectorisation width; non-seekable handles (pipes, FIFOs)
    use ``read1`` so available bytes flow immediately instead of
    blocking until a full chunk accumulates.
    """

    name = "file"

    def __init__(self, file, chunk_bytes=DEFAULT_SOURCE_CHUNK_BYTES):
        super().__init__()
        if chunk_bytes <= 0:
            raise ReproError("chunk_bytes must be positive")
        self.chunk_bytes = chunk_bytes
        if isinstance(file, (str, bytes)) or hasattr(file, "__fspath__"):
            self._handle = open(file, "rb")
            self._owns_handle = True
        else:
            if not hasattr(file, "read"):
                raise ReproError(
                    f"FileSource needs a path or a binary handle, "
                    f"got {file!r}"
                )
            self._handle = file
            self._owns_handle = False

    def chunks(self):
        handle = self._handle
        read = handle.read
        try:
            seekable = handle.seekable()
        except (AttributeError, OSError):
            seekable = False
        if not seekable and hasattr(handle, "read1"):
            read = handle.read1
        try:
            while True:
                chunk = read(self.chunk_bytes)
                if not chunk:
                    return
                yield chunk
        finally:
            # a handle this source opened itself is closed as soon as
            # the stream ends or is abandoned — path ingest never
            # leaks a descriptor; caller-owned handles are untouched
            self.close()

    def close(self):
        if self._owns_handle:
            self._handle.close()


class MmapSource(ChunkSource):
    """Zero-copy windows over a memory-mapped regular file.

    The larger-than-memory ingest path: instead of ``read()`` copying
    every chunk from the page cache into a fresh ``bytes`` object, the
    file is mapped once and iterated as ``memoryview`` windows of
    ``chunk_bytes`` — the kernel pages data in on demand and the
    windows alias the map directly.  ``madvise(MADV_SEQUENTIAL)`` is
    applied where the platform exposes it, so the kernel reads ahead
    aggressively and drops pages behind the streaming cursor, keeping
    resident memory flat no matter how large the corpus is.

    Windows are only valid until :meth:`close` (stream end, abandonment
    or context-manager exit) — the engine's framer materialises records
    out of each window before the next one is requested, so the normal
    streaming path never observes an invalidated window.  Record
    framing across window seams is byte-identical to any other source:
    the :class:`~repro.engine.framing.RecordFramer` carries partial
    records across window boundaries exactly as it does across read
    chunks.

    Accepts a filesystem path (the source owns handle and map) or a
    binary handle backed by a real file descriptor (the caller keeps
    ownership of the handle; the source still owns the map).
    """

    name = "mmap"

    def __init__(self, file, chunk_bytes=DEFAULT_SOURCE_CHUNK_BYTES):
        super().__init__()
        if chunk_bytes <= 0:
            raise ReproError("chunk_bytes must be positive")
        self.chunk_bytes = chunk_bytes
        if isinstance(file, (str, bytes)) or hasattr(file, "__fspath__"):
            self._handle = open(file, "rb")
            self._owns_handle = True
        else:
            self._handle = file
            self._owns_handle = False
        try:
            fileno = self._handle.fileno()
            stat = os.fstat(fileno)
        except Exception as err:
            if self._owns_handle:
                self._handle.close()
            raise ReproError(
                f"MmapSource needs a path or a handle backed by a "
                f"real file descriptor, got {file!r} ({err})"
            ) from None
        self.size = int(stat.st_size)
        self._mmap = None
        self._views = []
        self._dropped = 0  # consumed-prefix bytes already MADV_DONTNEEDed
        if self.size:
            try:
                self._mmap = mmap_module.mmap(
                    fileno, 0, access=mmap_module.ACCESS_READ
                )
            except (OSError, ValueError) as err:
                if self._owns_handle:
                    self._handle.close()
                raise ReproError(
                    f"cannot mmap {file!r}: {err}"
                ) from None
            self._advise_sequential()

    def _advise_sequential(self):
        """Hint streaming access where madvise is available (no-op
        elsewhere — the map works identically without the hint)."""
        madvise = getattr(self._mmap, "madvise", None)
        advice = getattr(mmap_module, "MADV_SEQUENTIAL", None)
        if madvise is None or advice is None:
            return
        try:
            madvise(advice)
        except OSError:  # pragma: no cover - exotic platforms
            pass

    def _drop_behind(self, end):
        """Release consumed pages behind the streaming cursor.

        ``MADV_SEQUENTIAL`` only tunes kernel readahead; already-read
        pages of a mapped file stay resident until memory pressure, so
        a multi-GB streaming pass would grow RSS by the whole corpus.
        Dropping the consumed prefix (page-aligned, clean file-backed
        pages — they stay in the page cache) keeps resident memory at
        roughly one window regardless of corpus size.
        """
        madvise = getattr(self._mmap, "madvise", None)
        advice = getattr(mmap_module, "MADV_DONTNEED", None)
        if madvise is None or advice is None:
            return
        boundary = (end // mmap_module.PAGESIZE) * mmap_module.PAGESIZE
        if boundary <= self._dropped:
            return
        try:
            madvise(advice, self._dropped, boundary - self._dropped)
            self._dropped = boundary
        except OSError:  # pragma: no cover - exotic platforms
            pass

    def chunks(self):
        if self._mmap is None:
            # empty files have nothing to map (mmap rejects length 0);
            # an empty stream is simply no windows, not an error
            return
        buffer = memoryview(self._mmap)
        self._views.append(buffer)
        try:
            for offset in range(0, self.size, self.chunk_bytes):
                window = buffer[offset:offset + self.chunk_bytes]
                # windows are tracked so close() can release them all:
                # an exported memoryview would otherwise keep the map
                # pinned (mmap.close() raises BufferError)
                self._views.append(window)
                yield window
                # the consumer is back for the next window, so the
                # previous one has been framed out — its pages can go
                self._drop_behind(offset)
        finally:
            self.close()

    def close(self):
        views, self._views = self._views, []
        for view in views:
            view.release()
        mapped, self._mmap = self._mmap, None
        if mapped is not None:
            try:
                mapped.close()
            except BufferError:
                raise ReproError(
                    "cannot close MmapSource: a yielded window is "
                    "still referenced outside the source (copy the "
                    "bytes out before closing)"
                ) from None
        if self._owns_handle:
            self._handle.close()


class ReadaheadSource(ChunkSource):
    """Bounded background prefetch over any inner chunk source.

    A dedicated producer thread iterates the wrapped source and parks
    up to ``depth`` chunks in a bounded queue; the consumer (the
    engine's framing + evaluation loop) pops from the queue.  Ingest
    I/O — file reads, socket recvs, mmap page faults — thus overlaps
    filter evaluation instead of running in lockstep with it, without
    the resident footprint ever exceeding ``depth`` extra chunks.

    The wrapper composes with *any* source (file, socket, mmap, async
    adapter, plain iterables); chunk order and content are preserved
    exactly, so framing across chunk seams is unchanged.  Producer
    exceptions are re-raised in the consumer at the point of the failed
    chunk; :meth:`close` stops the producer thread, drains the queue
    and closes the wrapped source (the wrapper takes ownership).
    """

    name = "readahead"

    def __init__(self, source, depth=DEFAULT_READAHEAD_DEPTH,
                 chunk_bytes=DEFAULT_SOURCE_CHUNK_BYTES):
        super().__init__()
        if depth <= 0:
            raise ReproError("readahead depth must be positive")
        self.depth = depth
        self.source = as_chunk_source(source, chunk_bytes)
        #: high-water mark of parked chunks (prefetch actually ahead)
        self.peak_depth = 0
        self._queue = queue_module.Queue(maxsize=depth)
        self._stop = threading.Event()
        self._thread = None
        self._closed = False

    _CHUNK, _DONE, _ERROR = range(3)

    def _pump(self):
        """Producer thread: inner chunks into the bounded queue."""
        try:
            for chunk in self.source:
                if isinstance(chunk, memoryview):
                    # parked chunks outlive the producer's iteration
                    # step, but a view (e.g. an MmapSource window) is
                    # only valid until its source advances/closes —
                    # materialise it here, in the prefetch thread,
                    # where the copy overlaps evaluation
                    chunk = bytes(chunk)
                while not self._stop.is_set():
                    try:
                        self._queue.put((self._CHUNK, chunk),
                                        timeout=0.05)
                        break
                    except queue_module.Full:
                        continue
                else:
                    return
            self._put_control((self._DONE, None))
        except BaseException as err:  # noqa: BLE001 - relayed, not hidden
            self._put_control((self._ERROR, err))

    def _put_control(self, item):
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return
            except queue_module.Full:
                continue

    def chunks(self):
        if self._closed:
            raise ReproError("ReadaheadSource is closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._pump, name="repro-readahead", daemon=True
            )
            self._thread.start()
        try:
            while True:
                self.peak_depth = max(
                    self.peak_depth, self._queue.qsize()
                )
                kind, payload = self._queue.get()
                if kind is self._DONE:
                    return
                if kind is self._ERROR:
                    raise payload
                yield payload
        finally:
            self.close()

    def close(self):
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        # unblock a producer parked on a full queue, then wait for it
        # to finish before the inner source (which it iterates) closes
        while True:
            try:
                self._queue.get_nowait()
            except queue_module.Empty:
                break
        if self._thread is not None:
            self._thread.join(timeout=5)
        self.source.close()

    def stats(self):
        stats = super().stats()
        stats["depth"] = self.depth
        stats["peak_depth"] = self.peak_depth
        stats["inner"] = self.source.stats()
        return stats


class SocketSource(ChunkSource):
    """Chunks received from a connected stream socket until EOF.

    Accepts an already connected socket object (ownership stays with
    the caller) or a ``(host, port)`` address to connect to (the source
    owns and closes the connection).  The peer signals end-of-stream by
    shutting down its write side; a peer that closes mid-record simply
    ends the stream there — the engine's framer still yields the
    partial trailing record on flush.

    ``timeout`` (seconds) bounds how long one ``recv`` may block; a
    stalled peer then surfaces as a :class:`ReproError` instead of
    hanging a service ingest loop forever.  The timeout is applied to
    the socket itself, including caller-owned sockets.
    """

    name = "socket"

    def __init__(self, sock, chunk_bytes=DEFAULT_SOURCE_CHUNK_BYTES,
                 timeout=None):
        super().__init__()
        if chunk_bytes <= 0:
            raise ReproError("chunk_bytes must be positive")
        if timeout is not None and timeout <= 0:
            raise ReproError("timeout must be positive (or None)")
        self.chunk_bytes = chunk_bytes
        self.timeout = timeout
        if isinstance(sock, tuple):
            self._sock = socket_module.create_connection(sock)
            self._owns_socket = True
        elif isinstance(sock, socket_module.socket):
            self._sock = sock
            self._owns_socket = False
        else:
            raise ReproError(
                f"SocketSource needs a socket or (host, port), "
                f"got {sock!r}"
            )
        if timeout is not None:
            self._sock.settimeout(timeout)

    def chunks(self):
        recv = self._sock.recv
        while True:
            try:
                chunk = recv(self.chunk_bytes)
            except socket_module.timeout:
                raise ReproError(
                    f"socket recv timed out after {self.timeout}s "
                    f"({self.bytes_read} bytes received so far)"
                ) from None
            if not chunk:
                return
            yield chunk

    def close(self):
        if self._owns_socket:
            self._sock.close()


class AsyncSource(ChunkSource):
    """Adapter draining an async iterable of chunks synchronously.

    The engine's execution loop is synchronous; this adapter pumps an
    ``async def`` producer (``__aiter__``/``__anext__``) one chunk at a
    time on a private event loop, so asyncio-based ingest (asyncio
    streams, aiofiles-style readers) plugs into the same layer without
    an async engine variant.
    """

    name = "async"

    def __init__(self, async_iterable):
        super().__init__()
        if not hasattr(async_iterable, "__aiter__"):
            raise ReproError(
                f"AsyncSource needs an async iterable, "
                f"got {async_iterable!r}"
            )
        self._async_iterable = async_iterable
        self._loop = None
        self._task = None

    def chunks(self):
        import asyncio

        self._loop = asyncio.new_event_loop()
        iterator = self._async_iterable.__aiter__()
        try:
            while True:
                # the pending __anext__ is held as a task so an
                # abandoning consumer can cancel it from close()
                self._task = self._loop.create_task(
                    _anext_coroutine(iterator)
                )
                try:
                    chunk = self._loop.run_until_complete(self._task)
                except StopAsyncIteration:
                    return
                finally:
                    self._task = None
                yield chunk
        finally:
            self.close()

    def close(self):
        """Tear the private loop down without leaking pending work.

        Abandoning a stream mid-iteration (a gateway client vanishing,
        an engine ``stream(...).close()``) must not leave the
        producer's ``__anext__`` task pending or its ``async def``
        generator suspended: the in-flight task is cancelled and
        awaited, then ``loop.shutdown_asyncgens()`` runs the
        producer's finalisers (``finally:`` blocks around its yields)
        before the loop closes — no "task was destroyed but it is
        pending" noise, no skipped producer cleanup.
        """
        import asyncio

        loop, self._loop = self._loop, None
        if loop is None or loop.is_closed():
            return
        task, self._task = self._task, None
        try:
            if task is not None and not task.done():
                task.cancel()
                try:
                    loop.run_until_complete(task)
                except (asyncio.CancelledError, StopAsyncIteration):
                    pass
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()


async def _anext_coroutine(iterator):
    """``await iterator.__anext__()`` as a cancellable coroutine."""
    return await iterator.__anext__()


def as_chunk_source(obj, chunk_bytes=DEFAULT_SOURCE_CHUNK_BYTES):
    """Normalise any accepted ingest object into a :class:`ChunkSource`.

    * ``ChunkSource`` — passed through unchanged;
    * ``bytes``/``bytearray``/``memoryview`` — a one-chunk source
      (``bytes`` is always stream *data*, never a path);
    * ``str``/``os.PathLike`` — a source over that path (opened by the
      source, closed at stream end or abandonment): large regular
      files (>= :data:`MMAP_THRESHOLD_BYTES`) become a zero-copy
      :class:`MmapSource`, everything else a :class:`FileSource`;
    * binary file-like (has ``read``) — :class:`FileSource`;
    * ``socket.socket`` — :class:`SocketSource`;
    * async iterable — :class:`AsyncSource`;
    * any other iterable — :class:`IterableSource` over its chunks.

    The path case matters: a ``str`` is iterable, so without it a path
    would be consumed as 1-character text "chunks" and rejected (or
    worse, corrupted) deep in framing instead of being opened.
    """
    if isinstance(obj, ChunkSource):
        return obj
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return IterableSource([obj])
    if isinstance(obj, str) or hasattr(obj, "__fspath__"):
        return _path_source(obj, chunk_bytes)
    if isinstance(obj, socket_module.socket):
        return SocketSource(obj, chunk_bytes)
    if hasattr(obj, "read"):
        return FileSource(obj, chunk_bytes)
    if hasattr(obj, "__aiter__"):
        return AsyncSource(obj)
    if hasattr(obj, "__iter__"):
        return IterableSource(obj)
    raise ReproError(
        f"cannot ingest {obj!r}: expected a ChunkSource, bytes, "
        "a binary handle, a socket, or an (async) iterable of chunks"
    )


def _path_source(path, chunk_bytes):
    """The right source for a filesystem path: mmap for large regular
    files (zero-copy windows, kernel readahead), buffered reads
    otherwise (small files, FIFOs, device nodes)."""
    try:
        stat = os.stat(path)
        is_large_regular = (
            os.path.isfile(path)
            and stat.st_size >= MMAP_THRESHOLD_BYTES
        )
    except OSError:
        is_large_regular = False
    if is_large_regular:
        try:
            return MmapSource(path, chunk_bytes)
        except ReproError:
            # mapping can fail on exotic filesystems; buffered reads
            # always work
            pass
    return FileSource(path, chunk_bytes)


def ingest_records(source, chunk_bytes=DEFAULT_SOURCE_CHUNK_BYTES):
    """Frame every record of a chunk source into a list (in order)."""
    framer = RecordFramer()
    records = []
    for chunk in as_chunk_source(source, chunk_bytes):
        records += framer.push(chunk)
    records += framer.flush()
    return records


def ingest_dataset(source, name="ingest",
                   chunk_bytes=DEFAULT_SOURCE_CHUNK_BYTES):
    """Materialise a chunk source into a :class:`Dataset`.

    The ingest path of the SoC simulations: raw chunks from any source
    are framed on newline boundaries (exactly what the hardware splitter
    keys on) and land as a record corpus the lanes can consume.
    ``Dataset`` instances pass through unchanged; plain record lists are
    wrapped as-is (they are records, not chunks).
    """
    if isinstance(source, Dataset):
        return source
    if isinstance(source, (list, tuple)):
        return Dataset(name, source)
    return Dataset(name, ingest_records(source, chunk_bytes))
