"""Compiled fused-kernel backend: specialise the whole filter into one pass.

The vectorised backend evaluates a filter the way the harness does:
every atom sweeps the *entire* concatenated byte stream, and the
expression tree combines the resulting per-record masks.  That is the
right shape for design-space exploration (each atom evaluated once,
~10^5 candidate conjunctions composed from the cached masks) but the
wrong shape for the serial filtering hot path, where one fixed filter
runs over a stream once: most records are rejected by one dominant
atom, yet every later atom still scans their bytes.

This module applies the paper's core move — *specialise the datapath to
the filter* — in software.  For a resolved
:class:`~repro.core.composition.RawFilter` expression it generates a
**fused kernel**: one Python function, built once per filter via
codegen + ``compile()``/``exec``, that performs a single
selectivity-ordered pass over the record batch:

* the expression is decomposed into an evaluation *plan*: the top-level
  conjuncts, plus cheap **prefilter** steps derived from structural
  groups (a group can only match a record in which each child fires
  *somewhere*, so the record-level child atoms are necessary
  conditions evaluated long before the structural machinery runs);
* steps run in selectivity order — seeded from the
  :mod:`repro.core.cost` ranking, refined online from observed per-atom
  pass rates (first batch of a kernel's life additionally samples a
  head slice of records so even the first ordering decision is
  informed);
* each step only touches the bytes of records still alive: rejected
  records are **masked out of every later atom's scan** by gathering
  the survivors into a compact sub-stream, so the expensive primitives
  (token-matrix builds, structural masks, regex loops) run over a
  shrinking fraction of the input;
* kernels are cached process-wide by filter fingerprint
  (``expr.cache_key()``), so gateway ``SWAP`` traffic and design-space
  sweeps reuse compilations, and the kernel composes with the
  :class:`~repro.engine.atom_cache.AtomCache`: cached per-atom masks
  feed the fused pass as precomputed inputs instead of forcing a
  re-scan, and masks the kernel computes over the full batch are
  inserted back.

Correctness contract: the kernel is bit-identical to the **scalar
oracle** (:func:`repro.core.composition.evaluate_record`).  Evaluating
survivors as their own sub-stream relies on record-local matcher state
— needles never span the newline separator, numeric tokens are closed
by it, and structural quote/scope state is record-local on the
newline-delimited JSON records this repo processes — which is the same
framing property the stream-level vectorised evaluator and the
hardware's ``record_reset`` already depend on.  Predicates with no
raw-filter expression form degrade to the vectorized path with a
once-per-backend warning (see :meth:`CompiledBackend.stats`).

The generated source and the plan it executes are additionally
checkable: :mod:`repro.analysis.kernel_verify` proves the source stays
inside the kernel ABI whitelist and the plan boolean-equivalent to the
expression.  ``CompiledBackend(verify_kernels=...)`` runs that proof
(memoised per filter fingerprint) on every kernel it executes; the
default ``None`` resolves to *on* under pytest and *off* otherwise,
and ``repro serve`` turns it on explicitly.
"""

from __future__ import annotations

import sys
import threading
import warnings
from collections import OrderedDict
from typing import Any, Iterable, Iterator

import numpy as np

from ..core import composition as comp
from ..eval import harness
from .atom_cache import dataset_fingerprint
from .backends import (
    Backend,
    VectorizedBackend,
    as_dataset,
    resolve_expression,
)

#: pass-rate prior for atoms never observed (and not sampled yet)
DEFAULT_SELECTIVITY = 0.5
#: head-of-batch record sample used to seed a kernel's first ordering
SAMPLE_RECORDS = 256
#: optional prefilter steps observed to reject fewer than this fraction
#: of records are dropped from the order — their scan costs more than
#: the records they would mask out of later atoms
PREFILTER_DROP_SELECTIVITY = 0.9
#: process-wide compiled-kernel LRU bound (design-space sweeps compile
#: many distinct candidate filters; the registry must not grow with them)
KERNEL_CACHE_SIZE = 512
#: a step's survivors are gathered into a compact sub-stream only when
#: fewer than this fraction of the scanned records survive — weaker
#: rejections are folded into a pending mask over the shared view
SHRINK_THRESHOLD = 0.7


# ---------------------------------------------------------------------------
# observed selectivity
# ---------------------------------------------------------------------------

class SelectivityTracker:
    """Cumulative observed per-atom pass rates.

    Fed by both the compiled kernel (per step) and the vectorised
    backend (harvested from its per-atom masks), read by the kernel's
    ordering decision and exposed through
    ``engine.stats()["selectivity"]`` — the observability hook the
    ROADMAP's online-adaptive-filtering item needs.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: cache_key -> [notation, evaluated, passed]
        self._stats: dict[str, list[Any]] = {}  # guarded-by: _lock

    def observe(
        self, atom: comp.RawFilter, evaluated: int, passed: int
    ) -> None:
        """Record that ``atom`` passed ``passed`` of ``evaluated`` records."""
        if evaluated <= 0:
            return
        key = atom.cache_key()
        with self._lock:
            entry = self._stats.get(key)
            if entry is None:
                self._stats[key] = [atom.notation(), evaluated, passed]
            else:
                entry[1] += evaluated
                entry[2] += passed

    def rate(
        self, atom: comp.RawFilter, default: float | None = None
    ) -> float | None:
        """Observed pass rate of ``atom`` (``default`` if never seen)."""
        with self._lock:
            entry = self._stats.get(atom.cache_key())
            if entry is None or entry[1] == 0:
                return default
            return entry[2] / entry[1]

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """``{notation: {evaluated, passed, selectivity}}``, most
        selective (lowest pass rate) first."""
        with self._lock:
            rows = [
                (notation, evaluated, passed)
                for notation, evaluated, passed in self._stats.values()
            ]
        rows.sort(key=lambda row: (row[2] / row[1], row[0]))
        return {
            notation: {
                "evaluated": evaluated,
                "passed": passed,
                "selectivity": passed / evaluated,
            }
            for notation, evaluated, passed in rows
        }

    def clear(self) -> None:
        with self._lock:
            self._stats.clear()

    def __repr__(self) -> str:
        with self._lock:
            count = len(self._stats)
        return f"SelectivityTracker(atoms={count})"


# ---------------------------------------------------------------------------
# cost seeds (the static half of the ordering decision)
# ---------------------------------------------------------------------------

_COST_SEEDS: dict[str, float] = {}  # guarded-by: _COST_LOCK
_COST_LOCK = threading.Lock()

#: analytic mirror of the LUT model's per-kind shape (see cost_seed);
#: the structural-tracker share every group carries
_GROUP_TRACKER_COST = 36.0
_REGEX_COST = 640.0


def _analytic_cost(atom: comp.RawFilter) -> float:
    """Closed-form stand-in for ``atom_luts`` with the same ranking.

    Calibrated against synthesised atoms (a short string matcher ~9
    LUTs, a float range DFA ~70, a two-child group ~115): string
    matchers scale with needle length, number filters with DFA state
    count, groups pay one structural tracker plus their children.
    """
    if isinstance(atom, comp.StringPredicate):
        return 4.0 + float(len(atom.needle))
    if isinstance(atom, comp.NumberPredicate):
        try:
            states = len(atom.dfa.transitions)
        except Exception:
            states = 16
        return 8.0 + 4.0 * float(states)
    if isinstance(atom, comp.Group):
        return _GROUP_TRACKER_COST + sum(
            _analytic_cost(child) for child in atom.children
        )
    if isinstance(atom, comp.RegexPredicate):
        return _REGEX_COST
    if isinstance(atom, (comp.And, comp.Or)):
        return 2.0 + sum(
            _analytic_cost(child) for child in atom.children
        )
    return 256.0


def cost_seed(atom: comp.RawFilter) -> float:
    """Relative evaluation cost of one atom, per the LUT cost model.

    Uses :mod:`repro.core.cost`'s already synthesised LUT counts for
    free when a design-space sweep has costed the atom — the same
    ranking the hardware Pareto search uses — and otherwise mirrors
    that model analytically: triggering circuit synthesis (~0.1s per
    atom) from the serial hot path would dwarf the sweeps the ordering
    exists to save.
    """
    key = atom.cache_key()
    with _COST_LOCK:
        cached = _COST_SEEDS.get(key)
    if cached is not None:
        return cached
    value = None
    try:
        from ..core.cost import _ATOM_CACHE

        synthesised = _ATOM_CACHE.get((key, 6))
        if synthesised is not None:
            value = float(synthesised)
    except Exception:
        pass
    if value is None:
        value = _analytic_cost(atom)
    value = max(value, 1.0)
    with _COST_LOCK:
        _COST_SEEDS[key] = value
    return value


# ---------------------------------------------------------------------------
# evaluation plans
# ---------------------------------------------------------------------------

class KernelStep:
    """One step of a fused kernel's evaluation plan.

    ``kind`` is one of:

    * ``"exact"`` — a mandatory top-level conjunct (AND plans);
    * ``"prefilter"`` — an optional necessary condition derived from a
      structural group's children, run early to shrink the active set;
    * ``"disjunct"`` — a mandatory child of a top-level OR plan,
      evaluated over the records no earlier disjunct accepted.
    """

    __slots__ = ("index", "atom", "kind", "conjunct")

    def __init__(
        self, index: int, atom: comp.RawFilter, kind: str, conjunct: int
    ) -> None:
        self.index = index
        self.atom = atom
        self.kind = kind
        self.conjunct = conjunct

    def __repr__(self) -> str:
        return (
            f"KernelStep(#{self.index} {self.kind} "
            f"{self.atom.notation()})"
        )


class KernelPlan:
    """The decomposition of one expression into orderable steps."""

    __slots__ = ("expr", "mode", "steps")

    def __init__(
        self,
        expr: comp.RawFilter,
        mode: str,
        steps: Iterable[KernelStep],
    ) -> None:
        self.expr = expr
        self.mode = mode  # "and" | "or"
        self.steps = tuple(steps)

    def __repr__(self) -> str:
        return (
            f"KernelPlan({self.mode}, steps={len(self.steps)}: "
            f"{self.expr.notation()})"
        )


def _flatten_and(expr: comp.And) -> Iterator[comp.RawFilter]:
    for child in expr.children:
        if isinstance(child, comp.And):
            yield from _flatten_and(child)
        else:
            yield child


def build_plan(expr: comp.RawFilter) -> KernelPlan:
    """Decompose an expression into prefilter + exact kernel steps."""
    steps: list[KernelStep] = []
    if isinstance(expr, comp.Or):
        for position, child in enumerate(expr.children):
            steps.append(
                KernelStep(len(steps), child, "disjunct", position)
            )
        return KernelPlan(expr, "or", steps)
    if isinstance(expr, comp.And):
        conjuncts = list(_flatten_and(expr))
    else:
        conjuncts = [expr]
    seen = {conjunct.cache_key() for conjunct in conjuncts}
    for position, conjunct in enumerate(conjuncts):
        if not isinstance(conjunct, comp.Group):
            continue
        # a group fires only if every child fires somewhere in the
        # record: each child is a necessary record-level condition,
        # far cheaper than the structural machinery it guards
        for child in conjunct.children:
            key = child.cache_key()
            if key in seen:
                continue
            seen.add(key)
            steps.append(
                KernelStep(len(steps), child, "prefilter", position)
            )
    for position, conjunct in enumerate(conjuncts):
        steps.append(
            KernelStep(len(steps), conjunct, "exact", position)
        )
    return KernelPlan(expr, "and", steps)


# ---------------------------------------------------------------------------
# codegen
# ---------------------------------------------------------------------------

def generate_kernel_source(plan: KernelPlan) -> str:
    """Emit the Python source of one fused kernel.

    One ``_step_<i>`` function per plan step — atom constants are bound
    by name in the kernel's exec namespace, string predicates get a
    direct ``record_match_array`` fast path, everything else funnels
    through the audited harness primitives over the surviving
    sub-stream — plus the ``kernel`` driver that dispatches the steps
    in the selectivity order chosen per batch.
    """
    lines: list[str] = []
    emit = lines.append
    emit(f"# fused kernel: {plan.expr.notation()}")
    emit(f"# plan: {plan.mode}, {len(plan.steps)} steps")
    emit("")
    for step in plan.steps:
        apply_call = (
            "ctx.accumulate" if step.kind == "disjunct" else "ctx.refine"
        )
        emit(f"def _step_{step.index}(ctx, state):")
        emit(f"    # {step.kind}: {step.atom.notation()}")
        emit(f"    bits = ctx.precomputed_bits(state, {step.index})")
        emit("    if bits is None:")
        if isinstance(step.atom, comp.StringPredicate):
            emit(
                f"        bits = ctx.string_bits(state, "
                f"NEEDLE_{step.index}, BLOCK_{step.index})"
            )
            emit(f"        ctx.store(state, {step.index}, bits)")
        else:
            emit(
                f"        bits = ctx.atom_bits(state, "
                f"ATOM_{step.index})"
            )
        emit(f"    {apply_call}(state, bits, {step.index})")
        emit("")
    names = ", ".join(f"_step_{step.index}" for step in plan.steps)
    if len(plan.steps) == 1:
        names += ","
    emit(f"_STEPS = ({names})")
    emit("")
    emit("def kernel(ctx, state, order):")
    emit("    remaining = len(order)")
    emit("    for index in order:")
    emit("        if state.n_active == 0:")
    emit("            ctx.note_skipped(state, remaining)")
    emit("            break")
    emit("        _STEPS[index](ctx, state)")
    emit("        remaining -= 1")
    emit("    return ctx.finish(state)")
    return "\n".join(lines) + "\n"


class CompiledKernel:
    """One filter, compiled: plan + generated source + callable."""

    __slots__ = ("expr", "plan", "source", "fn")

    def __init__(self, expr: comp.RawFilter) -> None:
        self.expr = expr
        self.plan = build_plan(expr)
        self.source = generate_kernel_source(self.plan)
        namespace: dict[str, Any] = {"np": np}
        for step in self.plan.steps:
            namespace[f"ATOM_{step.index}"] = step.atom
            if isinstance(step.atom, comp.StringPredicate):
                namespace[f"NEEDLE_{step.index}"] = step.atom.needle
                namespace[f"BLOCK_{step.index}"] = step.atom.block
        code = compile(
            self.source,
            f"<repro-kernel {self.expr.notation()[:60]}>",
            "exec",
        )
        exec(code, namespace)  # noqa: S102 - our own generated source
        self.fn = namespace["kernel"]

    def __repr__(self) -> str:
        return f"CompiledKernel({self.expr.notation()})"


#: process-wide kernel registry: gateway SWAPs and design-space sweeps
#: over recurring filters reuse compilations across engines and workers
_KERNELS: OrderedDict[str, CompiledKernel] = (  # guarded-by: _KERNELS_LOCK
    OrderedDict()
)
_KERNELS_LOCK = threading.Lock()


def kernel_for(expr: comp.RawFilter) -> tuple[CompiledKernel, bool]:
    """``(kernel, reused)`` for an expression, LRU-cached by fingerprint."""
    key = expr.cache_key()
    with _KERNELS_LOCK:
        kernel = _KERNELS.get(key)
        if kernel is not None:
            _KERNELS.move_to_end(key)
            return kernel, True
    kernel = CompiledKernel(expr)
    with _KERNELS_LOCK:
        if key in _KERNELS:  # raced another thread; keep the winner
            return _KERNELS[key], True
        _KERNELS[key] = kernel
        while len(_KERNELS) > KERNEL_CACHE_SIZE:
            _KERNELS.popitem(last=False)
    return kernel, False


def compiled_kernel_count() -> int:
    with _KERNELS_LOCK:
        return len(_KERNELS)


def clear_kernels() -> None:
    """Drop all cached kernels (tests / cold benchmarks)."""
    with _KERNELS_LOCK:
        _KERNELS.clear()


# ---------------------------------------------------------------------------
# per-batch execution state
# ---------------------------------------------------------------------------

class _SubBatch:
    """Dataset-protocol view over the surviving records' sub-stream.

    Quacks like :class:`repro.data.corpus.Dataset` for everything the
    evaluation harness touches (``stream``, ``starts``, ``len``, record
    iteration for scalar fallbacks) without materialising a record
    list.
    """

    __slots__ = ("stream", "starts", "name")

    def __init__(self, stream: np.ndarray, starts: np.ndarray) -> None:
        self.stream = stream
        self.starts = starts
        self.name = "kernel-subbatch"

    def __len__(self) -> int:
        return int(self.starts.shape[0])

    def __iter__(self) -> Iterator[bytes]:
        bounds = np.concatenate(
            (self.starts, [self.stream.shape[0]])
        )
        blob = self.stream.tobytes()
        for start, end in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
            yield blob[start:end - 1]  # strip the trailing newline

    @property
    def total_bytes(self) -> int:
        return int(self.stream.shape[0])


def _gather(
    stream: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
    indices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Compact (sub_stream, sub_starts) of the selected records."""
    selected = lengths[indices]
    count = indices.shape[0]
    sub_starts = np.zeros(count, dtype=np.int64)
    if count > 1:
        np.cumsum(selected[:-1], out=sub_starts[1:])
    total = int(selected.sum())
    record_of = np.repeat(np.arange(count), selected)
    offsets = np.arange(total, dtype=np.int64) - sub_starts[record_of]
    positions = starts[indices][record_of] + offsets
    return stream[positions], sub_starts


class KernelState:
    """Mutable per-batch state threaded through one kernel invocation."""

    __slots__ = ("dataset", "plan", "stream", "starts", "lengths",
                 "num_records", "active", "pending", "result", "full",
                 "view", "cache", "fingerprint", "precomputed",
                 "short_circuited", "steps_run", "steps_skipped")

    def __init__(self, dataset: Any, plan: KernelPlan) -> None:
        self.dataset = dataset
        self.plan = plan
        self.stream = dataset.stream
        self.starts = dataset.starts
        total = self.stream.shape[0]
        self.lengths = np.diff(
            np.concatenate((self.starts, [total]))
        )
        self.num_records = len(dataset)
        self.active = np.arange(self.num_records, dtype=np.int64)
        #: lazily applied rejections over ``active``: when a step
        #: rejects too few records to pay for a gather, the survivors
        #: are tracked here and the shared view is kept (see
        #: CompiledBackend.refine)
        self.pending: np.ndarray | None = None
        self.result = np.zeros(self.num_records, dtype=bool)
        self.full = True
        self.view: Any = None
        self.cache: dict[Any, Any] | None = None
        self.fingerprint: str | None = None
        self.precomputed: dict[int, np.ndarray] = {}
        #: record-scans later atoms were spared by earlier rejections
        self.short_circuited = 0
        self.steps_run = 0
        self.steps_skipped = 0

    @property
    def n_active(self) -> int:
        if self.pending is not None:
            return int(np.count_nonzero(self.pending))
        return int(self.active.shape[0])

    def invalidate(self) -> None:
        """The active set changed: sub-views are stale."""
        self.view = None
        self.cache = None
        self.full = self.active.shape[0] == self.num_records


# ---------------------------------------------------------------------------
# the backend
# ---------------------------------------------------------------------------

class CompiledBackend(Backend):
    """Fused-kernel evaluation of raw-filter expressions.

    Acts as the kernel context (``ctx``) for its compiled kernels: the
    generated step functions call back into :meth:`precomputed_bits` /
    :meth:`string_bits` / :meth:`atom_bits` / :meth:`refine` /
    :meth:`accumulate`, keeping all counters and cache integration in
    one place while the generated code carries the per-filter
    specialisation (step set, constants, dispatch).

    ``verify_kernels`` gates the static kernel verifier
    (:mod:`repro.analysis.kernel_verify`): ``True`` proves every
    kernel's source whitelist + plan equivalence before it runs
    (memoised per filter fingerprint, so the warm path pays one dict
    probe), ``False`` skips it, and ``None`` — the default — resolves
    to ``True`` exactly when pytest is loaded.
    """

    name = "compiled"
    #: streaming resolves the predicate to its expression once per
    #: stream for this backend (see FilterEngine._stream_target)
    wants_expression = True

    def __init__(
        self,
        scalar_fallback: bool = True,
        atom_cache: Any = None,
        selectivity: SelectivityTracker | None = None,
        verify_kernels: bool | None = None,
    ) -> None:
        self.scalar_fallback = scalar_fallback
        self.atom_cache = atom_cache
        #: shared tracker (attached by the owning engine); lazily
        #: created when the backend runs standalone
        self.selectivity = selectivity
        self.verify_kernels = verify_kernels
        self.kernels_compiled = 0
        self.kernels_reused = 0
        self.atoms_short_circuited = 0
        self.fallbacks = 0
        self.fallback_reason: str | None = None
        self._fallback_warned = False
        self._vectorized = VectorizedBackend(
            scalar_fallback=scalar_fallback
        )
        self._sampled: set[str] = set()

    # -- tracker ------------------------------------------------------------

    def tracker(self) -> SelectivityTracker:
        if self.selectivity is None:
            self.selectivity = SelectivityTracker()
        return self.selectivity

    def _verify_enabled(self) -> bool:
        if self.verify_kernels is not None:
            return bool(self.verify_kernels)
        return "pytest" in sys.modules

    # -- entry point --------------------------------------------------------

    def match_bits(self, predicate: Any, records: Any) -> np.ndarray:
        expr = resolve_expression(predicate)
        if expr is None:
            return self._fallback(predicate, records)
        dataset = as_dataset(records)
        if len(dataset) == 0:
            return np.zeros(0, dtype=bool)
        kernel, reused = kernel_for(expr)
        if reused:
            self.kernels_reused += 1
        else:
            self.kernels_compiled += 1
        if self._verify_enabled():
            # raises KernelVerificationError on a miscompile; memoised
            # by filter fingerprint so reused kernels pay a dict probe
            from ..analysis.kernel_verify import verify_kernel

            verify_kernel(kernel)
        state = KernelState(dataset, kernel.plan)
        if self.atom_cache is not None:
            state.fingerprint = dataset_fingerprint(dataset)
            # whole-expression mask first — repeated corpora (warm
            # gateway tenants, re-streamed chunks) skip the kernel
            # entirely, exactly like the vectorised cached path
            cached = self.atom_cache.lookup(
                state.fingerprint, expr.cache_key()
            )
            if cached is not None:
                return np.array(cached, dtype=bool)
            self._probe_cache(state)
        self._seed_selectivity(kernel, state)
        order = self.order_for(kernel.plan)
        bits = kernel.fn(self, state, order)
        self.atoms_short_circuited += state.short_circuited
        if self.atom_cache is not None and state.fingerprint is not None:
            # the finished result is always a full-batch mask; caching
            # it under the root key makes the next evaluation of this
            # (filter, corpus) pair a single lookup
            self.atom_cache.put(
                state.fingerprint, expr.cache_key(), bits
            )
            return np.array(bits, dtype=bool)
        return bits

    def _fallback(self, predicate: Any, records: Any) -> np.ndarray:
        """Degrade to the vectorized path (match_array / scalar loop)."""
        reason = (
            f"predicate {predicate!r} has no raw-filter expression "
            "form (as_raw_filter); evaluated via the vectorized path"
        )
        self.fallbacks += 1
        self.fallback_reason = reason
        if not self._fallback_warned:
            self._fallback_warned = True
            warnings.warn(
                "compiled backend: " + reason +
                " (see engine.stats()['compiled_fallback'])",
                RuntimeWarning,
                stacklevel=3,
            )
        self._vectorized.atom_cache = self.atom_cache
        self._vectorized.selectivity = self.selectivity
        return self._vectorized.match_bits(predicate, records)

    # -- ordering -----------------------------------------------------------

    def _seed_selectivity(
        self, kernel: CompiledKernel, state: KernelState
    ) -> None:
        """First batch of a kernel's life: sample a head slice.

        Evaluating every step atom over the first few hundred records
        costs a fraction of one full sweep and replaces the uniform
        pass-rate prior with measured rates, so even the first
        full-batch ordering decision is selectivity-informed.
        """
        key = kernel.expr.cache_key()
        if key in self._sampled:
            return
        self._sampled.add(key)
        count = min(SAMPLE_RECORDS, state.num_records)
        if count <= 0:
            return
        # the head slice is contiguous: no gather needed
        end = int(
            state.starts[count]
        ) if count < state.num_records else int(state.stream.shape[0])
        sample = _SubBatch(state.stream[:end], state.starts[:count])
        view = harness.DatasetView(sample)
        cache: dict[Any, Any] = {}
        tracker = self.tracker()
        for step in kernel.plan.steps:
            bits = harness.evaluate_atom(view, step.atom, cache)
            tracker.observe(
                step.atom, count, int(np.count_nonzero(bits))
            )

    def order_for(self, plan: KernelPlan) -> list[int]:
        """Step order for one batch: rejection (or acceptance) per cost.

        AND plans greedily run the step with the highest expected
        ``(1 - pass_rate) / cost`` first — the classic selectivity
        ordering; OR plans run the highest ``pass_rate / cost`` first
        so accepted records skip the remaining disjuncts.  Optional
        prefilters observed to reject almost nothing are dropped, as is
        any prefilter ordered after its own conjunct's exact step.
        """
        tracker = self.tracker()
        scored = []
        for step in plan.steps:
            rate = tracker.rate(step.atom, DEFAULT_SELECTIVITY)
            assert rate is not None
            if (step.kind == "prefilter"
                    and rate >= PREFILTER_DROP_SELECTIVITY):
                continue
            gain = rate if plan.mode == "or" else 1.0 - rate
            scored.append((-gain / cost_seed(step.atom), step.index))
        scored.sort()
        order = []
        exact_done = set()
        for _, index in scored:
            step = plan.steps[index]
            if (step.kind == "prefilter"
                    and step.conjunct in exact_done):
                continue  # its group already ran; nothing left to save
            if step.kind == "exact":
                exact_done.add(step.conjunct)
            order.append(index)
        return order

    # -- kernel context (called from generated code) ------------------------

    def _probe_cache(self, state: KernelState) -> None:
        """Feed cached atom masks into the pass as precomputed inputs."""
        if self.atom_cache is None:
            return
        state.fingerprint = dataset_fingerprint(state.dataset)
        for step in state.plan.steps:
            bits = self.atom_cache.lookup(
                state.fingerprint, step.atom.cache_key()
            )
            if bits is not None:
                state.precomputed[step.index] = bits

    def precomputed_bits(
        self, state: KernelState, index: int
    ) -> np.ndarray | None:
        """The cached full-batch mask for a step, cut to the active set."""
        full = state.precomputed.get(index)
        if full is None:
            return None
        if state.full:
            return full
        return full[state.active]

    def _ensure_view(self, state: KernelState) -> None:
        if state.view is not None:
            return
        if state.full:
            if self.atom_cache is not None:
                state.view = self.atom_cache.view_for(state.dataset)
                state.cache = self.atom_cache.evaluation_cache(
                    state.dataset
                )
            else:
                state.view = harness.DatasetView(state.dataset)
                state.cache = {}
        else:
            stream, starts = _gather(
                state.stream, state.starts, state.lengths, state.active
            )
            state.view = harness.DatasetView(_SubBatch(stream, starts))
            state.cache = {}

    def string_bits(
        self, state: KernelState, needle: Any, block: int
    ) -> np.ndarray:
        """Direct string-matcher sweep over the surviving sub-stream."""
        from ..core.string_match import record_match_array

        self._ensure_view(state)
        return record_match_array(
            state.view.stream, state.view.starts, needle, block
        )

    def atom_bits(
        self, state: KernelState, atom: comp.RawFilter
    ) -> np.ndarray:
        """Harness evaluation of one atom over the surviving records.

        Full-batch evaluations with an :class:`AtomCache` attached run
        through the shared evaluation cache, so masks and sub-results
        (fire positions, token accepts) are stored exactly like the
        vectorised backend stores them; sub-batch evaluations share a
        state-local cache (token matrix, structure) between the steps
        of the same active set.
        """
        self._ensure_view(state)
        return harness.evaluate_atom(state.view, atom, state.cache)

    def store(
        self, state: KernelState, index: int, bits: np.ndarray
    ) -> None:
        """Insert a full-batch mask into the shared AtomCache."""
        if (self.atom_cache is None or not state.full
                or state.fingerprint is None):
            return
        step = state.plan.steps[index]
        self.atom_cache.put(
            state.fingerprint, step.atom.cache_key(), bits
        )

    def refine(self, state: KernelState, bits: Any, index: int) -> None:
        """AND-plan step result: shrink the active set (maybe lazily).

        Gathering survivors into a compact sub-stream and rebuilding
        the token/structural views only pays when a step rejected a
        meaningful fraction of the records it scanned.  Below that
        threshold the rejections are folded into a pending mask and
        the shared view is kept — on weakly selective filters the
        kernel thereby degrades gracefully to the vectorised shape
        (every atom over one shared view) instead of paying gather
        overhead for nothing.
        """
        bits = np.asarray(bits, dtype=bool)
        step = state.plan.steps[index]
        evaluated = int(bits.shape[0])
        passed = int(np.count_nonzero(bits))
        self.tracker().observe(step.atom, evaluated, passed)
        state.short_circuited += state.num_records - evaluated
        state.steps_run += 1
        survivors = bits if state.pending is None else (
            bits & state.pending
        )
        surviving = int(np.count_nonzero(survivors))
        if surviving < SHRINK_THRESHOLD * evaluated:
            if surviving != evaluated:
                state.active = state.active[survivors]
                state.invalidate()
            state.pending = None
        else:
            state.pending = survivors

    def accumulate(
        self, state: KernelState, bits: Any, index: int
    ) -> None:
        """OR-plan step result: accept, and mask accepted records out.

        Mirrors :meth:`refine`'s lazy shrink: already-accepted records
        are only gathered out of later disjuncts' scans once enough of
        them have accumulated to pay for the gather.
        """
        bits = np.asarray(bits, dtype=bool)
        step = state.plan.steps[index]
        evaluated = int(bits.shape[0])
        passed = int(np.count_nonzero(bits))
        self.tracker().observe(step.atom, evaluated, passed)
        state.short_circuited += state.num_records - evaluated
        state.steps_run += 1
        fresh = bits if state.pending is None else (
            bits & state.pending
        )
        if fresh.any():
            state.result[state.active[fresh]] = True
        remaining = ~bits if state.pending is None else (
            state.pending & ~bits
        )
        surviving = int(np.count_nonzero(remaining))
        if surviving < SHRINK_THRESHOLD * evaluated:
            if surviving != evaluated:
                state.active = state.active[remaining]
                state.invalidate()
            state.pending = None
        else:
            state.pending = remaining

    def note_skipped(self, state: KernelState, remaining: int) -> None:
        """The active set emptied: the rest of the order never scans."""
        state.steps_skipped += remaining
        state.short_circuited += remaining * state.num_records

    def finish(self, state: KernelState) -> np.ndarray:
        if state.plan.mode == "and":
            accepted = state.active if state.pending is None else (
                state.active[state.pending]
            )
            result = np.zeros(state.num_records, dtype=bool)
            result[accepted] = True
            state.result = result
        return state.result

    # -- reporting ----------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "kernels_compiled": self.kernels_compiled,
            "kernels_reused": self.kernels_reused,
            "kernel_cache_size": compiled_kernel_count(),
            "atoms_short_circuited": self.atoms_short_circuited,
            "fallbacks": self.fallbacks,
            "fallback_reason": self.fallback_reason,
        }

    def __repr__(self) -> str:
        return (
            f"CompiledBackend(compiled={self.kernels_compiled}, "
            f"reused={self.kernels_reused})"
        )
