"""Record framing for chunked byte streams.

The FPGA splitter keys on newline boundaries to distribute records to
lanes; the software engine needs the same property when a corpus arrives
as arbitrary byte chunks (file reads, socket buffers, generators).  A
:class:`RecordFramer` carries the partial record at each chunk seam so
that records straddling chunk boundaries are reassembled exactly once,
in order, in O(chunk) memory.
"""

from __future__ import annotations

from ..errors import ReproError


class RecordFramer:
    """Incrementally split a byte stream into newline-delimited records.

    ``push`` accepts one chunk and returns the records completed by it;
    ``flush`` returns the final unterminated record (a stream without a
    trailing newline still yields its last record).  Blank lines are
    skipped, and a ``\\r`` before the newline is stripped, matching
    :meth:`repro.data.Dataset.from_ndjson`.
    """

    def __init__(self, max_record_bytes=64 * 1024 * 1024):
        self._tail = b""
        self.max_record_bytes = max_record_bytes
        #: total payload bytes consumed (including newlines)
        self.bytes_consumed = 0
        #: records emitted so far
        self.records_emitted = 0

    def push(self, chunk):
        """Consume one chunk; return the list of completed records."""
        if not isinstance(chunk, (bytes, bytearray, memoryview)):
            raise ReproError(
                f"framer expects bytes-like chunks, got {type(chunk)!r}"
            )
        chunk = bytes(chunk)
        self.bytes_consumed += len(chunk)
        if not chunk:
            return []
        data = self._tail + chunk
        if b"\n" not in chunk:
            if len(data) > self.max_record_bytes:
                raise ReproError(
                    "record exceeds max_record_bytes "
                    f"({self.max_record_bytes}) without a newline"
                )
            self._tail = data
            return []
        lines = data.split(b"\n")
        self._tail = lines.pop()
        records = [
            line[:-1] if line.endswith(b"\r") else line
            for line in lines
            if line.strip()
        ]
        self.records_emitted += len(records)
        return records

    def flush(self):
        """Return the trailing unterminated record, if any, and reset."""
        tail, self._tail = self._tail, b""
        if tail.endswith(b"\r"):
            tail = tail[:-1]
        if not tail.strip():
            return []
        self.records_emitted += 1
        return [tail]

    @property
    def pending_bytes(self):
        """Bytes buffered awaiting their newline (seam carry-over)."""
        return len(self._tail)


def iter_file_chunks(handle, chunk_bytes):
    """Yield chunks of at most ``chunk_bytes`` from a binary handle.

    Seekable handles (regular files) are read in full chunks for
    maximum vectorisation width.  Non-seekable handles (pipes,
    sockets, ``tail -f``-style producers) use ``read1`` when available
    so that whatever bytes have arrived are processed immediately
    instead of blocking until a full chunk accumulates.
    """
    if chunk_bytes <= 0:
        raise ReproError("chunk_bytes must be positive")
    read = handle.read
    try:
        seekable = handle.seekable()
    except (AttributeError, OSError):
        seekable = False
    if not seekable and hasattr(handle, "read1"):
        read = handle.read1
    while True:
        chunk = read(chunk_bytes)
        if not chunk:
            return
        yield chunk
