"""The unified filter-execution layer.

:class:`FilterEngine` is the single evaluation entry point for the whole
repo: the SoC simulation, the CLI, the baselines and the eval harness
all obtain per-record match bits from it.  One engine instance is
expression-agnostic — the predicate is an argument of each call — so a
single engine can be shared across streams, lanes and queries.

Two execution shapes:

* :meth:`match_bits` — evaluate a whole in-memory corpus at once
  (delegating to the configured backend);
* :meth:`stream` — consume a :class:`~repro.engine.sources.ChunkSource`
  (or anything :func:`~repro.engine.sources.as_chunk_source` accepts) in
  bounded memory, reframe records across chunk seams, evaluate chunk by
  chunk and yield :class:`StreamBatch` results; with ``num_workers > 1``
  the framed chunks are shipped to worker processes through the
  configured :class:`~repro.engine.transport.WorkerTransport` while
  preserving record order.
"""

from __future__ import annotations

import pickle
import warnings

import numpy as np

from ..errors import ReproError
from ..eval import harness
from .atom_cache import as_atom_cache
from .backends import (
    ScalarBackend,
    as_dataset,
    resolve_backend,
    resolve_expression,
)
from .compiled import CompiledBackend, SelectivityTracker
from .framing import RecordFramer
from .sources import ChunkSource, FileSource, as_chunk_source, ingest_dataset
from .transport import (
    ResidentWorkerPool,
    resolve_mp_context,
    resolve_transport,
)

DEFAULT_CHUNK_BYTES = 1 << 20
#: parallel engines default to the resident pool: workers spawn once
#: per engine and stay warm across streams/passes/filter swaps instead
#: of paying process spawn + a cold cache re-snapshot per run
DEFAULT_TRANSPORT = "resident"


class EngineConfig:
    """Execution parameters of a :class:`FilterEngine`."""

    def __init__(self, backend="vectorized",
                 chunk_bytes=DEFAULT_CHUNK_BYTES, num_workers=1,
                 transport=DEFAULT_TRANSPORT, mp_context=None,
                 cache_store=None, verify_kernels=None):
        if chunk_bytes <= 0:
            raise ReproError("chunk_bytes must be positive")
        if num_workers <= 0:
            raise ReproError("num_workers must be positive")
        self.backend = backend
        self.chunk_bytes = chunk_bytes
        self.num_workers = num_workers
        #: how framed chunks travel to workers (name or transport class)
        self.transport = transport
        resolve_transport(transport)  # fail fast on unknown names
        #: explicit multiprocessing start method (``None`` = fork where
        #: available, spawn otherwise — resolved deterministically, see
        #: :func:`repro.engine.transport.resolve_mp_context`)
        self.mp_context = mp_context
        resolve_mp_context(mp_context)  # fail fast on unknown methods
        #: persistent disk tier under the engine's AtomCache: a
        #: :class:`~repro.engine.cache_store.CacheStore` instance or a
        #: directory path (implies an AtomCache when none is passed) —
        #: LRU-evicted entries demote to disk, misses promote them back
        self.cache_store = cache_store
        #: static kernel verification (:mod:`repro.analysis`): ``True``
        #: proves every compiled kernel's source whitelist + plan
        #: equivalence before it runs, ``False`` skips, ``None`` — the
        #: default — enables it under pytest (``repro serve`` passes
        #: ``True`` explicitly)
        self.verify_kernels = verify_kernels

    def transport_name(self):
        transport = resolve_transport(self.transport)
        return transport.name

    def __repr__(self):
        return (
            f"EngineConfig(backend={self.backend!r}, "
            f"chunk_bytes={self.chunk_bytes}, "
            f"num_workers={self.num_workers}, "
            f"transport={self.transport_name()!r}, "
            f"mp_context={self.mp_context!r}, "
            f"cache_store={self.cache_store!r}, "
            f"verify_kernels={self.verify_kernels!r})"
        )


class StreamBatch:
    """Match results for one framed chunk of a stream."""

    __slots__ = ("index", "records", "matches",
                 "records_seen", "bytes_seen", "accepted_seen")

    def __init__(self, index, records, matches,
                 records_seen, bytes_seen, accepted_seen):
        self.index = index
        self.records = records
        self.matches = matches
        #: cumulative totals up to and including this batch
        self.records_seen = records_seen
        self.bytes_seen = bytes_seen
        self.accepted_seen = accepted_seen

    @property
    def accepted(self):
        """The accepted records of this batch, in input order."""
        return [
            record
            for record, match in zip(self.records, self.matches)
            if match
        ]

    def __len__(self):
        return len(self.records)

    def __repr__(self):
        return (
            f"StreamBatch(#{self.index}, records={len(self.records)}, "
            f"accepted={int(np.count_nonzero(self.matches))})"
        )


class FilterEngine:
    """One execution layer, pluggable backends, streaming or batch."""

    def __init__(self, backend="vectorized",
                 chunk_bytes=DEFAULT_CHUNK_BYTES, num_workers=1,
                 config=None, cache=None, transport=DEFAULT_TRANSPORT,
                 mp_context=None, cache_store=None,
                 verify_kernels=None):
        if isinstance(backend, EngineConfig):
            # FilterEngine(EngineConfig(...)) — the config is the
            # natural first positional argument, not a backend name
            if config is not None:
                raise ReproError(
                    "pass the EngineConfig positionally or as "
                    "config=, not both"
                )
            config = backend
            backend = "vectorized"
        if config is None:
            config = EngineConfig(backend, chunk_bytes, num_workers,
                                  transport, mp_context, cache_store,
                                  verify_kernels)
        elif not isinstance(config, EngineConfig):
            raise ReproError(
                f"config must be an EngineConfig, got {config!r}"
            )
        else:
            overridden = [
                name for name, value, default in (
                    ("backend", backend, "vectorized"),
                    ("chunk_bytes", chunk_bytes, DEFAULT_CHUNK_BYTES),
                    ("num_workers", num_workers, 1),
                    ("transport", transport, DEFAULT_TRANSPORT),
                    ("mp_context", mp_context, None),
                    ("cache_store", cache_store, None),
                    ("verify_kernels", verify_kernels, None),
                )
                if value != default
            ]
            if overridden:
                # silently preferring one over the other would hide a
                # misconfiguration; make the conflict loud instead
                raise ReproError(
                    "pass execution parameters through the "
                    "EngineConfig, not alongside it: "
                    + ", ".join(overridden)
                )
        self.config = config
        #: shared AtomCache memoising per-(dataset, atom) masks across
        #: queries, streams and chunk batches; ``cache=True`` builds a
        #: default-sized one, ``None``/``False`` disables caching
        self.atom_cache = as_atom_cache(cache)
        if self.config.cache_store is not None:
            # a disk tier needs an in-memory tier above it: an engine
            # configured with a store but no cache gets the default one
            if self.atom_cache is None:
                self.atom_cache = as_atom_cache(True)
            self.atom_cache.attach_store(self.config.cache_store)
        #: observed per-atom pass rates, shared across this engine's
        #: backends: fed by vectorised and compiled evaluation alike,
        #: consumed by the compiled kernels' selectivity ordering and
        #: surfaced through ``stats()["selectivity"]``
        self.selectivity = SelectivityTracker()
        self._backends = {}
        #: per-worker counters of the most recent parallel stream
        self._worker_stats = None
        #: why the most recent num_workers > 1 stream ran serially
        self._parallel_fallback = None
        self._fallback_warned = False
        #: lazily created persistent worker pool (resident transport)
        self._resident_pool = None

    # -- backend handling ---------------------------------------------------

    def backend(self, override=None):
        """The configured backend instance (or a per-call override)."""
        name = override if override is not None else self.config.backend
        if not isinstance(name, str):
            # instances pass through, but still honour this engine's cache
            return self._attach_cache(resolve_backend(name))
        if name not in self._backends:
            self._backends[name] = self._attach_cache(
                resolve_backend(name)
            )
        return self._backends[name]

    def _attach_cache(self, instance):
        """Share this engine's cache + selectivity with a backend.

        Duck-typed on attribute presence so any backend exposing an
        ``atom_cache`` / ``selectivity`` slot (vectorized, compiled,
        third-party) participates; explicit per-backend wiring wins.
        """
        if (self.atom_cache is not None
                and getattr(instance, "atom_cache", False) is None):
            instance.atom_cache = self.atom_cache
        if getattr(instance, "selectivity", False) is None:
            instance.selectivity = self.selectivity
        if (self.config.verify_kernels is not None
                and getattr(instance, "verify_kernels", False) is None):
            instance.verify_kernels = self.config.verify_kernels
        return instance

    # -- whole-corpus evaluation --------------------------------------------

    def match_bits(self, predicate, records, backend=None):
        """Per-record accept bits for an in-memory record batch.

        With ``num_workers > 1`` on the resident transport, the batch
        is sharded contiguously across the pool's warm workers and the
        per-shard bits concatenated — this is how a pooled gateway
        engine drives multi-process evaluation from one call.  The
        serial backend path handles everything the pool cannot take
        (backend instances, unpicklable predicates, trivial batches,
        a pool mid-stream or broken) with identical results.
        """
        if isinstance(records, ChunkSource):
            records = self.ingest(records)
        chosen = backend if backend is not None else self.config.backend
        if (self.config.num_workers > 1
                and isinstance(chosen, str)
                and self._resident_transport()):
            bits = self._match_bits_pooled(predicate, records, chosen)
            if bits is not None:
                return bits
        return self.backend(backend).match_bits(predicate, records)

    def _match_bits_pooled(self, predicate, records, backend_name):
        """Shard one batch across the resident pool (or ``None``)."""
        record_list = getattr(records, "records", None)
        if record_list is None:
            record_list = list(records)
        if len(record_list) < 2:
            return None
        payload = self._picklable_payload(predicate)
        if payload is None:
            return None
        pool = self._ensure_resident_pool()
        if pool.active or pool.broken or pool.closed:
            return None
        try:
            session = pool.session(payload, backend_name)
        except ReproError:
            return None
        parts = []
        total = len(record_list)
        shards = min(pool.num_workers, total)
        try:
            submitted = 0
            for index in range(shards):
                lo = total * index // shards
                hi = total * (index + 1) // shards
                if lo == hi:
                    continue
                session.submit(record_list[lo:hi])
                submitted += 1
            for _ in range(submitted):
                bits, _count = session.drain()
                parts.append(bits)
        finally:
            session.close()
            self._worker_stats = pool.stats()
        return np.concatenate(parts)

    def matches_record(self, predicate, record):
        """Single-record accept (always the scalar reference path)."""
        backend = self.backend("scalar")
        return bool(backend.match_bits(predicate, [record])[0])

    def count_accepted(self, predicate, records, backend=None):
        return int(
            np.count_nonzero(self.match_bits(predicate, records, backend))
        )

    def ingest(self, source, name="ingest"):
        """Materialise any chunk source into a :class:`Dataset`.

        ``Dataset`` instances and plain record lists pass through; chunk
        sources (files, sockets, iterables of chunks, async producers)
        are framed on newline boundaries by the same
        :class:`RecordFramer` the streaming path uses.  This is the SoC
        simulations' ingest door: raw bytes in, a record corpus out.
        """
        return ingest_dataset(
            source, name=name, chunk_bytes=self.config.chunk_bytes
        )

    def evaluate_atoms(self, dataset, atoms):
        """``{atom.cache_key(): per-record mask}`` for many atoms.

        The phase-1 entry point used by design-space exploration: with a
        cache attached, atoms shared with previously evaluated queries
        over the same corpus are served from memory, and the expensive
        :class:`~repro.eval.harness.DatasetView` (token matrix,
        structural masks) is built once per corpus instead of per query.
        """
        if isinstance(dataset, ChunkSource):
            dataset = self.ingest(dataset)
        dataset = as_dataset(dataset)
        if self.atom_cache is not None:
            return self.atom_cache.evaluate_atoms(dataset, atoms)
        return harness.evaluate_atoms(
            harness.DatasetView(dataset), atoms
        )

    def stats(self):
        """Engine observability: configuration, cache + worker counters.

        ``workers`` carries the per-worker counters (chunks/records
        evaluated, cache hits/misses, result-ring vs pickled returns,
        merged-back cache entries) of the most recent parallel
        stream — with ``num_workers > 1`` the serial-path cache
        counters alone would misrepresent where evaluation happened.
        ``parallel_fallback`` is ``None`` unless the most recent
        ``num_workers > 1`` stream had to run serially, in which case
        it records why (e.g. an unpicklable predicate).
        ``selectivity`` is the observed per-atom pass-rate table (most
        selective first); ``compiled`` carries the fused-kernel
        counters once the compiled backend has been used, and
        ``compiled_fallback`` mirrors ``parallel_fallback`` for
        predicates the compiled backend could not specialise.
        """
        cache = self.atom_cache
        compiled = self._backends.get("compiled")
        if not isinstance(compiled, CompiledBackend):
            compiled = None
        return {
            "backend": self.config.backend,
            "chunk_bytes": self.config.chunk_bytes,
            "num_workers": self.config.num_workers,
            "transport": self.config.transport_name(),
            "mp_context": self.config.mp_context,
            "cache": cache.stats() if cache is not None else None,
            "workers": self._worker_stats,
            "parallel_fallback": self._parallel_fallback,
            "selectivity": self.selectivity.snapshot(),
            "compiled": compiled.stats() if compiled else None,
            "compiled_fallback": (
                compiled.fallback_reason if compiled else None
            ),
        }

    # -- chunked streaming --------------------------------------------------

    def stream(self, predicate, chunks, backend=None):
        """Yield :class:`StreamBatch` per framed chunk, bounded memory.

        ``chunks`` is anything :func:`as_chunk_source` accepts: a
        :class:`ChunkSource`, raw bytes, a filesystem path
        (``str``/``os.PathLike`` — opened by the source and closed at
        stream end or abandonment), a binary handle, a connected
        socket, an async iterable, or any iterable of bytes-like
        chunks.  Records straddling chunk seams are reassembled by
        :class:`RecordFramer`; a missing trailing newline still yields
        the final record.  With ``num_workers > 1`` framed chunks are
        shipped to worker processes through the configured
        :class:`WorkerTransport` (at most ``2 * num_workers`` chunks in
        flight), and batches are yielded strictly in input order either
        way.
        """
        source = as_chunk_source(chunks, self.config.chunk_bytes)
        if self.config.num_workers > 1:
            self._parallel_fallback = None
            worker_payload = self._picklable_payload(predicate)
            if worker_payload is not None:
                yield from self._stream_parallel(
                    predicate, source, backend, worker_payload
                )
                return
            self._note_parallel_fallback(
                "the predicate is not picklable, so it cannot be "
                "shipped to worker processes; streaming serially"
            )
        yield from self._stream_serial(predicate, source, backend)

    def stream_file(self, predicate, handle, backend=None):
        """Stream a binary file object (or path) through the engine.

        A path is opened by the engine and closed when the stream
        finishes (or is abandoned); handles stay owned by the caller.
        """
        source = FileSource(handle, self.config.chunk_bytes)

        def generate():
            try:
                yield from self.stream(predicate, source,
                                       backend=backend)
            finally:
                source.close()

        return generate()

    def _framed(self, source):
        framer = RecordFramer()
        for chunk in source:
            records = framer.push(chunk)
            if records:
                yield records, framer
        records = framer.flush()
        if records:
            yield records, framer

    def _stream_target(self, predicate, chosen):
        """Resolve the predicate once per stream, not once per chunk.

        Expression-oriented backends (vectorized, compiled — anything
        declaring ``wants_expression``) evaluate the same predicate for
        every framed batch; lowering it to its raw-filter expression up
        front carries the compiled atom state (number-range DFAs,
        needle gram sets, fused-kernel lookups) across chunk batches
        instead of re-deriving it per chunk.  Predicates without an
        expression form pass through unchanged.
        """
        if getattr(chosen, "wants_expression", False):
            expression = resolve_expression(predicate)
            if expression is not None:
                return expression
        return predicate

    def _stream_serial(self, predicate, source, backend):
        chosen = self.backend(backend)
        predicate = self._stream_target(predicate, chosen)
        index = 0
        records_seen = bytes_seen = accepted_seen = 0
        for records, framer in self._framed(source):
            matches = chosen.match_bits(predicate, records)
            records_seen += len(records)
            accepted_seen += int(np.count_nonzero(matches))
            bytes_seen = framer.bytes_consumed - framer.pending_bytes
            yield StreamBatch(index, records, matches,
                             records_seen, bytes_seen, accepted_seen)
            index += 1

    def _picklable_payload(self, predicate):
        try:
            return pickle.dumps(predicate)
        except Exception:
            return None

    def _note_parallel_fallback(self, reason):
        """Record (and warn once per engine) a silent-serial downgrade."""
        self._parallel_fallback = reason
        # a previous parallel stream's counters would otherwise sit
        # next to the fallback reason, implying this stream ran workers
        self._worker_stats = None
        if not self._fallback_warned:
            self._fallback_warned = True
            warnings.warn(
                f"num_workers={self.config.num_workers} requested "
                f"but {reason} (see engine.stats()"
                f"['parallel_fallback'])",
                RuntimeWarning,
                stacklevel=3,
            )

    def _resident_transport(self):
        """True when the configured transport is the resident pool."""
        return bool(getattr(
            resolve_transport(self.config.transport), "resident", False
        ))

    def _ensure_resident_pool(self):
        """The engine's persistent worker pool, created on first use.

        The pool outlives individual streams — that persistence (warm
        worker AtomCaches, compiled-kernel registries, no per-run
        spawn) is the entire point of the resident transport.  It is
        torn down by :meth:`close` (or GC/exit finalizers).
        """
        if self._resident_pool is None:
            self._resident_pool = ResidentWorkerPool(
                num_workers=self.config.num_workers,
                mp_context=self.config.mp_context,
                chunk_bytes=self.config.chunk_bytes,
                atom_cache=self.atom_cache,
            )
        return self._resident_pool

    def warm_up(self):
        """Pre-spawn resident workers and ship the current cache.

        Useful before latency-sensitive serving: the first parallel
        stream then finds workers already alive and warm.  Serial
        engines (or non-resident transports) no-op.
        """
        if self.config.num_workers > 1 and self._resident_transport():
            self._ensure_resident_pool().warm_up()
        return self

    def drain(self):
        """Barrier with the resident workers; refresh worker stats."""
        pool = self._resident_pool
        if pool is not None and not pool.closed and not pool.broken:
            pool.sync()
            self._worker_stats = pool.stats()
        return self

    def close(self):
        """Release parallel resources (idempotent; serial no-op).

        The final worker counters stay readable through
        ``stats()["workers"]`` after closing.
        """
        pool = self._resident_pool
        if pool is not None:
            self._worker_stats = pool.stats()
            pool.close()
            self._resident_pool = None
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def _create_transport(self, backend_name, payload):
        transport_cls = resolve_transport(self.config.transport)
        cache_snapshot = None
        if self.atom_cache is not None:
            # warm start: workers begin with the parent's already
            # computed masks instead of evaluating every chunk cold
            cache_snapshot = self.atom_cache.snapshot()
        return transport_cls(
            num_workers=self.config.num_workers,
            payload=payload,
            backend_name=backend_name,
            mp_context=self.config.mp_context,
            cache_snapshot=cache_snapshot,
            chunk_bytes=self.config.chunk_bytes,
            atom_cache=self.atom_cache,
        )

    def _stream_parallel(self, predicate, source, backend, payload):
        backend_name = backend if backend is not None else (
            self.config.backend
        )
        if not isinstance(backend_name, str):
            # backend instances cannot be shipped to workers reliably
            self._note_parallel_fallback(
                "a backend instance cannot be shipped to worker "
                "processes (pass a backend name instead); "
                "streaming serially"
            )
            yield from self._stream_serial(predicate, source, backend)
            return
        if self._resident_transport():
            # session over the engine's persistent pool: same
            # submit/drain protocol, but close() only ends the stream
            # — the warm workers survive for the next one
            transport = self._ensure_resident_pool().session(
                payload, backend_name
            )
        else:
            transport = self._create_transport(backend_name, payload)
        try:
            pending = []  # consumed-bytes/records ride next to the
            index = 0     # transport's in-order result queue
            records_seen = bytes_seen = accepted_seen = 0

            def drain_one():
                nonlocal index, records_seen, bytes_seen, accepted_seen
                records, consumed_bytes = pending.pop(0)
                matches, count = transport.drain()
                records_seen += count
                accepted_seen += int(np.count_nonzero(matches))
                bytes_seen = consumed_bytes
                batch = StreamBatch(index, records, matches,
                                    records_seen, bytes_seen,
                                    accepted_seen)
                index += 1
                return batch

            for records, framer in self._framed(source):
                consumed = framer.bytes_consumed - framer.pending_bytes
                pending.append((records, consumed))
                transport.submit(records)
                while transport.in_flight >= transport.max_in_flight:
                    yield drain_one()
            while transport.in_flight:
                yield drain_one()
        finally:
            # worker-computed AtomCache deltas merged as each result
            # drained (natural end and abandoned streams alike); the
            # counters are captured once the pool is down
            transport.close()
            self._worker_stats = transport.stats()

    # -- convenience --------------------------------------------------------

    def filter_stream(self, predicate, chunks, backend=None):
        """Yield only the accepted records of a chunked stream."""
        for batch in self.stream(predicate, chunks, backend=backend):
            yield from batch.accepted

    def evaluate_dataset(self, predicate, dataset, backend=None):
        """Alias of :meth:`match_bits` for Dataset inputs (readability)."""
        return self.match_bits(predicate, as_dataset(dataset), backend)

    def __repr__(self):
        return f"FilterEngine({self.config!r})"


#: process-wide default engine (vectorised, serial) for light callers
_DEFAULT_ENGINE = None


def default_engine():
    """The lazily created shared engine used by module-level helpers.

    Carries a bounded :class:`~repro.engine.atom_cache.AtomCache`, so
    independent light callers (design-space exploration in particular)
    share previously computed atom masks process-wide.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = FilterEngine(cache=True)
    return _DEFAULT_ENGINE


def scalar_match_bits(predicate, records):
    """Shared scalar-path helper (used by baselines' match arrays)."""
    return ScalarBackend().match_bits(predicate, records)
