"""The unified filter-execution layer.

:class:`FilterEngine` is the single evaluation entry point for the whole
repo: the SoC simulation, the CLI, the baselines and the eval harness
all obtain per-record match bits from it.  One engine instance is
expression-agnostic — the predicate is an argument of each call — so a
single engine can be shared across streams, lanes and queries.

Two execution shapes:

* :meth:`match_bits` — evaluate a whole in-memory corpus at once
  (delegating to the configured backend);
* :meth:`stream` — consume an iterator of byte chunks in bounded
  memory, reframe records across chunk seams, evaluate chunk by chunk
  and yield :class:`StreamBatch` results; with ``num_workers > 1`` the
  framed chunks are sharded across worker processes while preserving
  record order.
"""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np

from ..errors import ReproError
from ..eval import harness
from .atom_cache import as_atom_cache
from .backends import (
    ScalarBackend,
    VectorizedBackend,
    as_dataset,
    resolve_backend,
    resolve_expression,
)
from .framing import RecordFramer, iter_file_chunks

DEFAULT_CHUNK_BYTES = 1 << 20


class EngineConfig:
    """Execution parameters of a :class:`FilterEngine`."""

    def __init__(self, backend="vectorized",
                 chunk_bytes=DEFAULT_CHUNK_BYTES, num_workers=1):
        if chunk_bytes <= 0:
            raise ReproError("chunk_bytes must be positive")
        if num_workers <= 0:
            raise ReproError("num_workers must be positive")
        self.backend = backend
        self.chunk_bytes = chunk_bytes
        self.num_workers = num_workers

    def __repr__(self):
        return (
            f"EngineConfig(backend={self.backend!r}, "
            f"chunk_bytes={self.chunk_bytes}, "
            f"num_workers={self.num_workers})"
        )


class StreamBatch:
    """Match results for one framed chunk of a stream."""

    __slots__ = ("index", "records", "matches",
                 "records_seen", "bytes_seen", "accepted_seen")

    def __init__(self, index, records, matches,
                 records_seen, bytes_seen, accepted_seen):
        self.index = index
        self.records = records
        self.matches = matches
        #: cumulative totals up to and including this batch
        self.records_seen = records_seen
        self.bytes_seen = bytes_seen
        self.accepted_seen = accepted_seen

    @property
    def accepted(self):
        """The accepted records of this batch, in input order."""
        return [
            record
            for record, match in zip(self.records, self.matches)
            if match
        ]

    def __len__(self):
        return len(self.records)

    def __repr__(self):
        return (
            f"StreamBatch(#{self.index}, records={len(self.records)}, "
            f"accepted={int(np.count_nonzero(self.matches))})"
        )


# -- multiprocessing plumbing -------------------------------------------------
#
# Workers are initialised once with the pickled (predicate, backend name)
# pair and then receive plain record lists, so per-chunk IPC carries only
# payload bytes.  Module-level state keeps the task function picklable
# under both fork and spawn start methods.

_WORKER_STATE = {}


def _worker_init(payload, backend_name):
    _WORKER_STATE["predicate"] = pickle.loads(payload)
    _WORKER_STATE["backend"] = resolve_backend(backend_name)


def _worker_match_bits(records):
    backend = _WORKER_STATE["backend"]
    bits = backend.match_bits(_WORKER_STATE["predicate"], records)
    return np.packbits(bits), len(records)


def _unpack_bits(packed, count):
    return np.unpackbits(packed, count=count).astype(bool)


class FilterEngine:
    """One execution layer, pluggable backends, streaming or batch."""

    def __init__(self, backend="vectorized",
                 chunk_bytes=DEFAULT_CHUNK_BYTES, num_workers=1,
                 config=None, cache=None):
        if config is None:
            config = EngineConfig(backend, chunk_bytes, num_workers)
        self.config = config
        #: shared AtomCache memoising per-(dataset, atom) masks across
        #: queries, streams and chunk batches; ``cache=True`` builds a
        #: default-sized one, ``None``/``False`` disables caching
        self.atom_cache = as_atom_cache(cache)
        self._backends = {}

    # -- backend handling ---------------------------------------------------

    def backend(self, override=None):
        """The configured backend instance (or a per-call override)."""
        name = override if override is not None else self.config.backend
        if not isinstance(name, str):
            # instances pass through, but still honour this engine's cache
            return self._attach_cache(resolve_backend(name))
        if name not in self._backends:
            self._backends[name] = self._attach_cache(
                resolve_backend(name)
            )
        return self._backends[name]

    def _attach_cache(self, instance):
        if (self.atom_cache is not None
                and isinstance(instance, VectorizedBackend)
                and instance.atom_cache is None):
            instance.atom_cache = self.atom_cache
        return instance

    # -- whole-corpus evaluation --------------------------------------------

    def match_bits(self, predicate, records, backend=None):
        """Per-record accept bits for an in-memory record batch."""
        return self.backend(backend).match_bits(predicate, records)

    def matches_record(self, predicate, record):
        """Single-record accept (always the scalar reference path)."""
        backend = self.backend("scalar")
        return bool(backend.match_bits(predicate, [record])[0])

    def count_accepted(self, predicate, records, backend=None):
        return int(
            np.count_nonzero(self.match_bits(predicate, records, backend))
        )

    def evaluate_atoms(self, dataset, atoms):
        """``{atom.cache_key(): per-record mask}`` for many atoms.

        The phase-1 entry point used by design-space exploration: with a
        cache attached, atoms shared with previously evaluated queries
        over the same corpus are served from memory, and the expensive
        :class:`~repro.eval.harness.DatasetView` (token matrix,
        structural masks) is built once per corpus instead of per query.
        """
        dataset = as_dataset(dataset)
        if self.atom_cache is not None:
            return self.atom_cache.evaluate_atoms(dataset, atoms)
        return harness.evaluate_atoms(
            harness.DatasetView(dataset), atoms
        )

    def stats(self):
        """Engine observability: configuration + atom-cache counters."""
        cache = self.atom_cache
        return {
            "backend": self.config.backend,
            "chunk_bytes": self.config.chunk_bytes,
            "num_workers": self.config.num_workers,
            "cache": cache.stats() if cache is not None else None,
        }

    # -- chunked streaming --------------------------------------------------

    def stream(self, predicate, chunks, backend=None):
        """Yield :class:`StreamBatch` per framed chunk, bounded memory.

        ``chunks`` is any iterable of bytes-like objects.  Records
        straddling chunk seams are reassembled by :class:`RecordFramer`;
        a missing trailing newline still yields the final record.  With
        ``num_workers > 1`` framed chunks are evaluated in worker
        processes (at most ``2 * num_workers`` chunks in flight), and
        batches are yielded strictly in input order either way.
        """
        if self.config.num_workers > 1:
            worker_payload = self._picklable_payload(predicate)
            if worker_payload is not None:
                yield from self._stream_parallel(
                    predicate, chunks, backend, worker_payload
                )
                return
        yield from self._stream_serial(predicate, chunks, backend)

    def stream_file(self, predicate, handle, backend=None):
        """Stream a binary file object through the engine."""
        chunks = iter_file_chunks(handle, self.config.chunk_bytes)
        return self.stream(predicate, chunks, backend=backend)

    def _framed(self, chunks):
        framer = RecordFramer()
        for chunk in chunks:
            records = framer.push(chunk)
            if records:
                yield records, framer
        records = framer.flush()
        if records:
            yield records, framer

    def _stream_target(self, predicate, chosen):
        """Resolve the predicate once per stream, not once per chunk.

        Vectorised streaming evaluates the same predicate for every
        framed batch; lowering it to its raw-filter expression up front
        carries the compiled atom state (number-range DFAs, needle gram
        sets) across chunk batches instead of re-deriving it per chunk.
        Predicates without an expression form pass through unchanged.
        """
        if isinstance(chosen, VectorizedBackend):
            expression = resolve_expression(predicate)
            if expression is not None:
                return expression
        return predicate

    def _stream_serial(self, predicate, chunks, backend):
        chosen = self.backend(backend)
        predicate = self._stream_target(predicate, chosen)
        index = 0
        records_seen = bytes_seen = accepted_seen = 0
        for records, framer in self._framed(chunks):
            matches = chosen.match_bits(predicate, records)
            records_seen += len(records)
            accepted_seen += int(np.count_nonzero(matches))
            bytes_seen = framer.bytes_consumed - framer.pending_bytes
            yield StreamBatch(index, records, matches,
                             records_seen, bytes_seen, accepted_seen)
            index += 1

    def _picklable_payload(self, predicate):
        try:
            return pickle.dumps(predicate)
        except Exception:
            return None

    def _stream_parallel(self, predicate, chunks, backend, payload):
        backend_name = backend if backend is not None else (
            self.config.backend
        )
        if not isinstance(backend_name, str):
            # backend instances cannot be shipped to workers reliably
            yield from self._stream_serial(predicate, chunks, backend)
            return
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context("spawn")
        max_in_flight = 2 * self.config.num_workers
        pool = context.Pool(
            processes=self.config.num_workers,
            initializer=_worker_init,
            initargs=(payload, backend_name),
        )
        try:
            pending = []  # (records, framer_snapshot, async_result)
            index = 0
            records_seen = bytes_seen = accepted_seen = 0

            def drain_one():
                nonlocal index, records_seen, bytes_seen, accepted_seen
                records, consumed_bytes, result = pending.pop(0)
                packed, count = result.get()
                matches = _unpack_bits(packed, count)
                records_seen += count
                accepted_seen += int(np.count_nonzero(matches))
                bytes_seen = consumed_bytes
                batch = StreamBatch(index, records, matches,
                                    records_seen, bytes_seen,
                                    accepted_seen)
                index += 1
                return batch

            for records, framer in self._framed(chunks):
                consumed = framer.bytes_consumed - framer.pending_bytes
                pending.append((
                    records,
                    consumed,
                    pool.apply_async(_worker_match_bits, (records,)),
                ))
                while len(pending) >= max_in_flight:
                    yield drain_one()
            while pending:
                yield drain_one()
        finally:
            pool.terminate()
            pool.join()

    # -- convenience --------------------------------------------------------

    def filter_stream(self, predicate, chunks, backend=None):
        """Yield only the accepted records of a chunked stream."""
        for batch in self.stream(predicate, chunks, backend=backend):
            yield from batch.accepted

    def evaluate_dataset(self, predicate, dataset, backend=None):
        """Alias of :meth:`match_bits` for Dataset inputs (readability)."""
        return self.match_bits(predicate, as_dataset(dataset), backend)

    def __repr__(self):
        return f"FilterEngine({self.config!r})"


#: process-wide default engine (vectorised, serial) for light callers
_DEFAULT_ENGINE = None


def default_engine():
    """The lazily created shared engine used by module-level helpers.

    Carries a bounded :class:`~repro.engine.atom_cache.AtomCache`, so
    independent light callers (design-space exploration in particular)
    share previously computed atom masks process-wide.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = FilterEngine(cache=True)
    return _DEFAULT_ENGINE


def scalar_match_bits(predicate, records):
    """Shared scalar-path helper (used by baselines' match arrays)."""
    return ScalarBackend().match_bits(predicate, records)
