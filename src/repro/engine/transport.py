"""Pluggable worker transports for parallel streaming (WorkerTransport).

With ``num_workers > 1`` the engine shards framed chunks across worker
processes.  *How* a framed chunk travels to a worker — and what state
the worker starts with — is this layer's concern:

* :class:`ForkPickleTransport` — the compatibility backend: record
  lists are pickled through a ``multiprocessing.Pool``'s task pipe.
  Works everywhere, pays serialisation on every chunk.
* :class:`SharedMemoryTransport` — framed chunk payloads are written
  into a ring of ``multiprocessing.shared_memory`` slots (newline-
  terminated stream bytes + record-boundary offsets); workers map the
  slot and rebuild the record batch with **no pickle on the payload
  path**, reconstructing the engine-batch ``Dataset`` (stream + starts)
  directly from the shared buffer.  The same slots form the **result
  ring**: once a worker has copied the batch out, it overwrites the
  slot with a result frame — raw packed match bits, its cumulative
  counters and any newly computed AtomCache delta — and sends only a
  ``None`` sentinel through the pool's result pipe, so the payload is
  pickle-free in *both* directions.  A result frame that cannot fit
  its slot (or a batch that rode the pickled request fallback) returns
  through the pipe instead; ``stats()`` separates ``ring_results``
  from ``pickled_results``.

Both transports initialise every worker once with the pickled
predicate, the backend name and — when the owning engine carries an
:class:`~repro.engine.atom_cache.AtomCache` — a **warm cache snapshot**,
so parallel streaming no longer evaluates cold: chunks whose content the
parent has already evaluated are served from the worker's cache, and
per-worker hit/miss/chunk counters flow back into ``engine.stats()``.
Workers also track the entries they compute *beyond* the snapshot
(:meth:`AtomCache.track_deltas`); each result carries that delta, and
the parent merges it into its own cache as the result drains
(:meth:`AtomCache.merge_snapshot`, bounded by the cache's LRU/byte
caps), so a parallel first pass warms later serial passes,
``DesignSpace`` sweeps and ``--cache-file`` spills exactly like a
serial pass does.

The multiprocessing start method is an explicit engine parameter
(``EngineConfig(mp_context=...)``), resolved by
:func:`resolve_mp_context` — no platform guessing, so fork/spawn
behaviour is deterministic and testable.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle

import numpy as np

from ..errors import ReproError

_HEADER_WORDS = 2  # (record count, payload bytes), int64 each
_HEADER_BYTES = _HEADER_WORDS * 8


def resolve_mp_context(mp_context=None):
    """An explicit multiprocessing context, deterministically chosen.

    ``None`` selects ``fork`` where the platform offers it (POSIX) and
    ``spawn`` otherwise; a string must name an available start method.
    Context objects pass through unchanged.
    """
    if mp_context is None:
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
    if isinstance(mp_context, str):
        try:
            return multiprocessing.get_context(mp_context)
        except ValueError:
            available = ", ".join(
                multiprocessing.get_all_start_methods()
            )
            raise ReproError(
                f"unknown mp_context {mp_context!r} "
                f"(available: {available})"
            ) from None
    if hasattr(mp_context, "Pool"):
        return mp_context
    raise ReproError(
        f"mp_context must be a start-method name or a "
        f"multiprocessing context, got {mp_context!r}"
    )


# -- worker-side state --------------------------------------------------------
#
# Module-level so the task functions stay picklable under both fork and
# spawn.  Each worker process holds the resolved predicate/backend, an
# optional AtomCache seeded from the parent's snapshot, its shared-memory
# attachments, and cumulative counters that ride back on every result.

_WORKER = {}


def _worker_init(payload, backend_name, cache_snapshot):
    from .atom_cache import AtomCache
    from .backends import resolve_backend, resolve_expression

    predicate = pickle.loads(payload)
    backend = resolve_backend(backend_name)
    cache = None
    if cache_snapshot is not None:
        cache = AtomCache()
        cache.load_snapshot(cache_snapshot)
        # everything inserted past this point is state the parent does
        # not have yet — each result ships it back for merge_snapshot()
        cache.track_deltas()
        if getattr(backend, "atom_cache", False) is None:
            backend.atom_cache = cache
    if getattr(backend, "wants_expression", False):
        # expression-oriented backends (vectorized, compiled) resolve
        # the shipped predicate once per worker; the compiled backend
        # then recompiles its fused kernel from the expression locally
        # — kernels themselves are never pickled across the transport
        expression = resolve_expression(predicate)
        if expression is not None:
            predicate = expression
    _WORKER.clear()
    _WORKER.update(
        predicate=predicate,
        backend=backend,
        cache=cache,
        shm={},
        chunks=0,
        records=0,
    )


def _worker_stats():
    cache = _WORKER.get("cache")
    return (
        os.getpid(),
        _WORKER["chunks"],
        _WORKER["records"],
        cache.hits if cache is not None else 0,
        cache.misses if cache is not None else 0,
    )


def _evaluate(records):
    bits = _WORKER["backend"].match_bits(_WORKER["predicate"], records)
    _WORKER["chunks"] += 1
    _WORKER["records"] += len(records)
    cache = _WORKER.get("cache")
    delta = cache.pop_deltas() if cache is not None else []
    return (
        np.packbits(np.asarray(bits, dtype=bool)),
        len(records),
        _worker_stats(),
        delta,
    )


def _task_pickled(records):
    return _evaluate(records)


def _attach_slot(slot_name):
    # pool children (fork and spawn alike) inherit the parent's
    # resource tracker, so the attach-time register is deduplicated
    # there and the parent's close() remains the single unlink point
    shm = _WORKER["shm"].get(slot_name)
    if shm is None:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=slot_name)
        _WORKER["shm"][slot_name] = shm
    return shm


def _write_batch(buf, records):
    """Serialise one framed batch into a slot buffer.

    Layout: ``int64`` header (record count, payload bytes), ``int64``
    record boundaries relative to the payload start (``count + 1``
    entries; boundary *i*..*i+1* spans one newline-terminated record),
    then the payload bytes themselves.
    """
    count = len(records)
    payload_bytes = sum(len(record) + 1 for record in records)
    header = np.frombuffer(buf, dtype=np.int64, count=_HEADER_WORDS)
    header[0] = count
    header[1] = payload_bytes
    bounds = np.frombuffer(
        buf, dtype=np.int64, count=count + 1, offset=_HEADER_BYTES
    )
    offset = 0
    payload_start = _HEADER_BYTES + (count + 1) * 8
    for index, record in enumerate(records):
        bounds[index] = offset
        end = offset + len(record)
        buf[payload_start + offset:payload_start + end] = record
        buf[payload_start + end] = 0x0A
        offset = end + 1
    bounds[count] = offset


def batch_slot_bytes(records):
    """Slot bytes one framed batch needs under :func:`_write_batch`."""
    count = len(records)
    payload_bytes = sum(len(record) + 1 for record in records)
    return _HEADER_BYTES + (count + 1) * 8 + payload_bytes


def _read_batch(buf):
    """Rebuild the engine-batch Dataset from a slot buffer.

    One copy out of the shared slot (the slot is recycled by the
    parent as soon as our result lands), then zero-pickle record views
    sliced off it; the Dataset reuses the payload as its concatenated
    stream so no re-join happens worker-side.
    """
    from ..data.corpus import Dataset

    header = np.frombuffer(buf, dtype=np.int64, count=_HEADER_WORDS)
    count, payload_bytes = int(header[0]), int(header[1])
    bounds_end = _HEADER_BYTES + (count + 1) * 8
    bounds = np.frombuffer(
        buf, dtype=np.int64, count=count + 1, offset=_HEADER_BYTES
    )
    blob = bytes(buf[bounds_end:bounds_end + payload_bytes])
    records = [
        blob[start:end - 1]
        for start, end in zip(bounds.tolist(), bounds[1:].tolist())
    ]
    dataset = Dataset("engine-batch", records)
    dataset._stream = np.frombuffer(blob, dtype=np.uint8)
    dataset._starts = np.array(bounds[:-1], dtype=np.int64)
    return dataset


# -- result frames (the return leg of the shared-memory ring) ----------------
#
# After evaluating a batch the worker no longer needs the request data
# (``_read_batch`` copies the payload out of the slot), so the same slot
# doubles as the result slot: the worker overwrites it with a fixed
# int64 header (record count, packed-bit bytes, delta bytes, plus the
# five per-worker counters), the raw packed match bits, and — when an
# AtomCache delta rides along — the delta entries as a pickled blob
# *inside the slot*.  The match-bit payload is raw bytes in both
# directions; only a ``None`` completion sentinel crosses the pipe.

_RESULT_HEADER_WORDS = 8
# (count, packed bytes, delta bytes, pid, chunks, records, hits, misses)
_RESULT_HEADER_BYTES = _RESULT_HEADER_WORDS * 8


def _write_result(buf, packed, count, stats, delta):
    """Serialise one evaluation result into a slot buffer.

    Returns ``False`` (slot untouched beyond the copied-out request)
    when the frame does not fit — the caller then returns the result
    through the pickled pipe instead, so slot capacity never affects
    correctness.
    """
    delta_blob = (
        pickle.dumps(delta, protocol=pickle.HIGHEST_PROTOCOL)
        if delta else b""
    )
    packed_bytes = int(packed.nbytes)
    needed = _RESULT_HEADER_BYTES + packed_bytes + len(delta_blob)
    if needed > len(buf):
        return False
    header = np.frombuffer(
        buf, dtype=np.int64, count=_RESULT_HEADER_WORDS
    )
    header[:3] = (count, packed_bytes, len(delta_blob))
    header[3:] = stats
    start = _RESULT_HEADER_BYTES
    buf[start:start + packed_bytes] = packed.tobytes()
    if delta_blob:
        buf[start + packed_bytes:start + packed_bytes
            + len(delta_blob)] = delta_blob
    return True


def _read_result(buf):
    """Rebuild an evaluation result from a slot's result frame."""
    header = np.frombuffer(
        buf, dtype=np.int64, count=_RESULT_HEADER_WORDS
    )
    count, packed_bytes, delta_bytes = (int(x) for x in header[:3])
    stats = tuple(int(x) for x in header[3:])
    start = _RESULT_HEADER_BYTES
    packed = np.frombuffer(
        bytes(buf[start:start + packed_bytes]), dtype=np.uint8
    )
    delta = []
    if delta_bytes:
        delta = pickle.loads(
            bytes(buf[start + packed_bytes:start + packed_bytes
                      + delta_bytes])
        )
    return packed, count, stats, delta


def _task_shared(slot_name):
    buf = _attach_slot(slot_name).buf
    result = _evaluate(_read_batch(buf))
    if _write_result(buf, *result):
        return None  # result frame is in the slot, nothing to pickle
    return result


def _unpack_bits(packed, count):
    return np.unpackbits(packed, count=count).astype(bool)


# -- parent-side transports ---------------------------------------------------

class WorkerTransport:
    """Base class: ship framed record batches to a worker pool.

    A transport instance is one streaming session: construction starts
    the pool (workers initialised with predicate + backend + optional
    warm :class:`AtomCache` snapshot), :meth:`submit` enqueues one
    framed batch, :meth:`drain` returns results strictly in submission
    order, :meth:`close` tears the pool down.  ``stats()`` aggregates
    the per-worker counters observed on results so far.

    When ``atom_cache`` is the parent's cache, the AtomCache deltas
    riding on drained results merge back into it incrementally as
    :meth:`drain` returns them (the cache's own LRU/byte bounds cap
    the resident footprint, so arbitrarily long streams stay
    bounded).  Natural stream end and an abandoned stream generator
    behave identically: every batch drained before :meth:`close` has
    already merged, so its worker-computed masks survive the pool.
    """

    name = "?"

    def __init__(self, num_workers, payload, backend_name="vectorized",
                 mp_context=None, cache_snapshot=None,
                 chunk_bytes=1 << 20, atom_cache=None):
        if num_workers <= 0:
            raise ReproError("num_workers must be positive")
        self.num_workers = num_workers
        self.chunk_bytes = chunk_bytes
        #: chunks the engine may keep in flight before draining
        self.max_in_flight = 2 * num_workers
        self.context = resolve_mp_context(mp_context)
        #: parent cache receiving worker-computed deltas as results
        #: drain
        self.atom_cache = atom_cache
        #: delta entries received from workers on drained results
        self.delta_entries = 0
        #: entries merged into / skipped by the parent cache on close()
        self.merged_entries = 0
        self.merge_skipped = 0
        #: results that returned through the pool's pickled pipe
        self.pickled_results = 0
        self._pending = []
        self._worker_stats = {}
        self._setup()
        self._pool = self.context.Pool(
            processes=num_workers,
            initializer=_worker_init,
            initargs=(payload, backend_name, cache_snapshot),
        )

    def _setup(self):
        """Transport-specific state created before the pool starts."""

    # -- session protocol ---------------------------------------------------

    def submit(self, records):
        """Enqueue one framed record batch for evaluation."""
        self._pending.append(self._dispatch(records))

    def _dispatch(self, records):
        raise NotImplementedError

    @property
    def in_flight(self):
        return len(self._pending)

    def drain(self):
        """(matches, count) of the oldest in-flight batch (blocking)."""
        if not self._pending:
            raise ReproError("no batch in flight to drain")
        handle = self._pending.pop(0)
        packed, count, stats, delta = self._collect(handle)
        pid, chunks, records, hits, misses = stats
        self._worker_stats[pid] = {
            "chunks": chunks,
            "records": records,
            "cache_hits": hits,
            "cache_misses": misses,
        }
        if delta:
            self.delta_entries += len(delta)
            if self.atom_cache is not None:
                # merge as results drain, not buffered until close():
                # the parent cache's own LRU/byte bounds then cap the
                # resident footprint, preserving bounded-memory
                # streaming however long the stream runs
                self._merge_entries(delta)
        return _unpack_bits(packed, count), count

    def _collect(self, handle):
        self.pickled_results += 1
        return handle.get()

    def stats(self):
        """Aggregate + per-worker counters seen on results so far."""
        workers = {
            pid: dict(counters)
            for pid, counters in sorted(self._worker_stats.items())
        }
        return {
            "transport": self.name,
            "mp_context": self.context.get_start_method(),
            "num_workers": self.num_workers,
            "chunks": sum(w["chunks"] for w in workers.values()),
            "records": sum(w["records"] for w in workers.values()),
            "cache_hits": sum(
                w["cache_hits"] for w in workers.values()
            ),
            "cache_misses": sum(
                w["cache_misses"] for w in workers.values()
            ),
            "pickled_results": self.pickled_results,
            "delta_entries": self.delta_entries,
            "merged_entries": self.merged_entries,
            "merge_skipped": self.merge_skipped,
            "workers": workers,
        }

    def _merge_entries(self, entries):
        """Merge one result's delta into the parent's AtomCache.

        Entries whose key the parent computed itself in the meantime
        are skipped: the content fingerprint in the key guarantees
        they are byte-equivalent, so nothing is lost.
        """
        merged, skipped = self.atom_cache.merge_snapshot(entries)
        self.merged_entries += merged
        self.merge_skipped += skipped

    def close(self):
        self._pool.terminate()
        self._pool.join()
        self._pending.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return (
            f"{type(self).__name__}(workers={self.num_workers}, "
            f"context={self.context.get_start_method()!r})"
        )


class ForkPickleTransport(WorkerTransport):
    """Compatibility backend: pickle each record batch to the pool."""

    name = "fork-pickle"

    def _dispatch(self, records):
        return self._pool.apply_async(_task_pickled, (list(records),))


class _Slot:
    """One shared-memory segment of the transport's ring."""

    __slots__ = ("shm", "index")

    def __init__(self, shm, index):
        self.shm = shm
        self.index = index


class SharedMemoryTransport(WorkerTransport):
    """Ship framed chunks through a shared-memory slot ring.

    One slot per possible in-flight chunk; the parent writes the
    newline-terminated payload plus an ``int64`` record-boundary array
    into a free slot and sends only the slot name through the task
    pipe.  The worker copies the batch out, then reuses the same slot
    as its **result slot** (:func:`_write_result`): packed match bits,
    per-worker counters and any AtomCache delta come back mapped from
    shared memory, with only a ``None`` sentinel crossing the pipe —
    the pickle-free round trip.  A batch that does not fit its slot
    (for instance a single record far larger than ``chunk_bytes``) or
    a result frame that outgrows the slot transparently falls back to
    the pickled path — correctness never depends on slot capacity.
    """

    name = "shared-memory"

    #: headroom beyond 2x chunk_bytes for boundary arrays of small
    #: records and for the seam record carried past a chunk boundary
    SLOT_SLACK_BYTES = 1 << 16

    def _setup(self):
        from multiprocessing import shared_memory

        self.slot_bytes = 2 * self.chunk_bytes + self.SLOT_SLACK_BYTES
        #: ring size; stable across close() (the slot list is not)
        self.num_slots = 2 * self.num_workers
        self._slots = []
        self._free = []
        for index in range(self.num_slots):
            shm = shared_memory.SharedMemory(
                create=True, size=self.slot_bytes
            )
            slot = _Slot(shm, index)
            self._slots.append(slot)
            self._free.append(slot)
        #: batches that exceeded slot capacity and went over pickle
        self.fallback_batches = 0
        #: results mapped directly from the shared result ring
        self.ring_results = 0

    def _dispatch(self, records):
        records = list(records)
        if (not self._free
                or batch_slot_bytes(records) > self.slot_bytes):
            self.fallback_batches += 1
            return (
                None,
                self._pool.apply_async(_task_pickled, (records,)),
            )
        slot = self._free.pop()
        _write_batch(slot.shm.buf, records)
        return (
            slot,
            self._pool.apply_async(_task_shared, (slot.shm.name,)),
        )

    def _collect(self, handle):
        slot, result = handle
        try:
            value = result.get()
            if value is None:
                # the worker left its result frame in the slot; map it
                # out before the finally clause recycles the slot
                self.ring_results += 1
                return _read_result(slot.shm.buf)
            self.pickled_results += 1
            return value
        finally:
            if slot is not None:
                self._free.append(slot)

    def stats(self):
        stats = super().stats()
        stats["slots"] = self.num_slots
        stats["slot_bytes"] = self.slot_bytes
        stats["fallback_batches"] = self.fallback_batches
        stats["ring_results"] = self.ring_results
        return stats

    def close(self):
        super().close()
        for slot in self._slots:
            with contextlib.suppress(Exception):
                slot.shm.close()
            with contextlib.suppress(FileNotFoundError):
                slot.shm.unlink()
        self._slots = []
        self._free = []


TRANSPORTS = {
    ForkPickleTransport.name: ForkPickleTransport,
    SharedMemoryTransport.name: SharedMemoryTransport,
}


def resolve_transport(transport):
    """Accept a transport name or class; return the transport class."""
    if isinstance(transport, type) and issubclass(
        transport, WorkerTransport
    ):
        return transport
    try:
        return TRANSPORTS[transport]
    except (KeyError, TypeError):
        known = ", ".join(sorted(TRANSPORTS))
        raise ReproError(
            f"unknown transport {transport!r} (known: {known})"
        ) from None
