"""Pluggable worker transports for parallel streaming (WorkerTransport).

With ``num_workers > 1`` the engine shards framed chunks across worker
processes.  *How* a framed chunk travels to a worker — and what state
the worker starts with — is this layer's concern:

* :class:`ForkPickleTransport` — the compatibility backend: record
  lists are pickled through a ``multiprocessing.Pool``'s task pipe.
  Works everywhere, pays serialisation on every chunk.
* :class:`SharedMemoryTransport` — framed chunk payloads are written
  into a ring of ``multiprocessing.shared_memory`` slots (newline-
  terminated stream bytes + record-boundary offsets); workers map the
  slot and rebuild the record batch with **no pickle on the payload
  path**, reconstructing the engine-batch ``Dataset`` (stream + starts)
  directly from the shared buffer.  The same slots form the **result
  ring**: once a worker has copied the batch out, it overwrites the
  slot with a result frame — raw packed match bits, its cumulative
  counters and any newly computed AtomCache delta — and sends only a
  ``None`` sentinel through the pool's result pipe, so the payload is
  pickle-free in *both* directions.  A result frame that cannot fit
  its slot (or a batch that rode the pickled request fallback) returns
  through the pipe instead; ``stats()`` separates ``ring_results``
  from ``pickled_results``.

Both transports initialise every worker once with the pickled
predicate, the backend name and — when the owning engine carries an
:class:`~repro.engine.atom_cache.AtomCache` — a **warm cache snapshot**,
so parallel streaming no longer evaluates cold: chunks whose content the
parent has already evaluated are served from the worker's cache, and
per-worker hit/miss/chunk counters flow back into ``engine.stats()``.
Workers also track the entries they compute *beyond* the snapshot
(:meth:`AtomCache.track_deltas`); each result carries that delta, and
the parent merges it into its own cache as the result drains
(:meth:`AtomCache.merge_snapshot`, bounded by the cache's LRU/byte
caps), so a parallel first pass warms later serial passes,
``DesignSpace`` sweeps and ``--cache-file`` spills exactly like a
serial pass does.

The multiprocessing start method is an explicit engine parameter
(``EngineConfig(mp_context=...)``), resolved by
:func:`resolve_mp_context` — no platform guessing, so fork/spawn
behaviour is deterministic and testable.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import queue as _queue
import threading
import time
import weakref
from multiprocessing import connection

import numpy as np

from ..errors import ReproError, WorkerCrashError

_HEADER_WORDS = 2  # (record count, payload bytes), int64 each
_HEADER_BYTES = _HEADER_WORDS * 8


def resolve_mp_context(mp_context=None):
    """An explicit multiprocessing context, deterministically chosen.

    ``None`` selects ``fork`` where the platform offers it (POSIX) and
    ``spawn`` otherwise; a string must name an available start method.
    Context objects pass through unchanged.
    """
    if mp_context is None:
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
    if isinstance(mp_context, str):
        try:
            return multiprocessing.get_context(mp_context)
        except ValueError:
            available = ", ".join(
                multiprocessing.get_all_start_methods()
            )
            raise ReproError(
                f"unknown mp_context {mp_context!r} "
                f"(available: {available})"
            ) from None
    if hasattr(mp_context, "Pool"):
        return mp_context
    raise ReproError(
        f"mp_context must be a start-method name or a "
        f"multiprocessing context, got {mp_context!r}"
    )


# -- worker-side state --------------------------------------------------------
#
# Module-level so the task functions stay picklable under both fork and
# spawn.  Each worker process holds the resolved predicate/backend, an
# optional AtomCache seeded from the parent's snapshot, its shared-memory
# attachments, and cumulative counters that ride back on every result.

_WORKER = {}


def _worker_init(payload, backend_name, cache_snapshot):
    from .atom_cache import AtomCache
    from .backends import resolve_backend, resolve_expression

    predicate = pickle.loads(payload)
    backend = resolve_backend(backend_name)
    cache = None
    if cache_snapshot is not None:
        cache = AtomCache()
        cache.load_snapshot(cache_snapshot)
        # everything inserted past this point is state the parent does
        # not have yet — each result ships it back for merge_snapshot()
        cache.track_deltas()
        if getattr(backend, "atom_cache", False) is None:
            backend.atom_cache = cache
    if getattr(backend, "wants_expression", False):
        # expression-oriented backends (vectorized, compiled) resolve
        # the shipped predicate once per worker; the compiled backend
        # then recompiles its fused kernel from the expression locally
        # — kernels themselves are never pickled across the transport
        expression = resolve_expression(predicate)
        if expression is not None:
            predicate = expression
    _WORKER.clear()
    _WORKER.update(
        predicate=predicate,
        backend=backend,
        cache=cache,
        shm={},
        chunks=0,
        records=0,
    )


def _worker_stats():
    cache = _WORKER.get("cache")
    return (
        os.getpid(),
        _WORKER["chunks"],
        _WORKER["records"],
        cache.hits if cache is not None else 0,
        cache.misses if cache is not None else 0,
    )


def _evaluate(records):
    bits = _WORKER["backend"].match_bits(_WORKER["predicate"], records)
    _WORKER["chunks"] += 1
    _WORKER["records"] += len(records)
    cache = _WORKER.get("cache")
    delta = cache.pop_deltas() if cache is not None else []
    return (
        np.packbits(np.asarray(bits, dtype=bool)),
        len(records),
        _worker_stats(),
        delta,
    )


def _task_pickled(records):
    return _evaluate(records)


def _attach_slot(slot_name):
    # pool children (fork and spawn alike) inherit the parent's
    # resource tracker, so the attach-time register is deduplicated
    # there and the parent's close() remains the single unlink point
    shm = _WORKER["shm"].get(slot_name)
    if shm is None:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=slot_name)
        _WORKER["shm"][slot_name] = shm
    return shm


def _write_batch(buf, records):
    """Serialise one framed batch into a slot buffer.

    Layout: ``int64`` header (record count, payload bytes), ``int64``
    record boundaries relative to the payload start (``count + 1``
    entries; boundary *i*..*i+1* spans one newline-terminated record),
    then the payload bytes themselves.
    """
    count = len(records)
    payload_bytes = sum(len(record) + 1 for record in records)
    header = np.frombuffer(buf, dtype=np.int64, count=_HEADER_WORDS)
    header[0] = count
    header[1] = payload_bytes
    bounds = np.frombuffer(
        buf, dtype=np.int64, count=count + 1, offset=_HEADER_BYTES
    )
    offset = 0
    payload_start = _HEADER_BYTES + (count + 1) * 8
    for index, record in enumerate(records):
        bounds[index] = offset
        end = offset + len(record)
        buf[payload_start + offset:payload_start + end] = record
        buf[payload_start + end] = 0x0A
        offset = end + 1
    bounds[count] = offset


def batch_slot_bytes(records):
    """Slot bytes one framed batch needs under :func:`_write_batch`."""
    count = len(records)
    payload_bytes = sum(len(record) + 1 for record in records)
    return _HEADER_BYTES + (count + 1) * 8 + payload_bytes


def _read_batch(buf):
    """Rebuild the engine-batch Dataset from a slot buffer.

    One copy out of the shared slot (the slot is recycled by the
    parent as soon as our result lands), then zero-pickle record views
    sliced off it; the Dataset reuses the payload as its concatenated
    stream so no re-join happens worker-side.
    """
    from ..data.corpus import Dataset

    header = np.frombuffer(buf, dtype=np.int64, count=_HEADER_WORDS)
    count, payload_bytes = int(header[0]), int(header[1])
    bounds_end = _HEADER_BYTES + (count + 1) * 8
    bounds = np.frombuffer(
        buf, dtype=np.int64, count=count + 1, offset=_HEADER_BYTES
    )
    blob = bytes(buf[bounds_end:bounds_end + payload_bytes])
    records = [
        blob[start:end - 1]
        for start, end in zip(bounds.tolist(), bounds[1:].tolist())
    ]
    dataset = Dataset("engine-batch", records)
    dataset._stream = np.frombuffer(blob, dtype=np.uint8)
    dataset._starts = np.array(bounds[:-1], dtype=np.int64)
    return dataset


# -- result frames (the return leg of the shared-memory ring) ----------------
#
# After evaluating a batch the worker no longer needs the request data
# (``_read_batch`` copies the payload out of the slot), so the same slot
# doubles as the result slot: the worker overwrites it with a fixed
# int64 header (record count, packed-bit bytes, delta bytes, plus the
# five per-worker counters), the raw packed match bits, and — when an
# AtomCache delta rides along — the delta entries as a pickled blob
# *inside the slot*.  The match-bit payload is raw bytes in both
# directions; only a ``None`` completion sentinel crosses the pipe.

_RESULT_HEADER_WORDS = 8
# (count, packed bytes, delta bytes, pid, chunks, records, hits, misses)
_RESULT_HEADER_BYTES = _RESULT_HEADER_WORDS * 8


def _write_result(buf, packed, count, stats, delta):
    """Serialise one evaluation result into a slot buffer.

    Returns ``False`` (slot untouched beyond the copied-out request)
    when the frame does not fit — the caller then returns the result
    through the pickled pipe instead, so slot capacity never affects
    correctness.
    """
    delta_blob = (
        pickle.dumps(delta, protocol=pickle.HIGHEST_PROTOCOL)
        if delta else b""
    )
    packed_bytes = int(packed.nbytes)
    needed = _RESULT_HEADER_BYTES + packed_bytes + len(delta_blob)
    if needed > len(buf):
        return False
    header = np.frombuffer(
        buf, dtype=np.int64, count=_RESULT_HEADER_WORDS
    )
    header[:3] = (count, packed_bytes, len(delta_blob))
    header[3:] = stats
    start = _RESULT_HEADER_BYTES
    buf[start:start + packed_bytes] = packed.tobytes()
    if delta_blob:
        buf[start + packed_bytes:start + packed_bytes
            + len(delta_blob)] = delta_blob
    return True


def _read_result(buf):
    """Rebuild an evaluation result from a slot's result frame."""
    header = np.frombuffer(
        buf, dtype=np.int64, count=_RESULT_HEADER_WORDS
    )
    count, packed_bytes, delta_bytes = (int(x) for x in header[:3])
    stats = tuple(int(x) for x in header[3:])
    start = _RESULT_HEADER_BYTES
    packed = np.frombuffer(
        bytes(buf[start:start + packed_bytes]), dtype=np.uint8
    )
    delta = []
    if delta_bytes:
        delta = pickle.loads(
            bytes(buf[start + packed_bytes:start + packed_bytes
                      + delta_bytes])
        )
    return packed, count, stats, delta


def _task_shared(slot_name):
    buf = _attach_slot(slot_name).buf
    result = _evaluate(_read_batch(buf))
    if _write_result(buf, *result):
        return None  # result frame is in the slot, nothing to pickle
    return result


def _unpack_bits(packed, count):
    return np.unpackbits(packed, count=count).astype(bool)


# -- parent-side transports ---------------------------------------------------

class WorkerTransport:
    """Base class: ship framed record batches to a worker pool.

    A transport instance is one streaming session: construction starts
    the pool (workers initialised with predicate + backend + optional
    warm :class:`AtomCache` snapshot), :meth:`submit` enqueues one
    framed batch, :meth:`drain` returns results strictly in submission
    order, :meth:`close` tears the pool down.  ``stats()`` aggregates
    the per-worker counters observed on results so far.

    When ``atom_cache`` is the parent's cache, the AtomCache deltas
    riding on drained results merge back into it incrementally as
    :meth:`drain` returns them (the cache's own LRU/byte bounds cap
    the resident footprint, so arbitrarily long streams stay
    bounded).  Natural stream end and an abandoned stream generator
    behave identically: every batch drained before :meth:`close` has
    already merged, so its worker-computed masks survive the pool.
    """

    name = "?"

    def __init__(self, num_workers, payload, backend_name="vectorized",
                 mp_context=None, cache_snapshot=None,
                 chunk_bytes=1 << 20, atom_cache=None):
        if num_workers <= 0:
            raise ReproError("num_workers must be positive")
        self.num_workers = num_workers
        self.chunk_bytes = chunk_bytes
        #: chunks the engine may keep in flight before draining
        self.max_in_flight = 2 * num_workers
        self.context = resolve_mp_context(mp_context)
        #: parent cache receiving worker-computed deltas as results
        #: drain
        self.atom_cache = atom_cache
        #: delta entries received from workers on drained results
        self.delta_entries = 0
        #: entries merged into / skipped by the parent cache on close()
        self.merged_entries = 0
        self.merge_skipped = 0
        #: results that returned through the pool's pickled pipe
        self.pickled_results = 0
        self._pending = []
        self._worker_stats = {}
        self._setup()
        self._pool = self.context.Pool(
            processes=num_workers,
            initializer=_worker_init,
            initargs=(payload, backend_name, cache_snapshot),
        )

    def _setup(self):
        """Transport-specific state created before the pool starts."""

    # -- session protocol ---------------------------------------------------

    def submit(self, records):
        """Enqueue one framed record batch for evaluation."""
        self._pending.append(self._dispatch(records))

    def _dispatch(self, records):
        raise NotImplementedError

    @property
    def in_flight(self):
        return len(self._pending)

    def drain(self):
        """(matches, count) of the oldest in-flight batch (blocking)."""
        if not self._pending:
            raise ReproError("no batch in flight to drain")
        handle = self._pending.pop(0)
        packed, count, stats, delta = self._collect(handle)
        pid, chunks, records, hits, misses = stats
        self._worker_stats[pid] = {
            "chunks": chunks,
            "records": records,
            "cache_hits": hits,
            "cache_misses": misses,
        }
        if delta:
            self.delta_entries += len(delta)
            if self.atom_cache is not None:
                # merge as results drain, not buffered until close():
                # the parent cache's own LRU/byte bounds then cap the
                # resident footprint, preserving bounded-memory
                # streaming however long the stream runs
                self._merge_entries(delta)
        return _unpack_bits(packed, count), count

    def _collect(self, handle):
        self.pickled_results += 1
        return handle.get()

    def stats(self):
        """Aggregate + per-worker counters seen on results so far."""
        workers = {
            pid: dict(counters)
            for pid, counters in sorted(self._worker_stats.items())
        }
        return {
            "transport": self.name,
            "mp_context": self.context.get_start_method(),
            "num_workers": self.num_workers,
            "chunks": sum(w["chunks"] for w in workers.values()),
            "records": sum(w["records"] for w in workers.values()),
            "cache_hits": sum(
                w["cache_hits"] for w in workers.values()
            ),
            "cache_misses": sum(
                w["cache_misses"] for w in workers.values()
            ),
            "pickled_results": self.pickled_results,
            "delta_entries": self.delta_entries,
            "merged_entries": self.merged_entries,
            "merge_skipped": self.merge_skipped,
            "workers": workers,
        }

    def _merge_entries(self, entries):
        """Merge one result's delta into the parent's AtomCache.

        Entries whose key the parent computed itself in the meantime
        are skipped: the content fingerprint in the key guarantees
        they are byte-equivalent, so nothing is lost.
        """
        merged, skipped = self.atom_cache.merge_snapshot(entries)
        self.merged_entries += merged
        self.merge_skipped += skipped

    def close(self):
        self._pool.terminate()
        self._pool.join()
        self._pending.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return (
            f"{type(self).__name__}(workers={self.num_workers}, "
            f"context={self.context.get_start_method()!r})"
        )


class ForkPickleTransport(WorkerTransport):
    """Compatibility backend: pickle each record batch to the pool."""

    name = "fork-pickle"

    def _dispatch(self, records):
        return self._pool.apply_async(_task_pickled, (list(records),))


class _Slot:
    """One shared-memory segment of the transport's ring."""

    __slots__ = ("shm", "index")

    def __init__(self, shm, index):
        self.shm = shm
        self.index = index


class SharedMemoryTransport(WorkerTransport):
    """Ship framed chunks through a shared-memory slot ring.

    One slot per possible in-flight chunk; the parent writes the
    newline-terminated payload plus an ``int64`` record-boundary array
    into a free slot and sends only the slot name through the task
    pipe.  The worker copies the batch out, then reuses the same slot
    as its **result slot** (:func:`_write_result`): packed match bits,
    per-worker counters and any AtomCache delta come back mapped from
    shared memory, with only a ``None`` sentinel crossing the pipe —
    the pickle-free round trip.  A batch that does not fit its slot
    (for instance a single record far larger than ``chunk_bytes``) or
    a result frame that outgrows the slot transparently falls back to
    the pickled path — correctness never depends on slot capacity.
    """

    name = "shared-memory"

    #: headroom beyond 2x chunk_bytes for boundary arrays of small
    #: records and for the seam record carried past a chunk boundary
    SLOT_SLACK_BYTES = 1 << 16

    def _setup(self):
        from multiprocessing import shared_memory

        self.slot_bytes = 2 * self.chunk_bytes + self.SLOT_SLACK_BYTES
        #: ring size; stable across close() (the slot list is not)
        self.num_slots = 2 * self.num_workers
        self._slots = []
        self._free = []
        for index in range(self.num_slots):
            shm = shared_memory.SharedMemory(
                create=True, size=self.slot_bytes
            )
            slot = _Slot(shm, index)
            self._slots.append(slot)
            self._free.append(slot)
        #: batches that exceeded slot capacity and went over pickle
        self.fallback_batches = 0
        #: results mapped directly from the shared result ring
        self.ring_results = 0

    def _dispatch(self, records):
        records = list(records)
        if (not self._free
                or batch_slot_bytes(records) > self.slot_bytes):
            self.fallback_batches += 1
            return (
                None,
                self._pool.apply_async(_task_pickled, (records,)),
            )
        slot = self._free.pop()
        _write_batch(slot.shm.buf, records)
        return (
            slot,
            self._pool.apply_async(_task_shared, (slot.shm.name,)),
        )

    def _collect(self, handle):
        slot, result = handle
        try:
            value = result.get()
            if value is None:
                # the worker left its result frame in the slot; map it
                # out before the finally clause recycles the slot
                self.ring_results += 1
                return _read_result(slot.shm.buf)
            self.pickled_results += 1
            return value
        finally:
            if slot is not None:
                self._free.append(slot)

    def stats(self):
        stats = super().stats()
        stats["slots"] = self.num_slots
        stats["slot_bytes"] = self.slot_bytes
        stats["fallback_batches"] = self.fallback_batches
        stats["ring_results"] = self.ring_results
        return stats

    def close(self):
        super().close()
        for slot in self._slots:
            with contextlib.suppress(Exception):
                slot.shm.close()
            with contextlib.suppress(FileNotFoundError):
                slot.shm.unlink()
        self._slots = []
        self._free = []


# -- the resident worker pool -------------------------------------------------
#
# The per-stream transports above pay process spawn plus a full cold
# cache re-snapshot on *every* parallel run — which is why 4 workers
# used to run at 0.4-0.6x of serial.  The resident pool inverts the
# lifetime: workers are spawned once per engine, survive across
# streams, passes and filter swaps, keep their AtomCache and the
# process-wide compiled-kernel registry warm in place, and receive only
# *incremental* cache deltas (the ``snapshot()``/``merge_snapshot()``
# wire format) the parent has not shipped before.  A filter SWAP is a
# single re-configure message — the compiled backend's fingerprint-
# keyed kernel registry inside each worker then reuses previously
# compiled kernels instead of recompiling per worker per chunk.

def _resident_worker_main(worker_id, task_queue, result_queue):
    """Command loop of one resident worker process.

    The worker owns a persistent :class:`AtomCache` (delta-tracked from
    birth) and a by-name backend registry, both surviving across
    ``configure`` commands — that persistence *is* the warm state the
    per-stream transports kept throwing away.  Commands:

    ``("configure", payload, backend_name)``
        Unpickle the predicate, resolve (and memoise) the backend,
        lower the predicate to its expression form where the backend
        wants one.  The compiled backend recompiles only on genuinely
        new filter fingerprints — its process-wide kernel registry
        persists here.
    ``("delta", entries)``
        Merge a parent cache sync (``record_deltas=False`` so the
        entries are not echoed back as worker deltas).
    ``("batch", seq, slot_name)`` / ``("batch-pickled", seq, records)``
        Evaluate one framed batch (shared-memory slot or pickled
        fallback) and answer ``(worker_id, seq, "ring"|"pickled", ...)``.
    ``("sync", seq)``
        Barrier probe: answer with cumulative counters + outstanding
        cache deltas.
    ``("stop",)``
        Exit the loop (graceful half of :meth:`ResidentWorkerPool.close`).

    Evaluation errors are reported per-``seq`` (``"error"`` results) —
    the worker itself survives a failing batch.
    """
    from .atom_cache import AtomCache
    from .backends import resolve_backend, resolve_expression

    cache = AtomCache().track_deltas()
    backends = {}
    _WORKER.clear()
    _WORKER.update(
        predicate=None, backend=None, cache=cache, shm={},
        chunks=0, records=0,
    )
    while True:
        try:
            command = task_queue.get()
        except (EOFError, OSError):
            break
        kind = command[0]
        if kind == "stop":
            break
        seq = None
        try:
            if kind == "configure":
                payload, backend_name = command[1], command[2]
                predicate = pickle.loads(payload)
                backend = backends.get(backend_name)
                if backend is None:
                    backend = resolve_backend(backend_name)
                    if getattr(backend, "atom_cache", False) is None:
                        backend.atom_cache = cache
                    backends[backend_name] = backend
                if getattr(backend, "wants_expression", False):
                    expression = resolve_expression(predicate)
                    if expression is not None:
                        predicate = expression
                _WORKER["predicate"] = predicate
                _WORKER["backend"] = backend
                continue
            if kind == "delta":
                cache.merge_snapshot(command[1], record_deltas=False)
                continue
            if kind == "sync":
                seq = command[1]
                result_queue.put(
                    (worker_id, seq, "sync",
                     (_worker_stats(), cache.pop_deltas()))
                )
                continue
            seq = command[1]
            if kind == "batch":
                buf = _attach_slot(command[2]).buf
                result = _evaluate(_read_batch(buf))
                if _write_result(buf, *result):
                    result_queue.put((worker_id, seq, "ring", None))
                else:
                    result_queue.put(
                        (worker_id, seq, "pickled", result)
                    )
            elif kind == "batch-pickled":
                result = _evaluate(command[2])
                result_queue.put((worker_id, seq, "pickled", result))
            else:
                raise ReproError(
                    f"unknown resident-pool command {kind!r}"
                )
        except Exception as exc:
            with contextlib.suppress(Exception):
                result_queue.put(
                    (worker_id, seq, "error",
                     f"{type(exc).__name__}: {exc}")
                )
    for shm in _WORKER.get("shm", {}).values():
        with contextlib.suppress(Exception):
            shm.close()


class _WorkerHandle:
    """Parent-side record of one live resident worker."""

    __slots__ = ("index", "process", "task_queue", "result_queue",
                 "assigned", "pending_sync", "pid")

    def __init__(self, index, process, task_queue, result_queue):
        self.index = index
        self.process = process
        self.task_queue = task_queue
        self.result_queue = result_queue
        #: batch seqs dispatched to this worker, result not yet seen
        self.assigned = set()
        #: sync-barrier seqs awaiting this worker's reply
        self.pending_sync = set()
        self.pid = process.pid


def _cleanup_resident(workers, slots):
    """Finalizer shared by ``close()``, GC and interpreter exit.

    Operates on the pool's *containers* (mutated in place across
    respawns) so it never keeps the pool object itself alive; running
    it twice is a no-op.
    """
    for handle in workers:
        if handle is None:
            continue
        with contextlib.suppress(Exception):
            handle.process.terminate()
    for index, handle in enumerate(workers):
        if handle is None:
            continue
        with contextlib.suppress(Exception):
            handle.process.join(timeout=1.0)
        if handle.process.is_alive():
            with contextlib.suppress(Exception):
                handle.process.kill()
                handle.process.join(timeout=1.0)
        for q in (handle.task_queue, handle.result_queue):
            with contextlib.suppress(Exception):
                q.cancel_join_thread()
                q.close()
        workers[index] = None
    for slot in slots:
        with contextlib.suppress(Exception):
            slot.shm.close()
        with contextlib.suppress(Exception):
            slot.shm.unlink()
    del slots[:]


class ResidentWorkerPool:
    """Persistent worker pool: spawn once, stay warm, survive swaps.

    Unlike the :class:`WorkerTransport` family (one pool per streaming
    session), a resident pool lives as long as its owning engine: the
    engine calls :meth:`session` at the start of each parallel stream
    and gets a transport-protocol facade (``submit``/``drain``/
    ``close``) over the *same* long-lived workers.  Between sessions
    nothing is torn down — worker AtomCaches and compiled-kernel
    registries stay warm in place, and the parent ships only the cache
    entries it has not shipped before (:meth:`sync_cache`, the
    incremental counterpart of the per-stream transports' full
    re-snapshot).

    Fault tolerance: each worker has private task/result queues (a
    killed worker can never wedge a sibling's pipe), the parent retains
    every in-flight batch's records, and :meth:`_check_workers`
    respawns a dead worker with a fresh queue pair, replays its
    configure + a full cache snapshot, and re-dispatches its lost
    batches — until ``max_respawns`` deaths, after which the pool is
    *broken* and raises :class:`~repro.errors.WorkerCrashError`
    (batches drained before the crash, and their merged cache deltas,
    survive).  Workers are daemons and a :func:`weakref.finalize`
    hook tears everything down on GC or interpreter exit, so an
    engine that is never explicitly closed leaks neither processes
    nor shared-memory slots.
    """

    name = "resident"
    #: class marker the engine branches on (pool lifetime != stream
    #: lifetime, so construction goes through the engine, not
    #: ``_create_transport``)
    resident = True

    SLOT_SLACK_BYTES = SharedMemoryTransport.SLOT_SLACK_BYTES

    def __init__(self, num_workers, mp_context=None,
                 chunk_bytes=1 << 20, atom_cache=None, max_respawns=3):
        from multiprocessing import shared_memory

        if num_workers <= 0:
            raise ReproError("num_workers must be positive")
        self.num_workers = num_workers
        self.chunk_bytes = chunk_bytes
        self.max_in_flight = 2 * num_workers
        self.context = resolve_mp_context(mp_context)
        self.atom_cache = atom_cache
        self.max_respawns = max_respawns
        self.slot_bytes = 2 * chunk_bytes + self.SLOT_SLACK_BYTES
        self.num_slots = 2 * num_workers
        #: residency counters (how much respawn/re-ship work the pool
        #: *avoided* is the difference between these and the per-stream
        #: transports' implicit one-of-each-per-stream)
        self.sessions = 0
        self.configures = 0
        self.respawns = 0
        self.shipped_entries = 0
        #: result-path counters (same meaning as SharedMemoryTransport)
        self.ring_results = 0
        self.pickled_results = 0
        self.fallback_batches = 0
        self.delta_entries = 0
        self.merged_entries = 0
        self.merge_skipped = 0
        self._payload = None
        self._backend_name = None
        #: (fingerprint, key) pairs every worker already holds
        self._shipped = set()
        self._next_seq = 0
        self._order = []          # undrained seqs, submission order
        self._inflight = {}       # seq -> {records, worker, slot}
        self._results = {}        # seq -> ("ok"|"error", value)
        self._sync_results = {}   # sync seq -> (stats, delta) | None
        self._worker_stats = {}
        self._active = False
        self._closed = False
        self._broken = None
        #: guards the shared-memory slot ring — gateway engines share
        #: one pool across executor threads, and a slot handed to two
        #: batches at once would interleave their payloads
        self._ring_lock = threading.Lock()
        self._slots = []  # guarded-by: _ring_lock
        self._free = []  # guarded-by: _ring_lock
        for index in range(self.num_slots):
            shm = shared_memory.SharedMemory(
                create=True, size=self.slot_bytes
            )
            slot = _Slot(shm, index)
            self._slots.append(slot)
            self._free.append(slot)
        self._workers = [None] * num_workers
        for index in range(num_workers):
            self._spawn(index)
        self._finalizer = weakref.finalize(
            self, _cleanup_resident, self._workers, self._slots
        )

    # -- worker lifecycle ---------------------------------------------------

    def _spawn(self, index):
        task_queue = self.context.Queue()
        result_queue = self.context.Queue()
        process = self.context.Process(
            target=_resident_worker_main,
            args=(index, task_queue, result_queue),
            daemon=True,
            name=f"repro-resident-{index}",
        )
        process.start()
        handle = _WorkerHandle(index, process, task_queue, result_queue)
        self._workers[index] = handle
        if self._payload is not None:
            handle.task_queue.put(
                ("configure", self._payload, self._backend_name)
            )
        if self.atom_cache is not None:
            # a (re)spawned worker starts from the full current
            # snapshot; incremental sync_cache() deltas only cover
            # workers that were alive when earlier syncs shipped
            snapshot = self.atom_cache.snapshot()
            if snapshot:
                handle.task_queue.put(("delta", snapshot))
        return handle

    def _live(self):
        return [
            handle for handle in self._workers
            if handle is not None and handle.process.is_alive()
        ]

    def _retire(self, handle):
        with contextlib.suppress(Exception):
            handle.process.join(timeout=0.5)
        for q in (handle.task_queue, handle.result_queue):
            with contextlib.suppress(Exception):
                q.cancel_join_thread()
                q.close()

    def _check_workers(self):
        """Respawn dead workers; re-dispatch their lost batches."""
        if self._closed:
            return
        for index in range(self.num_workers):
            handle = self._workers[index]
            if handle is None or handle.process.is_alive():
                continue
            # capture anything the worker flushed before dying
            self._sweep_queue(handle)
            lost = sorted(
                seq for seq in handle.assigned
                if seq not in self._results
            )
            for seq in handle.pending_sync:
                # a sync barrier must not wait on the dead
                self._sync_results.setdefault(seq, None)
            self._retire(handle)
            self._workers[index] = None
            self.respawns += 1
            if self.respawns > self.max_respawns:
                self._broken = (
                    f"resident worker {index} (pid {handle.pid}) died "
                    f"and the pool exhausted its respawn budget "
                    f"(max_respawns={self.max_respawns})"
                )
                raise WorkerCrashError(self._broken)
            replacement = self._spawn(index)
            for seq in lost:
                entry = self._inflight.get(seq)
                if entry is None:
                    continue
                # the records were retained exactly for this replay;
                # the slot (if any) is reclaimed — the re-dispatch
                # rides the pickled path, correctness over ceremony
                self._release_slot(entry)
                entry["worker"] = replacement
                replacement.task_queue.put(
                    ("batch-pickled", seq, entry["records"])
                )
                replacement.assigned.add(seq)

    # -- result plumbing ----------------------------------------------------

    def _release_slot(self, entry):
        slot = entry.get("slot")
        if slot is not None:
            with self._ring_lock:
                self._free.append(slot)
            entry["slot"] = None

    def _handle_message(self, handle, message):
        try:
            _worker_id, seq, kind, value = message
        except (TypeError, ValueError):
            return
        if kind == "sync":
            self._sync_results[seq] = value
            handle.pending_sync.discard(seq)
            return
        if seq not in self._inflight or seq in self._results:
            # duplicate after a crash re-dispatch race — the content
            # fingerprint guarantees both copies are identical
            return
        entry = self._inflight[seq]
        handle.assigned.discard(seq)
        if kind == "ring":
            slot = entry.get("slot")
            if slot is None:
                return
            self._results[seq] = ("ok", _read_result(slot.shm.buf))
            self.ring_results += 1
        elif kind == "pickled":
            self._results[seq] = ("ok", value)
            self.pickled_results += 1
        elif kind == "error":
            self._results[seq] = ("error", value)
        self._release_slot(entry)

    def _sweep_queue(self, handle):
        while True:
            try:
                message = handle.result_queue.get_nowait()
            except Exception:
                return
            self._handle_message(handle, message)

    def _pump(self, timeout=0.0):
        """Collect every ready result; optionally block for one."""
        got = False

        def sweep():
            nonlocal got
            for handle in list(self._workers):
                if handle is None:
                    continue
                while True:
                    try:
                        message = handle.result_queue.get_nowait()
                    except _queue.Empty:
                        break
                    except Exception:
                        break
                    got = True
                    self._handle_message(handle, message)

        sweep()
        if got or timeout <= 0:
            return got
        readers = [
            handle.result_queue._reader
            for handle in self._workers if handle is not None
        ]
        if readers:
            with contextlib.suppress(OSError):
                connection.wait(readers, timeout)
        sweep()
        return got

    def _wait_for(self, seq):
        while seq not in self._results:
            self._require_open()
            self._pump(timeout=0.2)
            self._check_workers()

    # -- session protocol (what the engine's stream loop drives) ------------

    def _require_open(self):
        if self._closed:
            raise ReproError("the resident pool is closed")
        if self._broken is not None:
            raise WorkerCrashError(self._broken)

    def configure(self, payload, backend_name):
        """Ship predicate + backend to every worker (no-op if same)."""
        if (payload == self._payload
                and backend_name == self._backend_name):
            return False
        self._payload = payload
        self._backend_name = backend_name
        self.configures += 1
        for handle in self._live():
            handle.task_queue.put(("configure", payload, backend_name))
        return True

    def sync_cache(self):
        """Ship parent-cache entries no worker has seen yet (delta)."""
        if self.atom_cache is None:
            return 0
        entries = [
            entry for entry in self.atom_cache.snapshot()
            if (entry[0], entry[1]) not in self._shipped
        ]
        if not entries:
            return 0
        for handle in self._live():
            handle.task_queue.put(("delta", entries))
        self._shipped.update(
            (fingerprint, key) for fingerprint, key, _ in entries
        )
        self.shipped_entries += len(entries)
        return len(entries)

    def sync(self, timeout=30.0):
        """Barrier: cumulative stats + outstanding deltas from workers."""
        self._require_open()
        pending = {}
        for handle in self._live():
            seq = self._next_seq
            self._next_seq += 1
            handle.task_queue.put(("sync", seq))
            handle.pending_sync.add(seq)
            pending[seq] = handle
        deadline = time.monotonic() + timeout
        while any(seq not in self._sync_results for seq in pending):
            if time.monotonic() > deadline:
                raise ReproError(
                    "resident pool sync barrier timed out"
                )
            self._pump(timeout=0.2)
            self._check_workers()
        for seq, handle in pending.items():
            value = self._sync_results.pop(seq)
            handle.pending_sync.discard(seq)
            if value is None:  # worker died mid-barrier; respawned
                continue
            stats5, delta = value
            self._record_stats(stats5)
            self._merge_delta(delta)
        return self

    def warm_up(self, timeout=30.0):
        """Ship the current cache and barrier until all workers ack."""
        self._require_open()
        self.sync_cache()
        return self.sync(timeout)

    def session(self, payload, backend_name):
        """A transport-protocol facade for one stream over this pool."""
        self._require_open()
        if self._active:
            raise ReproError(
                "a stream is already active on this resident pool; "
                "drain or close it before starting another"
            )
        self.configure(payload, backend_name)
        self.sync_cache()
        self._active = True
        self.sessions += 1
        return _ResidentSession(self)

    def _submit(self, records):
        self._require_open()
        records = list(records)
        seq = self._next_seq
        self._next_seq += 1
        live = self._live()
        if not live:
            self._check_workers()
            live = self._live()
            if not live:
                raise WorkerCrashError(
                    "no live resident workers to dispatch to"
                )
        handle = min(live, key=lambda h: len(h.assigned))
        entry = {"records": records, "worker": handle, "slot": None}
        slot = None
        if batch_slot_bytes(records) <= self.slot_bytes:
            with self._ring_lock:
                if self._free:
                    slot = self._free.pop()
        if slot is not None:
            _write_batch(slot.shm.buf, records)
            entry["slot"] = slot
            handle.task_queue.put(("batch", seq, slot.shm.name))
        else:
            self.fallback_batches += 1
            handle.task_queue.put(("batch-pickled", seq, records))
        handle.assigned.add(seq)
        self._inflight[seq] = entry
        self._order.append(seq)

    def _drain_next(self):
        if not self._order:
            raise ReproError("no batch in flight to drain")
        seq = self._order.pop(0)
        self._wait_for(seq)
        status, value = self._results.pop(seq)
        entry = self._inflight.pop(seq, None)
        if entry is not None and entry["worker"] is not None:
            entry["worker"].assigned.discard(seq)
        if status == "error":
            raise ReproError(
                f"resident worker evaluation failed: {value}"
            )
        packed, count, stats5, delta = value
        self._record_stats(stats5)
        self._merge_delta(delta)
        return _unpack_bits(packed, count), count

    def _record_stats(self, stats5):
        pid, chunks, records, hits, misses = stats5
        self._worker_stats[pid] = {
            "chunks": chunks,
            "records": records,
            "cache_hits": hits,
            "cache_misses": misses,
        }

    def _merge_delta(self, delta):
        if not delta:
            return
        self.delta_entries += len(delta)
        if self.atom_cache is not None:
            merged, skipped = self.atom_cache.merge_snapshot(delta)
            self.merged_entries += merged
            self.merge_skipped += skipped

    def _discard_inflight(self):
        """Abandon every undrained batch (stream abandoned or broken)."""
        for seq in list(self._order):
            entry = self._inflight.pop(seq, None)
            if entry is None:
                continue
            if entry["worker"] is not None:
                entry["worker"].assigned.discard(seq)
            self._release_slot(entry)
            self._results.pop(seq, None)
        self._order.clear()

    # -- reporting + teardown -----------------------------------------------

    def stats(self):
        workers = {
            pid: dict(counters)
            for pid, counters in sorted(self._worker_stats.items())
        }
        return {
            "transport": self.name,
            "mp_context": self.context.get_start_method(),
            "num_workers": self.num_workers,
            "chunks": sum(w["chunks"] for w in workers.values()),
            "records": sum(w["records"] for w in workers.values()),
            "cache_hits": sum(
                w["cache_hits"] for w in workers.values()
            ),
            "cache_misses": sum(
                w["cache_misses"] for w in workers.values()
            ),
            "ring_results": self.ring_results,
            "pickled_results": self.pickled_results,
            "fallback_batches": self.fallback_batches,
            "delta_entries": self.delta_entries,
            "merged_entries": self.merged_entries,
            "merge_skipped": self.merge_skipped,
            "slots": self.num_slots,
            "slot_bytes": self.slot_bytes,
            "resident": True,
            "sessions": self.sessions,
            "configures": self.configures,
            "respawns": self.respawns,
            "shipped_entries": self.shipped_entries,
            "workers": workers,
        }

    @property
    def closed(self):
        return self._closed

    @property
    def broken(self):
        return self._broken

    @property
    def active(self):
        return self._active

    def slot_names(self):
        """Names of the live shared-memory slots (empty once closed)."""
        with self._ring_lock:
            return [slot.shm.name for slot in self._slots]

    def worker_pids(self):
        """PIDs of the currently live workers (fault-injection hook)."""
        return [handle.pid for handle in self._live()]

    def close(self):
        """Tear the pool down (idempotent; graceful stop, then force)."""
        if self._closed:
            return
        self._closed = True
        self._discard_inflight()
        self._results.clear()
        self._sync_results.clear()
        for handle in self._workers:
            if handle is None:
                continue
            with contextlib.suppress(Exception):
                handle.task_queue.put(("stop",))
        for handle in self._workers:
            if handle is None:
                continue
            with contextlib.suppress(Exception):
                handle.process.join(timeout=2.0)
        # the finalizer terminates stragglers, reaps, closes queues
        # and unlinks the slot ring; calling it marks it dead so GC
        # and interpreter exit do not run it again
        self._finalizer()
        with self._ring_lock:
            self._free = []

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        state = "closed" if self._closed else (
            "broken" if self._broken else "open"
        )
        return (
            f"ResidentWorkerPool(workers={self.num_workers}, "
            f"context={self.context.get_start_method()!r}, "
            f"sessions={self.sessions}, {state})"
        )


class _ResidentSession:
    """One stream's transport-protocol view of a resident pool.

    Implements the same ``submit``/``drain``/``in_flight``/``close``/
    ``stats`` surface as a :class:`WorkerTransport`, so the engine's
    parallel stream loop drives both identically — but ``close()``
    only ends the *session* (draining abandoned batches so their
    cache deltas still merge); the pool and its warm workers survive.
    """

    __slots__ = ("_pool", "_closed")

    name = ResidentWorkerPool.name

    def __init__(self, pool):
        self._pool = pool
        self._closed = False

    @property
    def max_in_flight(self):
        return self._pool.max_in_flight

    @property
    def in_flight(self):
        return len(self._pool._order)

    def submit(self, records):
        self._pool._submit(records)

    def drain(self):
        return self._pool._drain_next()

    def stats(self):
        return self._pool.stats()

    def close(self):
        if self._closed:
            return
        self._closed = True
        pool = self._pool
        try:
            # abandoned streams still drain so worker-computed cache
            # deltas merge back — mirroring WorkerTransport semantics —
            # but a broken or closed pool cannot deliver, so discard
            while (pool._order and pool._broken is None
                   and not pool._closed):
                with contextlib.suppress(ReproError):
                    pool._drain_next()
        finally:
            pool._discard_inflight()
            pool._active = False

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


TRANSPORTS = {
    ForkPickleTransport.name: ForkPickleTransport,
    SharedMemoryTransport.name: SharedMemoryTransport,
    ResidentWorkerPool.name: ResidentWorkerPool,
}


def resolve_transport(transport):
    """Accept a transport name or class; return the transport class."""
    if isinstance(transport, type) and (
        issubclass(transport, WorkerTransport)
        or getattr(transport, "resident", False)
    ):
        return transport
    try:
        return TRANSPORTS[transport]
    except (KeyError, TypeError):
        known = ", ".join(sorted(TRANSPORTS))
        raise ReproError(
            f"unknown transport {transport!r} (known: {known})"
        ) from None
