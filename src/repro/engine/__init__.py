"""Unified streaming filter-execution layer.

Every consumer in the repo — the Fig. 4 SoC simulation, the CLI's
``filter``/``bench`` commands, the Sparser/exact baselines and the eval
harness — obtains per-record match bits from one
:class:`FilterEngine`, with pluggable backends:

* ``compiled`` — fused-kernel evaluation
  (:mod:`repro.engine.compiled`): one generated function per filter,
  single selectivity-ordered pass with short-circuiting, the serial
  hot path (and the :class:`repro.serve` gateway default);
* ``vectorized`` — dataset-scale numpy evaluation
  (:mod:`repro.eval.harness`), one sweep per atom, the design-space
  exploration path;
* ``scalar`` — per-record behavioural evaluation
  (:func:`repro.core.composition.evaluate_record`), the reference
  oracle the other paths are cross-checked against.

The engine also executes **chunked streams** behind two pluggable
layers that model the paper's ingest/evaluation boundary explicitly:

* :class:`~repro.engine.sources.ChunkSource` — where bytes come from
  (:class:`FileSource`, :class:`IterableSource`, :class:`SocketSource`,
  an :class:`AsyncSource` adapter, the zero-copy :class:`MmapSource`
  for larger-than-memory regular files, and a :class:`ReadaheadSource`
  wrapper overlapping ingest with evaluation through a bounded
  prefetch thread), with per-source chunk/byte accounting; records are
  reframed across chunk seams by
  :class:`repro.engine.framing.RecordFramer` and evaluated in bounded
  memory;
* :class:`~repro.engine.transport.WorkerTransport` — how framed chunks
  reach ``num_workers`` worker processes
  (:class:`ForkPickleTransport` pickles record lists,
  :class:`SharedMemoryTransport` ships payloads through shared-memory
  slot rings with pickle-free record views), with workers started from
  a warm :class:`AtomCache` snapshot and per-worker counters reported
  via ``engine.stats()``.  The default for ``num_workers > 1`` is the
  :class:`~repro.engine.transport.ResidentWorkerPool`: workers spawn
  once per engine and stay warm across streams, passes and filter
  swaps, receiving incremental cache deltas instead of per-run
  re-snapshots, with respawn-on-death fault tolerance and lifecycle
  hooks (``engine.warm_up()`` / ``drain()`` / ``close()``).

``FilterEngine(cache=True)`` attaches a shared
:class:`~repro.engine.atom_cache.AtomCache`: per-atom match masks and
per-corpus dataset views are memoised by content fingerprint, so
design-space queries sharing atoms, re-streamed chunks and reconfigured
filters reuse previously computed state instead of re-running the
vectorised sweeps.  ``EngineConfig(cache_store=DIR)`` adds a persistent
disk tier (:class:`~repro.engine.cache_store.CacheStore`) under that
cache: LRU-evicted entries demote to an append-mostly on-disk log
instead of vanishing, and misses promote them back in fingerprint
batches — so corpora far larger than the cache's byte cap stream warm,
and a restarted process serves the previous run's entries without
loading the whole cache into RAM.
"""

from .atom_cache import AtomCache, as_atom_cache, dataset_fingerprint
from .cache_store import CacheStore, as_cache_store
from .backends import (
    BACKENDS,
    Backend,
    ScalarBackend,
    VectorizedBackend,
    as_dataset,
    record_matcher,
    resolve_backend,
    resolve_expression,
)
from .compiled import (
    CompiledBackend,
    CompiledKernel,
    SelectivityTracker,
    clear_kernels,
)
from .engine import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_TRANSPORT,
    EngineConfig,
    FilterEngine,
    StreamBatch,
    default_engine,
    scalar_match_bits,
)
from .framing import RecordFramer, iter_file_chunks
from .sources import (
    MMAP_THRESHOLD_BYTES,
    AsyncSource,
    ChunkSource,
    FileSource,
    IterableSource,
    MmapSource,
    ReadaheadSource,
    SocketSource,
    as_chunk_source,
    ingest_dataset,
    ingest_records,
)
from .transport import (
    TRANSPORTS,
    ForkPickleTransport,
    ResidentWorkerPool,
    SharedMemoryTransport,
    WorkerTransport,
    resolve_mp_context,
    resolve_transport,
)

__all__ = [
    "AtomCache",
    "as_atom_cache",
    "dataset_fingerprint",
    "CacheStore",
    "as_cache_store",
    "BACKENDS",
    "Backend",
    "ScalarBackend",
    "VectorizedBackend",
    "as_dataset",
    "record_matcher",
    "resolve_backend",
    "resolve_expression",
    "CompiledBackend",
    "CompiledKernel",
    "SelectivityTracker",
    "clear_kernels",
    "DEFAULT_CHUNK_BYTES",
    "DEFAULT_TRANSPORT",
    "EngineConfig",
    "FilterEngine",
    "StreamBatch",
    "default_engine",
    "scalar_match_bits",
    "RecordFramer",
    "iter_file_chunks",
    "MMAP_THRESHOLD_BYTES",
    "AsyncSource",
    "ChunkSource",
    "FileSource",
    "IterableSource",
    "MmapSource",
    "ReadaheadSource",
    "SocketSource",
    "as_chunk_source",
    "ingest_dataset",
    "ingest_records",
    "TRANSPORTS",
    "ForkPickleTransport",
    "ResidentWorkerPool",
    "SharedMemoryTransport",
    "WorkerTransport",
    "resolve_mp_context",
    "resolve_transport",
]
