"""Unified streaming filter-execution layer.

Every consumer in the repo — the Fig. 4 SoC simulation, the CLI's
``filter``/``bench`` commands, the Sparser/exact baselines and the eval
harness — obtains per-record match bits from one
:class:`FilterEngine`, with pluggable backends:

* ``vectorized`` — dataset-scale numpy evaluation
  (:mod:`repro.eval.harness`), the production path;
* ``scalar`` — per-record behavioural evaluation
  (:func:`repro.core.composition.evaluate_record`), the reference
  oracle the vectorised path is cross-checked against.

The engine also executes **chunked streams**: an iterator of byte
chunks is reframed into records across chunk seams
(:class:`repro.engine.framing.RecordFramer`), each framed chunk is
evaluated with the configured backend in bounded memory, and chunks can
be sharded across ``num_workers`` processes for multi-core throughput.

``FilterEngine(cache=True)`` attaches a shared
:class:`~repro.engine.atom_cache.AtomCache`: per-atom match masks and
per-corpus dataset views are memoised by content fingerprint, so
design-space queries sharing atoms, re-streamed chunks and reconfigured
filters reuse previously computed state instead of re-running the
vectorised sweeps.
"""

from .atom_cache import AtomCache, as_atom_cache, dataset_fingerprint
from .backends import (
    BACKENDS,
    Backend,
    ScalarBackend,
    VectorizedBackend,
    as_dataset,
    record_matcher,
    resolve_backend,
    resolve_expression,
)
from .engine import (
    DEFAULT_CHUNK_BYTES,
    EngineConfig,
    FilterEngine,
    StreamBatch,
    default_engine,
    scalar_match_bits,
)
from .framing import RecordFramer, iter_file_chunks

__all__ = [
    "AtomCache",
    "as_atom_cache",
    "dataset_fingerprint",
    "BACKENDS",
    "Backend",
    "ScalarBackend",
    "VectorizedBackend",
    "as_dataset",
    "record_matcher",
    "resolve_backend",
    "resolve_expression",
    "DEFAULT_CHUNK_BYTES",
    "EngineConfig",
    "FilterEngine",
    "StreamBatch",
    "default_engine",
    "scalar_match_bits",
    "RecordFramer",
    "iter_file_chunks",
]
