"""Persistent on-disk tier under the :class:`AtomCache` (CacheStore).

The in-memory :class:`~repro.engine.atom_cache.AtomCache` is
byte-bounded: streaming a corpus larger than the cap evicts the working
set before it can ever be reused, and a process restart loses
everything.  A :class:`CacheStore` gives evicted entries somewhere to
go — an **append-mostly log** on disk where cold ``(fingerprint, key)``
entries are *demoted* on LRU eviction instead of vanishing, and from
which later misses *promote* them back.

Two design decisions come straight from the batched-access literature
(PAPERS.md — Gagie's batched PBWT prefix-array access, Li's terabase
BWT construction):

* **Promotion happens in fingerprint batches.**  A miss on one atom of
  a corpus chunk almost always precedes misses on that chunk's other
  atoms (a filter evaluates every atom of the expression against the
  same framed batch), so one miss promotes *every* stored entry of
  that fingerprint in a single pass — sorted by file offset, turning
  what would be per-atom random reads into one sequential sweep.
* **The log is append-mostly and index-light.**  Each entry is a small
  pickled ``(fingerprint, key)`` header followed by the pickled array
  payload; opening a store scans headers only (seeking past payloads),
  so a multi-GB store opens without loading a single array into RAM.
  Demoting a key that is already stored is a no-op — fingerprints are
  content hashes, so an existing entry is byte-equivalent by
  construction and the log does not grow on re-demotion churn.

Entries reuse the AtomCache's existing serialization unit — the
``(fingerprint, key, array)`` triple of :meth:`AtomCache.snapshot` /
:meth:`~AtomCache.save` — so anything a snapshot can carry, the store
can hold.  Like those spills, the log is pickle-based: point a store
only at directories the local user controls.

A truncated or corrupt log raises a typed
:class:`~repro.errors.CachePersistenceError` on open, never a raw
pickle/EOF exception.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import threading

from ..errors import CachePersistenceError, ReproError

#: log file name inside the store directory
LOG_NAME = "atoms.log"

#: leading magic: file format identity + version in one token
MAGIC = b"REPRO-CACHESTORE-1\n"

#: per-entry header: little-endian (meta_len, payload_len)
_HEADER = struct.Struct("<QQ")


class CacheStore:
    """Append-mostly on-disk entry log with an in-memory offset index.

    ``directory`` is created if missing; the log lives at
    ``<directory>/atoms.log`` and is reopened (index rebuilt from the
    entry headers, payloads untouched) on every construction, so a
    restarted process serves the previous run's demoted entries
    without ever holding more than one promotion batch in memory.

    ``max_bytes`` (optional) caps the log size: once reached, further
    :meth:`put` calls are skipped (counted in ``appends_skipped``) —
    an append-mostly tier degrades to read-only rather than growing
    without bound.
    """

    def __init__(self, directory, max_bytes=None):
        if max_bytes is not None and max_bytes <= 0:
            raise ReproError("max_bytes must be positive (or None)")
        self.directory = os.fspath(directory)
        self.max_bytes = max_bytes
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, LOG_NAME)
        self._lock = threading.RLock()
        #: (fingerprint, key) -> (payload_offset, payload_len)
        self._index = {}
        #: fingerprint -> [key, ...] in append (== offset) order
        self._by_fingerprint = {}
        self.appends = 0
        self.appends_skipped = 0
        self.reads = 0
        self._closed = False
        self._open_log()

    # -- log plumbing -------------------------------------------------------

    def _corrupt(self, detail):
        raise CachePersistenceError(
            f"{self.path!r} is not a readable CacheStore log: {detail}"
        )

    def _open_log(self):
        fresh = not os.path.exists(self.path)
        if fresh:
            with open(self.path, "wb") as handle:
                handle.write(MAGIC)
        else:
            self._scan_index()
        self._append_handle = open(self.path, "ab")
        self._read_handle = open(self.path, "rb")

    def _scan_index(self):
        """Rebuild the offset index from entry headers (payloads are
        seeked over, never loaded)."""
        size = os.path.getsize(self.path)
        with open(self.path, "rb") as handle:
            if handle.read(len(MAGIC)) != MAGIC:
                self._corrupt("bad or missing magic header")
            position = len(MAGIC)
            while position < size:
                header = handle.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    self._corrupt(
                        f"truncated entry header at byte {position}"
                    )
                meta_len, payload_len = _HEADER.unpack(header)
                meta_end = position + _HEADER.size + meta_len
                payload_end = meta_end + payload_len
                if payload_end > size:
                    self._corrupt(
                        f"truncated entry payload at byte {position} "
                        f"(needs {payload_end - size} more bytes)"
                    )
                meta = handle.read(meta_len)
                try:
                    fingerprint, key = pickle.loads(meta)
                except Exception as err:
                    self._corrupt(
                        f"undecodable entry metadata at byte "
                        f"{position}: {err}"
                    )
                self._remember(fingerprint, key, meta_end, payload_len)
                handle.seek(payload_end)
                position = payload_end

    def _remember(self, fingerprint, key, offset, length):
        full_key = (fingerprint, key)
        if full_key not in self._index:
            self._by_fingerprint.setdefault(fingerprint, []).append(key)
        self._index[full_key] = (offset, length)

    # -- writing (demotion) -------------------------------------------------

    def put(self, fingerprint, key, array):
        """Append one entry; returns True when actually written.

        Already-stored keys are skipped (content-addressed: an existing
        entry under the same fingerprint is byte-equivalent), as are
        appends past ``max_bytes``.
        """
        with self._lock:
            self._require_open()
            if (fingerprint, key) in self._index:
                return False
            meta = pickle.dumps(
                (fingerprint, key), protocol=pickle.HIGHEST_PROTOCOL
            )
            payload = pickle.dumps(
                array, protocol=pickle.HIGHEST_PROTOCOL
            )
            if (self.max_bytes is not None
                    and self.nbytes + _HEADER.size + len(meta)
                    + len(payload) > self.max_bytes):
                self.appends_skipped += 1
                return False
            offset = self._append_handle.tell()
            self._append_handle.write(
                _HEADER.pack(len(meta), len(payload))
            )
            self._append_handle.write(meta)
            self._append_handle.write(payload)
            self._append_handle.flush()
            self._remember(
                fingerprint, key,
                offset + _HEADER.size + len(meta), len(payload),
            )
            self.appends += 1
            return True

    # -- reading (promotion) ------------------------------------------------

    def _load(self, offset, length):
        self._read_handle.seek(offset)
        blob = self._read_handle.read(length)
        if len(blob) < length:
            self._corrupt(f"short payload read at byte {offset}")
        try:
            return pickle.loads(blob)
        except Exception as err:
            self._corrupt(
                f"undecodable entry payload at byte {offset}: {err}"
            )

    def get(self, fingerprint, key):
        """One entry's array, or ``None`` when not stored."""
        with self._lock:
            self._require_open()
            location = self._index.get((fingerprint, key))
            if location is None:
                return None
            self.reads += 1
            return self._load(*location)

    def fingerprint_batch(self, fingerprint):
        """Every stored ``(key, array)`` of one fingerprint, loaded in
        file-offset order — the Gagie-style batched access: one
        sequential sweep instead of per-key random reads."""
        with self._lock:
            self._require_open()
            keys = self._by_fingerprint.get(fingerprint)
            if not keys:
                return []
            located = sorted(
                (self._index[(fingerprint, key)], key) for key in keys
            )
            batch = []
            for (offset, length), key in located:
                self.reads += 1
                batch.append((key, self._load(offset, length)))
            return batch

    # -- bookkeeping --------------------------------------------------------

    def __len__(self):
        return len(self._index)

    def __contains__(self, full_key):
        return full_key in self._index

    def fingerprints(self):
        """The distinct dataset fingerprints with stored entries."""
        with self._lock:
            return list(self._by_fingerprint)

    @property
    def nbytes(self):
        """Current log size in bytes (headers + metadata + payloads)."""
        if self._closed:
            return os.path.getsize(self.path)
        return self._append_handle.tell()

    def stats(self):
        with self._lock:
            return {
                "path": self.path,
                "entries": len(self._index),
                "fingerprints": len(self._by_fingerprint),
                "bytes": self.nbytes,
                "appends": self.appends,
                "appends_skipped": self.appends_skipped,
                "reads": self.reads,
            }

    def _require_open(self):
        if self._closed:
            raise ReproError(f"CacheStore at {self.path!r} is closed")

    def close(self):
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._append_handle.close()
            self._read_handle.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return (
            f"CacheStore({self.directory!r}, entries={len(self)}, "
            f"bytes={self.nbytes})"
        )


def as_cache_store(store):
    """Normalise a ``cache_store`` argument: instance, path, or off."""
    if store is None or store is False:
        return None
    if isinstance(store, CacheStore):
        return store
    if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
        return CacheStore(store)
    if isinstance(store, io.IOBase):
        raise ReproError(
            "cache_store must be a directory path or a CacheStore, "
            "not an open file"
        )
    raise ReproError(
        f"cache_store must be a CacheStore, a directory path or "
        f"None, got {store!r}"
    )
