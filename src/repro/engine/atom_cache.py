"""Shared memoisation of per-atom match masks (the AtomCache).

Phase-1 evaluation is the expensive half of everything this repo does:
each *atom* (string matcher, number-range DFA, structural group) costs a
vectorised sweep over the whole byte stream, and the same atoms recur
constantly — design-space queries share string/value primitives, a
reconfigurable SoC swaps between filters built from overlapping parts,
and a re-run benchmark streams the same chunks again.  The
:class:`AtomCache` amortises that work the way batched PBWT/BWT systems
amortise prefix-array access: compute each (dataset, atom) result once,
then serve every later query from the cached mask.

Keys pair a **dataset fingerprint** (a content hash of the concatenated
record stream) with the atom's :meth:`~repro.core.composition.RawFilter.
cache_key`, so caching is safe across distinct ``Dataset`` objects with
equal content and can never alias datasets whose bytes differ.  Entries
are held in a size-bounded LRU (entry- and byte-capped; the view memo is
count-capped and reported separately in ``stats()``); cached arrays
are frozen (non-writeable) so a hit can be handed out without copying.

The cache also memoises :class:`~repro.eval.harness.DatasetView`
instances per fingerprint — the numeric token matrix and structural
masks are by far the most expensive per-dataset state, and every atom
evaluated against the same corpus shares them.

One :class:`AtomCache` hangs off a :class:`~repro.engine.FilterEngine`
(``FilterEngine(cache=True)``); the engine routes its vectorised
backend, its streaming path and :class:`repro.core.design_space.
DesignSpace` phase-1 evaluation through it.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from collections import OrderedDict

import numpy as np

from ..errors import CachePersistenceError, ReproError
from ..eval.harness import DatasetView, evaluate_atom
from ..eval.harness import evaluate_atoms as harness_evaluate_atoms

#: attribute used to memoise a dataset's fingerprint on the instance
_FINGERPRINT_ATTR = "_atom_cache_fingerprint"


def dataset_fingerprint(dataset):
    """Content hash of a dataset's concatenated record stream.

    Equal record content gives equal fingerprints regardless of object
    identity; any byte difference changes the fingerprint, so stale
    masks can never be served for a changed corpus.  The digest is
    memoised on the dataset instance (the stream itself is immutable
    once built).
    """
    cached = getattr(dataset, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    stream = dataset.stream
    digest = hashlib.blake2b(stream.tobytes(), digest_size=16).digest()
    fingerprint = (int(stream.shape[0]), digest)
    try:
        setattr(dataset, _FINGERPRINT_ATTR, fingerprint)
    except AttributeError:  # slotted/frozen dataset stand-ins
        pass
    return fingerprint


def _freeze(array):
    array = np.asarray(array)
    array.setflags(write=False)
    return array


class AtomCache:
    """Keyed, size-bounded LRU cache of per-atom evaluation arrays.

    Stores every array the evaluation harness memoises per dataset:
    record-level atom masks, string-matcher fire positions and
    token-accept vectors (the needle/DFA-level state the streaming path
    would otherwise rebuild from scratch for every batch).
    """

    def __init__(self, max_entries=1024, max_bytes=128 << 20,
                 max_views=4, store=None):
        if max_entries is not None and max_entries <= 0:
            raise ReproError("max_entries must be positive (or None)")
        if max_bytes is not None and max_bytes <= 0:
            raise ReproError("max_bytes must be positive (or None)")
        if max_views <= 0:
            raise ReproError("max_views must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.max_views = max_views
        #: optional persistent disk tier (:class:`~repro.engine.
        #: cache_store.CacheStore`): LRU-evicted entries demote to it
        #: instead of vanishing, misses probe it and promote whole
        #: fingerprint batches back — see :meth:`attach_store`
        self.store = None  # guarded-by: _lock
        self.tier_hits = 0  # guarded-by: _lock
        self.tier_misses = 0  # guarded-by: _lock
        self.demoted = 0  # guarded-by: _lock
        self.promoted = 0  # guarded-by: _lock
        # (fingerprint, key) -> array
        self._entries = OrderedDict()  # guarded-by: _lock
        # fingerprint -> DatasetView
        self._views = OrderedDict()  # guarded-by: _lock
        #: guards every mutable slot of this cache — the serve-layer
        #: engine pool evaluates batches on several executor threads
        #: against one shared cache, and LRU reordering is not atomic
        #: on its own
        self._lock = threading.RLock()
        self._bytes = 0  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self.inserts = 0  # guarded-by: _lock
        #: when a list, :meth:`put` records every insert here (see
        #: :meth:`track_deltas` — the worker merge-back mechanism)
        self.delta_log = None  # guarded-by: _lock
        if store is not None:
            self.attach_store(store)

    # -- the persistent disk tier -------------------------------------------

    def attach_store(self, store):
        """Attach a persistent disk tier (a :class:`CacheStore` or a
        directory path one is opened at).

        From then on this cache is **tiered**: entries evicted by the
        LRU bounds are demoted to the store (append-mostly, skipped if
        already stored) instead of discarded, and a :meth:`lookup`
        miss probes the store — a store hit promotes *every* stored
        entry of that dataset fingerprint back into memory in one
        sequential batch (the requested key last, so it is the most
        recently used).  ``tier_hits``/``tier_misses``/``demoted``/
        ``promoted`` count the tier traffic in :meth:`stats`.

        Store-served lookups count as cache hits — like a memory hit,
        they avoid recomputing the vectorised sweep; ``tier_hits``
        separates the two in the stats.
        """
        from .cache_store import as_cache_store

        with self._lock:
            self.store = as_cache_store(store)
        return self

    def _demote(self, fingerprint, key, array):  # holds-lock: _lock
        """Spill one LRU-evicted entry to the disk tier (lock held)."""
        if self.store is not None and self.store.put(
            fingerprint, key, array
        ):
            self.demoted += 1

    def _promote(self, fingerprint, key):  # holds-lock: _lock
        """Probe the disk tier for a missed key (lock held).

        Promotes the whole fingerprint batch (one sequential log
        sweep) and returns the requested entry, or ``None`` when the
        store does not hold it either.
        """
        batch = self.store.fingerprint_batch(fingerprint)
        found = any(stored_key == key for stored_key, _ in batch)
        if not found:
            self.tier_misses += 1
            return None
        self.tier_hits += 1
        # requested key inserted last: if the batch alone overflows the
        # LRU bounds, the entry actually being asked for survives
        batch.sort(key=lambda entry: entry[0] == key)
        requested = None
        for stored_key, array in batch:
            if (fingerprint, stored_key) not in self._entries:
                array = self.put(fingerprint, stored_key, array)
                self.promoted += 1
            else:
                array = self._entries[(fingerprint, stored_key)]
            if stored_key == key:
                requested = array
        return requested

    # -- raw entry access ---------------------------------------------------

    def lookup(self, fingerprint, key):
        """The cached array for (fingerprint, key), or ``None``; counts.

        With a disk tier attached, a memory miss probes the store and
        (on a store hit) promotes the whole fingerprint batch; the
        lookup then still counts as a hit — the sweep was not
        recomputed — with ``tier_hits`` recording that the disk tier
        served it.
        """
        with self._lock:
            entry = self._entries.get((fingerprint, key))
            if entry is None and self.store is not None:
                entry = self._promote(fingerprint, key)
                if entry is not None:
                    self.hits += 1
                    return entry
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end((fingerprint, key))
            self.hits += 1
            return entry

    def put(self, fingerprint, key, array):
        """Insert one evaluation array, evicting LRU entries past bounds."""
        array = _freeze(array)
        full_key = (fingerprint, key)
        with self._lock:
            previous = self._entries.pop(full_key, None)
            if previous is not None:
                self._bytes -= previous.nbytes
            self._entries[full_key] = array
            self._bytes += array.nbytes
            self.inserts += 1
            while self._entries and (
                (self.max_entries is not None
                 and len(self._entries) > self.max_entries)
                or (self.max_bytes is not None
                    and self._bytes > self.max_bytes)
            ):
                evicted_key, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1
                # tiered cache: cold entries demote to disk instead of
                # vanishing (no-op when already stored — fingerprints
                # are content hashes, so the log never grows on churn)
                self._demote(evicted_key[0], evicted_key[1], evicted)
            if self.delta_log is not None:
                self.delta_log.append((fingerprint, key, array))
        return array

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, full_key):
        with self._lock:
            return full_key in self._entries

    def clear(self):
        """Drop all entries and memoised views (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._views.clear()
            self._bytes = 0

    # -- dataset views ------------------------------------------------------

    def view_for(self, dataset):
        """The memoised :class:`DatasetView` for a dataset's content.

        Token matrices and structural masks are the heaviest per-dataset
        state; sharing one view across every query touching the same
        corpus is what makes repeated design-space sweeps cheap.

        Views are **count-bounded** (``max_views``), not byte-bounded:
        each memoised view pins its corpus (records, stream, lazily
        built token matrix).  ``stats()['view_bytes']`` reports the
        retained footprint; :meth:`clear` releases it.  For very large
        corpora, prefer a dedicated engine (or clear between runs) over
        the process-wide default engine.
        """
        fingerprint = dataset_fingerprint(dataset)
        with self._lock:
            view = self._views.get(fingerprint)
            if view is None:
                view = DatasetView(dataset)
                self._views[fingerprint] = view
                while len(self._views) > self.max_views:
                    self._views.popitem(last=False)
            else:
                self._views.move_to_end(fingerprint)
            return view

    # -- harness-facing evaluation ------------------------------------------

    def evaluation_cache(self, dataset):
        """A harness-compatible mapping backed by this shared cache."""
        return _EvaluationCache(self, dataset_fingerprint(dataset))

    def evaluate_atoms(self, dataset, atoms):
        """``{atom.cache_key(): mask}`` for many atoms, cache-served."""
        return harness_evaluate_atoms(
            self.view_for(dataset), atoms,
            cache=self.evaluation_cache(dataset),
        )

    def match_bits(self, expr, dataset):
        """Per-record accept bits for one expression, cache-served.

        Returns a fresh writable array (the cached master stays frozen).
        """
        view = self.view_for(dataset)
        bits = evaluate_atom(view, expr, self.evaluation_cache(dataset))
        return np.array(bits, dtype=bool)

    # -- snapshots (worker warm-up, cross-process persistence) --------------

    def snapshot(self, max_bytes=None):
        """Portable entry list ``[(fingerprint, key, array), ...]``.

        Most-recently-used entries first; ``max_bytes`` truncates the
        snapshot (dataset views are deliberately excluded — they pin
        whole corpora and are cheap to rebuild lazily).  Snapshots are
        plain picklable data: ship one to streaming workers so they
        start warm, or persist it with :meth:`save`.
        """
        entries = []
        total = 0
        with self._lock:
            for (fingerprint, key), array in reversed(
                self._entries.items()
            ):
                total += array.nbytes
                if (max_bytes is not None and total > max_bytes
                        and entries):
                    break
                entries.append((fingerprint, key, array))
        return entries

    def load_snapshot(self, entries):
        """Insert snapshot entries (oldest first, preserving recency)."""
        for fingerprint, key, array in reversed(list(entries)):
            self.put(fingerprint, key, array)
        return self

    def track_deltas(self):
        """Start recording every subsequent insert as a delta entry.

        Streaming workers call this right after loading the parent's
        warm snapshot: everything :meth:`put` from then on is *newly
        computed* state the parent does not have yet.
        :meth:`pop_deltas` hands the recorded entries over (and resets
        the log), so each entry ships back exactly once.
        """
        with self._lock:
            self.delta_log = []
        return self

    def pop_deltas(self):
        """Return-and-reset the recorded delta entries (may be empty)."""
        with self._lock:
            if self.delta_log is None:
                return []
            deltas, self.delta_log = self.delta_log, []
            return deltas

    def merge_snapshot(self, entries, record_deltas=True):
        """Merge snapshot entries computed elsewhere into this cache.

        The worker merge-back half of parallel streaming: entries are
        ``(fingerprint, key, array)`` triples (the :meth:`snapshot` /
        :meth:`pop_deltas` wire format).  Keys already present are
        skipped — the fingerprint is a content hash, so an existing
        entry under the same key is byte-equivalent and keeping it
        preserves this cache's recency order (conflict-free by
        construction).  New entries go through :meth:`put`, so the
        LRU entry/byte bounds hold exactly as for local inserts.

        ``record_deltas=False`` keeps the merged entries out of the
        :meth:`track_deltas` log: a resident worker merging the
        *parent's* incremental cache sync must not echo those same
        entries back to the parent on its next result.

        Returns ``(merged, skipped)`` entry counts.
        """
        merged = skipped = 0
        with self._lock:
            saved_log = self.delta_log
            if not record_deltas:
                self.delta_log = None
            try:
                for fingerprint, key, array in entries:
                    if (fingerprint, key) in self._entries:
                        skipped += 1
                        continue
                    self.put(fingerprint, key, array)
                    merged += 1
            finally:
                if not record_deltas:
                    self.delta_log = saved_log
        return merged, skipped

    def save(self, path, max_bytes=None):
        """Spill the cache's entries to ``path`` (pickle format).

        A later process (or CLI invocation) over the same corpus starts
        warm via :meth:`from_file` — the cross-process persistence
        counterpart of shipping a snapshot to streaming workers.

        The spill is a pickle: loading one executes whatever it
        contains, so :meth:`from_file` must only be pointed at paths
        the local user controls (the same trust model as any pickle-
        based cache file) — never at downloaded or shared-writable
        artifacts.
        """
        with open(path, "wb") as handle:
            pickle.dump(
                {"format": 1, "entries": self.snapshot(max_bytes)},
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        return path

    @classmethod
    def from_file(cls, path, **kwargs):
        """An :class:`AtomCache` preloaded from a :meth:`save` spill.

        ``path`` must be trusted: spills are pickles, and unpickling
        runs before the format check can reject foreign content (see
        :meth:`save`).

        A truncated or otherwise undecodable spill raises a typed
        :class:`~repro.errors.CachePersistenceError` (a
        :class:`ReproError`) instead of leaking a raw
        ``EOFError``/``UnpicklingError`` from pickle.
        """
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except OSError:
            raise
        except Exception as err:
            raise CachePersistenceError(
                f"{path!r} is not a readable AtomCache spill "
                f"(truncated or corrupt): {err}"
            ) from err
        if (
            not isinstance(payload, dict)
            or payload.get("format") != 1
            or "entries" not in payload
        ):
            raise CachePersistenceError(
                f"{path!r} is not an AtomCache spill file"
            )
        try:
            return cls(**kwargs).load_snapshot(payload["entries"])
        except (TypeError, ValueError) as err:
            raise CachePersistenceError(
                f"{path!r} holds malformed AtomCache entries: {err}"
            ) from err

    # -- reporting ----------------------------------------------------------

    @property
    def nbytes(self):
        with self._lock:
            return self._bytes

    def view_bytes(self):
        """Approximate bytes retained by the memoised dataset views
        (corpus stream + token matrix where already built)."""
        total = 0
        with self._lock:
            for view in self._views.values():
                total += view.dataset.total_bytes
                token_view = getattr(view, "_token_view", None)
                if token_view is not None:
                    total += int(token_view[0].nbytes)
        return total

    def stats(self):
        """Counters snapshot: hits/misses/evictions/entries/bytes.

        With a disk tier attached, ``tier_hits``/``tier_misses`` count
        store probes on memory misses, ``demoted``/``promoted`` count
        entries spilled to / reloaded from the tier, and ``store``
        carries the store's own counters (entries, log bytes, reads).
        """
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "evictions": self.evictions,
                "inserts": self.inserts,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "views": len(self._views),
                "view_bytes": self.view_bytes(),
                "tier_hits": self.tier_hits,
                "tier_misses": self.tier_misses,
                "demoted": self.demoted,
                "promoted": self.promoted,
                "store": (
                    self.store.stats() if self.store is not None
                    else None
                ),
            }

    def __repr__(self):
        stats = self.stats()
        return (
            f"AtomCache(entries={stats['entries']}, "
            f"bytes={stats['bytes']}, hits={stats['hits']}, "
            f"misses={stats['misses']})"
        )


class _EvaluationCache:
    """Dict protocol bridging the harness to one shared :class:`AtomCache`.

    The harness treats its cache as a plain mapping.  This adapter
    checks a per-evaluation local overlay first (intra-expression reuse,
    and a strong reference so an entry evicted from the shared LRU
    mid-evaluation cannot disappear under the harness), then the shared
    store.  Everything written lands in both.
    """

    __slots__ = ("_shared", "_fingerprint", "_local")

    def __init__(self, shared, fingerprint):
        self._shared = shared
        self._fingerprint = fingerprint
        self._local = {}

    def __contains__(self, key):
        if key in self._local:
            return True
        entry = self._shared.lookup(self._fingerprint, key)
        if entry is None:
            return False
        self._local[key] = entry
        return True

    def __getitem__(self, key):
        if key not in self:
            raise KeyError(key)
        return self._local[key]

    def __setitem__(self, key, value):
        self._local[key] = self._shared.put(
            self._fingerprint, key, value
        )


def as_atom_cache(cache):
    """Normalise a ``cache`` argument: instance, True (defaults), or off."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return AtomCache()
    if isinstance(cache, AtomCache):
        return cache
    raise ReproError(
        f"cache must be an AtomCache, True or None, got {cache!r}"
    )
