"""Sparser-style CPU raw filtering baseline (Palkar et al. [10]).

Sparser pre-filters raw bytes with SIMD-friendly substring probes before
parsing.  Its two primitives, reimplemented here behaviourally:

* **substring search** — a 2-, 4- or 8-byte slice of a query term,
  searched anywhere in the record (we model the SIMD sweep with
  ``bytes.find``, which is the correct record-level semantics);
* **key-value search** — two substrings that must co-occur, the second
  within a byte window after the first (Sparser's co-occurrence probe).

Sparser also has an *optimizer* that draws a calibration sample, measures
each candidate probe's passthrough rate and estimated cost, and picks the
cheapest sufficient cascade.  :func:`optimize_cascade` reproduces that
loop (greedy joint-passthrough minimisation, like the original's
cascade-of-ANDs over the top probes).

The crucial limitation the paper contrasts against: Sparser cannot
express number ranges, so for queries whose selectivity lives in numeric
predicates (the IoT case) its achievable FPR is bounded by string
selectivity alone.  The comparison benchmark shows exactly that gap.

Probes and cascades plug into the unified execution layer
(:mod:`repro.engine`): substring probes lower to raw-filter expressions
via ``as_raw_filter`` so the engine's vectorised backend evaluates them
through the same audited harness path as the paper's filters, and every
``match_array`` here delegates to the engine rather than running a
private loop.
"""

from __future__ import annotations

import numpy as np

from ..errors import QueryError

PROBE_LENGTHS = (2, 4, 8)


def _engine_match_array(predicate, dataset):
    """Evaluate a probe through the shared engine.

    Lowering to a raw-filter expression first (when the probe supports
    it) hands the engine a plain expression, which its vectorised
    backend evaluates through the harness; probes without an expression
    form run on the engine's scalar reference path.
    """
    from ..engine import (
        default_engine,
        resolve_expression,
        scalar_match_bits,
    )

    expr = resolve_expression(predicate)
    if expr is not None:
        return default_engine().match_bits(expr, dataset)
    return scalar_match_bits(predicate, dataset)


class SubstringProbe:
    """A raw substring probe (Sparser's main primitive)."""

    __slots__ = ("needle",)

    def __init__(self, needle):
        if isinstance(needle, str):
            needle = needle.encode("utf-8")
        if not needle:
            raise QueryError("empty probe")
        self.needle = bytes(needle)

    def matches(self, record):
        return self.needle in record

    def as_raw_filter(self):
        """Engine hook: a probe is a full-length string comparison."""
        from ..core import composition as comp
        from ..errors import ReproError

        try:
            return comp.full(self.needle)
        except ReproError as err:
            # e.g. needles containing record separators have no
            # expression form; the engine falls back to matches()
            raise NotImplementedError(str(err)) from err

    def match_array(self, dataset):
        return _engine_match_array(self, dataset)

    def cost(self):
        """Relative evaluation cost (longer probes cost a little more)."""
        return 1.0 + 0.1 * (len(self.needle) / 8.0)

    def __repr__(self):
        return f"SubstringProbe({self.needle!r})"


class KeyValueProbe:
    """Co-occurrence probe: ``value`` within ``window`` bytes after ``key``."""

    __slots__ = ("key", "value", "window")

    def __init__(self, key, value, window=32):
        self.key = key if isinstance(key, bytes) else key.encode("utf-8")
        self.value = (
            value if isinstance(value, bytes) else value.encode("utf-8")
        )
        self.window = window

    def matches(self, record):
        start = 0
        while True:
            key_at = record.find(self.key, start)
            if key_at < 0:
                return False
            window_end = key_at + len(self.key) + self.window
            if record.find(
                self.value, key_at + len(self.key), window_end
            ) >= 0:
                return True
            start = key_at + 1

    def match_array(self, dataset):
        # no raw-filter lowering (the byte-window constraint has no
        # expression-tree equivalent), so the engine runs this scalar
        return _engine_match_array(self, dataset)

    def cost(self):
        return 2.0

    def __repr__(self):
        return f"KeyValueProbe({self.key!r}, {self.value!r})"


def candidate_probes(query_terms, lengths=PROBE_LENGTHS):
    """All substring probes Sparser would consider for the query terms."""
    probes = []
    seen = set()
    for term in query_terms:
        data = term.encode("utf-8") if isinstance(term, str) else term
        for length in lengths:
            if len(data) < length:
                continue
            for offset in range(len(data) - length + 1):
                slice_ = data[offset : offset + length]
                if slice_ not in seen:
                    seen.add(slice_)
                    probes.append(SubstringProbe(slice_))
    return probes


class Cascade:
    """An AND-cascade of probes (Sparser's chosen raw filter)."""

    def __init__(self, probes):
        self.probes = list(probes)

    def matches(self, record):
        return all(probe.matches(record) for probe in self.probes)

    def as_raw_filter(self):
        """Engine hook: an AND over the probes' expression forms."""
        from ..core import composition as comp

        if not self.probes:
            raise NotImplementedError("empty cascade accepts everything")
        children = []
        for probe in self.probes:
            converter = getattr(probe, "as_raw_filter", None)
            if converter is None:
                raise NotImplementedError(
                    f"{probe!r} has no raw-filter form"
                )
            children.append(converter())
        if len(children) == 1:
            return children[0]
        return comp.And(children)

    def match_array(self, dataset):
        return _engine_match_array(self, dataset)

    def cost(self):
        return sum(probe.cost() for probe in self.probes)

    def __repr__(self):
        inner = " & ".join(repr(p) for p in self.probes)
        return f"Cascade({inner})"


def optimize_cascade(query_terms, calibration_dataset, max_probes=2,
                     lengths=PROBE_LENGTHS, must_cover=None):
    """Sparser's optimizer: pick the lowest-passthrough probe cascade.

    Args:
        query_terms: strings the query ANDs over (Sparser may probe any).
        calibration_dataset: sample of records for rate estimation.
        max_probes: cascade depth (the original uses small cascades).
        must_cover: terms that may NOT be dropped (OR-semantics guard);
            unused for the conjunctive RiotBench queries.
    Returns:
        the chosen :class:`Cascade`.
    """
    probes = candidate_probes(query_terms, lengths)
    if not probes:
        raise QueryError("no candidate probes")
    rates = [
        (probe.match_array(calibration_dataset), probe) for probe in probes
    ]
    # greedy: repeatedly add the probe that minimises joint passthrough
    chosen = []
    current = np.ones(len(calibration_dataset), dtype=bool)
    for _ in range(max_probes):
        best = None
        best_rate = None
        for mask, probe in rates:
            if any(probe.needle == c.needle for c in chosen):
                continue
            joint = float((current & mask).mean())
            if best_rate is None or joint < best_rate - 1e-12:
                best_rate = joint
                best = (mask, probe)
        if best is None:
            break
        mask, probe = best
        previous_rate = float(current.mean())
        if best_rate > previous_rate - 1e-9 and chosen:
            break  # no improvement; stop growing the cascade
        chosen.append(probe)
        current &= mask
    return Cascade(chosen)
