"""The exact parse-and-evaluate oracle (the baseline CPU path).

This is what a stream processor without raw filtering does: parse every
record, evaluate the query on the typed values.  It defines ground truth
for every FPR in the reproduction and models the per-record parse cost
that raw filtering avoids.

An :class:`ExactFilter` is a valid engine predicate
(:mod:`repro.engine`): its ``matches`` method serves the engine's
scalar path and its ``match_array`` the dataset-level path, so oracle
accuracy comparisons run through the same execution layer as the raw
filters and the Sparser baseline.
"""

from __future__ import annotations

import numpy as np

from ..jsonpath.parser import loads


class ExactFilter:
    """Parse each record and apply the query oracle."""

    def __init__(self, query):
        self.query = query
        self.records_parsed = 0
        self.bytes_parsed = 0

    def matches(self, record_bytes):
        self.records_parsed += 1
        self.bytes_parsed += len(record_bytes)
        return self.query.matches(loads(record_bytes))

    def match_array(self, dataset):
        """Oracle booleans (uses pre-parsed values when available)."""
        self.records_parsed += len(dataset)
        self.bytes_parsed += dataset.total_bytes
        return np.asarray(self.query.truth_array(dataset), dtype=bool)

    def reset_counters(self):
        self.records_parsed = 0
        self.bytes_parsed = 0


def filtered_pipeline_stats(accept_mask, dataset, query):
    """Simulate raw-filter + parser pipeline bookkeeping.

    Returns parse workload with and without the raw filter, plus result
    correctness (the surviving set must contain every true match).
    """
    accept_mask = np.asarray(accept_mask, dtype=bool)
    truth = query.truth_array(dataset)
    lengths = np.fromiter(
        (len(record) for record in dataset),
        dtype=np.int64,
        count=len(dataset),
    )
    return {
        "records_total": len(dataset),
        "records_parsed_unfiltered": len(dataset),
        "records_parsed_filtered": int(accept_mask.sum()),
        "bytes_parsed_unfiltered": int(lengths.sum()),
        "bytes_parsed_filtered": int(lengths[accept_mask].sum()),
        "missing_matches": int(np.count_nonzero(truth & ~accept_mask)),
    }
