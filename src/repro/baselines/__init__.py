"""Comparator implementations: Sparser-style CPU raw filter, exact oracle."""

from .exact import ExactFilter, filtered_pipeline_stats
from .sparser import (
    Cascade,
    KeyValueProbe,
    SubstringProbe,
    candidate_probes,
    optimize_cascade,
)

__all__ = [
    "ExactFilter",
    "filtered_pipeline_stats",
    "Cascade",
    "KeyValueProbe",
    "SubstringProbe",
    "candidate_probes",
    "optimize_cascade",
]
