"""Command-line interface: ``python -m repro.cli <command>``.

Eight subcommands cover the library's main workflows:

* ``generate`` — write one of the synthetic benchmark datasets as NDJSON;
* ``explore``  — run design-space exploration for a RiotBench query and
  print the Pareto front (Tables V-VII style);
* ``synth``    — synthesise a raw-filter expression and report LUT/FF
  costs (expression given in a compact prefix syntax, see below);
* ``filter``   — apply a raw filter to an NDJSON stream, emitting only
  accepted records (the software twin of one FPGA lane).  The stream is
  chunked through the unified :class:`repro.engine.FilterEngine`, so
  corpora far larger than memory filter in bounded space; backend,
  chunk size and worker count are selectable;
* ``bench``    — measure software filtering throughput of the engine
  backends over a generated corpus (``--json PATH`` writes a
  machine-readable result document);
* ``serve``    — run the long-lived multi-tenant filter gateway
  (``repro.serve``); ``--status`` queries a running gateway instead;
* ``submit``   — stream an NDJSON file through a running gateway and
  emit the accepted records;
* ``lint``     — run the repo's static analysis passes
  (:mod:`repro.analysis`): kernel-verifier self-check, lock-discipline
  checker, resource-lifecycle linter.  Exit 1 on non-baselined
  findings (the CI gate).

Filter expressions use a small s-expression-free syntax::

    s:1:temperature              sB matcher  (B may be 1..N, N, or dfa)
    v:float:0.7:35.1             value range (kind int|float; '-' = open)
    and(...) / or(...)           record-level combination
    group(...)                   structural scope combination

Example::

    python -m repro.cli synth \
        "and(group(s:1:temperature,v:float:0.7:35.1),v:int:12:49)"
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import os
import socket
import sys
import tempfile
import threading
import time

from . import core
from .core.design_space import DesignSpace
from .data import ALL_QUERIES, inflate, load_dataset
from .engine import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_TRANSPORT,
    TRANSPORTS,
    AtomCache,
    FileSource,
    FilterEngine,
    MmapSource,
    ReadaheadSource,
    SocketSource,
)
from .errors import QueryError, ReproError
from .eval.report import render_table


# ---------------------------------------------------------------------------
# expression parsing
# ---------------------------------------------------------------------------

def parse_filter_expression(text):
    """Parse the CLI's compact raw-filter syntax into an expression tree."""
    parser = _ExprParser(text)
    expr = parser.parse()
    parser.expect_end()
    return expr


class _ExprParser:
    def __init__(self, text):
        self.text = text.strip()
        self.pos = 0

    def error(self, message):
        raise QueryError(f"{message} (at {self.pos} in {self.text!r})")

    def peek(self):
        if self.pos < len(self.text):
            return self.text[self.pos]
        return None

    def expect_end(self):
        if self.pos != len(self.text):
            self.error("trailing input")

    def parse(self):
        for keyword, builder in (
            ("and(", lambda kids: core.And(kids)),
            ("or(", lambda kids: core.Or(kids)),
            ("group(", lambda kids: core.Group(kids)),
            ("kvgroup(", lambda kids: core.Group(kids, comma_scoped=True)),
        ):
            if self.text.startswith(keyword, self.pos):
                self.pos += len(keyword)
                children = [self.parse()]
                while self.peek() == ",":
                    self.pos += 1
                    children.append(self.parse())
                if self.peek() != ")":
                    self.error("expected ')'")
                self.pos += 1
                return builder(children)
        return self._leaf()

    def _leaf(self):
        start = self.pos
        depth = 0
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in ",)" and depth == 0:
                break
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
            self.pos += 1
        token = self.text[start : self.pos]
        if not token:
            self.error("expected a primitive")
        return _parse_leaf(token, self)


def _parse_leaf(token, parser):
    fields = token.split(":")
    kind = fields[0]
    if kind == "s":
        if len(fields) != 3:
            parser.error("string primitive is s:<block>:<needle>")
        block_text, needle = fields[1], fields[2]
        if block_text == "N":
            return core.full(needle)
        if block_text == "dfa":
            return core.dfa(needle)
        return core.s(needle, int(block_text))
    if kind == "v":
        if len(fields) != 4:
            parser.error("value primitive is v:<int|float>:<lo>:<hi>")
        number_kind = fields[1]
        lo = None if fields[2] == "-" else fields[2]
        hi = None if fields[3] == "-" else fields[3]
        if number_kind == "int":
            lo = int(lo) if lo is not None else None
            hi = int(hi) if hi is not None else None
        return core.v(lo, hi, kind=number_kind)
    if kind == "re":
        if len(fields) < 2:
            parser.error("regex primitive is re:<pattern>")
        return core.RegexPredicate(":".join(fields[1:]))
    parser.error(f"unknown primitive kind {kind!r}")


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def cmd_generate(args):
    dataset = load_dataset(args.dataset, args.records, seed=args.seed)
    out = sys.stdout.buffer if args.output == "-" else open(
        args.output, "wb"
    )
    try:
        for record in dataset:
            out.write(record + b"\n")
    finally:
        if out is not sys.stdout.buffer:
            out.close()
    print(
        f"wrote {len(dataset)} records ({dataset.total_bytes} bytes) "
        f"of {args.dataset}",
        file=sys.stderr,
    )
    return 0


def cmd_explore(args):
    query = ALL_QUERIES[args.query]
    dataset = load_dataset(query.dataset_name, args.records)
    space = DesignSpace(query, dataset)
    points = space.explore()
    front = space.pareto(points, epsilon=args.epsilon,
                         exact_luts=not args.fast)
    rows = [
        [point.expr.notation(), f"{point.fpr:.3f}", point.luts]
        for point in front
    ]
    print(render_table(
        ["Raw-filter configuration", "FPR", "LUTs"],
        rows,
        title=(
            f"Pareto front for {query.name} over "
            f"{space.num_configurations()} configurations"
        ),
    ))
    return 0


def cmd_synth(args):
    expr = parse_filter_expression(args.expression)
    from .hw.circuits import build_raw_filter_circuit

    circuit = build_raw_filter_circuit(expr)
    stats = circuit.stats()
    print(f"expression : {expr.notation()}")
    print(f"LUTs       : {stats['luts']}")
    print(f"flip-flops : {stats['ffs']}")
    print(f"logic depth: {stats['depth']}")
    print(f"AIG nodes  : {stats['aig_ands']}")
    return 0


def _load_cache(args):
    """The engine cache implied by --cache-file (warm when it exists)."""
    max_bytes = getattr(args, "cache_max_bytes", None)
    bound = {} if max_bytes is None else {"max_bytes": max_bytes}
    path = getattr(args, "cache_file", None)
    if path:
        if os.path.exists(path):
            return AtomCache.from_file(path, **bound)
        return AtomCache(**bound)
    if max_bytes is not None or getattr(args, "cache_store", None):
        # a byte cap or a disk tier needs an in-memory cache to act
        # on; the engine attaches the store itself
        # (EngineConfig.cache_store)
        return AtomCache(**bound)
    return getattr(args, "cache", False) or None


def _save_cache(args, engine):
    path = getattr(args, "cache_file", None)
    if path and engine.atom_cache is not None:
        engine.atom_cache.save(path)
        print(f"atom cache spilled to {path}", file=sys.stderr)


def _engine_from_args(args):
    return FilterEngine(
        backend=getattr(args, "backend", "vectorized"),
        chunk_bytes=args.chunk_bytes,
        num_workers=args.workers,
        transport=args.transport,
        mp_context=args.mp_context,
        cache=_load_cache(args),
        cache_store=getattr(args, "cache_store", None),
    )


def _peak_rss_bytes():
    """This process's peak resident set size, in bytes (or ``None``).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalised
    here so every BENCH_*.json carries comparable numbers and memory
    regressions are machine-visible.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(peak)
    return int(peak) * 1024


def _parse_endpoint(text):
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError(
            f"socket source needs --input host:port, got {text!r}"
        )
    return host, int(port)


def _open_filter_source(args, chunk_bytes):
    if args.source == "socket":
        return SocketSource(_parse_endpoint(args.input), chunk_bytes)
    if args.source == "mmap":
        if args.input == "-":
            raise ReproError("--source mmap needs a file path, not '-'")
        return MmapSource(args.input, chunk_bytes)
    handle = sys.stdin.buffer if args.input == "-" else args.input
    source = FileSource(handle, chunk_bytes)
    if args.source == "readahead":
        source = ReadaheadSource(source, chunk_bytes=chunk_bytes)
    return source


def _print_worker_stats(engine):
    workers = engine.stats()["workers"]
    if not workers:
        return
    per_worker = ", ".join(
        f"pid {pid}: {w['chunks']} chunks / {w['records']} records"
        + (
            f" ({w['cache_hits']} cache hits)"
            if w["cache_hits"] or w["cache_misses"]
            else ""
        )
        for pid, w in workers["workers"].items()
    )
    print(
        f"workers [{workers['transport']}/"
        f"{workers['mp_context']}]: {per_worker}",
        file=sys.stderr,
    )


def cmd_filter(args):
    expr = parse_filter_expression(args.expression)
    engine = _engine_from_args(args)
    source = _open_filter_source(args, args.chunk_bytes)
    accepted = 0
    total = 0
    out = sys.stdout.buffer
    try:
        for batch in engine.stream(expr, source):
            emitted = batch.accepted
            for record in emitted:
                out.write(record + b"\n")
            if emitted:
                out.flush()  # emit promptly when fed by a live pipe
            accepted = batch.accepted_seen
            total = batch.records_seen
    finally:
        source.close()
        engine.close()
    print(
        f"accepted {accepted}/{total} records "
        f"({expr.notation()})",
        file=sys.stderr,
    )
    _print_worker_stats(engine)
    _save_cache(args, engine)
    return 0


@contextlib.contextmanager
def _bench_source(kind, ndjson, chunk_bytes):
    """One streaming pass over the corpus through the chosen ingest.

    ``memory`` streams in-process chunks, ``file`` reads a real
    temporary NDJSON file, ``mmap`` maps one (zero-copy windows),
    ``readahead`` wraps the file read in a bounded prefetch thread
    (ingest overlapped with evaluation), ``socket`` receives the
    corpus from a feeder thread over a local socket pair — so the
    benchmark measures the source layer actually in use, not only
    evaluation.
    """
    if kind == "memory":
        yield FileSource(io.BytesIO(ndjson), chunk_bytes)
    elif kind in ("file", "mmap", "readahead"):
        with tempfile.NamedTemporaryFile(suffix=".ndjson") as handle:
            handle.write(ndjson)
            handle.flush()
            if kind == "mmap":
                source = MmapSource(handle.name, chunk_bytes)
            else:
                source = FileSource(handle.name, chunk_bytes)
                if kind == "readahead":
                    source = ReadaheadSource(source,
                                             chunk_bytes=chunk_bytes)
            try:
                yield source
            finally:
                source.close()
    elif kind == "socket":
        feeder_end, engine_end = socket.socketpair()

        def feed():
            with contextlib.suppress(OSError):
                feeder_end.sendall(ndjson)
            feeder_end.close()

        thread = threading.Thread(target=feed, daemon=True)
        thread.start()
        try:
            yield SocketSource(engine_end, chunk_bytes)
        finally:
            engine_end.close()
            thread.join(timeout=5)
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown bench source {kind!r}")


def _merge_back_line(engine, backend, repeat, previous_hit_rate):
    """One per-pass merge-back summary line for parallel cached runs.

    With ``--workers N --repeat M`` the interesting number is the
    worker hit-rate *delta* between passes: pass 1 evaluates cold and
    merges its masks back into the parent cache, later passes ship
    that warm snapshot, so their hit rate should jump.
    """
    workers = engine.stats()["workers"]
    if not workers or engine.atom_cache is None:
        return []
    lookups = workers["cache_hits"] + workers["cache_misses"]
    hit_rate = workers["cache_hits"] / lookups if lookups else 0.0
    line = (
        f"merge-back [{backend} pass {repeat + 1}]: "
        f"{workers['merged_entries']} entries merged from workers, "
        f"worker hit rate {hit_rate:.1%}"
    )
    previous = previous_hit_rate.get(backend)
    if previous is not None:
        line += f" ({(hit_rate - previous) * 100:+.1f} pts vs previous)"
    previous_hit_rate[backend] = hit_rate
    return [line]


def _print_selectivity(table, limit=8):
    """Observed per-atom pass rates, most selective first (stderr)."""
    if not table:
        return
    shown = list(table.items())[:limit]
    print("observed selectivity (pass rate, most selective first):",
          file=sys.stderr)
    for notation, row in shown:
        print(
            f"  {row['selectivity']:7.1%}  {notation} "
            f"({row['passed']}/{row['evaluated']})",
            file=sys.stderr,
        )
    hidden = len(table) - len(shown)
    if hidden > 0:
        print(f"  ... {hidden} more atoms", file=sys.stderr)


def _cache_delta(before, after):
    """Per-pass hits/misses movement of the engine's AtomCache."""
    if before is None or after is None:
        return None
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / lookups if lookups else 0.0,
    }


def cmd_bench(args):
    expr = parse_filter_expression(args.expression)
    dataset = load_dataset(args.dataset, args.records, seed=args.seed)
    if args.inflate_bytes:
        dataset = inflate(dataset, args.inflate_bytes)
    ndjson = dataset.stream.tobytes()
    payload = len(ndjson)
    backends = args.backends.split(",")
    engine = _engine_from_args(args)
    rows = []
    merge_lines = []
    passes = []
    previous_hit_rate = {}
    try:
        for backend in backends:
            for repeat in range(args.repeat):
                cache_before = engine.stats()["cache"]
                with _bench_source(
                    args.source, ndjson, args.chunk_bytes
                ) as source:
                    start = time.perf_counter()
                    accepted = records = 0
                    for batch in engine.stream(
                        expr, source, backend=backend.strip()
                    ):
                        accepted = batch.accepted_seen
                        records = batch.records_seen
                    elapsed = time.perf_counter() - start
                    ingested = source.stats()["bytes_read"]
                rate = payload / elapsed if elapsed > 0 else float("inf")
                label = backend.strip()
                if args.repeat > 1:
                    label += f" (pass {repeat + 1})"
                rows.append([
                    label,
                    f"{records}",
                    f"{accepted}",
                    f"{elapsed:.3f}",
                    f"{rate / 1e6:.1f}",
                ])
                merge_lines += _merge_back_line(
                    engine, backend.strip(), repeat, previous_hit_rate
                )
                stats = engine.stats()
                passes.append({
                    "backend": backend.strip(),
                    "pass": repeat + 1,
                    "records": records,
                    "accepted": accepted,
                    "seconds": elapsed,
                    "bytes": payload,
                    "bytes_per_second": rate,
                    "records_per_second": (
                        records / elapsed if elapsed > 0 else None
                    ),
                    # bytes actually delivered by the source layer this
                    # pass (== payload for complete streams) and the
                    # ingest rate they imply
                    "ingest_bytes": ingested,
                    "ingest_bytes_per_second": (
                        ingested / elapsed if elapsed > 0 else None
                    ),
                    # peak RSS as of the end of this pass: memory
                    # regressions show up in every BENCH_*.json, not
                    # only the tiered-ingest benchmark
                    "peak_rss_bytes": _peak_rss_bytes(),
                    "cache_delta": _cache_delta(
                        cache_before, stats["cache"]
                    ),
                    "workers": stats["workers"],
                    # cumulative fused-kernel counters as of this pass
                    "compiled": (
                        dict(stats["compiled"])
                        if stats["compiled"] is not None else None
                    ),
                })
    finally:
        # resident pools survive across passes (that is the point of
        # the benchmark's warm rows) and come down with the engine
        engine.close()
    print(render_table(
        ["Backend", "Records", "Accepted", "Seconds", "MB/s"],
        rows,
        title=(
            f"Streaming throughput over {payload} bytes of "
            f"{dataset.name} — {expr.notation()} "
            f"(source={args.source}, chunk={args.chunk_bytes}, "
            f"workers={args.workers}, "
            f"transport={engine.config.transport_name()}, "
            f"cache={'on' if engine.atom_cache is not None else 'off'})"
        ),
    ))
    for line in merge_lines:
        print(line, file=sys.stderr)
    _print_worker_stats(engine)
    _save_cache(args, engine)
    cache_stats = engine.stats()["cache"]
    if cache_stats is not None:
        print(
            "atom cache: "
            f"{cache_stats['hits']} hits / "
            f"{cache_stats['misses']} misses "
            f"(hit rate {cache_stats['hit_rate']:.1%}), "
            f"{cache_stats['entries']} entries, "
            f"{cache_stats['bytes']} bytes, "
            f"{cache_stats['evictions']} evictions",
            file=sys.stderr,
        )
        if cache_stats["store"] is not None:
            store = cache_stats["store"]
            print(
                "cache store: "
                f"{cache_stats['demoted']} demoted / "
                f"{cache_stats['promoted']} promoted "
                f"({cache_stats['tier_hits']} tier hits, "
                f"{cache_stats['tier_misses']} tier misses), "
                f"{store['entries']} entries / {store['bytes']} bytes "
                f"at {store['path']}",
                file=sys.stderr,
            )
    final_stats = engine.stats()
    _print_selectivity(final_stats["selectivity"])
    compiled_stats = final_stats["compiled"]
    if compiled_stats is not None:
        print(
            "compiled kernels: "
            f"{compiled_stats['kernels_compiled']} compiled / "
            f"{compiled_stats['kernels_reused']} reused, "
            f"{compiled_stats['atoms_short_circuited']} record-scans "
            "short-circuited",
            file=sys.stderr,
        )
    if args.json:
        document = {
            "benchmark": "repro-bench",
            "dataset": dataset.name,
            "expression": expr.notation(),
            "payload_bytes": payload,
            "config": {
                "chunk_bytes": args.chunk_bytes,
                "workers": args.workers,
                "transport": engine.config.transport_name(),
                "source": args.source,
                "cache": engine.atom_cache is not None,
                "cache_store": getattr(args, "cache_store", None),
                "repeat": args.repeat,
            },
            "peak_rss_bytes": _peak_rss_bytes(),
            "passes": passes,
            "cache": cache_stats,
            "selectivity": final_stats["selectivity"],
            "compiled": compiled_stats,
        }
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, default=str)
            handle.write("\n")
        print(f"bench results written to {args.json}",
              file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# the gateway service (repro.serve)
# ---------------------------------------------------------------------------

def cmd_serve(args):
    # imported lazily: repro.serve pulls asyncio machinery (and this
    # module back, for the expression parser) that plain one-shot CLI
    # invocations never need
    import asyncio

    from .serve import FilterGateway, GatewayClient, render_status

    if args.status:
        client = GatewayClient(
            args.host, args.port, tenant="status", observer=True
        )
        with client:
            snapshot = client.stats()
        if args.json_status:
            print(json.dumps(snapshot, indent=2))
        else:
            print(render_status(snapshot))
        return 0

    if args.cache_file and os.path.exists(args.cache_file):
        # byte-bounded only, matching EnginePool's service default
        cache = AtomCache.from_file(args.cache_file, max_entries=None)
    elif args.cache_max_bytes is not None:
        cache = AtomCache(
            max_entries=None, max_bytes=args.cache_max_bytes
        )
    else:
        cache = True  # EnginePool builds its byte-bounded default
    gateway = FilterGateway(
        args.host, args.port,
        engines=args.engines,
        cache=cache,
        backend=args.backend,
        workers=args.workers,
        cache_store=args.cache_store,
        max_sessions=args.max_sessions,
        max_inflight_bytes=args.max_inflight_bytes,
        queue_chunks=args.queue_chunks,
        drain_timeout=args.drain_timeout,
    )

    async def run():
        await gateway.start()
        workers_note = (
            f", {args.workers} resident workers/engine"
            if args.workers > 1 else ""
        )
        print(
            f"filter gateway listening on {gateway.host}:"
            f"{gateway.port} ({args.engines} engines"
            f"{workers_note}, max {args.max_sessions} sessions)",
            file=sys.stderr,
        )
        try:
            await gateway.serve_forever()
        finally:
            # reached on Ctrl-C too (asyncio.run cancels this task):
            # drain in-flight sessions within --drain-timeout
            await gateway.shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("gateway interrupted, drained", file=sys.stderr)
    if args.cache_file:
        gateway.pool.cache.save(args.cache_file)
        print(f"atom cache spilled to {args.cache_file}",
              file=sys.stderr)
    return 0


def cmd_submit(args):
    from .serve import GatewayClient

    # parse before connecting so a bad expression fails fast, locally
    expr = parse_filter_expression(args.expression)
    source = (
        sys.stdin.buffer if args.input == "-" else args.input
    )
    client = GatewayClient(
        args.host, args.port, tenant=args.tenant,
        chunk_bytes=args.chunk_bytes,
    )
    out = sys.stdout.buffer
    stats = None
    with client:
        for batch in client.submit(args.expression, source):
            for record in batch.accepted:
                out.write(record + b"\n")
            if batch.accepted:
                out.flush()
        if args.stats:
            stats = client.stats()
    summary = client.last_summary or {}
    print(
        f"accepted {summary.get('accepted', 0)}"
        f"/{summary.get('records', 0)} records over "
        f"{summary.get('bytes', 0)} bytes "
        f"({expr.notation()}) via {args.host}:{args.port}",
        file=sys.stderr,
    )
    if stats is not None:
        tenant = stats["tenants"].get(args.tenant, {})
        print(
            f"tenant {args.tenant}: "
            f"cache hit rate {tenant.get('cache_hit_rate', 0.0):.1%}, "
            f"accept rate {tenant.get('accept_rate', 0.0):.1%}",
            file=sys.stderr,
        )
    return 0


def cmd_lint(args):
    """Static analysis over the package (or explicit paths)."""
    from .analysis import (
        DEFAULT_BASELINE_NAME,
        filter_baselined,
        load_baseline,
        run_lint,
        save_baseline,
    )

    rules = tuple(
        rule.strip() for rule in args.rules.split(",") if rule.strip()
    )
    paths = list(args.paths) or None
    root = os.getcwd() if paths is not None else None
    findings = run_lint(paths, rules, root=root)
    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE_NAME):
        baseline_path = DEFAULT_BASELINE_NAME
    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE_NAME
        count = save_baseline(target, findings)
        print(f"wrote {count} suppression(s) to {target}")
        return 0
    suppressed = 0
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        kept = filter_baselined(findings, baseline)
        suppressed = len(findings) - len(kept)
        findings = kept
    for finding in findings:
        print(finding.render())
    summary = (
        f"{len(findings)} finding(s)"
        + (f", {suppressed} baselined" if suppressed else "")
        + f" [rules: {', '.join(rules)}]"
    )
    print(summary, file=sys.stderr)
    return 1 if findings else 0


def build_arg_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Raw filtering of JSON data on FPGAs (DATE 2022) — "
                    "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate",
                              help="emit a synthetic dataset as NDJSON")
    generate.add_argument("dataset",
                          choices=["smartcity", "taxi", "twitter"])
    generate.add_argument("--records", type=int, default=1000)
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--output", "-o", default="-")
    generate.set_defaults(func=cmd_generate)

    explore = sub.add_parser("explore",
                             help="design-space exploration for a query")
    explore.add_argument("query", choices=sorted(ALL_QUERIES))
    explore.add_argument("--records", type=int, default=2000)
    explore.add_argument("--epsilon", type=float, default=0.004)
    explore.add_argument("--fast", action="store_true",
                         help="additive LUT estimates (skip exact synth)")
    explore.set_defaults(func=cmd_explore)

    synth = sub.add_parser("synth",
                           help="synthesise a filter expression")
    synth.add_argument("expression")
    synth.set_defaults(func=cmd_synth)

    filter_cmd = sub.add_parser(
        "filter", help="apply a raw filter to an NDJSON stream"
    )
    filter_cmd.add_argument("expression")
    filter_cmd.add_argument(
        "--input", "-i", default="-",
        help="NDJSON file path, '-' for stdin, or host:port "
             "with --source socket",
    )
    filter_cmd.add_argument(
        "--source", default="file",
        choices=["file", "mmap", "readahead", "socket"],
        help="ingest layer: read --input as a file/stdin, map it "
             "(zero-copy mmap windows), wrap the file read in a "
             "bounded prefetch thread, or connect to it as a "
             "host:port socket endpoint",
    )
    filter_cmd.add_argument(
        "--cache", action=argparse.BooleanOptionalAction,
        default=False,
        help="attach an AtomCache to the engine (repeated chunk "
             "content is served from memory; workers start warm)",
    )
    _add_cache_file_argument(filter_cmd)
    _add_engine_arguments(filter_cmd)
    filter_cmd.set_defaults(func=cmd_filter)

    bench = sub.add_parser(
        "bench",
        help="measure streaming filter throughput per engine backend",
    )
    bench.add_argument("expression")
    bench.add_argument("--dataset", default="smartcity",
                       choices=["smartcity", "taxi", "twitter"])
    bench.add_argument("--records", type=int, default=5000)
    bench.add_argument("--seed", type=int, default=None)
    bench.add_argument("--inflate-bytes", type=int, default=0,
                       help="repeat records up to this stream size")
    bench.add_argument("--backends", default="compiled,vectorized,scalar",
                       help="comma-separated backend names to compare")
    bench.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="memoise per-atom masks in a shared AtomCache "
             "(--no-cache disables; hit-rate stats are reported)",
    )
    bench.add_argument(
        "--repeat", type=int, default=1,
        help="stream the corpus this many times per backend "
             "(with --cache, warm passes show the cache effect)",
    )
    bench.add_argument(
        "--source", default="memory",
        choices=["memory", "file", "mmap", "readahead", "socket"],
        help="ingest layer to benchmark: in-memory chunks, a real "
             "temporary file (plain reads, zero-copy mmap windows, or "
             "readahead-prefetched reads), or a local socket fed by "
             "a thread",
    )
    bench.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write a machine-readable result document "
             "(records/s, bytes/s, per-pass cache deltas, worker "
             "counters) to PATH",
    )
    _add_cache_file_argument(bench)
    _add_engine_arguments(bench, with_backend=False)
    bench.set_defaults(func=cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant streaming filter gateway",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7707)
    serve.add_argument(
        "--engines", type=int, default=2,
        help="FilterEngine pool size (all share one AtomCache)",
    )
    serve.add_argument(
        "--backend", default="compiled",
        choices=["compiled", "vectorized", "scalar"],
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="resident worker processes per engine (spawned once at "
             "startup and kept warm across streams and filter swaps; "
             "1 = in-process evaluation)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=32,
        help="admission control: concurrent session ceiling",
    )
    serve.add_argument(
        "--max-inflight-bytes", type=int, default=64 << 20,
        help="admission control: queued-but-unevaluated byte ceiling "
             "across all sessions",
    )
    serve.add_argument(
        "--queue-chunks", type=int, default=8,
        help="per-session bounded queue depth (backpressure)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0,
        help="graceful-shutdown drain window in seconds",
    )
    serve.add_argument(
        "--status", action="store_true",
        help="query a running gateway's metrics instead of serving",
    )
    serve.add_argument(
        "--json", dest="json_status", action="store_true",
        help="with --status: print the raw JSON snapshot",
    )
    _add_cache_file_argument(serve)
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="stream an NDJSON file through a running gateway",
    )
    submit.add_argument("expression")
    submit.add_argument(
        "--input", "-i", default="-",
        help="NDJSON file path ('-' for stdin)",
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=7707)
    submit.add_argument(
        "--tenant", default="cli",
        help="tenant name this session's metrics are charged to",
    )
    submit.add_argument(
        "--chunk-bytes", type=int, default=64 * 1024,
        help="upload chunk size",
    )
    submit.add_argument(
        "--stats", action="store_true",
        help="print this tenant's gateway metrics after the stream",
    )
    submit.set_defaults(func=cmd_submit)

    lint = sub.add_parser(
        "lint",
        help="run the static analysis passes (kernel verifier, "
             "lock discipline, resource lifecycle)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the installed "
             "repro package source)",
    )
    lint.add_argument(
        "--rules", default="locks,lifecycle,kernels",
        help="comma-separated pass names to run "
             "(locks, lifecycle, kernels)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="suppression file of known findings (default: "
             "./lint-baseline.json when present)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings "
             "instead of failing on them",
    )
    lint.set_defaults(func=cmd_lint)
    return parser


def _add_cache_file_argument(parser):
    parser.add_argument(
        "--cache-file", default=None,
        help="spill/reload the AtomCache at this path so repeated "
             "invocations over the same corpus start warm (implies "
             "--cache; the spill is a pickle — use trusted, "
             "user-owned paths only)",
    )
    parser.add_argument(
        "--cache-store", default=None, metavar="DIR",
        help="persistent disk tier under the AtomCache (implies "
             "--cache): LRU-evicted entries demote to an append-"
             "mostly log in DIR instead of vanishing, misses promote "
             "them back in fingerprint batches — corpora far larger "
             "than the cache cap stream warm, and restarts serve "
             "warm without loading the whole cache into RAM "
             "(pickle-based; use trusted, user-owned directories "
             "only)",
    )
    parser.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="N",
        help="byte cap for the in-memory AtomCache (implies --cache); "
             "combine with --cache-store to exercise demote/promote "
             "churn deliberately",
    )


def _add_engine_arguments(parser, with_backend=True):
    if with_backend:
        parser.add_argument(
            "--backend", default="vectorized",
            choices=["compiled", "vectorized", "scalar", "auto"],
            help="engine evaluation backend",
        )
    parser.add_argument(
        "--chunk-bytes", type=int, default=DEFAULT_CHUNK_BYTES,
        help="streaming chunk size (bounds resident memory)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="shard chunks across this many worker processes",
    )
    parser.add_argument(
        "--transport", default=DEFAULT_TRANSPORT,
        choices=sorted(TRANSPORTS),
        help="how framed chunks reach the workers: pickled record "
             "lists, or shared-memory slot rings with pickle-free "
             "record views",
    )
    parser.add_argument(
        "--mp-context", default=None,
        choices=["fork", "spawn", "forkserver"],
        help="explicit multiprocessing start method for the workers "
             "(default: fork where available, spawn otherwise)",
    )


def main(argv=None):
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
