"""Accuracy metrics for raw filters (paper §I / §IV definitions).

A raw filter may accept records the query rejects (false positives — they
only cost parser time downstream) but must never reject records the query
accepts (false negatives — they would corrupt results).

* **FPR** = FP / (FP + TN): of the records the oracle rejects, the
  fraction the raw filter lets through.  0.0 = the filter is as selective
  as the query itself; 1.0 = the filter never drops a negative record.
* **filtered fraction** = dropped / total: how much of the stream the
  parser never sees (the paper's headline "up to 94.3 % of the raw data
  can be filtered").
"""

from __future__ import annotations

import numpy as np


class FilterMetrics:
    """Confusion-matrix summary of a raw filter against the oracle."""

    __slots__ = ("tp", "fp", "tn", "fn", "total")

    def __init__(self, accepted, truth):
        accepted = np.asarray(accepted, dtype=bool)
        truth = np.asarray(truth, dtype=bool)
        if accepted.shape != truth.shape:
            raise ValueError("accepted/truth shape mismatch")
        self.tp = int(np.count_nonzero(accepted & truth))
        self.fp = int(np.count_nonzero(accepted & ~truth))
        self.tn = int(np.count_nonzero(~accepted & ~truth))
        self.fn = int(np.count_nonzero(~accepted & truth))
        self.total = int(truth.shape[0])

    @property
    def fpr(self):
        """False-positive rate FP / (FP + TN); 0.0 when no negatives."""
        negatives = self.fp + self.tn
        if negatives == 0:
            return 0.0
        return self.fp / negatives

    @property
    def filtered_fraction(self):
        """Fraction of the stream dropped before the parser."""
        if self.total == 0:
            return 0.0
        return (self.tn + self.fn) / self.total

    @property
    def pass_fraction(self):
        return 1.0 - self.filtered_fraction

    @property
    def has_false_negatives(self):
        """Must always be False for a sound raw filter."""
        return self.fn > 0

    def as_dict(self):
        return {
            "tp": self.tp,
            "fp": self.fp,
            "tn": self.tn,
            "fn": self.fn,
            "fpr": self.fpr,
            "filtered_fraction": self.filtered_fraction,
        }

    def __repr__(self):
        return (
            f"FilterMetrics(fpr={self.fpr:.3f}, "
            f"filtered={self.filtered_fraction:.3f}, fn={self.fn})"
        )


def false_positive_rate(accepted, truth):
    """Shorthand for ``FilterMetrics(accepted, truth).fpr``."""
    return FilterMetrics(accepted, truth).fpr


def selectivity(truth):
    """Fraction of records the query itself accepts (Table VIII)."""
    truth = np.asarray(truth, dtype=bool)
    if truth.shape[0] == 0:
        return 0.0
    return float(truth.mean())


def parse_offload(metrics, parse_cost_per_record=1.0, filter_cost=0.0):
    """Estimated parser-work saving from raw filtering.

    With unit parse cost per record, the CPU now parses only accepted
    records; returns the fraction of parse work avoided.
    """
    if metrics.total == 0:
        return 0.0
    parsed_after = (metrics.tp + metrics.fp) * parse_cost_per_record
    parsed_before = metrics.total * parse_cost_per_record
    return 1.0 - (parsed_after + filter_cost) / parsed_before
