"""Pareto-front utilities for the FPR/LUT trade-off (Tables V-VII).

A design point dominates another when it is no worse in both objectives
(FPR and LUTs, both minimised) and strictly better in at least one.
"""

from __future__ import annotations


class DesignPoint:
    """One evaluated raw-filter configuration."""

    __slots__ = ("expr", "fpr", "luts", "meta")

    def __init__(self, expr, fpr, luts, meta=None):
        self.expr = expr
        self.fpr = fpr
        self.luts = luts
        self.meta = meta or {}

    def dominates(self, other, epsilon=0.0):
        no_worse = (
            self.fpr <= other.fpr + epsilon and self.luts <= other.luts
        )
        strictly_better = (
            self.fpr < other.fpr - epsilon or self.luts < other.luts
        )
        return no_worse and strictly_better

    def __repr__(self):
        label = self.expr.notation() if self.expr is not None else "?"
        return f"DesignPoint(fpr={self.fpr:.3f}, luts={self.luts}, {label})"


def pareto_front(points, epsilon=0.0):
    """Non-dominated subset, sorted by descending FPR (paper table order).

    ``epsilon`` merges points whose FPRs differ by less than measurement
    noise so the front is not cluttered by ties.
    """
    ordered = sorted(points, key=lambda p: (p.luts, p.fpr))
    front = []
    best_fpr = None
    for point in ordered:
        if best_fpr is None or point.fpr < best_fpr - epsilon:
            front.append(point)
            best_fpr = point.fpr
    front.sort(key=lambda p: (-p.fpr, p.luts))
    return front


def is_pareto_optimal(point, points, epsilon=0.0):
    return not any(
        other is not point and other.dominates(point, epsilon)
        for other in points
    )
