"""Dataset-scale raw-filter evaluation (the paper's measurement loop).

Evaluation is two-phase:

* **Phase 1** (:class:`DatasetView` + :func:`evaluate_atoms`): every
  *atom* — a primitive, or a structural group — is evaluated once over
  the whole dataset into a per-record boolean array.  All heavy lifting
  is vectorised over the concatenated record stream: window-hit runs for
  string matchers, lock-step DFA stepping over the dataset's numeric
  token matrix for number filters, closed-form string-mask/nesting for
  the structural combiner.
* **Phase 2** (design-space exploration, :mod:`repro.core.design_space`):
  each of the ~10⁵ candidate configurations is a pure boolean
  conjunction of atom arrays, so evaluating its FPR costs a handful of
  numpy ops.

Records are framed with a trailing newline, which closes any trailing
numeric token and never matches any needle, so no matcher state leaks
across records — the precise property the per-lane hardware obtains from
its ``record_reset``.
"""

from __future__ import annotations

import numpy as np

from ..core import composition as comp
from ..core import string_match
from ..core.number_filter import TOKEN_CHAR_TABLE, batch_token_accepts
from ..core.structural import (
    comma_positions,
    scope_close_positions,
    string_mask,
)


class DatasetView:
    """Precomputed vectorised views over one dataset.

    Built once per dataset and shared by every primitive evaluation: the
    numeric token matrix in particular is what lets ten different number
    filters each evaluate in ~max_token_len numpy operations.
    """

    def __init__(self, dataset):
        self.dataset = dataset
        self.stream = dataset.stream
        self.starts = dataset.starts
        self.num_records = len(dataset)
        self._token_view = None
        self._structural_view = None

    # -- numeric tokens -----------------------------------------------------

    @property
    def tokens(self):
        """(matrix, lengths, record_index, end_positions) of all tokens."""
        if self._token_view is None:
            self._token_view = self._build_tokens()
        return self._token_view

    def _build_tokens(self):
        arr = self.stream
        is_token = TOKEN_CHAR_TABLE[arr]
        padded = np.concatenate(([False], is_token, [False]))
        delta = np.diff(padded.astype(np.int8))
        starts = np.flatnonzero(delta == 1)
        ends = np.flatnonzero(delta == -1)
        lengths = ends - starts
        max_len = int(lengths.max()) if lengths.size else 1
        matrix = np.zeros((starts.shape[0], max_len), dtype=np.uint8)
        for column in range(max_len):
            active = lengths > column
            matrix[active, column] = arr[starts[active] + column]
        record_index = (
            np.searchsorted(self.starts, starts, side="right") - 1
        )
        return matrix, lengths, record_index, ends

    # -- structure ------------------------------------------------------------

    @property
    def structure(self):
        """(masked, close_positions, comma_positions, close_record_index)."""
        if self._structural_view is None:
            masked = string_mask(self.stream)
            closes = scope_close_positions(self.stream, masked)
            commas = comma_positions(self.stream, masked)
            close_records = (
                np.searchsorted(self.starts, closes, side="right") - 1
            )
            self._structural_view = (masked, closes, commas, close_records)
        return self._structural_view

    # -- per-atom caches ------------------------------------------------------

    def string_fire_positions(self, needle, block):
        """Sorted global positions where an sB matcher fires."""
        fires = string_match.fire_array(self.stream, needle, block)
        return np.flatnonzero(fires)

    def number_fire_info(self, predicate):
        """(accepted_token_mask) for a NumberPredicate over all tokens."""
        matrix, lengths, _, _ = self.tokens
        return batch_token_accepts(predicate.dfa, matrix, lengths)


def _record_any(view, positions):
    """Per-record bool: any of the given global positions in the record."""
    result = np.zeros(view.num_records, dtype=bool)
    if len(positions):
        records = np.searchsorted(view.starts, positions, side="right") - 1
        result[records] = True
    return result


def evaluate_atom(view, atom, cache):
    """Per-record boolean array for one atom, with sub-result caching."""
    key = atom.cache_key()
    if key in cache:
        return cache[key]
    if isinstance(atom, comp.StringPredicate):
        result = string_match.record_match_array(
            view.stream, view.starts, atom.needle, atom.block
        )
    elif isinstance(atom, comp.NumberPredicate):
        accepted = _number_accepts(view, atom, cache)
        _, _, record_index, _ = view.tokens
        result = np.zeros(view.num_records, dtype=bool)
        if accepted.any():
            result[record_index[accepted]] = True
    elif isinstance(atom, comp.Group):
        result = _evaluate_group(view, atom, cache)
    elif isinstance(atom, (comp.And, comp.Or)):
        children = [
            evaluate_atom(view, child, cache) for child in atom.children
        ]
        combine = np.logical_and if isinstance(atom, comp.And) else (
            np.logical_or
        )
        result = children[0].copy()
        for child in children[1:]:
            combine(result, child, out=result)
    elif isinstance(atom, comp.RegexPredicate):
        result = np.fromiter(
            (atom.matches_record(record) for record in view.dataset),
            dtype=bool,
            count=view.num_records,
        )
    else:
        raise TypeError(f"cannot evaluate atom {atom!r}")
    cache[key] = result
    return result


def _number_accepts(view, atom, cache):
    key = ("tokens-accepted",) + atom.cache_key()
    if key not in cache:
        cache[key] = view.number_fire_info(atom)
    return cache[key]


def _string_fires(view, needle, block, cache):
    key = ("fires", "string", bytes(needle), block)
    if key not in cache:
        cache[key] = view.string_fire_positions(needle, block)
    return cache[key]


def _child_fire_positions(view, child, cache):
    """Sorted global fire positions for a group child primitive."""
    if isinstance(child, comp.StringPredicate):
        if child.block == string_match.DFA_TECHNIQUE:
            # absorbing accept: fires from the first occurrence to record
            # end; approximate per paper usage (never grouped), fall back
            # to the exact per-record path
            raise NotImplementedError(
                "DFA matchers are not used inside structural groups"
            )
        resolved = string_match.resolve_block(child.needle, child.block)
        return _string_fires(view, child.needle, resolved, cache)
    if isinstance(child, comp.NumberPredicate):
        key = ("fires", "number") + child.cache_key()
        if key not in cache:
            accepted = _number_accepts(view, child, cache)
            _, _, _, ends = view.tokens
            cache[key] = ends[accepted]
        return cache[key]
    raise TypeError(f"unsupported group child {child!r}")


def _evaluate_group(view, group, cache):
    _, closes, commas, close_records = view.structure
    if group.comma_scoped:
        boundaries = np.union1d(closes, commas)
        boundary_records = (
            np.searchsorted(view.starts, boundaries, side="right") - 1
        )
    else:
        boundaries = closes
        boundary_records = close_records
    if boundaries.size == 0:
        return np.zeros(view.num_records, dtype=bool)
    satisfied = np.ones(boundaries.shape[0], dtype=bool)
    for child in group.children:
        try:
            positions = _child_fire_positions(view, child, cache)
        except NotImplementedError:
            return np.fromiter(
                (group.matches_record(record) for record in view.dataset),
                dtype=bool,
                count=view.num_records,
            )
        counts = np.searchsorted(positions, boundaries, side="right")
        in_segment = np.diff(counts, prepend=0) > 0
        satisfied &= in_segment
    result = np.zeros(view.num_records, dtype=bool)
    if satisfied.any():
        result[boundary_records[satisfied]] = True
    return result


def evaluate_atoms(view, atoms, cache=None):
    """Evaluate many atoms, sharing one cache; returns {cache_key: array}.

    ``cache`` may be any mapping speaking ``in``/``[]``/``[]=`` — pass a
    :meth:`repro.engine.atom_cache.AtomCache.evaluation_cache` adapter
    to serve repeated atoms across calls from the shared store.
    """
    if cache is None:
        cache = {}
    results = {}
    for atom in atoms:
        results[atom.cache_key()] = evaluate_atom(view, atom, cache)
    return results


def evaluate_expression(view, expr, cache=None):
    """Per-record accept array for a full raw-filter expression."""
    if cache is None:
        cache = {}
    return evaluate_atom(view, expr, cache)
