"""Evaluation harness: vectorised dataset views, metrics, Pareto, reports."""

from .harness import (
    DatasetView,
    evaluate_atom,
    evaluate_atoms,
    evaluate_expression,
)
from .metrics import (
    FilterMetrics,
    false_positive_rate,
    parse_offload,
    selectivity,
)
from .pareto import DesignPoint, is_pareto_optimal, pareto_front
from .report import format_fpr, format_notation, render_scatter, render_table

__all__ = [
    "DatasetView",
    "evaluate_atom",
    "evaluate_atoms",
    "evaluate_expression",
    "FilterMetrics",
    "false_positive_rate",
    "parse_offload",
    "selectivity",
    "DesignPoint",
    "is_pareto_optimal",
    "pareto_front",
    "format_fpr",
    "format_notation",
    "render_scatter",
    "render_table",
]
