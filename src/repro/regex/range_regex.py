"""Derive regular expressions for numeric value ranges (paper §III-B, Fig. 2).

The paper's number-range raw filter works by (step 1) deriving a regular
expression that matches exactly the decimal representations of numbers in
``[lo, hi]`` and (step 2) compiling it to a minimised DFA.  This module
implements step 1 for

* integer ranges (``v(12 <= i <= 49)``), including one-sided bounds
  (Fig. 2 shows ``i >= 35``),
* decimal ("float") ranges (``v(0.7 <= f <= 35.1)``) with exact
  digit-by-digit fraction comparison,
* negative bounds (QS1 uses ``-12.5 <= temperature``), and
* the JSON **exponent escape hatch**: scientific notation (``2.1e3``)
  cannot be range-checked by a DFA, so — exactly as the paper prescribes —
  any token containing a digit immediately followed by ``e``/``E`` is
  accepted unconditionally (a deliberate false-positive source, never a
  false negative).

Bounds are handled as decimal *strings* end-to-end so values like ``0.7``
never suffer binary floating-point rounding.
"""

from __future__ import annotations

from ..errors import RangeBoundError
from .ast import (
    EPSILON,
    NEVER,
    Literal,
    alt,
    concat,
    lit,
    opt,
    plus,
    repeat,
    star,
)
from .charclass import CharClass

_DIGIT = Literal(CharClass.digits())


def _digit_ge(d):
    """CharClass literal for digits >= d (d in 0..9), or NEVER if none."""
    if d > 9:
        return NEVER
    return Literal(CharClass.digit_range(d, 9))


def _digit_le(d):
    if d < 0:
        return NEVER
    return Literal(CharClass.digit_range(0, d))


def _digit_between(lo, hi):
    if lo > hi:
        return NEVER
    return Literal(CharClass.digit_range(lo, hi))


# ---------------------------------------------------------------------------
# Equal-length digit-string comparisons (integer parts)
# ---------------------------------------------------------------------------

def _same_len_ge(s):
    """Equal-length digit strings numerically >= ``s``."""
    if not s:
        return EPSILON
    head = int(s[0])
    rest = repeat(_DIGIT, len(s) - 1, len(s) - 1)
    return alt(
        concat(_digit_ge(head + 1), rest),
        concat(lit(s[0]), _same_len_ge(s[1:])),
    )


def _same_len_le(s):
    """Equal-length digit strings numerically <= ``s``."""
    if not s:
        return EPSILON
    head = int(s[0])
    rest = repeat(_DIGIT, len(s) - 1, len(s) - 1)
    return alt(
        concat(_digit_le(head - 1), rest),
        concat(lit(s[0]), _same_len_le(s[1:])),
    )


def _same_len_range(a, b):
    """Equal-length digit strings with ``a <= value <= b``."""
    if len(a) != len(b):
        raise ValueError("equal-length helper called with unequal lengths")
    if not a:
        return EPSILON
    head_a, head_b = int(a[0]), int(b[0])
    if head_a == head_b:
        return concat(lit(a[0]), _same_len_range(a[1:], b[1:]))
    rest = repeat(_DIGIT, len(a) - 1, len(a) - 1)
    return alt(
        concat(lit(a[0]), _same_len_ge(a[1:])),
        concat(_digit_between(head_a + 1, head_b - 1), rest),
        concat(lit(b[0]), _same_len_le(b[1:])),
    )


def _uint_range(lo, hi):
    """Unsigned decimal integers (no leading zeros) with lo <= v <= hi.

    ``hi=None`` means unbounded above.  Mirrors Fig. 2's construction:
    same-length patterns for each digit count plus a "more digits" tail.
    """
    if lo < 0:
        raise ValueError("lo must be non-negative here")
    lo_str = str(lo)
    options = []
    if hi is None:
        options.append(_same_len_ge_noleadzero(lo_str))
        # every number with strictly more digits than lo (Fig. 2 step 1.3)
        options.append(
            concat(_digit_between(1, 9), repeat(_DIGIT, len(lo_str), None))
        )
        return alt(*options)
    if lo > hi:
        raise ValueError(f"empty integer range [{lo}, {hi}]")
    hi_str = str(hi)
    for width in range(len(lo_str), len(hi_str) + 1):
        floor = 0 if width == 1 else 10 ** (width - 1)
        ceil = 10**width - 1
        a = max(lo, floor)
        b = min(hi, ceil)
        if a > b:
            continue
        options.append(_same_len_range(str(a), str(b)))
    return alt(*options)


def _same_len_ge_noleadzero(s):
    """Like :func:`_same_len_ge` but forbids a leading zero for width > 1."""
    if len(s) <= 1:
        return _same_len_ge(s)
    head = int(s[0])
    rest = repeat(_DIGIT, len(s) - 1, len(s) - 1)
    return alt(
        concat(_digit_between(max(head + 1, 1), 9), rest),
        concat(lit(s[0]), _same_len_ge(s[1:])),
    )


# ---------------------------------------------------------------------------
# Fraction-digit comparisons (after the decimal point)
# ---------------------------------------------------------------------------
#
# Fraction bounds are digit strings with trailing zeros stripped, so a bound
# string is either empty (== 0) or ends in a non-zero digit.  That invariant
# means no suffix of a bound is "all zeros", which keeps the recursions
# below simple.

def _strip_frac(frac):
    return frac.rstrip("0")


def _frac_ge(s):
    """Digit strings f (possibly empty) with 0.f >= 0.s; s is stripped."""
    if not s:
        return star(_DIGIT)
    head = int(s[0])
    return alt(
        concat(_digit_ge(head + 1), star(_DIGIT)),
        concat(lit(s[0]), _frac_ge(s[1:])),
    )


def _frac_le(s):
    """Digit strings f (possibly empty) with 0.f <= 0.s; s is stripped.

    Trailing zeros in f are always harmless (0.50 == 0.5), so when the
    bound is exhausted only zeros may follow.
    """
    if not s:
        return star(lit("0"))
    head = int(s[0])
    options = [EPSILON, concat(lit(s[0]), _frac_le(s[1:]))]
    if head > 0:
        options.append(concat(_digit_le(head - 1), star(_DIGIT)))
    return alt(*options)


def _frac_between(lo_s, hi_s):
    """Digit strings f (possibly empty) with 0.lo_s <= 0.f <= 0.hi_s."""
    if not lo_s:
        return _frac_le(hi_s)
    if not hi_s:
        # require f >= 0.lo_s > 0 while f <= 0: impossible
        return NEVER
    head_lo, head_hi = int(lo_s[0]), int(hi_s[0])
    if head_lo == head_hi:
        return concat(lit(lo_s[0]), _frac_between(lo_s[1:], hi_s[1:]))
    if head_lo > head_hi:
        return NEVER
    return alt(
        concat(lit(lo_s[0]), _frac_ge(lo_s[1:])),
        concat(_digit_between(head_lo + 1, head_hi - 1), star(_DIGIT)),
        concat(lit(hi_s[0]), _frac_le(hi_s[1:])),
    )


def _dot_frac(frac_node):
    """Wrap a fraction pattern as '.' + (>=1 digit satisfying it).

    ``frac_node`` may accept the empty string; we forbid it by intersecting
    with ``[0-9]+`` at composition time.  Since the AST has no intersection
    operator, we use the identity  (f ∩ [0-9]+) = f · ε-removal, realised by
    noting that all our fraction recursions emit alternatives that either
    start with a digit literal or are exactly epsilon.  We therefore strip
    top-level epsilon alternatives structurally.
    """
    stripped = _strip_epsilon(frac_node)
    if stripped is NEVER:
        return NEVER
    return concat(lit("."), stripped)


def _strip_epsilon(node):
    """Remove the empty string from a fraction pattern's language.

    Works for the shapes produced by the ``_frac_*`` recursions: top-level
    alternations whose branches are epsilon, Opt, Star, or digit-leading
    concatenations.
    """
    from . import ast as rast

    if node is EPSILON or isinstance(node, rast.Epsilon):
        return NEVER
    if isinstance(node, rast.Alt):
        branches = [_strip_epsilon(o) for o in node.options]
        return alt(*branches)
    if isinstance(node, rast.Opt):
        return node.inner
    if isinstance(node, rast.Star):
        return plus(node.inner)
    return node


# ---------------------------------------------------------------------------
# Decimal bound parsing
# ---------------------------------------------------------------------------

class DecimalBound:
    """An exact decimal bound: sign, integer digits, fraction digits."""

    __slots__ = ("negative", "int_part", "frac_part")

    def __init__(self, negative, int_part, frac_part):
        self.negative = negative
        self.int_part = int_part  # int
        self.frac_part = frac_part  # digit string, trailing zeros stripped

    @classmethod
    def parse(cls, text):
        text = str(text).strip()
        if not text:
            raise RangeBoundError("empty numeric bound")
        negative = text.startswith("-")
        if text[0] in "+-":
            text = text[1:]
        if "e" in text or "E" in text:
            raise RangeBoundError(
                f"exponent notation not supported in bounds: {text!r}"
            )
        int_text, _, frac_text = text.partition(".")
        if int_text == "":
            int_text = "0"
        if not int_text.isdigit() or (frac_text and not frac_text.isdigit()):
            raise RangeBoundError(f"malformed numeric bound: {text!r}")
        frac = _strip_frac(frac_text)
        value = cls(negative, int(int_text), frac)
        if value.is_zero():
            value.negative = False
        return value

    def is_zero(self):
        return self.int_part == 0 and not self.frac_part

    def is_integer(self):
        return not self.frac_part

    def magnitude(self):
        return DecimalBound(False, self.int_part, self.frac_part)

    def __repr__(self):
        sign = "-" if self.negative else ""
        frac = f".{self.frac_part}" if self.frac_part else ""
        return f"DecimalBound({sign}{self.int_part}{frac})"


def _frac_cmp(a, b):
    """Compare fraction digit strings numerically: -1, 0, or 1."""
    width = max(len(a), len(b))
    a = a.ljust(width, "0")
    b = b.ljust(width, "0")
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def _magnitude_le(a, b):
    if a.int_part != b.int_part:
        return a.int_part < b.int_part
    return _frac_cmp(a.frac_part, b.frac_part) <= 0


def _bound_le(a, b):
    if a.negative and not b.negative:
        return True
    if not a.negative and b.negative:
        return False
    if a.negative:
        return _magnitude_le(b.magnitude(), a.magnitude())
    return _magnitude_le(a, b)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

def integer_range_regex(lo, hi):
    """Regex AST for decimal integer tokens with ``lo <= value <= hi``.

    Either bound may be ``None`` for an open side.  Handles negatives and
    the ``-0`` corner case (accepted whenever 0 is in range).
    """
    if lo is not None and hi is not None and lo > hi:
        raise RangeBoundError(f"empty range [{lo}, {hi}]")
    options = []
    # non-negative branch
    if hi is None or hi >= 0:
        pos_lo = 0 if lo is None else max(lo, 0)
        options.append(_uint_range(pos_lo, hi))
    # negative branch (value in [lo, min(hi, -1)])
    if lo is None:
        mag_lo = 1 if (hi is None or hi >= 0) else -hi
        options.append(concat(lit("-"), _uint_range(mag_lo, None)))
    elif lo < 0:
        mag_hi = -lo
        mag_lo = 1 if (hi is None or hi >= 0) else -hi
        options.append(concat(lit("-"), _uint_range(mag_lo, mag_hi)))
    # "-0" is numerically zero
    zero_in_range = (lo is None or lo <= 0) and (hi is None or hi >= 0)
    if zero_in_range:
        options.append(concat(lit("-"), lit("0")))
    return alt(*options)


def _nonneg_decimal_range(lo, hi):
    """Decimal tokens (no sign) for magnitude range [lo, hi].

    ``lo``/``hi`` are :class:`DecimalBound` magnitudes; ``hi=None`` means
    unbounded above.  Tokens look like ``int`` or ``int.frac``.
    """
    li = lo.int_part
    if hi is None:
        # int part > li with any fraction, or == li with fraction >= lo.frac
        with_bigger_int = concat(
            _uint_range(li + 1, None), opt(concat(lit("."), plus(_DIGIT)))
        )
        at_li = concat(_int_literal(li), _frac_ge_suffix(lo.frac_part))
        return alt(at_li, with_bigger_int)
    ui = hi.int_part
    if li > ui:
        return NEVER
    if li == ui:
        if _frac_cmp(lo.frac_part, hi.frac_part) > 0:
            return NEVER
        return concat(
            _int_literal(li),
            _frac_between_suffix(lo.frac_part, hi.frac_part),
        )
    options = [concat(_int_literal(li), _frac_ge_suffix(lo.frac_part))]
    if ui - li >= 2:
        options.append(
            concat(
                _uint_range(li + 1, ui - 1),
                opt(concat(lit("."), plus(_DIGIT))),
            )
        )
    options.append(concat(_int_literal(ui), _frac_le_suffix(hi.frac_part)))
    return alt(*options)


def _int_literal(value):
    return lit(str(value))


def _frac_ge_suffix(frac):
    """Suffix after the integer part for "fraction >= 0.frac"."""
    if not frac:
        return opt(concat(lit("."), plus(_DIGIT)))
    return _dot_frac(_frac_ge(frac))


def _frac_le_suffix(frac):
    """Suffix after the integer part for "fraction <= 0.frac"."""
    suffix = _dot_frac(_frac_le(frac))
    return alt(EPSILON, suffix)


def _frac_between_suffix(lo_frac, hi_frac):
    options = []
    if not lo_frac:
        options.append(EPSILON)
    body = _dot_frac(_frac_between(lo_frac, hi_frac))
    options.append(body)
    return alt(*options)


def decimal_range_regex(lo, hi):
    """Regex AST for decimal tokens (int or int.frac) in ``[lo, hi]``.

    Bounds are decimal strings/numbers; either may be ``None``.
    """
    lo_bound = DecimalBound.parse(lo) if lo is not None else None
    hi_bound = DecimalBound.parse(hi) if hi is not None else None
    if lo_bound and hi_bound and not _bound_le(lo_bound, hi_bound):
        raise RangeBoundError(f"empty range [{lo}, {hi}]")

    zero = DecimalBound(False, 0, "")
    options = []
    # non-negative branch
    if hi_bound is None or not hi_bound.negative:
        pos_lo = zero
        if lo_bound is not None and not lo_bound.negative:
            pos_lo = lo_bound
        pos_hi = hi_bound
        options.append(_nonneg_decimal_range(pos_lo, pos_hi))
    # negative branch: value in [lo, min(hi, 0)); magnitudes flip
    if lo_bound is None:
        mag_lo = hi_bound.magnitude() if (
            hi_bound is not None and hi_bound.negative
        ) else zero
        options.append(
            concat(lit("-"), _nonneg_decimal_range(mag_lo, None))
        )
    elif lo_bound.negative:
        mag_hi = lo_bound.magnitude()
        mag_lo = hi_bound.magnitude() if (
            hi_bound is not None and hi_bound.negative
        ) else zero
        options.append(
            concat(lit("-"), _nonneg_decimal_range(mag_lo, mag_hi))
        )
    return alt(*options)


def exponent_escape_regex():
    """The paper's exponent rule: accept any token with a digit then e/E.

    Scientific notation can encode the same value in unboundedly many ways
    (``1e+1``, ``10``, ``100e-1``...), which no DFA over the digits can
    range-check.  The paper therefore accepts every candidate number token
    that contains at least one digit immediately followed by ``e``/``E`` —
    a false-positive source, never a false-negative one.
    """
    token_char = Literal(CharClass.number_token_chars())
    return concat(
        star(token_char),
        _DIGIT,
        Literal(CharClass.of("e", "E")),
        star(token_char),
    )


def number_range_regex(lo, hi, kind="float", allow_exponent=True):
    """Complete token regex for a number-range raw filter.

    Args:
        lo, hi: bounds (ints, floats, or decimal strings); ``None`` = open.
        kind: ``"int"`` for integer-only matching (a token like ``12.5``
            will *not* match an int filter — its DFA dies on the ``.``),
            ``"float"`` to accept integer and fractional tokens.
        allow_exponent: include the exponent escape hatch (paper default).
    """
    if lo is None and hi is None:
        raise RangeBoundError("at least one bound is required")
    if kind == "int":
        lo_int = int(lo) if lo is not None else None
        hi_int = int(hi) if hi is not None else None
        body = integer_range_regex(lo_int, hi_int)
    elif kind == "float":
        body = decimal_range_regex(lo, hi)
    else:
        raise RangeBoundError(f"unknown number kind {kind!r}")
    if allow_exponent:
        return alt(body, exponent_escape_regex())
    return body
