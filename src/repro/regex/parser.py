"""A recursive-descent parser for a practical regex subset.

Supported syntax: literals, ``\\`` escapes (incl. ``\\d \\w \\s \\xNN``),
``.``, character classes ``[a-z]`` / ``[^a-z]``, grouping ``( )``,
alternation ``|``, and the quantifiers ``* + ? {m} {m,} {m,n}``.

This is enough for every expression the paper needs (value-range automata,
date formats, the exponent escape hatch) while staying deliberately free of
backreferences and lookaround, which have no DFA equivalent.
"""

from __future__ import annotations

from ..errors import RegexSyntaxError
from .ast import (
    EPSILON,
    Literal,
    alt,
    concat,
    opt,
    plus,
    repeat,
    star,
)
from .charclass import CharClass

_SPECIAL = set("()[]{}|*+?.\\")

_ESCAPE_CLASSES = {
    "d": CharClass.range("0", "9"),
    "D": CharClass.range("0", "9").complement(),
    "w": (
        CharClass.range("a", "z")
        | CharClass.range("A", "Z")
        | CharClass.range("0", "9")
        | CharClass.of("_")
    ),
    "s": CharClass.of(" ", "\t", "\n", "\r", "\f", "\v"),
}
_ESCAPE_CLASSES["W"] = _ESCAPE_CLASSES["w"].complement()
_ESCAPE_CLASSES["S"] = _ESCAPE_CLASSES["s"].complement()

_ESCAPE_CHARS = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "f": "\f",
    "v": "\v",
    "0": "\0",
}


class _Parser:
    def __init__(self, pattern):
        self.pattern = pattern
        self.pos = 0

    # -- helpers -----------------------------------------------------------

    def _error(self, message):
        raise RegexSyntaxError(message, self.pattern, self.pos)

    def _peek(self):
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def _next(self):
        ch = self._peek()
        if ch is None:
            self._error("unexpected end of pattern")
        self.pos += 1
        return ch

    def _eat(self, ch):
        if self._peek() == ch:
            self.pos += 1
            return True
        return False

    # -- grammar -----------------------------------------------------------

    def parse(self):
        node = self._alternation()
        if self.pos != len(self.pattern):
            self._error(f"unexpected character {self._peek()!r}")
        return node

    def _alternation(self):
        options = [self._concatenation()]
        while self._eat("|"):
            options.append(self._concatenation())
        return alt(*options)

    def _concatenation(self):
        parts = []
        while True:
            ch = self._peek()
            if ch is None or ch in ")|":
                break
            parts.append(self._repetition())
        if not parts:
            return EPSILON
        return concat(*parts)

    def _repetition(self):
        node = self._atom()
        while True:
            ch = self._peek()
            if ch == "*":
                self.pos += 1
                node = star(node)
            elif ch == "+":
                self.pos += 1
                node = plus(node)
            elif ch == "?":
                self.pos += 1
                node = opt(node)
            elif ch == "{":
                node = self._counted_repeat(node)
            else:
                return node

    def _counted_repeat(self, node):
        self._next()  # consume '{'
        lo = self._integer()
        hi = lo
        if self._eat(","):
            if self._peek() == "}":
                hi = None
            else:
                hi = self._integer()
        if not self._eat("}"):
            self._error("expected '}' in counted repetition")
        if hi is not None and hi < lo:
            self._error(f"bad repetition bounds {{{lo},{hi}}}")
        return repeat(node, lo, hi)

    def _integer(self):
        start = self.pos
        while self._peek() is not None and self._peek().isdigit():
            self.pos += 1
        if start == self.pos:
            self._error("expected an integer")
        return int(self.pattern[start : self.pos])

    def _atom(self):
        ch = self._peek()
        if ch is None:
            self._error("expected an atom")
        if ch == "(":
            self.pos += 1
            if self.pattern.startswith("?:", self.pos):
                self.pos += 2  # non-capturing groups are the only groups
            node = self._alternation()
            if not self._eat(")"):
                self._error("unbalanced '('")
            return node
        if ch == "[":
            return Literal(self._charclass())
        if ch == ".":
            self.pos += 1
            return Literal(CharClass.full())
        if ch == "\\":
            self.pos += 1
            return Literal(self._escape())
        if ch in "*+?{":
            self._error(f"quantifier {ch!r} with nothing to repeat")
        if ch in ")|":
            self._error(f"unexpected {ch!r}")
        self.pos += 1
        return Literal(CharClass.of(ch))

    def _escape(self):
        ch = self._next()
        if ch in _ESCAPE_CLASSES:
            return _ESCAPE_CLASSES[ch]
        if ch in _ESCAPE_CHARS:
            return CharClass.of(_ESCAPE_CHARS[ch])
        if ch == "x":
            hex_digits = self.pattern[self.pos : self.pos + 2]
            if len(hex_digits) != 2:
                self._error("incomplete \\x escape")
            try:
                code = int(hex_digits, 16)
            except ValueError:
                self._error(f"bad \\x escape {hex_digits!r}")
            self.pos += 2
            return CharClass.of(code)
        return CharClass.of(ch)

    def _charclass(self):
        self._next()  # consume '['
        negate = self._eat("^")
        members = CharClass.empty()
        first = True
        while True:
            ch = self._peek()
            if ch is None:
                self._error("unterminated character class")
            if ch == "]" and not first:
                self.pos += 1
                break
            members = members | self._class_item()
            first = False
        if negate:
            members = members.complement()
        if members.is_empty():
            self._error("empty character class")
        return members

    def _class_item(self):
        lo = self._class_char()
        if isinstance(lo, CharClass):
            return lo
        if self._peek() == "-" and self.pos + 1 < len(self.pattern) and (
            self.pattern[self.pos + 1] != "]"
        ):
            self.pos += 1
            hi = self._class_char()
            if isinstance(hi, CharClass):
                self._error("character class range with a class endpoint")
            if hi < lo:
                self._error(f"reversed class range {chr(lo)}-{chr(hi)}")
            return CharClass.range(lo, hi)
        return CharClass.of(lo)

    def _class_char(self):
        """One class member: an int code, or a CharClass for \\d etc."""
        ch = self._next()
        if ch != "\\":
            return ord(ch)
        esc = self._next()
        if esc in _ESCAPE_CLASSES:
            return _ESCAPE_CLASSES[esc]
        if esc in _ESCAPE_CHARS:
            return ord(_ESCAPE_CHARS[esc])
        if esc == "x":
            hex_digits = self.pattern[self.pos : self.pos + 2]
            if len(hex_digits) != 2:
                self._error("incomplete \\x escape")
            self.pos += 2
            return int(hex_digits, 16)
        return ord(esc)


def parse_regex(pattern):
    """Parse ``pattern`` into a regex AST.

    >>> parse_regex("3[5-9]|[4-9][0-9]").to_pattern()
    '3[5-9]|[4-9][0-9]'
    """
    return _Parser(pattern).parse()
