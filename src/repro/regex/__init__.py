"""Regex engine substrate: AST, parser, NFA, DFA, range-to-regex derivation.

This subpackage is a self-contained regular-expression engine over the byte
alphabet, built exactly for what the paper needs: compile value-range
expressions (and arbitrary user regexes, e.g. date formats) into minimised
DFAs that the hardware layer then turns into circuits.
"""

from .ast import (
    EPSILON,
    NEVER,
    Alt,
    Concat,
    Epsilon,
    Literal,
    Never,
    Opt,
    Plus,
    Regex,
    Repeat,
    Star,
    alt,
    concat,
    lit,
    opt,
    plus,
    repeat,
    star,
)
from .charclass import CharClass, partition_classes
from .dfa import DFA
from .nfa import NFA, build_nfa
from .parser import parse_regex
from .range_regex import (
    DecimalBound,
    decimal_range_regex,
    exponent_escape_regex,
    integer_range_regex,
    number_range_regex,
)

__all__ = [
    "EPSILON",
    "NEVER",
    "Alt",
    "Concat",
    "Epsilon",
    "Literal",
    "Never",
    "Opt",
    "Plus",
    "Regex",
    "Repeat",
    "Star",
    "alt",
    "concat",
    "lit",
    "opt",
    "plus",
    "repeat",
    "star",
    "CharClass",
    "partition_classes",
    "DFA",
    "NFA",
    "build_nfa",
    "parse_regex",
    "DecimalBound",
    "decimal_range_regex",
    "exponent_escape_regex",
    "integer_range_regex",
    "number_range_regex",
]
