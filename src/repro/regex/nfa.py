"""Thompson construction: regex AST -> nondeterministic finite automaton.

States are dense integers.  Transitions are labelled with
:class:`~repro.regex.charclass.CharClass` objects; epsilon moves are kept in
a separate adjacency list.  The NFA is an intermediate form only — use
:func:`repro.regex.dfa.DFA.from_nfa` to determinise.
"""

from __future__ import annotations

from . import ast as rast


class NFA:
    """A Thompson-style NFA with a single start and single accept state."""

    def __init__(self):
        self.num_states = 0
        self.start = None
        self.accept = None
        #: list per state of (CharClass, target) pairs
        self.transitions = []
        #: list per state of epsilon targets
        self.epsilons = []

    def new_state(self):
        index = self.num_states
        self.num_states += 1
        self.transitions.append([])
        self.epsilons.append([])
        return index

    def add_transition(self, src, charclass, dst):
        self.transitions[src].append((charclass, dst))

    def add_epsilon(self, src, dst):
        self.epsilons[src].append(dst)

    # -- queries -----------------------------------------------------------

    def epsilon_closure(self, states):
        """Set of states reachable from ``states`` via epsilon moves."""
        stack = list(states)
        closure = set(states)
        while stack:
            state = stack.pop()
            for target in self.epsilons[state]:
                if target not in closure:
                    closure.add(target)
                    stack.append(target)
        return closure

    def move(self, states, symbol):
        """States reachable from ``states`` by consuming byte ``symbol``."""
        result = set()
        for state in states:
            for charclass, target in self.transitions[state]:
                if symbol in charclass:
                    result.add(target)
        return result

    def accepts(self, data):
        """Slow reference acceptance check (used by tests only)."""
        if isinstance(data, str):
            data = data.encode("utf-8", errors="surrogateescape")
        current = self.epsilon_closure({self.start})
        for byte in data:
            current = self.epsilon_closure(self.move(current, byte))
            if not current:
                return False
        return self.accept in current

    def all_charclasses(self):
        """Every distinct transition label in the automaton."""
        seen = set()
        for edges in self.transitions:
            for charclass, _ in edges:
                seen.add(charclass)
        return seen


def build_nfa(node):
    """Compile a regex AST into an :class:`NFA` via Thompson construction."""
    nfa = NFA()
    start, accept = _build(nfa, node)
    nfa.start = start
    nfa.accept = accept
    return nfa


def _build(nfa, node):
    """Returns (start, accept) fragment for ``node``."""
    if isinstance(node, rast.Epsilon):
        state = nfa.new_state()
        return state, state
    if isinstance(node, rast.Never):
        return nfa.new_state(), nfa.new_state()
    if isinstance(node, rast.Literal):
        start = nfa.new_state()
        accept = nfa.new_state()
        nfa.add_transition(start, node.charclass, accept)
        return start, accept
    if isinstance(node, rast.Concat):
        start, accept = _build(nfa, node.parts[0])
        for part in node.parts[1:]:
            nxt_start, nxt_accept = _build(nfa, part)
            nfa.add_epsilon(accept, nxt_start)
            accept = nxt_accept
        return start, accept
    if isinstance(node, rast.Alt):
        start = nfa.new_state()
        accept = nfa.new_state()
        for option in node.options:
            opt_start, opt_accept = _build(nfa, option)
            nfa.add_epsilon(start, opt_start)
            nfa.add_epsilon(opt_accept, accept)
        return start, accept
    if isinstance(node, rast.Star):
        start = nfa.new_state()
        accept = nfa.new_state()
        inner_start, inner_accept = _build(nfa, node.inner)
        nfa.add_epsilon(start, inner_start)
        nfa.add_epsilon(start, accept)
        nfa.add_epsilon(inner_accept, inner_start)
        nfa.add_epsilon(inner_accept, accept)
        return start, accept
    if isinstance(node, rast.Plus):
        inner_start, inner_accept = _build(nfa, node.inner)
        accept = nfa.new_state()
        nfa.add_epsilon(inner_accept, inner_start)
        nfa.add_epsilon(inner_accept, accept)
        return inner_start, accept
    if isinstance(node, rast.Opt):
        start = nfa.new_state()
        accept = nfa.new_state()
        inner_start, inner_accept = _build(nfa, node.inner)
        nfa.add_epsilon(start, inner_start)
        nfa.add_epsilon(start, accept)
        nfa.add_epsilon(inner_accept, accept)
        return start, accept
    if isinstance(node, rast.Repeat):
        return _build_repeat(nfa, node)
    raise TypeError(f"unknown regex AST node {node!r}")


def _build_repeat(nfa, node):
    """Expand ``inner{lo,hi}`` by copying the fragment.

    Counted repetition is expanded structurally: ``lo`` mandatory copies,
    followed by either ``hi - lo`` optional copies or a star.
    """
    start = nfa.new_state()
    accept = start
    for _ in range(node.lo):
        frag_start, frag_accept = _build(nfa, node.inner)
        nfa.add_epsilon(accept, frag_start)
        accept = frag_accept
    if node.hi is None:
        star_start, star_accept = _build(nfa, rast.star(node.inner))
        nfa.add_epsilon(accept, star_start)
        accept = star_accept
    else:
        tail = nfa.new_state()
        for _ in range(node.hi - node.lo):
            nfa.add_epsilon(accept, tail)
            frag_start, frag_accept = _build(nfa, node.inner)
            nfa.add_epsilon(accept, frag_start)
            accept = frag_accept
        nfa.add_epsilon(accept, tail)
        accept = tail
    return start, accept
