"""Character classes over the byte alphabet (0..255).

A :class:`CharClass` is an immutable set of byte values, stored as a 256-bit
integer bitmask.  This representation makes union/intersection/complement
cheap and hashable, which the NFA/DFA machinery relies on (transition labels
are CharClasses, and subset construction partitions the alphabet by them).
"""

from __future__ import annotations

ALPHABET_SIZE = 256
_FULL_MASK = (1 << ALPHABET_SIZE) - 1

DIGITS = frozenset(range(ord("0"), ord("9") + 1))

#: Characters that can occur inside a JSON numeric token (paper §III-B:
#: "non-numeric (including '+', '-', '.', 'e')" characters delimit numbers).
NUMBER_TOKEN_CHARS = frozenset(
    list(DIGITS) + [ord(c) for c in "+-.eE"]
)


class CharClass:
    """An immutable set of byte values with set-algebra operations."""

    __slots__ = ("mask",)

    def __init__(self, mask=0):
        if not 0 <= mask <= _FULL_MASK:
            raise ValueError("mask out of range for a 256-symbol alphabet")
        object.__setattr__(self, "mask", mask)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("CharClass is immutable")

    # -- constructors -----------------------------------------------------

    @staticmethod
    def empty():
        return _EMPTY

    @staticmethod
    def full():
        return _FULL

    @staticmethod
    def of(*chars):
        """Class containing exactly the given characters (str or int)."""
        mask = 0
        for ch in chars:
            code = ch if isinstance(ch, int) else ord(ch)
            if not 0 <= code < ALPHABET_SIZE:
                raise ValueError(f"character code {code} out of range")
            mask |= 1 << code
        return CharClass(mask)

    @staticmethod
    def from_string(text):
        """Class containing every character of ``text``."""
        return CharClass.of(*text)

    @staticmethod
    def range(lo, hi):
        """Inclusive character range, e.g. ``CharClass.range('0', '9')``."""
        lo_code = lo if isinstance(lo, int) else ord(lo)
        hi_code = hi if isinstance(hi, int) else ord(hi)
        if lo_code > hi_code:
            raise ValueError(f"empty range {lo!r}..{hi!r}")
        mask = ((1 << (hi_code - lo_code + 1)) - 1) << lo_code
        return CharClass(mask)

    @staticmethod
    def digit_range(lo, hi):
        """Class of decimal digits ``lo..hi`` given as ints 0..9."""
        if not (0 <= lo <= hi <= 9):
            raise ValueError(f"bad digit range {lo}..{hi}")
        return CharClass.range(ord("0") + lo, ord("0") + hi)

    @staticmethod
    def digits():
        return _DIGITS

    @staticmethod
    def number_token_chars():
        """All characters that may appear inside a numeric token."""
        return _NUMTOK

    # -- set algebra -------------------------------------------------------

    def union(self, other):
        return CharClass(self.mask | other.mask)

    def intersect(self, other):
        return CharClass(self.mask & other.mask)

    def difference(self, other):
        return CharClass(self.mask & ~other.mask & _FULL_MASK)

    def complement(self):
        return CharClass(~self.mask & _FULL_MASK)

    __or__ = union
    __and__ = intersect
    __sub__ = difference
    __invert__ = complement

    # -- queries -----------------------------------------------------------

    def contains(self, ch):
        code = ch if isinstance(ch, int) else ord(ch)
        return bool((self.mask >> code) & 1)

    __contains__ = contains

    def is_empty(self):
        return self.mask == 0

    def __len__(self):
        return bin(self.mask).count("1")

    def __bool__(self):
        return self.mask != 0

    def chars(self):
        """Iterate member byte values in ascending order."""
        mask = self.mask
        code = 0
        while mask:
            if mask & 1:
                yield code
            mask >>= 1
            code += 1

    def ranges(self):
        """Member bytes as a list of inclusive ``(lo, hi)`` runs."""
        runs = []
        start = None
        prev = None
        for code in self.chars():
            if start is None:
                start = prev = code
            elif code == prev + 1:
                prev = code
            else:
                runs.append((start, prev))
                start = prev = code
        if start is not None:
            runs.append((start, prev))
        return runs

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other):
        return isinstance(other, CharClass) and self.mask == other.mask

    def __hash__(self):
        return hash(self.mask)

    def __repr__(self):
        return f"CharClass({self.pattern()!r})"

    def pattern(self):
        """Render as regex character-class source text (best effort)."""
        if self.mask == _FULL_MASK:
            return "."
        if len(self) == 1:
            return _escape_char(next(self.chars()))
        parts = []
        for lo, hi in self.ranges():
            if lo == hi:
                parts.append(_escape_char(lo))
            elif hi == lo + 1:
                parts.append(_escape_char(lo) + _escape_char(hi))
            else:
                parts.append(f"{_escape_char(lo)}-{_escape_char(hi)}")
        return "[" + "".join(parts) + "]"


_CLASS_ESCAPES = set(b"\\]^-[")


def _escape_char(code):
    if code in _CLASS_ESCAPES:
        return "\\" + chr(code)
    if 0x20 <= code < 0x7F:
        return chr(code)
    return f"\\x{code:02x}"


def partition_classes(classes):
    """Refine a collection of CharClasses into disjoint atoms.

    Returns a list of non-empty, pairwise-disjoint CharClasses whose union is
    the union of the inputs, such that every input class is a union of atoms.
    Subset construction iterates over atoms instead of 256 raw symbols.
    """
    atoms = []
    for cls in classes:
        if cls.is_empty():
            continue
        remaining = cls
        next_atoms = []
        for atom in atoms:
            inter = atom & remaining
            if inter.is_empty():
                next_atoms.append(atom)
                continue
            next_atoms.append(inter)
            rest = atom - remaining
            if not rest.is_empty():
                next_atoms.append(rest)
            remaining = remaining - inter
        if not remaining.is_empty():
            next_atoms.append(remaining)
        atoms = next_atoms
    return atoms


_EMPTY = CharClass(0)
_FULL = CharClass(_FULL_MASK)
_DIGITS = CharClass.range("0", "9")
_NUMTOK = CharClass.of(*NUMBER_TOKEN_CHARS)
