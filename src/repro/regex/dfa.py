"""Deterministic finite automata over the byte alphabet.

The DFA is the artefact the paper synthesises into hardware (Fig. 2 step 2).
It is *complete* (every state has a transition for every byte; a non-accepting
sink absorbs dead inputs) and stores its transition table as a numpy
``(num_states, 256)`` array so behavioural evaluation over large corpora is a
table-lookup loop.
"""

from __future__ import annotations

import numpy as np

from .charclass import ALPHABET_SIZE, CharClass, partition_classes
from .nfa import build_nfa


class DFA:
    """A complete DFA with dense integer states.

    Attributes:
        table: int32 array of shape ``(num_states, 256)``; ``table[s, c]``
            is the successor of state ``s`` on byte ``c``.
        start: the initial state index.
        accepting: boolean array of shape ``(num_states,)``.
    """

    def __init__(self, table, start, accepting):
        self.table = np.asarray(table, dtype=np.int32)
        if self.table.ndim != 2 or self.table.shape[1] != ALPHABET_SIZE:
            raise ValueError("transition table must be (n_states, 256)")
        self.start = int(start)
        self.accepting = np.asarray(accepting, dtype=bool)
        if self.accepting.shape[0] != self.table.shape[0]:
            raise ValueError("accepting mask size mismatch")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_nfa(cls, nfa):
        """Subset construction.

        The alphabet is first partitioned into atoms (disjoint refinements of
        every transition CharClass) so each frontier state explores
        ``O(atoms)`` symbols instead of 256.
        """
        atoms = partition_classes(nfa.all_charclasses())
        atom_reps = [next(atom.chars()) for atom in atoms]

        start_set = frozenset(nfa.epsilon_closure({nfa.start}))
        subsets = {start_set: 0}
        worklist = [start_set]
        rows = []
        accepting = []

        while worklist:
            current = worklist.pop()
            index = subsets[current]
            while len(rows) <= index:
                rows.append(None)
                accepting.append(False)
            row = np.full(ALPHABET_SIZE, -1, dtype=np.int64)
            accepting[index] = nfa.accept in current
            for atom, rep in zip(atoms, atom_reps):
                target = frozenset(
                    nfa.epsilon_closure(nfa.move(current, rep))
                )
                if not target:
                    continue
                if target not in subsets:
                    subsets[target] = len(subsets)
                    worklist.append(target)
                target_index = subsets[target]
                for lo, hi in atom.ranges():
                    row[lo : hi + 1] = target_index
            rows[index] = row

        # append a sink for missing transitions
        sink = len(rows)
        table = np.full((sink + 1, ALPHABET_SIZE), sink, dtype=np.int32)
        for index, row in enumerate(rows):
            filled = np.where(row < 0, sink, row)
            table[index] = filled
        accepting.append(False)
        return cls(table, 0, np.array(accepting, dtype=bool))

    @classmethod
    def from_regex(cls, node):
        """Compile a regex AST directly to a minimal DFA."""
        return cls.from_nfa(build_nfa(node)).minimized()

    @classmethod
    def from_pattern(cls, pattern):
        """Compile regex source text directly to a minimal DFA."""
        from .parser import parse_regex

        return cls.from_regex(parse_regex(pattern))

    # -- basic queries -----------------------------------------------------

    @property
    def num_states(self):
        return self.table.shape[0]

    def step(self, state, byte):
        return int(self.table[state, byte])

    def run(self, data, state=None):
        """Consume ``data`` (bytes or str) and return the final state."""
        if isinstance(data, str):
            data = data.encode("utf-8", errors="surrogateescape")
        current = self.start if state is None else state
        table = self.table
        for byte in data:
            current = table[current, byte]
        return int(current)

    def accepts(self, data):
        return bool(self.accepting[self.run(data)])

    def is_accepting(self, state):
        return bool(self.accepting[state])

    def dead_states(self):
        """States from which no accepting state is reachable."""
        reverse = [[] for _ in range(self.num_states)]
        for state in range(self.num_states):
            for target in np.unique(self.table[state]):
                reverse[int(target)].append(state)
        alive = set(np.flatnonzero(self.accepting).tolist())
        stack = list(alive)
        while stack:
            state = stack.pop()
            for pred in reverse[state]:
                if pred not in alive:
                    alive.add(pred)
                    stack.append(pred)
        return {s for s in range(self.num_states) if s not in alive}

    def transition_classes(self):
        """Per state, the outgoing edges as ``{target: CharClass}``.

        This is the view the hardware generator consumes: each distinct
        (state, target) edge becomes a character-class decoder.
        """
        result = []
        for state in range(self.num_states):
            row = self.table[state]
            edges = {}
            for target in np.unique(row):
                mask = 0
                for byte in np.flatnonzero(row == target):
                    mask |= 1 << int(byte)
                edges[int(target)] = CharClass(mask)
            result.append(edges)
        return result

    # -- minimisation ------------------------------------------------------

    def minimized(self):
        """Hopcroft minimisation (also prunes unreachable states)."""
        reachable = self._reachable_states()
        remap = {old: new for new, old in enumerate(sorted(reachable))}
        n = len(remap)
        table = np.empty((n, ALPHABET_SIZE), dtype=np.int32)
        accepting = np.zeros(n, dtype=bool)
        for old, new in remap.items():
            row = self.table[old]
            table[new] = [remap[int(t)] for t in row]
            accepting[new] = self.accepting[old]
        start = remap[self.start]

        partition = _hopcroft(table, accepting, n)

        block_of = np.empty(n, dtype=np.int64)
        for block_index, block in enumerate(partition):
            for state in block:
                block_of[state] = block_index
        m = len(partition)
        new_table = np.empty((m, ALPHABET_SIZE), dtype=np.int32)
        new_accepting = np.zeros(m, dtype=bool)
        for block_index, block in enumerate(partition):
            representative = next(iter(block))
            new_table[block_index] = block_of[table[representative]]
            new_accepting[block_index] = accepting[representative]
        return DFA(new_table, int(block_of[start]), new_accepting)

    def hardware_reordered(self):
        """Renumber states so the most-targeted state gets code 0.

        With binary state encoding, transitions into the all-zeros code
        need no next-state logic at all.  The most-targeted state is the
        sink for number DFAs and the start state for ``.*needle.*``
        matchers — in both cases the "default" transition becomes free,
        which is how hand-written RTL (and good synthesis) treats it.
        """
        mass = np.zeros(self.num_states, dtype=np.int64)
        for state in range(self.num_states):
            targets, counts = np.unique(self.table[state],
                                        return_counts=True)
            mass[targets] += counts
        heavy = int(np.argmax(mass))
        if heavy == 0:
            return self
        permutation = np.arange(self.num_states)
        permutation[heavy] = 0
        permutation[0] = heavy
        table = np.empty_like(self.table)
        accepting = np.zeros(self.num_states, dtype=bool)
        for old in range(self.num_states):
            table[permutation[old]] = permutation[self.table[old]]
            accepting[permutation[old]] = self.accepting[old]
        return DFA(table, int(permutation[self.start]), accepting)

    def _reachable_states(self):
        seen = {self.start}
        stack = [self.start]
        while stack:
            state = stack.pop()
            for target in np.unique(self.table[state]):
                target = int(target)
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen

    # -- algebra (used by tests for equivalence checking) -------------------

    def complement(self):
        return DFA(self.table.copy(), self.start, ~self.accepting)

    def product(self, other, op):
        """Product construction; ``op(bool, bool)`` combines accepts."""
        pair_index = {}
        worklist = [(self.start, other.start)]
        pair_index[(self.start, other.start)] = 0
        rows = []
        accepting = []
        while worklist:
            a, b = worklist.pop()
            index = pair_index[(a, b)]
            while len(rows) <= index:
                rows.append(None)
                accepting.append(False)
            accepting[index] = bool(op(self.accepting[a], other.accepting[b]))
            row = np.empty(ALPHABET_SIZE, dtype=np.int32)
            row_a = self.table[a]
            row_b = other.table[b]
            cache = {}
            for byte in range(ALPHABET_SIZE):
                key = (int(row_a[byte]), int(row_b[byte]))
                target = cache.get(key)
                if target is None:
                    target = pair_index.get(key)
                    if target is None:
                        target = len(pair_index)
                        pair_index[key] = target
                        worklist.append(key)
                    cache[key] = target
                row[byte] = target
            rows[index] = row
        table = np.vstack(rows)
        return DFA(table, 0, np.array(accepting, dtype=bool))

    def intersect(self, other):
        return self.product(other, lambda a, b: a and b)

    def union(self, other):
        return self.product(other, lambda a, b: a or b)

    def difference(self, other):
        return self.product(other, lambda a, b: a and not b)

    def is_empty(self):
        """True if the accepted language is empty."""
        return not any(
            self.accepting[state] for state in self._reachable_states()
        )

    def equivalent(self, other):
        return self.difference(other).is_empty() and (
            other.difference(self).is_empty()
        )

    def shortest_accepted(self):
        """A shortest accepted byte string, or None if language is empty."""
        from collections import deque

        if self.accepting[self.start]:
            return b""
        parent = {self.start: None}
        queue = deque([self.start])
        while queue:
            state = queue.popleft()
            row = self.table[state]
            for target in np.unique(row):
                target = int(target)
                if target in parent:
                    continue
                byte = int(np.flatnonzero(row == target)[0])
                parent[target] = (state, byte)
                if self.accepting[target]:
                    out = []
                    cursor = target
                    while parent[cursor] is not None:
                        prev, via = parent[cursor]
                        out.append(via)
                        cursor = prev
                    return bytes(reversed(out))
                queue.append(target)
        return None

    def __repr__(self):
        n_acc = int(self.accepting.sum())
        return f"DFA(states={self.num_states}, accepting={n_acc})"


def _hopcroft(table, accepting, n):
    """Hopcroft's partition-refinement algorithm.

    Returns a list of frozensets of state indices (the equivalence classes).
    Works on the complete transition table, refining over the 256-symbol
    alphabet; predecessor sets are precomputed per symbol.
    """
    if n == 0:
        return []
    accepting_set = frozenset(np.flatnonzero(accepting).tolist())
    rejecting_set = frozenset(range(n)) - accepting_set
    partition = [s for s in (accepting_set, rejecting_set) if s]
    worklist = set()
    if accepting_set and rejecting_set:
        smaller = min(accepting_set, rejecting_set, key=len)
        worklist.add(smaller)
    elif partition:
        worklist.add(partition[0])

    # predecessors[c][s] = set of states t with table[t, c] == s
    predecessors = []
    for symbol in range(ALPHABET_SIZE):
        column = table[:, symbol]
        by_target = {}
        for source, target in enumerate(column):
            by_target.setdefault(int(target), []).append(source)
        predecessors.append(by_target)

    partition = set(partition)
    while worklist:
        splitter = worklist.pop()
        for symbol in range(ALPHABET_SIZE):
            by_target = predecessors[symbol]
            moved = set()
            for target in splitter:
                moved.update(by_target.get(target, ()))
            if not moved:
                continue
            for block in list(partition):
                inside = block & moved
                if not inside or inside == block:
                    continue
                outside = block - moved
                partition.discard(block)
                inside = frozenset(inside)
                outside = frozenset(outside)
                partition.add(inside)
                partition.add(outside)
                if block in worklist:
                    worklist.discard(block)
                    worklist.add(inside)
                    worklist.add(outside)
                else:
                    worklist.add(min(inside, outside, key=len))
    return sorted(partition, key=lambda block: min(block))
