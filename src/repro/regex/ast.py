"""Regular-expression abstract syntax trees.

The AST is the interchange format between the range-to-regex derivation
(paper Fig. 2, step 1), the textual parser, and Thompson NFA construction
(step 2).  Nodes are immutable; the module-level constructors (:func:`lit`,
:func:`concat`, :func:`alt`, ...) perform light algebraic simplification so
derived expressions stay readable when rendered with ``to_pattern()``.
"""

from __future__ import annotations

from .charclass import CharClass


class Regex:
    """Base class for regex AST nodes."""

    __slots__ = ()

    def to_pattern(self):
        """Render this AST as regex source text."""
        raise NotImplementedError

    # precedence used for parenthesisation when printing:
    # 0 alternation, 1 concatenation, 2 repetition, 3 atom
    _prec = 3

    def _child_pattern(self, child, min_prec):
        text = child.to_pattern()
        if child._prec < min_prec:
            return "(" + text + ")"
        return text

    def __repr__(self):
        return f"{type(self).__name__}({self.to_pattern()!r})"

    def __eq__(self, other):
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self):
        return hash((type(self).__name__, self._key()))

    def _key(self):
        raise NotImplementedError


class Epsilon(Regex):
    """Matches the empty string."""

    __slots__ = ()
    _prec = 3

    def to_pattern(self):
        return ""

    def _key(self):
        return ()


class Never(Regex):
    """Matches nothing at all (the empty language)."""

    __slots__ = ()
    _prec = 3

    def to_pattern(self):
        return "[^\\x00-\\xff]"

    def _key(self):
        return ()


class Literal(Regex):
    """Matches a single character drawn from a :class:`CharClass`."""

    __slots__ = ("charclass",)
    _prec = 3

    def __init__(self, charclass):
        if charclass.is_empty():
            raise ValueError("use Never() for the empty language")
        object.__setattr__(self, "charclass", charclass)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Regex nodes are immutable")

    def to_pattern(self):
        return self.charclass.pattern()

    def _key(self):
        return (self.charclass,)


class Concat(Regex):
    """Matches ``parts[0]`` followed by ``parts[1]`` ..."""

    __slots__ = ("parts",)
    _prec = 1

    def __init__(self, parts):
        object.__setattr__(self, "parts", tuple(parts))

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Regex nodes are immutable")

    def to_pattern(self):
        return "".join(self._child_pattern(p, 1) for p in self.parts)

    def _key(self):
        return self.parts


class Alt(Regex):
    """Matches any one of ``options``."""

    __slots__ = ("options",)
    _prec = 0

    def __init__(self, options):
        object.__setattr__(self, "options", tuple(options))

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Regex nodes are immutable")

    def to_pattern(self):
        return "|".join(self._child_pattern(o, 1) for o in self.options)

    def _key(self):
        return self.options


class Star(Regex):
    """Kleene star: zero or more repetitions of ``inner``."""

    __slots__ = ("inner",)
    _prec = 2

    def __init__(self, inner):
        object.__setattr__(self, "inner", inner)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Regex nodes are immutable")

    def to_pattern(self):
        return self._child_pattern(self.inner, 3) + "*"

    def _key(self):
        return (self.inner,)


class Plus(Regex):
    """One or more repetitions of ``inner``."""

    __slots__ = ("inner",)
    _prec = 2

    def __init__(self, inner):
        object.__setattr__(self, "inner", inner)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Regex nodes are immutable")

    def to_pattern(self):
        return self._child_pattern(self.inner, 3) + "+"

    def _key(self):
        return (self.inner,)


class Opt(Regex):
    """Zero or one occurrence of ``inner``."""

    __slots__ = ("inner",)
    _prec = 2

    def __init__(self, inner):
        object.__setattr__(self, "inner", inner)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Regex nodes are immutable")

    def to_pattern(self):
        return self._child_pattern(self.inner, 3) + "?"

    def _key(self):
        return (self.inner,)


class Repeat(Regex):
    """Between ``lo`` and ``hi`` repetitions; ``hi=None`` means unbounded."""

    __slots__ = ("inner", "lo", "hi")
    _prec = 2

    def __init__(self, inner, lo, hi):
        if lo < 0 or (hi is not None and hi < lo):
            raise ValueError(f"bad repeat bounds {{{lo},{hi}}}")
        object.__setattr__(self, "inner", inner)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Regex nodes are immutable")

    def to_pattern(self):
        body = self._child_pattern(self.inner, 3)
        if self.hi is None:
            return f"{body}{{{self.lo},}}"
        if self.lo == self.hi:
            return f"{body}{{{self.lo}}}"
        return f"{body}{{{self.lo},{self.hi}}}"

    def _key(self):
        return (self.inner, self.lo, self.hi)


# ---------------------------------------------------------------------------
# Smart constructors (perform light simplification)
# ---------------------------------------------------------------------------

EPSILON = Epsilon()
NEVER = Never()


def lit(chars):
    """Literal node from a CharClass, a single character, or a string.

    A multi-character string becomes a concatenation of its characters.
    """
    if isinstance(chars, CharClass):
        if chars.is_empty():
            return NEVER
        return Literal(chars)
    if isinstance(chars, int):
        return Literal(CharClass.of(chars))
    if len(chars) == 0:
        return EPSILON
    if len(chars) == 1:
        return Literal(CharClass.of(chars))
    return concat(*[Literal(CharClass.of(c)) for c in chars])


def concat(*parts):
    """Concatenation with epsilon/never elimination and flattening."""
    flat = []
    for part in parts:
        if isinstance(part, Never):
            return NEVER
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concat(flat)


def alt(*options):
    """Alternation with never-elimination, flattening and deduplication.

    Adjacent single-character alternatives are merged into one CharClass
    literal (e.g. ``3|[4-9]`` becomes ``[3-9]``), which keeps derived range
    expressions compact, as in the paper's Fig. 2.
    """
    flat = []
    for option in options:
        if isinstance(option, Never):
            continue
        if isinstance(option, Alt):
            flat.extend(option.options)
        else:
            flat.append(option)
    merged_class = CharClass.empty()
    others = []
    has_epsilon = False
    for option in flat:
        if isinstance(option, Literal):
            merged_class = merged_class | option.charclass
        elif isinstance(option, Epsilon):
            has_epsilon = True
        else:
            others.append(option)
    result = []
    if has_epsilon:
        result.append(EPSILON)
    if not merged_class.is_empty():
        result.append(Literal(merged_class))
    seen = set()
    for option in others:
        if option not in seen:
            seen.add(option)
            result.append(option)
    if not result:
        return NEVER
    if len(result) == 1:
        return result[0]
    # epsilon | X simplifies to X? when there are exactly two options
    if has_epsilon and len(result) == 2:
        return Opt(result[1])
    return Alt(result)


def star(inner):
    if isinstance(inner, (Epsilon, Never)):
        return EPSILON
    if isinstance(inner, Star):
        return inner
    if isinstance(inner, Plus):
        return Star(inner.inner)
    return Star(inner)


def plus(inner):
    if isinstance(inner, Epsilon):
        return EPSILON
    if isinstance(inner, Never):
        return NEVER
    if isinstance(inner, (Star, Plus)):
        return Star(inner.inner) if isinstance(inner, Star) else inner
    return Plus(inner)


def opt(inner):
    if isinstance(inner, Epsilon):
        return EPSILON
    if isinstance(inner, Never):
        return EPSILON
    if isinstance(inner, (Star, Opt)):
        return inner
    if isinstance(inner, Plus):
        return Star(inner.inner)
    return Opt(inner)


def repeat(inner, lo, hi):
    """``inner{lo,hi}`` with trivial-case simplification."""
    if hi is not None and hi == 0:
        return EPSILON
    if lo == 0 and hi is None:
        return star(inner)
    if lo == 1 and hi is None:
        return plus(inner)
    if lo == 0 and hi == 1:
        return opt(inner)
    if lo == 1 and hi == 1:
        return inner
    if isinstance(inner, (Epsilon, Never)):
        return inner if lo > 0 or isinstance(inner, Epsilon) else EPSILON
    return Repeat(inner, lo, hi)


def any_of_digits(count):
    """Exactly ``count`` arbitrary decimal digits."""
    from .charclass import CharClass as _CC

    return repeat(Literal(_CC.digits()), count, count)
