"""repro — Raw Filtering of JSON Data on FPGAs (DATE 2022), reproduced.

A complete, self-contained reimplementation of the paper's system:

* raw-filter primitives (string matchers, number-range DFAs, structural
  awareness) with behavioural *and* gate-level models (``repro.core``,
  ``repro.hw``);
* a regex engine, an AIG + LUT technology mapper, a strict JSON parser
  and a JSONPath evaluator as substrates (``repro.regex``, ``repro.hw``,
  ``repro.jsonpath``);
* RiotBench-style synthetic workloads and the Table VIII queries
  (``repro.data``);
* design-space exploration with Pareto reporting, an evolutionary
  explorer and sampled-FPR estimation (``repro.core.design_space``,
  ``.evolutionary``, ``.sampling``);
* the Fig. 4 SoC throughput simulation (``repro.system``) and the
  Sparser CPU baseline (``repro.baselines``).

Quickstart::

    from repro import core, data
    from repro.eval import DatasetView, evaluate_expression, FilterMetrics

    rf = core.group(core.s("temperature", 1), core.v("0.7", "35.1"))
    dataset = data.load_dataset("smartcity", 1000)
    accepted = evaluate_expression(DatasetView(dataset), rf)
    truth = data.QS0.truth_array(dataset)
    print(FilterMetrics(accepted, truth))
"""

from . import baselines, core, data, eval, hw, jsonpath, regex, system
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "core",
    "data",
    "eval",
    "hw",
    "jsonpath",
    "regex",
    "system",
    "ReproError",
    "__version__",
]
