"""The long-running filter gateway (asyncio server).

:class:`FilterGateway` is the paper's §IV-B IoT-gateway deployment as a
real service: a resident process that accepts many concurrent client
sessions, frames each session's byte stream into records, evaluates the
session's raw filter through a shared pool of
:class:`~repro.engine.FilterEngine` instances (all backed by **one**
shared :class:`~repro.engine.atom_cache.AtomCache`, so tenants
streaming overlapping corpora serve each other warm), and streams match
bits + accepted records back in input order.

Service properties:

* **admission control** — at most ``max_sessions`` concurrent sessions
  (excess HELLOs are answered with a typed admission ERROR) and at most
  ``max_inflight_bytes`` of queued-but-unevaluated chunk bytes across
  the whole gateway (excess senders are simply not read, which
  propagates as TCP backpressure);
* **per-session backpressure** — each session buffers at most
  ``queue_chunks`` chunks between its socket reader and its evaluator,
  so one slow evaluation cannot make the gateway's resident memory grow
  with the stream;
* **live filter swap** — a SWAP frame replaces the session's filter at
  an exact point in its stream, charged with the partial-
  reconfiguration downtime model
  (:func:`repro.system.multi.reconfiguration_seconds`);
* **graceful drain** — :meth:`shutdown` stops accepting, lets in-flight
  sessions finish within ``drain_timeout`` seconds, then cancels.

The evaluator task is a session's only frame writer, so RESULT /
SWAP_OK / STATS_OK frames arrive strictly in stream order.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
from concurrent.futures import ThreadPoolExecutor

from ..engine import FilterEngine, RecordFramer, as_atom_cache
from ..system.multi import reconfiguration_seconds
from . import protocol
from .metrics import GatewayMetrics
from .protocol import (
    AdmissionError,
    GatewayError,
    ProtocolError,
    SessionError,
)

DEFAULT_PORT = 7707


def _parse_expression(text):
    """Parse a wire-format filter expression (CLI compact syntax)."""
    from ..cli import parse_filter_expression

    return parse_filter_expression(text)


class EnginePool:
    """A fixed set of engines multiplexed across sessions.

    All engines share one :class:`AtomCache` (that is the point of the
    gateway: the second tenant streaming a corpus is served from the
    masks the first tenant's session computed).  Sessions check an
    engine out per batch, so ``N`` sessions make progress over
    ``size`` engines without tying a session to an engine.

    ``workers > 1`` makes every engine a *pooled* engine: each keeps a
    persistent :class:`~repro.engine.transport.ResidentWorkerPool`
    whose worker processes are spawned once here (``warm_up()``,
    before the gateway's executor threads exist) and evaluate each
    batch sharded across warm workers — one listen socket driving
    multi-process evaluation.
    """

    def __init__(self, size=2, cache=True, backend="compiled",
                 workers=1, cache_store=None):
        if size <= 0:
            raise GatewayError("engine pool size must be positive")
        if workers <= 0:
            raise GatewayError("engine workers must be positive")
        if cache is True or (cache in (None, False)
                             and cache_store is not None):
            # a service sees many (batch x atom) entries per stream;
            # the default 1024-entry LRU would evict a long stream's
            # working set before a second tenant can reuse it, so the
            # gateway cache is byte-bounded only
            from ..engine import AtomCache

            cache = AtomCache(max_entries=None)
        self.cache = as_atom_cache(cache)
        if cache_store is not None:
            # disk tier under the shared cache: a restarted gateway
            # serves the previous process's masks warm, promoted on
            # demand — the log index is scanned, not loaded into RAM
            self.cache.attach_store(cache_store)
        self.workers = workers
        self.engines = [
            FilterEngine(backend=backend, cache=self.cache,
                         num_workers=workers, verify_kernels=True)
            for _ in range(size)
        ]
        if workers > 1:
            # pre-fork the resident workers from the constructing
            # thread, before the gateway starts executor threads —
            # forking later from a threaded process is fragile
            for engine in self.engines:
                engine.warm_up()
        self._free = None  # asyncio.Queue, created on the serving loop

    def bind(self):
        self._free = asyncio.Queue()
        for engine in self.engines:
            self._free.put_nowait(engine)

    async def acquire(self):
        return await self._free.get()

    def release(self, engine):
        self._free.put_nowait(engine)

    def close(self):
        """Tear down the engines' resident worker pools (idempotent)."""
        for engine in self.engines:
            engine.close()

    def stats(self):
        stats = self.engines[0].stats()
        stats["engines"] = len(self.engines)
        stats["engine_workers"] = self.workers
        return stats


def _evaluate_batch(engine, predicate, records):
    """Executor-side batch evaluation with cache-delta attribution."""
    cache = engine.atom_cache
    before = (cache.hits, cache.misses) if cache is not None else None
    matches = engine.match_bits(predicate, records)
    delta = None
    if before is not None:
        delta = (cache.hits - before[0], cache.misses - before[1])
    return matches, delta


#: command-queue sentinel: the reader saw EOF (or stopped on error)
_EOF = object()


class Session:
    """One client connection: reader -> bounded queue -> evaluator."""

    def __init__(self, gateway, reader, writer, tenant, session_id,
                 observer=False):
        self.gateway = gateway
        self.reader = reader
        self.writer = writer
        self.tenant = tenant
        self.session_id = session_id
        #: observer sessions are read-only: STATS is the only verb —
        #: they bypassed admission, so letting them stream would be an
        #: unmetered hole in the session ceiling
        self.observer = observer
        self.queue = asyncio.Queue(maxsize=gateway.queue_chunks)
        self.framer = None
        self.predicate = None
        self.records_seen = 0
        self.accepted_seen = 0
        self.batches_sent = 0
        self.disconnected = False
        #: set once the evaluator is gone — the reader must stop
        #: instead of queueing frames nobody will drain
        self.dead = False
        #: bytes of the chunk the reader has reserved but not yet
        #: queued; released by the handler if the reader is cancelled
        #: mid-put, so the gateway-wide inflight budget cannot leak
        self._in_hand = 0

    # -- socket reader -------------------------------------------------------

    async def run_reader(self):
        """Frames from the socket into the bounded command queue."""
        try:
            while not self.dead:
                frame = await protocol.read_frame_async(self.reader)
                if frame is None:
                    # EOF with an unfinished query (no END frame) is a
                    # mid-stream disconnect, orderly close or not
                    self.disconnected = self.framer is not None
                    return
                frame_type, payload = frame
                if frame_type == protocol.CHUNK:
                    await self.gateway._reserve(len(payload))
                    self._in_hand = len(payload)
                    self.tenant.bytes_in += len(payload)
                    self.tenant.chunks += 1
                    self.tenant.enqueued(len(payload))
                elif frame_type not in (
                    protocol.QUERY, protocol.SWAP,
                    protocol.STATS, protocol.END,
                ):
                    raise ProtocolError(
                        "unexpected "
                        f"{protocol.FRAME_NAMES[frame_type]} frame "
                        "from a client mid-session"
                    )
                await self.queue.put((frame_type, payload))
                self._in_hand = 0
        except ProtocolError as err:
            self.gateway.metrics.note_protocol_error()
            self.tenant.errors += 1
            await self.queue.put((protocol.ERROR, err))
        except (ConnectionError, OSError):
            self.disconnected = True
        finally:
            await self.queue.put((_EOF, None))

    # -- evaluator (the session's only frame writer) ------------------------

    async def _send(self, frame):
        self.writer.write(frame)
        await self.writer.drain()

    async def run_evaluator(self):
        try:
            while True:
                frame_type, payload = await self.queue.get()
                if frame_type is _EOF:
                    return
                if frame_type == protocol.ERROR:
                    # reader-detected protocol error, surfaced in order
                    await self._send_error(payload)
                    return
                try:
                    done = await self._dispatch(frame_type, payload)
                except GatewayError as err:
                    self.tenant.errors += 1
                    await self._send_error(err)
                    return
                if done:
                    return
        except (ConnectionError, OSError):
            self.disconnected = True
        finally:
            self.dead = True
            self._drain_queue()

    async def _dispatch(self, frame_type, payload):
        if self.observer and frame_type != protocol.STATS:
            raise SessionError(
                "observer sessions are read-only: only STATS is "
                "allowed (reconnect without observer to stream)"
            )
        if frame_type == protocol.CHUNK:
            await self._on_chunk(payload)
        elif frame_type == protocol.QUERY:
            await self._on_query(payload)
        elif frame_type == protocol.SWAP:
            await self._on_swap(payload)
        elif frame_type == protocol.STATS:
            await self._send(protocol.encode_json_frame(
                protocol.STATS_OK, self.gateway.snapshot()
            ))
        elif frame_type == protocol.END:
            await self._on_end()
        return False

    async def _on_query(self, payload):
        info = protocol.decode_json(protocol.QUERY, payload)
        expression = info.get("expression")
        if not isinstance(expression, str):
            raise SessionError("QUERY needs an 'expression' string")
        try:
            self.predicate = _parse_expression(expression)
        except GatewayError:
            raise
        except Exception as err:
            raise SessionError(f"bad query expression: {err}") from None
        self.framer = RecordFramer()
        self.records_seen = 0
        self.accepted_seen = 0
        self.batches_sent = 0
        self.tenant.queries += 1
        await self._send(protocol.encode_json_frame(
            protocol.QUERY_OK,
            {"expression": self.predicate.notation()},
        ))

    async def _on_chunk(self, payload):
        nbytes = len(payload)
        self.tenant.dequeued(nbytes)
        try:
            if self.framer is None:
                raise SessionError(
                    "CHUNK before QUERY: submit a filter expression "
                    "before streaming data"
                )
            records = self.framer.push(payload)
            if records:
                await self._evaluate_and_reply(records)
        finally:
            await self.gateway._release(nbytes)

    async def _on_swap(self, payload):
        info = protocol.decode_json(protocol.SWAP, payload)
        expression = info.get("expression")
        if not isinstance(expression, str):
            raise SessionError("SWAP needs an 'expression' string")
        if self.predicate is None:
            raise SessionError("SWAP before QUERY")
        try:
            predicate = _parse_expression(expression)
        except GatewayError:
            raise
        except Exception as err:
            raise SessionError(f"bad swap expression: {err}") from None
        downtime = reconfiguration_seconds(predicate)
        # charge the partial-reconfiguration latency before the new
        # filter takes effect — the stream order around the SWAP frame
        # is exactly the record boundary where the filter changes
        await asyncio.sleep(downtime)
        self.predicate = predicate
        self.tenant.swapped(downtime)
        await self._send(protocol.encode_json_frame(
            protocol.SWAP_OK,
            {
                "expression": predicate.notation(),
                "downtime_seconds": downtime,
            },
        ))

    async def _on_end(self):
        if self.framer is None:
            raise SessionError("END before QUERY")
        tail = self.framer.flush()
        if tail:
            await self._evaluate_and_reply(tail)
        await self._send(protocol.encode_json_frame(
            protocol.END_OK,
            {
                "records": self.records_seen,
                "accepted": self.accepted_seen,
                "bytes": self.framer.bytes_consumed,
                "batches": self.batches_sent,
            },
        ))
        # the connection may submit a fresh QUERY next
        self.framer = None
        self.predicate = None

    async def _evaluate_and_reply(self, records):
        gateway = self.gateway
        engine = await gateway.pool.acquire()
        try:
            matches, delta = await asyncio.get_running_loop() \
                .run_in_executor(
                    gateway._executor, _evaluate_batch,
                    engine, self.predicate, records,
                )
        finally:
            gateway.pool.release(engine)
        accepted = [
            record for record, match in zip(records, matches) if match
        ]
        self.records_seen += len(records)
        self.accepted_seen += len(accepted)
        self.batches_sent += 1
        self.tenant.evaluated(len(records), len(accepted), delta)
        await self._send(protocol.encode_frame(
            protocol.RESULT, protocol.encode_result(matches, accepted)
        ))

    async def _send_error(self, err):
        with contextlib.suppress(ConnectionError, OSError):
            await self._send(protocol.encode_json_frame(
                protocol.ERROR,
                {
                    "error": str(err),
                    "kind": protocol.error_to_kind(err),
                },
            ))

    def _drain_queue(self):
        """Release inflight accounting for frames nobody will process."""
        while True:
            try:
                frame_type, payload = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if frame_type == protocol.CHUNK:
                self.tenant.dequeued(len(payload))
                self.gateway._release_nowait(len(payload))

    def _release_in_hand(self):
        """Final cleanup for a chunk the reader never managed to queue
        (cancelled between reserve and put); handler-only, after both
        session tasks have finished."""
        in_hand, self._in_hand = self._in_hand, 0
        if in_hand:
            self.tenant.dequeued(in_hand)
            self.gateway._release_nowait(in_hand)


class FilterGateway:
    """A multi-tenant streaming filter service on one listen socket."""

    def __init__(self, host="127.0.0.1", port=0, *, engines=2,
                 cache=True, backend="compiled", workers=1,
                 cache_store=None, max_sessions=32,
                 max_inflight_bytes=64 << 20, queue_chunks=8,
                 drain_timeout=5.0):
        if max_sessions <= 0:
            raise GatewayError("max_sessions must be positive")
        if max_inflight_bytes <= 0:
            raise GatewayError("max_inflight_bytes must be positive")
        if queue_chunks <= 0:
            raise GatewayError("queue_chunks must be positive")
        self.host = host
        self.port = port
        self.pool = EnginePool(engines, cache=cache, backend=backend,
                               workers=workers, cache_store=cache_store)
        self.max_sessions = max_sessions
        self.max_inflight_bytes = max_inflight_bytes
        self.queue_chunks = queue_chunks
        self.drain_timeout = drain_timeout
        self.metrics = GatewayMetrics()
        self._server = None
        self._executor = None
        self._sessions = set()
        self._session_ids = itertools.count(1)
        self._inflight = 0
        self._inflight_cond = None
        self._shutdown_event = None
        self._closing = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        """Bind and start accepting; returns once listening."""
        self.pool.bind()
        self._inflight_cond = asyncio.Condition()
        self._shutdown_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=len(self.pool.engines),
            thread_name_prefix="gateway-eval",
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self):
        """Block until :meth:`shutdown` is called."""
        await self._shutdown_event.wait()

    async def shutdown(self):
        """Graceful drain: stop accepting, finish sessions, then cut."""
        if self._closing:
            self._shutdown_event.set()
            return
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        if self._sessions:
            _, pending = await asyncio.wait(
                set(self._sessions), timeout=self.drain_timeout
            )
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        self._executor.shutdown(wait=True, cancel_futures=True)
        # resident worker pools go down after the executor: no thread
        # can be mid-evaluation on a pooled engine past this point
        self.pool.close()
        self._shutdown_event.set()

    # -- admission + inflight policy ----------------------------------------

    async def _reserve(self, nbytes):
        async with self._inflight_cond:
            # a chunk larger than the whole budget is still admitted
            # when it is alone — otherwise it could never proceed
            while (self._inflight > 0
                   and self._inflight + nbytes
                   > self.max_inflight_bytes):
                await self._inflight_cond.wait()
            self._inflight += nbytes
            self.metrics.inflight_changed(nbytes)

    async def _release(self, nbytes):
        async with self._inflight_cond:
            self._release_nowait(nbytes)
            self._inflight_cond.notify_all()

    def _release_nowait(self, nbytes):
        self._inflight -= nbytes
        self.metrics.inflight_changed(-nbytes)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._sessions.add(task)
        session = None
        try:
            session = await self._handshake(reader, writer)
            if session is None:
                return
            reader_task = asyncio.ensure_future(session.run_reader())
            eval_task = asyncio.ensure_future(session.run_evaluator())
            done, pending = await asyncio.wait(
                {reader_task, eval_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
            if reader_task in pending:
                # the evaluator ended first (error/close); reading on
                # would fill a queue nobody drains
                reader_task.cancel()
            await asyncio.gather(
                reader_task, eval_task, return_exceptions=True
            )
        finally:
            self._sessions.discard(task)
            if session is not None:
                session._drain_queue()
                session._release_in_hand()
                session.tenant.session_closed(session.disconnected)
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()
                await writer.wait_closed()

    async def _handshake(self, reader, writer):
        """HELLO/HELLO_OK exchange; admission control happens here."""
        try:
            frame = await protocol.read_frame_async(reader)
        except ProtocolError as err:
            self.metrics.note_protocol_error()
            await self._refuse(writer, err)
            return None
        if frame is None:
            return None
        frame_type, payload = frame
        if frame_type != protocol.HELLO:
            self.metrics.note_protocol_error()
            await self._refuse(writer, ProtocolError(
                f"expected HELLO, got "
                f"{protocol.FRAME_NAMES[frame_type]}"
            ))
            return None
        try:
            info = protocol.decode_json(protocol.HELLO, payload)
        except ProtocolError as err:
            self.metrics.note_protocol_error()
            await self._refuse(writer, err)
            return None
        observer = bool(info.get("observer"))
        if self._closing or (
            not observer
            and self.metrics.active_sessions >= self.max_sessions
        ):
            self.metrics.note_admission_rejection()
            await self._refuse(writer, AdmissionError(
                f"gateway at capacity "
                f"({self.max_sessions} sessions); retry later"
            ))
            return None
        if observer:
            # monitoring probes (repro serve --status) bypass session
            # admission — observability must work exactly when the
            # gateway is saturated — and stay out of the per-tenant
            # traffic metrics (an unregistered TenantMetrics)
            from .metrics import TenantMetrics

            tenant = TenantMetrics(
                str(info.get("tenant", "observer"))
            )
        else:
            tenant = self.metrics.tenant(
                str(info.get("tenant", "anonymous"))
            )
        tenant.session_opened()
        session = Session(
            self, reader, writer, tenant, next(self._session_ids),
            observer=observer,
        )
        writer.write(protocol.encode_json_frame(
            protocol.HELLO_OK,
            {"session": session.session_id, "version": protocol.VERSION},
        ))
        await writer.drain()
        return session

    async def _refuse(self, writer, err):
        with contextlib.suppress(ConnectionError, OSError):
            writer.write(protocol.encode_json_frame(
                protocol.ERROR,
                {"error": str(err), "kind": protocol.error_to_kind(err)},
            ))
            await writer.drain()
            writer.close()
            await writer.wait_closed()

    # -- observability -------------------------------------------------------

    def snapshot(self):
        """The STATS_OK document: tenants + gateway + engine stats."""
        return self.metrics.snapshot(self.pool.stats())


# -- running a gateway from synchronous code --------------------------------

class GatewayThread:
    """A :class:`FilterGateway` on a background event-loop thread.

    The sync doorway used by the CLI tests, the benchmarks and the
    examples: ``with GatewayThread(engines=2) as gw:`` yields a running
    gateway whose ``port`` a :class:`~repro.serve.client.GatewayClient`
    can connect to from the calling thread.
    """

    def __init__(self, **gateway_kwargs):
        import threading

        self._kwargs = gateway_kwargs
        self.gateway = None
        self.port = None
        self._loop = None
        self._thread = None
        self._ready = threading.Event()
        self._startup_error = None

    def start(self):
        import threading

        self._thread = threading.Thread(
            target=self._run, name="filter-gateway", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise GatewayError("gateway thread failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self):
        try:
            asyncio.run(self._main())
        except Exception as err:  # pragma: no cover - startup races
            self._startup_error = GatewayError(
                f"gateway thread died: {err}"
            )
            self._ready.set()

    async def _main(self):
        try:
            self.gateway = FilterGateway(**self._kwargs)
            await self.gateway.start()
            self._loop = asyncio.get_running_loop()
            self.port = self.gateway.port
        except Exception as err:
            self._startup_error = GatewayError(
                f"gateway failed to start: {err}"
            )
            self._ready.set()
            return
        self._ready.set()
        await self.gateway.serve_forever()

    def snapshot(self):
        """Metrics snapshot, safe to call from the client thread."""
        return self.gateway.snapshot()

    def stop(self, timeout=10):
        if self._loop is not None and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.gateway.shutdown(), self._loop
            )
            future.result(timeout=timeout)
        self._thread.join(timeout=timeout)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
        return False
