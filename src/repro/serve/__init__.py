"""repro.serve — the multi-tenant streaming filter gateway.

The service layer on top of the engine: a long-running asyncio
:class:`FilterGateway` multiplexes many client sessions onto a shared
:class:`~repro.engine.FilterEngine` pool (one shared AtomCache, so
tenants warm each other), with admission control, per-session
backpressure, live filter swaps charged with the paper's partial-
reconfiguration model, and per-tenant metrics.  Clients stream any
:class:`~repro.engine.sources.ChunkSource` up and get match bits plus
accepted records back, bit-identical to an offline
``FilterEngine.stream`` run.

Entry points: ``repro serve`` / ``repro submit`` on the CLI,
:class:`GatewayClient`/:class:`AsyncGatewayClient` in code, and
:class:`GatewayThread` to host a gateway inside a synchronous process
(tests, benchmarks, examples).
"""

from .client import AsyncGatewayClient, GatewayClient, ResultBatch
from .metrics import GatewayMetrics, TenantMetrics, render_status
from .protocol import (
    AdmissionError,
    FrameDecoder,
    GatewayError,
    ProtocolError,
    SessionError,
)
from .server import (
    DEFAULT_PORT,
    EnginePool,
    FilterGateway,
    GatewayThread,
)

__all__ = [
    "AsyncGatewayClient",
    "GatewayClient",
    "ResultBatch",
    "GatewayMetrics",
    "TenantMetrics",
    "render_status",
    "AdmissionError",
    "FrameDecoder",
    "GatewayError",
    "ProtocolError",
    "SessionError",
    "DEFAULT_PORT",
    "EnginePool",
    "FilterGateway",
    "GatewayThread",
]
