"""Wire protocol of the filter gateway (length-prefixed frames).

One frame = an 8-byte header (``b"RF"`` magic, protocol version, frame
type, big-endian payload length) followed by the payload.  Control
frames carry UTF-8 JSON; ``CHUNK`` carries raw stream bytes; ``RESULT``
carries a packed binary batch (record count, accepted count, packed
match bits, the accepted records as NDJSON).

A session speaks the protocol in this order::

    C -> S   HELLO   {"tenant": ..., "protocol": 1}
    S -> C   HELLO_OK {"session": ..., "version": ...}
    C -> S   QUERY   {"expression": "group(s:1:temperature,...)"}
    S -> C   QUERY_OK
    C -> S   CHUNK* / SWAP / STATS   (interleaved, order preserved)
    S -> C   RESULT* / SWAP_OK / STATS_OK   (in stream order)
    C -> S   END
    S -> C   END_OK  {"records": ..., "accepted": ..., "bytes": ...}

after which the client may submit another ``QUERY`` on the same
connection.  Any malformed input is answered with an ``ERROR`` frame
whose ``kind`` maps back to a typed :class:`~repro.errors.ReproError`
subclass on the client side.
"""

from __future__ import annotations

import json
import socket
import struct

import numpy as np

from ..errors import ReproError

#: protocol magic + version; a version bump breaks old peers loudly
MAGIC = b"RF"
VERSION = 1

_HEADER = struct.Struct(">2sBBI")
HEADER_BYTES = _HEADER.size

#: ceiling on a single frame payload — malformed/hostile lengths are
#: rejected before any allocation happens
MAX_PAYLOAD_BYTES = 64 << 20

# frame types ---------------------------------------------------------------
HELLO = 1
HELLO_OK = 2
QUERY = 3
QUERY_OK = 4
CHUNK = 5
RESULT = 6
SWAP = 7
SWAP_OK = 8
STATS = 9
STATS_OK = 10
END = 11
END_OK = 12
ERROR = 13

FRAME_NAMES = {
    HELLO: "HELLO",
    HELLO_OK: "HELLO_OK",
    QUERY: "QUERY",
    QUERY_OK: "QUERY_OK",
    CHUNK: "CHUNK",
    RESULT: "RESULT",
    SWAP: "SWAP",
    SWAP_OK: "SWAP_OK",
    STATS: "STATS",
    STATS_OK: "STATS_OK",
    END: "END",
    END_OK: "END_OK",
    ERROR: "ERROR",
}


# typed gateway errors ------------------------------------------------------

class GatewayError(ReproError):
    """Base class of every gateway/service-layer error."""


class ProtocolError(GatewayError):
    """A frame was malformed (bad magic/version/length/type/payload)."""


class AdmissionError(GatewayError):
    """The gateway refused the session (admission-control policy)."""


class SessionError(GatewayError):
    """The server reported a per-session failure (bad query, ...)."""


#: ``kind`` strings of ERROR frames -> client-side exception class
ERROR_KINDS = {
    "protocol": ProtocolError,
    "admission": AdmissionError,
    "query": SessionError,
    "session": SessionError,
}


def error_to_kind(exc):
    """The ERROR-frame ``kind`` string for a gateway-side exception."""
    if isinstance(exc, ProtocolError):
        return "protocol"
    if isinstance(exc, AdmissionError):
        return "admission"
    return "session"


def raise_error_frame(payload):
    """Re-raise an ERROR frame payload as its typed exception."""
    info = decode_json(ERROR, payload)
    kind = info.get("kind", "session")
    message = info.get("error", "gateway error")
    raise ERROR_KINDS.get(kind, SessionError)(message)


# frame encoding ------------------------------------------------------------

def encode_frame(frame_type, payload=b""):
    """One wire frame: header + payload bytes."""
    if frame_type not in FRAME_NAMES:
        raise ProtocolError(f"unknown frame type {frame_type!r}")
    payload = bytes(payload)
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame limit"
        )
    return _HEADER.pack(MAGIC, VERSION, frame_type, len(payload)) + payload


def encode_json_frame(frame_type, obj):
    """A control frame whose payload is compact UTF-8 JSON."""
    return encode_frame(
        frame_type,
        json.dumps(obj, separators=(",", ":")).encode("utf-8"),
    )


def decode_json(frame_type, payload):
    """Parse a control frame's JSON payload (typed error on garbage)."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(
            f"{FRAME_NAMES.get(frame_type, frame_type)} frame payload "
            f"is not valid JSON: {err}"
        ) from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"{FRAME_NAMES.get(frame_type, frame_type)} frame payload "
            f"must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def decode_header(header):
    """``(frame_type, payload_length)`` from 8 header bytes, validated."""
    if len(header) != HEADER_BYTES:
        raise ProtocolError(
            f"truncated frame header ({len(header)} of "
            f"{HEADER_BYTES} bytes)"
        )
    magic, version, frame_type, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(this side speaks {VERSION})"
        )
    if frame_type not in FRAME_NAMES:
        raise ProtocolError(f"unknown frame type {frame_type}")
    if length > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame limit"
        )
    return frame_type, length


class FrameDecoder:
    """Incremental frame parser: ``feed`` bytes, iterate complete frames.

    Carries partial frames across feeds the same way the engine's
    :class:`~repro.engine.framing.RecordFramer` carries partial records
    across chunk seams.
    """

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data):
        self._buffer += data

    def frames(self):
        """Yield ``(frame_type, payload)`` for every complete frame."""
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return
            frame_type, length = decode_header(
                bytes(self._buffer[:HEADER_BYTES])
            )
            end = HEADER_BYTES + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[HEADER_BYTES:end])
            del self._buffer[:end]
            yield frame_type, payload

    @property
    def pending_bytes(self):
        return len(self._buffer)


# RESULT batch payload ------------------------------------------------------

_RESULT_HEAD = struct.Struct(">II")


def encode_result(matches, accepted_records):
    """Pack one evaluated batch: bit-exact matches + accepted records."""
    matches = np.asarray(matches, dtype=bool)
    packed = np.packbits(matches).tobytes()
    body = b"\n".join(bytes(r) for r in accepted_records)
    return (
        _RESULT_HEAD.pack(matches.shape[0], len(accepted_records))
        + packed + body
    )


def decode_result(payload):
    """``(matches, accepted_records)`` back from a RESULT payload."""
    if len(payload) < _RESULT_HEAD.size:
        raise ProtocolError("truncated RESULT payload")
    num_records, num_accepted = _RESULT_HEAD.unpack_from(payload)
    bits_bytes = -(-num_records // 8)
    offset = _RESULT_HEAD.size
    if len(payload) < offset + bits_bytes:
        raise ProtocolError("RESULT payload shorter than its bit vector")
    packed = np.frombuffer(
        payload, dtype=np.uint8, count=bits_bytes, offset=offset
    )
    matches = np.unpackbits(packed, count=num_records).astype(bool)
    body = payload[offset + bits_bytes:]
    accepted = body.split(b"\n") if body else []
    if len(accepted) != num_accepted:
        raise ProtocolError(
            f"RESULT payload carries {len(accepted)} accepted records, "
            f"header says {num_accepted}"
        )
    if int(np.count_nonzero(matches)) != num_accepted:
        raise ProtocolError(
            "RESULT match bits disagree with the accepted-record count"
        )
    return matches, accepted


# blocking / async frame IO -------------------------------------------------

class SocketFrameStream:
    """Blocking frame reader/writer over a connected socket."""

    def __init__(self, sock):
        self._sock = sock
        self._decoder = FrameDecoder()
        self._ready = []

    def send(self, frame):
        self._sock.sendall(frame)

    def read_frame(self):
        """The next complete frame, or ``None`` on orderly EOF."""
        while True:
            if self._ready:
                return self._ready.pop(0)
            try:
                data = self._sock.recv(1 << 16)
            except socket.timeout:
                raise GatewayError(
                    "timed out waiting for a gateway frame"
                ) from None
            if not data:
                if self._decoder.pending_bytes:
                    raise ProtocolError(
                        "connection closed mid-frame "
                        f"({self._decoder.pending_bytes} bytes pending)"
                    )
                return None
            self._decoder.feed(data)
            self._ready.extend(self._decoder.frames())


async def read_frame_async(reader):
    """One frame from an :class:`asyncio.StreamReader` (None on EOF)."""
    import asyncio

    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(err.partial)} of "
            f"{HEADER_BYTES} bytes)"
        ) from None
    frame_type, length = decode_header(header)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as err:
        raise ProtocolError(
            f"connection closed mid-frame ({len(err.partial)} of "
            f"{length} payload bytes)"
        ) from None
    return frame_type, payload
