"""Per-tenant and aggregate observability of the filter gateway.

Every session the :class:`~repro.serve.server.FilterGateway` accepts is
charged to a *tenant* (the name the client sent in its HELLO frame).
:class:`TenantMetrics` accumulates that tenant's traffic counters —
bytes, records, accept rate, queue depth/bytes (with peaks), filter
swaps and their reconfiguration downtime, per-tenant AtomCache
hits/misses — and :class:`GatewayMetrics` aggregates them next to the
shared engine's ``stats()`` (cache hit rate, backend, workers).  The
same snapshot is rendered by the STATS frame and by
``repro serve --status``.

Per-tenant cache hits/misses are attributed by sampling the shared
cache's counters around each batch evaluation; with several engine-pool
evaluations in flight at once the attribution is approximate (totals
stay exact), which is fine for the question it answers — "is this
tenant being served warm?".
"""

from __future__ import annotations

import threading


class TenantMetrics:
    """Traffic counters of one tenant (across all of its sessions).

    Deliberately lock-free: every write happens on the gateway's
    single event-loop thread (session handlers, queue accounting,
    evaluation results are all awaited there), so writes never race.
    The only cross-thread reads are stats snapshots
    (``GatewayMetrics.snapshot`` polled by ``GatewayThread``), which
    are approximate by design — a snapshot racing one in-flight
    increment reads a value at most one update stale, never a torn
    one (CPython int/float attribute stores are atomic).  Keeping the
    hot per-chunk counters unlocked avoids a lock acquisition per
    queue event on the busiest path the gateway has.
    """

    def __init__(self, tenant):
        self.tenant = tenant
        self.sessions = 0
        self.active_sessions = 0
        self.queries = 0
        self.bytes_in = 0
        self.chunks = 0
        self.records = 0
        self.accepted = 0
        self.result_batches = 0
        self.swaps = 0
        self.reconfiguration_seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.errors = 0
        self.disconnects = 0
        #: chunks/bytes currently queued awaiting evaluation
        self.queued_chunks = 0
        self.queued_bytes = 0
        self.peak_queued_chunks = 0
        self.peak_queued_bytes = 0

    # -- session lifecycle ------------------------------------------------

    def session_opened(self):
        self.sessions += 1
        self.active_sessions += 1

    def session_closed(self, disconnected=False):
        self.active_sessions -= 1
        if disconnected:
            self.disconnects += 1

    # -- queue accounting --------------------------------------------------

    def enqueued(self, nbytes):
        self.queued_chunks += 1
        self.queued_bytes += nbytes
        self.peak_queued_chunks = max(
            self.peak_queued_chunks, self.queued_chunks
        )
        self.peak_queued_bytes = max(
            self.peak_queued_bytes, self.queued_bytes
        )

    def dequeued(self, nbytes):
        self.queued_chunks -= 1
        self.queued_bytes -= nbytes

    # -- evaluation accounting ---------------------------------------------

    def evaluated(self, records, accepted, cache_delta=None):
        self.records += records
        self.accepted += accepted
        self.result_batches += 1
        if cache_delta is not None:
            hits, misses = cache_delta
            self.cache_hits += hits
            self.cache_misses += misses

    def swapped(self, downtime_seconds):
        self.swaps += 1
        self.reconfiguration_seconds += downtime_seconds

    # -- reporting ----------------------------------------------------------

    @property
    def accept_rate(self):
        return self.accepted / self.records if self.records else 0.0

    @property
    def cache_hit_rate(self):
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def snapshot(self):
        return {
            "tenant": self.tenant,
            "sessions": self.sessions,
            "active_sessions": self.active_sessions,
            "queries": self.queries,
            "bytes_in": self.bytes_in,
            "chunks": self.chunks,
            "records": self.records,
            "accepted": self.accepted,
            "accept_rate": self.accept_rate,
            "result_batches": self.result_batches,
            "swaps": self.swaps,
            "reconfiguration_seconds": self.reconfiguration_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "errors": self.errors,
            "disconnects": self.disconnects,
            "queued_chunks": self.queued_chunks,
            "queued_bytes": self.queued_bytes,
            "peak_queued_chunks": self.peak_queued_chunks,
            "peak_queued_bytes": self.peak_queued_bytes,
        }


class GatewayMetrics:
    """Aggregate view over every tenant plus gateway-level counters."""

    def __init__(self):
        self._tenants = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self.admission_rejections = 0  # guarded-by: _lock
        self.protocol_errors = 0  # guarded-by: _lock
        #: bytes queued across every session right now (the quantity
        #: the gateway's max_inflight_bytes policy bounds)
        self.inflight_bytes = 0  # guarded-by: _lock
        self.peak_inflight_bytes = 0  # guarded-by: _lock

    def tenant(self, name):
        with self._lock:
            metrics = self._tenants.get(name)
            if metrics is None:
                metrics = self._tenants[name] = TenantMetrics(name)
            return metrics

    @property
    def active_sessions(self):
        with self._lock:
            return sum(
                t.active_sessions for t in self._tenants.values()
            )

    def note_admission_rejection(self):
        with self._lock:
            self.admission_rejections += 1

    def note_protocol_error(self):
        with self._lock:
            self.protocol_errors += 1

    def inflight_changed(self, delta):
        with self._lock:
            self.inflight_bytes += delta
            self.peak_inflight_bytes = max(
                self.peak_inflight_bytes, self.inflight_bytes
            )

    def snapshot(self, engine_stats=None):
        """One JSON-serialisable stats document (the STATS_OK payload).

        Safe to call from any thread: the tenant registry is copied
        under the lock before iteration (`GatewayThread.snapshot()`
        polls from outside the event-loop thread).
        """
        with self._lock:
            registry = sorted(self._tenants.items())
            gateway_counters = {
                "admission_rejections": self.admission_rejections,
                "protocol_errors": self.protocol_errors,
                "inflight_bytes": self.inflight_bytes,
                "peak_inflight_bytes": self.peak_inflight_bytes,
            }
        tenants = {
            name: metrics.snapshot() for name, metrics in registry
        }
        totals = {
            "sessions": sum(t["sessions"] for t in tenants.values()),
            "active_sessions": sum(
                t["active_sessions"] for t in tenants.values()
            ),
            "bytes_in": sum(t["bytes_in"] for t in tenants.values()),
            "records": sum(t["records"] for t in tenants.values()),
            "accepted": sum(t["accepted"] for t in tenants.values()),
            "swaps": sum(t["swaps"] for t in tenants.values()),
            "reconfiguration_seconds": sum(
                t["reconfiguration_seconds"] for t in tenants.values()
            ),
            "errors": sum(t["errors"] for t in tenants.values()),
            "disconnects": sum(
                t["disconnects"] for t in tenants.values()
            ),
            **gateway_counters,
        }
        records = totals["records"]
        totals["accept_rate"] = (
            totals["accepted"] / records if records else 0.0
        )
        snapshot = {"gateway": totals, "tenants": tenants}
        if engine_stats is not None:
            snapshot["engine"] = _jsonable(engine_stats)
        return snapshot


def _jsonable(obj):
    """Engine stats contain tuples/numpy scalars; make them JSON-safe."""
    if isinstance(obj, dict):
        return {str(key): _jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(item) for item in obj]
    if isinstance(obj, bytes):
        return obj.decode("utf-8", "replace")
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    return obj


def render_status(snapshot):
    """Human-readable rendering of a stats snapshot (CLI --status)."""
    from ..eval.report import render_table

    gateway = snapshot["gateway"]
    lines = [
        "gateway: "
        f"{gateway['active_sessions']} active / "
        f"{gateway['sessions']} total sessions, "
        f"{gateway['bytes_in']} bytes in, "
        f"{gateway['accepted']}/{gateway['records']} records accepted "
        f"({gateway['accept_rate']:.1%}), "
        f"{gateway['admission_rejections']} admission rejections, "
        f"{gateway['inflight_bytes']} bytes in flight "
        f"(peak {gateway['peak_inflight_bytes']})",
    ]
    engine = snapshot.get("engine") or {}
    cache = engine.get("cache")
    if cache:
        lines.append(
            "shared cache: "
            f"{cache['hits']} hits / {cache['misses']} misses "
            f"(hit rate {cache['hit_rate']:.1%}), "
            f"{cache['entries']} entries, {cache['bytes']} bytes"
        )
    workers = engine.get("workers")
    if workers and workers.get("resident"):
        lines.append(
            "resident workers: "
            f"{workers['num_workers']} per engine, "
            f"{workers['sessions']} sessions / "
            f"{workers['configures']} configures / "
            f"{workers['respawns']} respawns, "
            f"{workers['shipped_entries']} cache entries shipped, "
            f"{workers['cache_hits']} worker hits / "
            f"{workers['cache_misses']} misses"
        )
    tenants = snapshot["tenants"]
    if tenants:
        rows = [
            [
                name,
                f"{t['sessions']}",
                f"{t['bytes_in']}",
                f"{t['accepted']}/{t['records']}",
                f"{t['accept_rate']:.1%}",
                f"{t['cache_hit_rate']:.1%}",
                f"{t['swaps']}",
                f"{t['peak_queued_bytes']}",
            ]
            for name, t in tenants.items()
        ]
        lines.append(render_table(
            ["Tenant", "Sessions", "Bytes", "Accepted", "Rate",
             "Cache hits", "Swaps", "Peak queue B"],
            rows,
        ))
    return "\n".join(lines)
