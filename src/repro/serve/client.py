"""Gateway clients: stream a ChunkSource up, get filtered results back.

Two flavours over the same wire protocol:

* :class:`GatewayClient` — synchronous, over a blocking socket.  A
  background feeder thread streams the chunks (so server backpressure
  cannot deadlock against result reading) while the calling thread
  iterates :class:`ResultBatch` objects.
* :class:`AsyncGatewayClient` — asyncio streams, with the same
  high-level :meth:`~AsyncGatewayClient.submit` plus low-level
  ``query/send_chunk/swap/end/results`` methods for callers that need
  to place a SWAP at an exact point in the stream.

Both accept anything :func:`~repro.engine.sources.as_chunk_source`
does — a path, raw bytes, a binary handle, a socket, another
``ChunkSource`` — and both surface server-side failures as the typed
errors of :mod:`repro.serve.protocol`.
"""

from __future__ import annotations

import contextlib
import socket as socket_module
import threading

import numpy as np

from ..engine import as_chunk_source
from . import protocol
from .protocol import GatewayError, ProtocolError

DEFAULT_CHUNK_BYTES = 64 * 1024


def _client_source(obj, chunk_bytes):
    """Like :func:`as_chunk_source`, but raw bytes are split.

    The engine treats a ``bytes`` input as one chunk; a client is the
    ingest edge, so a whole in-memory corpus is cut into
    ``chunk_bytes`` CHUNK frames — otherwise "streaming" a byte string
    would ship one giant frame and defeat the gateway's bounded
    per-session queues.
    """
    if isinstance(obj, (bytes, bytearray, memoryview)):
        view = memoryview(obj)

        def slices():
            # lazy, via memoryview: no second whole-corpus copy
            for start in range(0, len(view), chunk_bytes):
                yield bytes(view[start:start + chunk_bytes])

        return as_chunk_source(slices(), chunk_bytes)
    return as_chunk_source(obj, chunk_bytes)


class ResultBatch:
    """One RESULT frame: match bits + accepted records, in order."""

    __slots__ = ("index", "matches", "accepted")

    def __init__(self, index, matches, accepted):
        self.index = index
        self.matches = matches
        self.accepted = accepted

    def __len__(self):
        return int(self.matches.shape[0])

    def __repr__(self):
        return (
            f"ResultBatch(#{self.index}, records={len(self)}, "
            f"accepted={int(np.count_nonzero(self.matches))})"
        )


class GatewayClient:
    """Synchronous gateway client (one session per connection)."""

    def __init__(self, host, port, tenant="client",
                 chunk_bytes=DEFAULT_CHUNK_BYTES, timeout=30.0,
                 observer=False):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.chunk_bytes = chunk_bytes
        self.timeout = timeout
        #: observer sessions (monitoring/STATS probes) bypass the
        #: gateway's session admission control and stay out of the
        #: per-tenant traffic metrics
        self.observer = observer
        self.session_id = None
        #: END_OK summary of the most recent completed submission
        self.last_summary = None
        #: most recent STATS_OK snapshot observed mid-stream
        self.last_stats = None
        #: SWAP_OK acknowledgements observed during the current stream
        self.swaps = []
        self._sock = None
        self._stream = None
        self._write_lock = threading.Lock()

    # -- connection ----------------------------------------------------------

    def connect(self):
        self._sock = socket_module.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._stream = protocol.SocketFrameStream(self._sock)
        self._send(protocol.encode_json_frame(
            protocol.HELLO,
            {
                "tenant": self.tenant,
                "protocol": protocol.VERSION,
                "observer": self.observer,
            },
        ))
        frame_type, payload = self._expect_frame()
        if frame_type == protocol.ERROR:
            protocol.raise_error_frame(payload)
        if frame_type != protocol.HELLO_OK:
            raise ProtocolError(
                f"expected HELLO_OK, got "
                f"{protocol.FRAME_NAMES[frame_type]}"
            )
        self.session_id = protocol.decode_json(
            protocol.HELLO_OK, payload
        )["session"]
        return self

    def close(self):
        if self._sock is not None:
            with contextlib.suppress(OSError):
                self._sock.close()
            self._sock = None
            self._stream = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- frame plumbing ------------------------------------------------------

    def _send(self, frame):
        # one lock for every writer (caller thread + feeder thread),
        # so frames can never interleave mid-header
        with self._write_lock:
            if self._stream is None:
                raise GatewayError("connection closed")
            self._stream.send(frame)

    def _expect_frame(self):
        frame = self._stream.read_frame()
        if frame is None:
            raise GatewayError(
                "gateway closed the connection unexpectedly"
            )
        return frame

    def _require_connected(self):
        if self._stream is None:
            raise GatewayError(
                "client is not connected (call connect() first)"
            )

    # -- the streaming API ---------------------------------------------------

    def submit(self, expression, source, chunk_bytes=None):
        """Stream ``source`` through the gateway; yield result batches.

        ``expression`` is a CLI-syntax filter string.  Chunks are fed
        from a background thread while this generator yields each
        :class:`ResultBatch` as the server evaluates it; the END_OK
        summary lands in :attr:`last_summary`.

        Abandoning the generator before the END_OK arrives (or a
        server-reported error) **closes the connection**: the session's
        remaining frames cannot be resynchronised, so the socket is
        the right thing to give up — reconnect to submit again.
        """
        self._require_connected()
        source = _client_source(
            source, chunk_bytes or self.chunk_bytes
        )
        self._send(protocol.encode_json_frame(
            protocol.QUERY, {"expression": expression}
        ))
        self.swaps = []
        self.last_summary = None

        def feed():
            try:
                for chunk in source:
                    self._send(protocol.encode_frame(
                        protocol.CHUNK, chunk
                    ))
                self._send(protocol.encode_frame(protocol.END))
            except (OSError, GatewayError, ValueError):
                # the connection (or the source, on abandonment) went
                # away mid-feed; the read loop surfaces the typed
                # reason where there is one
                pass

        feeder = threading.Thread(
            target=feed, name="gateway-feeder", daemon=True
        )
        started = False
        index = 0
        try:
            while True:
                frame_type, payload = self._expect_frame()
                if frame_type == protocol.ERROR:
                    protocol.raise_error_frame(payload)
                if frame_type == protocol.QUERY_OK:
                    if not started:
                        feeder.start()
                        started = True
                    continue
                if frame_type == protocol.RESULT:
                    matches, accepted = protocol.decode_result(payload)
                    yield ResultBatch(index, matches, accepted)
                    index += 1
                    continue
                if frame_type == protocol.SWAP_OK:
                    self.swaps.append(protocol.decode_json(
                        protocol.SWAP_OK, payload
                    ))
                    continue
                if frame_type == protocol.STATS_OK:
                    self.last_stats = protocol.decode_json(
                        protocol.STATS_OK, payload
                    )
                    continue
                if frame_type == protocol.END_OK:
                    self.last_summary = protocol.decode_json(
                        protocol.END_OK, payload
                    )
                    return
                raise ProtocolError(
                    f"unexpected {protocol.FRAME_NAMES[frame_type]} "
                    "frame during a submission"
                )
        finally:
            if self.last_summary is None:
                # abandoned or failed mid-stream: unread RESULT frames
                # make the connection unusable, and closing it is also
                # what unblocks a feeder stuck in sendall; the source
                # is closed only after the feeder stopped reading it
                self.close()
                if started:
                    feeder.join(timeout=self.timeout)
                source.close()
            elif started:
                feeder.join(timeout=self.timeout)

    def filter(self, expression, source, chunk_bytes=None):
        """Yield only the accepted records of a submission."""
        for batch in self.submit(expression, source, chunk_bytes):
            yield from batch.accepted

    def swap(self, expression):
        """Request a live filter swap for the current stream.

        The acknowledgement (with its reconfiguration downtime) arrives
        in stream order and is collected into :attr:`swaps` by the
        active :meth:`submit` generator.
        """
        self._require_connected()
        self._send(protocol.encode_json_frame(
            protocol.SWAP, {"expression": expression}
        ))

    def stats(self):
        """Fetch the gateway's metrics snapshot (between submissions)."""
        self._require_connected()
        self._send(protocol.encode_frame(protocol.STATS))
        frame_type, payload = self._expect_frame()
        if frame_type == protocol.ERROR:
            protocol.raise_error_frame(payload)
        if frame_type != protocol.STATS_OK:
            raise ProtocolError(
                f"expected STATS_OK, got "
                f"{protocol.FRAME_NAMES[frame_type]}"
            )
        return protocol.decode_json(protocol.STATS_OK, payload)


class AsyncGatewayClient:
    """Asyncio gateway client with deterministic frame placement."""

    def __init__(self, host, port, tenant="client",
                 chunk_bytes=DEFAULT_CHUNK_BYTES, observer=False):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.chunk_bytes = chunk_bytes
        self.observer = observer
        self.session_id = None
        self.last_summary = None
        self.last_stats = None
        self.swaps = []
        self._reader = None
        self._writer = None

    # -- connection ----------------------------------------------------------

    async def connect(self):
        import asyncio

        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        await self._send(protocol.encode_json_frame(
            protocol.HELLO,
            {
                "tenant": self.tenant,
                "protocol": protocol.VERSION,
                "observer": self.observer,
            },
        ))
        frame_type, payload = await self._expect_frame()
        if frame_type == protocol.ERROR:
            protocol.raise_error_frame(payload)
        if frame_type != protocol.HELLO_OK:
            raise ProtocolError(
                f"expected HELLO_OK, got "
                f"{protocol.FRAME_NAMES[frame_type]}"
            )
        self.session_id = protocol.decode_json(
            protocol.HELLO_OK, payload
        )["session"]
        return self

    async def close(self):
        if self._writer is not None:
            with contextlib.suppress(ConnectionError, OSError):
                self._writer.close()
                await self._writer.wait_closed()
            self._reader = self._writer = None

    async def __aenter__(self):
        return await self.connect()

    async def __aexit__(self, *exc_info):
        await self.close()
        return False

    # -- low-level frame API -------------------------------------------------

    async def _send(self, frame):
        self._writer.write(frame)
        await self._writer.drain()

    async def _expect_frame(self):
        frame = await protocol.read_frame_async(self._reader)
        if frame is None:
            raise GatewayError(
                "gateway closed the connection unexpectedly"
            )
        return frame

    async def query(self, expression):
        await self._send(protocol.encode_json_frame(
            protocol.QUERY, {"expression": expression}
        ))

    async def send_chunk(self, chunk):
        await self._send(protocol.encode_frame(protocol.CHUNK, chunk))

    async def swap(self, expression):
        await self._send(protocol.encode_json_frame(
            protocol.SWAP, {"expression": expression}
        ))

    async def end(self):
        await self._send(protocol.encode_frame(protocol.END))

    async def request_stats(self):
        """Fire a STATS frame mid-stream; the STATS_OK reply arrives
        in stream order and is collected into :attr:`last_stats` by
        the :meth:`results` loop."""
        await self._send(protocol.encode_frame(protocol.STATS))

    async def stats(self):
        await self._send(protocol.encode_frame(protocol.STATS))
        frame_type, payload = await self._expect_frame()
        if frame_type == protocol.ERROR:
            protocol.raise_error_frame(payload)
        if frame_type != protocol.STATS_OK:
            raise ProtocolError(
                f"expected STATS_OK, got "
                f"{protocol.FRAME_NAMES[frame_type]}"
            )
        return protocol.decode_json(protocol.STATS_OK, payload)

    async def results(self):
        """Async-iterate result frames until END_OK (stream order)."""
        index = 0
        while True:
            frame_type, payload = await self._expect_frame()
            if frame_type == protocol.ERROR:
                protocol.raise_error_frame(payload)
            if frame_type == protocol.QUERY_OK:
                continue
            if frame_type == protocol.RESULT:
                matches, accepted = protocol.decode_result(payload)
                yield ResultBatch(index, matches, accepted)
                index += 1
                continue
            if frame_type == protocol.SWAP_OK:
                self.swaps.append(protocol.decode_json(
                    protocol.SWAP_OK, payload
                ))
                continue
            if frame_type == protocol.STATS_OK:
                self.last_stats = protocol.decode_json(
                    protocol.STATS_OK, payload
                )
                continue
            if frame_type == protocol.END_OK:
                self.last_summary = protocol.decode_json(
                    protocol.END_OK, payload
                )
                return
            raise ProtocolError(
                f"unexpected {protocol.FRAME_NAMES[frame_type]} "
                "frame during a submission"
            )

    # -- high-level submit ---------------------------------------------------

    async def submit(self, expression, source, chunk_bytes=None):
        """Stream a source and yield result batches, fully async."""
        import asyncio

        source = _client_source(
            source, chunk_bytes or self.chunk_bytes
        )
        await self.query(expression)
        self.swaps = []
        self.last_summary = None

        async def feed():
            try:
                for chunk in source:
                    await self.send_chunk(chunk)
                await self.end()
            except (ConnectionError, OSError):
                pass  # the results loop surfaces the typed reason

        feeder = asyncio.ensure_future(feed())
        try:
            async for batch in self.results():
                yield batch
        finally:
            if not feeder.done():
                feeder.cancel()
            with contextlib.suppress(
                asyncio.CancelledError, Exception
            ):
                await feeder
            if self.last_summary is None:
                # abandoned or failed mid-stream: the session's
                # remaining frames cannot be resynchronised
                await self.close()
                source.close()
